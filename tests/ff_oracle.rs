//! Three-way differential oracle for the fast-forward functional engine.
//!
//! The pre-decoded threaded-code engine ([`xloops::func::FastForward`])
//! exists purely for simulation speed: it must be bit-identical to the
//! reference interpreter. This suite pins that claim from three angles on
//! every Table II kernel:
//!
//! 1. **interp vs fast-forward** — same final [`ArchState`] (pc and all 32
//!    registers), same memory image, same retired-instruction count.
//! 2. **interp vs event-driven GPP** — the cycle-accurate core wraps the
//!    same interpreter, so its architectural outcome must match too (this
//!    is what makes fast-forward → detailed hand-off sound).
//! 3. **interp vs full specialized system** — the LPSU path produces the
//!    serial-equivalent memory image. This leg routes through the LPSU
//!    stepper selected at build time, so CI runs the file twice: once
//!    default (event-driven) and once with `--features
//!    xloops-lpsu/naive-stepper`.
//!
//! A property test then checks that *arbitrary* sampling specs never
//! change the functional result: interval-sampled simulation may estimate
//! cycles, but the committed memory image is exact by construction.

use proptest::prelude::*;
use xloops::func::{ArchState, FastForward, Interp, Step};
use xloops::gpp::{GppConfig, GppCore, RunOpts, StopReason};
use xloops::kernels::{by_name, table2, Kernel};
use xloops::mem::Memory;
use xloops::sim::{ExecMode, SampleSpec, System, SystemConfig};

const MAX_STEPS: u64 = 50_000_000;

/// The kernels' working set lives in 0x1000..0x7000 (see
/// `tests/cross_model.rs`); comparing the whole span catches stray stores,
/// not just the verified outputs.
fn heap(mem: &Memory) -> Vec<u32> {
    mem.read_words(0x1000, (0x7000 - 0x1000) / 4)
}

/// Everything architecturally observable after a run.
struct Outcome {
    state: ArchState,
    heap: Vec<u32>,
    instret: u64,
}

/// Reference: the step-at-a-time interpreter.
fn interp_outcome(kernel: &Kernel) -> Outcome {
    let mut mem = Memory::new();
    kernel.init_memory(&mut mem);
    let mut cpu = Interp::new();
    for _ in 0..MAX_STEPS {
        match cpu.step(&kernel.program, &mut mem) {
            Ok(Step::Exit) => {
                return Outcome {
                    state: cpu.state().clone(),
                    heap: heap(&mem),
                    instret: cpu.mix().total(),
                }
            }
            Ok(_) => {}
            Err(e) => panic!("{}: interp run failed: {e:?}", kernel.name),
        }
    }
    panic!("{}: interp did not exit in {MAX_STEPS} steps", kernel.name);
}

/// The threaded-code fast-forward engine.
fn ff_outcome(kernel: &Kernel) -> Outcome {
    let mut mem = Memory::new();
    kernel.init_memory(&mut mem);
    let ff = FastForward::new(&kernel.program);
    let mut state = ArchState::new();
    let run = ff
        .run(&mut state, &mut mem, MAX_STEPS)
        .unwrap_or_else(|e| panic!("{}: fast-forward failed: {e:?}", kernel.name));
    assert!(run.exited, "{}: fast-forward did not exit in {MAX_STEPS} steps", kernel.name);
    Outcome { state, heap: heap(&mem), instret: run.retired }
}

/// The event-driven cycle-accurate GPP in traditional mode.
fn gpp_outcome(kernel: &Kernel) -> Outcome {
    let mut mem = Memory::new();
    kernel.init_memory(&mut mem);
    let mut core = GppCore::new(GppConfig::io());
    let stop = core
        .run(&kernel.program, &mut mem, &RunOpts::traditional())
        .unwrap_or_else(|e| panic!("{}: GPP run failed: {e:?}", kernel.name));
    assert_eq!(stop, StopReason::Exited, "{}: GPP stopped early", kernel.name);
    Outcome { state: core.arch_state().clone(), heap: heap(&mem), instret: core.instret() }
}

/// Legs 1 and 2: every Table II kernel, all three engines, full
/// architectural equality.
#[test]
fn fast_forward_is_bit_identical_to_interp_and_gpp() {
    for kernel in table2() {
        let reference = interp_outcome(kernel);
        let ff = ff_outcome(kernel);
        assert_eq!(ff.state, reference.state, "{}: fast-forward ArchState diverged", kernel.name);
        assert_eq!(ff.heap, reference.heap, "{}: fast-forward memory diverged", kernel.name);
        assert_eq!(ff.instret, reference.instret, "{}: retired count diverged", kernel.name);

        let gpp = gpp_outcome(kernel);
        assert_eq!(gpp.state, reference.state, "{}: GPP ArchState diverged", kernel.name);
        assert_eq!(gpp.heap, reference.heap, "{}: GPP memory diverged", kernel.name);
        assert_eq!(gpp.instret, reference.instret, "{}: GPP retired count diverged", kernel.name);
    }
}

/// Leg 3: the full specialized system (GPP + LPSU under the build's
/// stepper) commits the serial-equivalent memory image the interpreter
/// computes. Run under both steppers in CI. The two `uc-db` kernels have
/// order-insensitive AMO races (see `tests/cross_model.rs`), so for them
/// only the semantic verifier applies, not word-exact comparison.
#[test]
fn specialized_system_commits_the_interp_memory_image() {
    for kernel in table2() {
        let reference = interp_outcome(kernel);
        let mut sys = System::new(SystemConfig::io_x());
        kernel.init_memory(sys.mem_mut());
        sys.run(&kernel.program, ExecMode::Specialized)
            .unwrap_or_else(|e| panic!("{}: specialized run failed: {e}", kernel.name));
        let word_exact = !matches!(kernel.name, "bfs-uc-db" | "qsort-uc-db");
        if word_exact {
            assert_eq!(
                heap(sys.mem()),
                reference.heap,
                "{}: specialized memory image diverged from the functional reference",
                kernel.name
            );
        }
        kernel.verify(sys.mem()).unwrap_or_else(|e| panic!("{}: verify failed: {e}", kernel.name));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary sampling specs never change the functional result: the
    /// sampled run's memory image equals the full run's, kernel
    /// verification passes, and the instruction count is exact.
    #[test]
    fn arbitrary_sample_specs_preserve_functional_results(
        ff in any::<u64>(),
        warm in any::<u64>(),
        measure in any::<u64>(),
        kernel_pick in any::<u64>(),
    ) {
        // Small-but-real windows: huge ff windows are just "one window
        // covers the whole program", which the unit suite already pins.
        let spec = SampleSpec::new(ff % 4_000 + 1, warm % 1_000, measure % 4_000 + 1)
            .expect("positive ff/measure");
        let names = ["huffman-ua", "rgb2cmyk-uc", "ksack-sm-om"];
        let kernel = by_name(names[(kernel_pick % names.len() as u64) as usize]).unwrap();

        // Same-mode full run: the invariant is that sampling changes the
        // cycle *estimate*, never the architectural outcome.
        let mut full = System::new(SystemConfig::io_x());
        kernel.init_memory(full.mem_mut());
        let full_stats = full
            .run(&kernel.program, ExecMode::Specialized)
            .unwrap_or_else(|e| panic!("{} full run failed: {e}", kernel.name));

        let mut sys = System::new(SystemConfig::io_x());
        kernel.init_memory(sys.mem_mut());
        let stats = sys
            .run_sampled(&kernel.program, ExecMode::Specialized, spec)
            .unwrap_or_else(|e| panic!("{} sampled {spec} failed: {e}", kernel.name));
        prop_assert_eq!(
            heap(sys.mem()),
            heap(full.mem()),
            "{} sampled {} memory diverged", kernel.name, spec
        );
        kernel.verify(sys.mem())
            .unwrap_or_else(|e| panic!("{} sampled {spec} verify failed: {e}", kernel.name));
        prop_assert_eq!(stats.instret, full_stats.instret);
        prop_assert!(stats.sampling.is_some() && full_stats.sampling.is_none());
    }
}
