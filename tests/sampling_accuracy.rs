//! Accuracy bound for interval-sampled simulation.
//!
//! Sampling trades exact cycle counts for wall-clock speed; this suite
//! pins how much accuracy the trade costs. For every Table II kernel on
//! every Figure 9 LPSU design point, the sampled estimate must land
//! within 5% of the full cycle-accurate run, and the reported relative
//! standard error must be finite and sane. (The architectural outcome is
//! exact by construction — `tests/ff_oracle.rs` covers that side.)

use xloops::kernels::table2;
use xloops::lpsu::LpsuConfig;
use xloops::sim::{ExecMode, SampleSpec, System, SystemConfig};

/// The Figure 9 LPSU design space on the ooo/4 host.
fn fig9_configs() -> Vec<(&'static str, SystemConfig)> {
    let d = LpsuConfig::default4;
    vec![
        ("x4", SystemConfig::ooo4_x()),
        ("x4+mt", SystemConfig::ooo4_x().with_lpsu(d().with_multithreading())),
        ("x8", SystemConfig::ooo4_x().with_lpsu(d().with_lanes(8))),
        ("x8+r", SystemConfig::ooo4_x().with_lpsu(d().with_lanes(8).with_double_resources())),
        (
            "x8+r+lsq",
            SystemConfig::ooo4_x()
                .with_lpsu(d().with_lanes(8).with_double_resources().with_big_lsq()),
        ),
    ]
}

#[test]
fn sampled_cycles_within_5pct_on_every_kernel_and_fig9_config() {
    // The headline sampling configuration: fast-forward 10k instructions,
    // warm 2k cycles, measure 10k cycles per interval.
    let spec = SampleSpec::new(10_000, 2_000, 10_000).unwrap();
    let mut worst: (f64, String) = (0.0, String::new());
    for kernel in table2() {
        for (tag, config) in fig9_configs() {
            let mut full = System::new(config);
            kernel.init_memory(full.mem_mut());
            let exact = full
                .run(&kernel.program, ExecMode::Specialized)
                .unwrap_or_else(|e| panic!("{} {tag} full: {e}", kernel.name))
                .cycles;

            let mut sys = System::new(config);
            kernel.init_memory(sys.mem_mut());
            let stats = sys
                .run_sampled(&kernel.program, ExecMode::Specialized, spec)
                .unwrap_or_else(|e| panic!("{} {tag} sampled: {e}", kernel.name));

            let err = (stats.cycles as f64 - exact as f64).abs() / exact as f64;
            if err > worst.0 {
                worst = (err, format!("{} {tag}", kernel.name));
            }
            assert!(
                err <= 0.05,
                "{} {tag}: sampled {} vs exact {exact} ({:.2}% error)",
                kernel.name,
                stats.cycles,
                100.0 * err
            );

            let s = stats.sampling.as_ref().expect("sampled run reports sampling stats");
            assert!(s.intervals >= 1);
            assert!(s.rel_stderr.is_finite() && s.rel_stderr >= 0.0, "{}", s.rel_stderr);
            assert_eq!(s.measured_cycles + s.extrapolated_cycles, stats.cycles);
        }
    }
    eprintln!("worst sampling error: {:.3}% on {}", 100.0 * worst.0, worst.1);
}
