//! End-to-end loopback-TCP test: the in-process twin of CI's
//! `remote-worker-smoke` job and the TCP mirror of `serve_e2e`. A daemon
//! listening on `tcp://127.0.0.1:0` serves real `xloops worker --connect`
//! child processes (via `CARGO_BIN_EXE_xloops`) and TCP `submit --wait`
//! clients, and must produce artifacts byte-identical to the storeless
//! in-process render — including when a remote worker is SIGKILLed
//! mid-job by the crash-once chaos hook. The handshake gate is pinned
//! from both sides: raw peers with the wrong protocol version, a wrong
//! token, or no handshake at all get a typed exit-2 refusal, and a
//! wrong-token `xloops worker` exits with code 2 itself.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use xloops::bench::manifest::{render_spec, run_shard, ExperimentSpec};
use xloops::bench::proto::request;
use xloops::bench::serve::{Daemon, ServeConfig};
use xloops::bench::transport::Endpoint;
use xloops::sim::RunOptions;
use xloops::stats::JsonValue;

fn temp_sock(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("xloops-tcp-e2e-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&p);
    p
}

fn small_spec() -> ExperimentSpec {
    let mut spec = xloops::bench::experiments::spec_by_name("table2").expect("table2 spec exists");
    spec.points.truncate(3);
    spec.sections.clear();
    spec
}

/// The storeless reference render every TCP client must receive.
fn reference_artifact(spec: &ExperimentSpec) -> String {
    let shard = run_shard(spec, 0, 1, RunOptions::default());
    let results: Vec<_> = shard.results.into_iter().map(|(_, pr)| pr).collect();
    render_spec(spec, &results)
}

/// Binds a daemon on a fresh Unix socket plus loopback TCP and runs it on
/// a background thread; returns the serving thread, the TCP endpoint, and
/// the Unix socket path.
fn spawn_daemon(
    tag: &str,
    token: Option<&str>,
) -> (std::thread::JoinHandle<usize>, Endpoint, PathBuf) {
    let sock = temp_sock(tag);
    let cfg = ServeConfig {
        sock: sock.clone(),
        listen: Some(Endpoint::parse("tcp://127.0.0.1:0")),
        store_dir: None,
        options: RunOptions::default(),
        token: token.map(str::to_string),
    };
    let daemon = Daemon::bind(cfg).expect("bind unix + tcp");
    let addr = daemon.tcp_addr().expect("a tcp listener was requested");
    let server = std::thread::spawn(move || daemon.run().expect("daemon run"));
    (server, Endpoint::Tcp(addr.to_string()), sock)
}

/// Spawns a real remote worker child dialing `ep`, with `env` riding the
/// child environment (chaos hooks, tokens).
fn spawn_worker(ep: &Endpoint, env: &[(&str, String)]) -> Child {
    let addr = match ep {
        Endpoint::Tcp(addr) => addr.clone(),
        other => panic!("workers dial TCP endpoints, not {other:?}"),
    };
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xloops"));
    cmd.arg("worker").arg("--connect").arg(addr);
    cmd.stdin(Stdio::null()).stdout(Stdio::null()).stderr(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn remote worker")
}

/// Polls the daemon's bare-status listing until it reports at least
/// `want` registered remote workers.
fn wait_for_workers(ep: &Endpoint, want: u64) {
    let req = JsonValue::object(vec![("cmd", JsonValue::Str("status".to_string()))]);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let resp = request(ep, &req).expect("status round trip");
        let n = resp.get("workers").and_then(JsonValue::as_u64).unwrap_or(0);
        if n >= want {
            return;
        }
        assert!(Instant::now() < deadline, "workers never registered: {n}/{want}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn submit_wait(ep: &Endpoint, spec: &ExperimentSpec) -> JsonValue {
    let req = JsonValue::object(vec![
        ("cmd", JsonValue::Str("submit".to_string())),
        ("manifest", spec.to_json_value()),
        ("wait", JsonValue::Bool(true)),
    ]);
    request(ep, &req).expect("submit round trip")
}

fn shutdown(ep: &Endpoint) {
    let req = JsonValue::object(vec![("cmd", JsonValue::Str("shutdown".to_string()))]);
    let resp = request(ep, &req).expect("shutdown round trip");
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
}

fn assert_done_with_reference(resp: &JsonValue, reference: &str, points: u64) {
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true), "{}", resp.render());
    assert_eq!(resp.get("state").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(resp.get("failed").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(resp.get("points").and_then(JsonValue::as_u64), Some(points));
    assert_eq!(
        resp.get("artifact").and_then(JsonValue::as_str),
        Some(reference),
        "TCP artifact must match the storeless render byte for byte"
    );
}

/// Two concurrent `submit --wait` clients over loopback TCP, executed by
/// two remote worker processes: both attach to one sweep and both get the
/// byte-identical storeless artifact; shutdown closes the TCP listener
/// and unlinks the Unix socket.
#[test]
fn tcp_sweep_with_remote_workers_is_byte_identical() {
    let (server, ep, sock) = spawn_daemon("sweep", None);
    let mut workers = vec![spawn_worker(&ep, &[]), spawn_worker(&ep, &[])];
    wait_for_workers(&ep, 2);

    let spec = small_spec();
    let reference = reference_artifact(&spec);
    let responses: Vec<JsonValue> = {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let ep = ep.clone();
                let spec = spec.clone();
                std::thread::spawn(move || submit_wait(&ep, &spec))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    };
    for resp in &responses {
        assert_done_with_reference(resp, &reference, spec.points.len() as u64);
        assert_eq!(
            resp.get("job").and_then(JsonValue::as_str),
            Some(spec.fingerprint().as_str()),
            "the job id is the manifest fingerprint on TCP too"
        );
    }

    shutdown(&ep);
    let swept = server.join().expect("server thread");
    assert_eq!(swept, 1, "two submits of one manifest are one sweep");
    assert!(!sock.exists(), "clean shutdown removes the socket file");
    let addr = match &ep {
        Endpoint::Tcp(addr) => addr.clone(),
        _ => unreachable!(),
    };
    let refused = TcpStream::connect(&addr);
    assert!(refused.is_err(), "clean shutdown closes the TCP listener");
    for w in &mut workers {
        let _ = w.kill();
        let _ = w.wait();
    }
}

/// A remote worker SIGKILLed mid-job by the crash-once chaos hook: the
/// supervisor quarantines the lost connection, retries on the surviving
/// worker, and the artifact still matches the storeless render exactly.
#[test]
fn a_crashed_remote_worker_is_retried_to_the_identical_artifact() {
    let (server, ep, _sock) = spawn_daemon("chaos", None);
    let spec = small_spec();
    let marker =
        std::env::temp_dir().join(format!("xloops-tcp-crash-once-{}.marker", std::process::id()));
    let _ = std::fs::remove_file(&marker);
    // Both workers are armed with the same marker file: whichever one
    // draws point 1 first crashes (create-new marker semantics fire the
    // hook exactly once across processes), and the retry runs clean on
    // the survivor no matter how dispatch interleaved.
    let chaos = format!("{}:1:{}", spec.fingerprint(), marker.display());
    let mut workers = vec![
        spawn_worker(&ep, &[("XLOOPS_WORKER_CRASH", chaos.clone())]),
        spawn_worker(&ep, &[("XLOOPS_WORKER_CRASH", chaos)]),
    ];
    wait_for_workers(&ep, 2);

    let reference = reference_artifact(&spec);
    let resp = submit_wait(&ep, &spec);
    assert_done_with_reference(&resp, &reference, spec.points.len() as u64);
    assert!(marker.exists(), "the chaos hook must actually have fired");
    let _ = std::fs::remove_file(&marker);

    shutdown(&ep);
    server.join().expect("server thread");
    for w in &mut workers {
        let _ = w.kill();
        let _ = w.wait();
    }
}

/// The whole remote fleet dying mid-sweep must cost throughput, never
/// bytes: a single worker SIGKILLs itself on point 1 and nothing
/// replaces it, so the daemon's dispatcher has to finish the sweep
/// in-process — and the artifact still matches the storeless render.
#[test]
fn a_dead_remote_fleet_degrades_to_in_process_identical_results() {
    let (server, ep, _sock) = spawn_daemon("fleet-death", None);
    let spec = small_spec();
    // No marker file: every attempt on point 1 dies, and since the dead
    // worker is never respawned, the registry stays empty afterwards.
    let chaos = format!("{}:1", spec.fingerprint());
    let mut worker = spawn_worker(&ep, &[("XLOOPS_WORKER_CRASH", chaos)]);
    wait_for_workers(&ep, 1);

    let reference = reference_artifact(&spec);
    let resp = submit_wait(&ep, &spec);
    assert_done_with_reference(&resp, &reference, spec.points.len() as u64);

    shutdown(&ep);
    server.join().expect("server thread");
    let _ = worker.kill();
    let _ = worker.wait();
}

/// Writes one raw line to a fresh TCP connection and returns the parsed
/// first response line — the unauthenticated peer's view of the daemon.
fn raw_roundtrip(addr: &str, line: &str) -> JsonValue {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    conn.write_all(line.as_bytes()).expect("write");
    conn.write_all(b"\n").expect("write newline");
    let mut reader = BufReader::new(conn);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    JsonValue::parse(&resp).expect("daemon responses are JSON")
}

fn assert_refused_exit_2(doc: &JsonValue, needle: &str) {
    assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(false), "{}", doc.render());
    let error = doc.get("error").expect("refusals carry an error doc");
    let msg = error.get("message").and_then(JsonValue::as_str).unwrap_or("");
    assert!(msg.contains(needle), "expected {needle:?} in {msg:?}");
    assert_eq!(error.get("exit_code").and_then(JsonValue::as_f64), Some(2.0));
}

/// The TCP gate: wrong protocol version, wrong token, and a missing
/// handshake are all typed exit-2 refusals (version checked first), and a
/// wrong-token `xloops worker --connect` child exits with code 2. The
/// Unix socket stays handshake-free for same-host clients.
#[test]
fn wrong_version_or_token_tcp_peers_are_refused_with_exit_2() {
    let (server, ep, sock) = spawn_daemon("gate", Some("s3cret"));
    let addr = match &ep {
        Endpoint::Tcp(addr) => addr.clone(),
        _ => unreachable!(),
    };

    // Version is checked before the token: a correct secret cannot mask
    // a protocol mismatch.
    let resp = raw_roundtrip(&addr, r#"{"cmd":"hello","v":99,"token":"s3cret"}"#);
    assert_refused_exit_2(&resp, "protocol version mismatch");
    let resp = raw_roundtrip(&addr, r#"{"cmd":"hello","v":1,"token":"wrong"}"#);
    assert_refused_exit_2(&resp, "bad or missing token");
    let resp = raw_roundtrip(&addr, r#"{"cmd":"ping"}"#);
    assert_refused_exit_2(&resp, "hello");

    // A worker dialing with the wrong shared secret is refused at
    // register time and surfaces the protocol exit code itself.
    let mut bad = spawn_worker(&ep, &[("XLOOPS_TOKEN", "wrong".to_string())]);
    let status = bad.wait().expect("worker exits");
    assert_eq!(status.code(), Some(2), "a refused register is a typed exit-2 failure");

    // The right secret registers fine; same-host Unix clients never
    // need the handshake at all.
    let mut good = spawn_worker(&ep, &[("XLOOPS_TOKEN", "s3cret".to_string())]);
    let unix_ep = Endpoint::unix(&sock);
    wait_for_workers(&unix_ep, 1);

    shutdown(&unix_ep);
    server.join().expect("server thread");
    let _ = good.kill();
    let _ = good.wait();
}
