//! Differential oracle for the event-driven LPSU stepper.
//!
//! The event-driven scheduler skips runs of cycles in which no lane can
//! make progress. That is a pure simulation-speed transformation: it must
//! never change *what* the model computes. This suite pins that claim by
//! executing every scannable `xloop` of every Table II kernel under both
//! steppers and asserting the complete observable outcome is identical —
//! cycle count, committed iterations, serial-equivalent live-outs, the
//! full Figure 6 stall breakdown, and the resulting memory image.
//!
//! The loops are harvested by running the functional interpreter and
//! snapshotting architectural state (live-in registers + memory) the
//! first time each `xloop` pc is reached, so each loop is exercised from
//! a realistic entry state rather than a synthetic one.

use xloops::func::Interp;
use xloops::isa::Reg;
use xloops::kernels::{by_name, table2, Kernel};
use xloops::lpsu::{scan, Lpsu, LpsuConfig, Stepper};
use xloops::mem::{Cache, CacheConfig, Memory};

/// Architectural state captured at the first encounter of an `xloop` pc.
struct LoopSite {
    pc: u32,
    live_ins: [u32; 32],
    mem: Memory,
}

/// Runs the kernel functionally and snapshots state at each distinct
/// `xloop` pc (first encounter only — re-evaluations at the loop back
/// edge revisit the same pc every iteration).
fn harvest(kernel: &Kernel) -> Vec<LoopSite> {
    let program = &kernel.program;
    let mut mem = Memory::new();
    kernel.init_memory(&mut mem);
    let mut cpu = Interp::new();
    let mut seen = Vec::new();
    let mut sites = Vec::new();
    for _ in 0..50_000_000u64 {
        let pc = cpu.pc();
        let at_new_xloop = program.fetch(pc).is_some_and(|i| i.is_xloop() && !seen.contains(&pc));
        if at_new_xloop {
            seen.push(pc);
            let mut live_ins = [0u32; 32];
            for r in Reg::all() {
                live_ins[r.index()] = cpu.reg(r);
            }
            sites.push(LoopSite { pc, live_ins, mem: mem.clone() });
        }
        match cpu.step(program, &mut mem) {
            Ok(xloops::func::Step::Exit) => break,
            Ok(_) => {}
            Err(e) => panic!("{}: functional run failed: {e:?}", kernel.name),
        }
    }
    sites
}

/// Executes one harvested loop under `stepper` and returns everything an
/// external observer can see: the result record and the memory image.
fn run_site(
    site: &LoopSite,
    kernel: &Kernel,
    cfg: LpsuConfig,
    stepper: Stepper,
    max_iters: Option<u64>,
) -> Option<(xloops::lpsu::LpsuResult, Vec<u32>)> {
    let s = scan(&kernel.program, site.pc, site.live_ins, &cfg).ok()?;
    let mut mem = site.mem.clone();
    let mut dcache = Cache::new(CacheConfig::l1_default());
    let res = Lpsu::new(cfg)
        .execute_stepper(stepper, &s, &mut mem, &mut dcache, max_iters)
        .unwrap_or_else(|e| panic!("{} pc={:#x} {stepper:?}: {e}", kernel.name, site.pc));
    // The kernels' working set lives in 0x1000..0x7000 (see
    // tests/cross_model.rs); comparing the whole span catches any stray
    // store, not just the verified outputs.
    Some((res, mem.read_words(0x1000, (0x7000 - 0x1000) / 4)))
}

fn assert_identical(kernel: &Kernel, cfg: LpsuConfig, max_iters: Option<u64>) {
    for site in harvest(kernel) {
        let naive = run_site(&site, kernel, cfg, Stepper::Naive, max_iters);
        let event = run_site(&site, kernel, cfg, Stepper::EventDriven, max_iters);
        match (naive, event) {
            (None, None) => {} // loop not scannable under this config
            (Some((nr, nm)), Some((er, em))) => {
                assert_eq!(
                    nr,
                    er,
                    "{} pc={:#x} cfg={}: result diverged",
                    kernel.name,
                    site.pc,
                    cfg.name()
                );
                assert_eq!(
                    nm,
                    em,
                    "{} pc={:#x} cfg={}: memory image diverged",
                    kernel.name,
                    site.pc,
                    cfg.name()
                );
            }
            _ => panic!(
                "{} pc={:#x} cfg={}: steppers disagree on scannability",
                kernel.name,
                site.pc,
                cfg.name()
            ),
        }
    }
}

/// Every kernel, paper-primary LPSU: the headline oracle.
#[test]
fn event_driven_matches_naive_on_every_kernel() {
    for kernel in table2() {
        assert_identical(kernel, LpsuConfig::default4(), None);
    }
}

/// Every kernel with vertical multithreading (two contexts per lane) —
/// the rotation order and skipped-cycle attribution differ per context.
#[test]
fn event_driven_matches_naive_with_multithreading() {
    for kernel in table2() {
        assert_identical(kernel, LpsuConfig::default4().with_multithreading(), None);
    }
}

/// Every kernel with doubled shared resources (`+r`): two memory ports
/// and two LLFUs change which cycles the port-exhaustion fast path and
/// LLFU wakeups fire on.
#[test]
fn event_driven_matches_naive_with_double_resources() {
    for kernel in table2() {
        assert_identical(kernel, LpsuConfig::default4().with_double_resources(), None);
    }
}

/// An early `max_iters` cut-off exercises the LMU's drain path, where the
/// event scheduler must not skip past the final partial commit.
#[test]
fn event_driven_matches_naive_with_iteration_cap() {
    for kernel in table2() {
        assert_identical(kernel, LpsuConfig::default4(), Some(7));
    }
}

/// A representative kernel per dependence pattern, across the rest of the
/// design space: lane counts, CIB latency, cross-lane forwarding, big
/// LSQs, and combinations.
#[test]
fn event_driven_matches_naive_across_design_space() {
    let representatives =
        ["rgb2cmyk-uc", "dither-or", "ksack-sm-om", "mm-orm", "hsort-ua", "bfs-uc-db"];
    let d = LpsuConfig::default4;
    let configs = [
        d().with_lanes(2),
        d().with_lanes(8),
        d().with_cib_latency(4),
        d().with_cross_lane_forwarding(),
        d().with_big_lsq(),
        d().with_lanes(8).with_multithreading().with_double_resources(),
        d().with_cross_lane_forwarding().with_cib_latency(4).with_big_lsq(),
    ];
    for name in representatives {
        let kernel = by_name(name).expect("representative kernel exists");
        for cfg in configs {
            assert_identical(kernel, cfg, None);
        }
    }
}
