//! Cross-model consistency: for every kernel, every engine (functional
//! interpreter, in-order, both out-of-order widths, and the LPSU under
//! multiple configurations) must leave the identical architectural memory
//! image, and the timing relationships that the whole evaluation rests on
//! must hold (specialized ≤ traditional on the in-order core for `uc`
//! loops, wider out-of-order cores never slower, etc.).

use xloops::func::Interp;
use xloops::kernels::{by_name, table2};
use xloops::lpsu::LpsuConfig;
use xloops::mem::Memory;
use xloops::sim::{ExecMode, System, SystemConfig};

/// Reference memory image from the functional interpreter.
fn golden(kernel: &xloops::kernels::Kernel) -> Memory {
    kernel.run_functional().expect("functional run verifies")
}

/// Kernels whose results are execution-order-independent *and* serial
/// under our deterministic engines (everything except the `uc` kernels
/// with AMO races, whose verification is order-insensitive by design).
fn word_exact(kernel: &xloops::kernels::Kernel) -> bool {
    !matches!(kernel.name, "bfs-uc-db" | "qsort-uc-db")
}

#[test]
fn every_engine_produces_the_golden_memory_image() {
    for kernel in table2() {
        let gold = golden(kernel);
        let configs = [
            (SystemConfig::io(), ExecMode::Traditional),
            (SystemConfig::ooo2(), ExecMode::Traditional),
            (SystemConfig::ooo4(), ExecMode::Traditional),
            (SystemConfig::io_x(), ExecMode::Specialized),
        ];
        for (config, mode) in configs {
            let mut sys = System::new(config);
            kernel.init_memory(sys.mem_mut());
            sys.run(&kernel.program, mode).expect("runs");
            kernel.verify(sys.mem()).unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            if word_exact(kernel) {
                // Stronger than verify(): the *whole* touched image matches
                // the functional model, not just the checked outputs.
                for addr in (0x1000..0x7000u32).step_by(4) {
                    assert_eq!(
                        sys.load_word(addr),
                        gold.read_u32(addr),
                        "{} {:?} at {addr:#x}",
                        kernel.name,
                        mode
                    );
                }
            }
        }
    }
}

#[test]
fn wider_ooo_cores_are_never_slower_traditionally() {
    for kernel in table2() {
        let mut cycles = Vec::new();
        for config in [SystemConfig::io(), SystemConfig::ooo2(), SystemConfig::ooo4()] {
            let mut sys = System::new(config);
            kernel.init_memory(sys.mem_mut());
            let stats = sys.run(&kernel.program, ExecMode::Traditional).expect("runs");
            cycles.push(stats.cycles);
        }
        assert!(
            cycles[1] <= cycles[0],
            "{}: ooo/2 ({}) slower than io ({})",
            kernel.name,
            cycles[1],
            cycles[0]
        );
        // ooo/4 vs ooo/2 can tie on serial chains but never regress much.
        assert!(
            cycles[2] as f64 <= cycles[1] as f64 * 1.02,
            "{}: ooo/4 ({}) slower than ooo/2 ({})",
            kernel.name,
            cycles[2],
            cycles[1]
        );
    }
}

#[test]
fn specialization_always_helps_the_inorder_core() {
    // The paper's headline claim for io+x, kernel by kernel.
    for kernel in table2() {
        let mut trad = System::new(SystemConfig::io());
        kernel.init_memory(trad.mem_mut());
        let t = trad.run(&kernel.program, ExecMode::Traditional).expect("runs").cycles;

        let mut spec = System::new(SystemConfig::io_x());
        kernel.init_memory(spec.mem_mut());
        let s = spec.run(&kernel.program, ExecMode::Specialized).expect("runs").cycles;

        assert!(s < t, "{}: specialized {s} not faster than traditional {t} on io", kernel.name);
    }
}

#[test]
fn lane_count_never_changes_results() {
    for kernel in table2() {
        if !word_exact(kernel) {
            continue;
        }
        let mut images: Vec<Vec<u32>> = Vec::new();
        for lanes in [1, 2, 4, 8] {
            let cfg = SystemConfig::io_x().with_lpsu(LpsuConfig::default4().with_lanes(lanes));
            let mut sys = System::new(cfg);
            kernel.init_memory(sys.mem_mut());
            sys.run(&kernel.program, ExecMode::Specialized).expect("runs");
            images.push((0x1000..0x7000u32).step_by(4).map(|a| sys.load_word(a)).collect());
        }
        for (i, img) in images.iter().enumerate().skip(1) {
            assert_eq!(img, &images[0], "{}: lane count {} diverged", kernel.name, [1, 2, 4, 8][i]);
        }
    }
}

#[test]
fn functional_interpreter_is_deterministic() {
    let kernel = by_name("viterbi-uc").expect("kernel exists");
    let run = || {
        let mut mem = Memory::new();
        kernel.init_memory(&mut mem);
        let mut cpu = Interp::new();
        let stats = cpu.run(&kernel.program, &mut mem, 100_000_000).expect("runs");
        (stats.instret, mem.read_u32(0x1600))
    };
    assert_eq!(run(), run());
}

#[test]
fn energy_scales_with_work_not_configuration_luck() {
    // Same kernel, same engine: more lanes never changes total LPSU
    // instructions retired (work conservation), only timing.
    let kernel = by_name("rgb2cmyk-uc").expect("kernel exists");
    let mut instret = Vec::new();
    for lanes in [2, 4, 8] {
        let cfg = SystemConfig::io_x().with_lpsu(LpsuConfig::default4().with_lanes(lanes));
        let mut sys = System::new(cfg);
        kernel.init_memory(sys.mem_mut());
        let stats = sys.run(&kernel.program, ExecMode::Specialized).expect("runs");
        instret.push(stats.lpsu.instret);
    }
    assert_eq!(instret[0], instret[1]);
    assert_eq!(instret[1], instret[2]);
}
