//! Degradation oracle: graceful LPSU→GPP fallback is *observably* free.
//!
//! For every Table II kernel, a supervised run whose LPSU faults on every
//! specialized attempt must (a) still complete, (b) degrade each loop to
//! traditional GPP execution, and (c) end in architectural state — the
//! full register file and the entire memory image — byte-identical to a
//! clean traditional run. That is the XLOOPS contract from the paper: the
//! GPP is always a valid implementation of an `xloop`, so dropping the
//! accelerator can lose performance but never answers.
//!
//! The suite runs under both steppers: the default build exercises the
//! event-driven engine, and `--features xloops-lpsu/naive-stepper` routes
//! the same assertions through the naive oracle stepper.

use xloops::kernels::{by_name, table2, Kernel};
use xloops::mem::Memory;
use xloops::sim::{
    ExecMode, FaultKind, FaultPlan, SimError, Supervisor, SupervisorConfig, System, SystemConfig,
};

/// Clean traditional run on the plain in-order core: the reference
/// architectural outcome degradation must reproduce.
fn traditional_outcome(kernel: &Kernel) -> ([u32; 32], Memory) {
    let mut sys = System::new(SystemConfig::io());
    kernel.init_memory(sys.mem_mut());
    sys.run(&kernel.program, ExecMode::Traditional)
        .unwrap_or_else(|e| panic!("{}: clean traditional run failed: {e}", kernel.name));
    (sys.reg_file(), sys.mem().clone())
}

/// Supervised run with every specialized attempt faulting at cycle 1 —
/// before any loop can commit — so every `xloop` pc is retried, then
/// degraded. Returns the final architectural state and the run stats.
fn degraded_outcome(kernel: &Kernel, mode: ExecMode) -> ([u32; 32], Memory, u64, u64) {
    let mut sys = System::new(SystemConfig::io_x());
    kernel.init_memory(sys.mem_mut());
    let stats = Supervisor::new(&mut sys, SupervisorConfig::protected())
        .with_plan(FaultPlan::persistent_spurious(1))
        .run(&kernel.program, mode)
        .unwrap_or_else(|e| panic!("{}: degraded {mode:?} run failed: {e}", kernel.name));
    (sys.reg_file(), sys.mem().clone(), stats.supervisor.degraded, stats.xloops_specialized)
}

/// Every kernel completes under a persistent LPSU fault, and the final
/// register file and memory image are byte-identical to a clean
/// traditional run.
#[test]
fn every_kernel_degrades_to_the_exact_traditional_outcome() {
    for kernel in table2() {
        let (clean_regs, clean_mem) = traditional_outcome(kernel);
        let (regs, mem, degraded, specialized) = degraded_outcome(kernel, ExecMode::Specialized);

        assert!(degraded >= 1, "{}: no loop was degraded", kernel.name);
        assert_eq!(specialized, 0, "{}: a faulting LPSU phase still committed", kernel.name);
        kernel.verify(&mem).unwrap_or_else(|e| panic!("{}: verify failed: {e}", kernel.name));
        assert_eq!(regs, clean_regs, "{}: register file diverged from traditional", kernel.name);
        assert_eq!(
            mem.first_difference(&clean_mem),
            None,
            "{}: memory image diverged from traditional",
            kernel.name
        );
    }
}

/// Adaptive mode recovers the same way: the profiling phase's LPSU
/// attempts fault, the supervisor degrades, and the outcome is still the
/// traditional one.
#[test]
fn adaptive_mode_degrades_cleanly_too() {
    for name in ["rgb2cmyk-uc", "mm-orm", "hsort-ua"] {
        let kernel = by_name(name).expect("representative kernel exists");
        let (clean_regs, clean_mem) = traditional_outcome(kernel);
        let (regs, mem, degraded, _) = degraded_outcome(kernel, ExecMode::Adaptive);
        assert!(degraded >= 1, "{name}: no loop was degraded");
        assert_eq!(regs, clean_regs, "{name}: register file diverged");
        assert_eq!(mem.first_difference(&clean_mem), None, "{name}: memory diverged");
    }
}

/// Without supervision the same fault plan is fatal, with the fault-class
/// exit code — degradation is a supervisor policy, not a silent default.
#[test]
fn unsupervised_faults_stay_fatal() {
    let kernel = by_name("rgb2cmyk-uc").expect("kernel exists");
    let mut sys = System::new(SystemConfig::io_x());
    kernel.init_memory(sys.mem_mut());
    let err = Supervisor::new(&mut sys, SupervisorConfig::off())
        .with_plan(FaultPlan::once(FaultKind::Spurious { at_cycle: 1 }))
        .run(&kernel.program, ExecMode::Specialized)
        .unwrap_err();
    assert!(matches!(err, SimError::Injected { .. }), "got {err:?}");
    assert_eq!(err.exit_code(), 4);
}

/// A transient (single-shot) fault is recovered by a same-mode retry and
/// the specialized run still matches its own clean specialized outcome —
/// recovery does not silently fall back when it does not need to.
#[test]
fn transient_faults_recover_without_degrading() {
    for name in ["rgb2cmyk-uc", "dither-or", "ksack-sm-om"] {
        let kernel = by_name(name).expect("kernel exists");

        let mut clean = System::new(SystemConfig::io_x());
        kernel.init_memory(clean.mem_mut());
        clean.run(&kernel.program, ExecMode::Specialized).expect("clean specialized run");

        let mut sys = System::new(SystemConfig::io_x());
        kernel.init_memory(sys.mem_mut());
        let stats = Supervisor::new(&mut sys, SupervisorConfig::protected())
            .with_plan(FaultPlan::once(FaultKind::Spurious { at_cycle: 3 }))
            .run(&kernel.program, ExecMode::Specialized)
            .unwrap_or_else(|e| panic!("{name}: supervised run failed: {e}"));

        assert_eq!(stats.supervisor.degraded, 0, "{name}: transient fault degraded a loop");
        assert_eq!(stats.supervisor.retries, 1, "{name}");
        assert!(stats.xloops_specialized >= 1, "{name}: retry did not reach the LPSU");
        assert_eq!(
            sys.mem().first_difference(clean.mem()),
            None,
            "{name}: retried run's memory diverged from the clean specialized run"
        );
    }
}
