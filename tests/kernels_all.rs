//! Full-matrix integration tests: every Table II / Table IV kernel, on
//! every GPP class, in every execution mode, verified against the golden
//! references. This is the repository's core correctness claim: the same
//! XLOOPS binary produces identical (serial-equivalent) results whether it
//! runs traditionally, specialized on the LPSU, or adaptively.

use xloops::kernels::{table2, table4, Kernel};
use xloops::sim::{ExecMode, System, SystemConfig};

fn run_one(kernel: &Kernel, config: SystemConfig, mode: ExecMode) {
    let mut sys = System::new(config);
    kernel.init_memory(sys.mem_mut());
    let stats = sys
        .run(&kernel.program, mode)
        .unwrap_or_else(|e| panic!("{} on {} ({mode:?}): {e}", kernel.name, sys.config().name()));
    kernel
        .verify(sys.mem())
        .unwrap_or_else(|e| panic!("{} on {} ({mode:?}): {e}", kernel.name, sys.config().name()));
    assert!(stats.cycles > 0);
}

fn run_mode(kernels: &[Kernel], config: SystemConfig, mode: ExecMode) {
    for k in kernels {
        run_one(k, config, mode);
    }
}

#[test]
fn table2_traditional_io() {
    run_mode(table2(), SystemConfig::io(), ExecMode::Traditional);
}

#[test]
fn table2_traditional_ooo2() {
    run_mode(table2(), SystemConfig::ooo2(), ExecMode::Traditional);
}

#[test]
fn table2_traditional_ooo4() {
    run_mode(table2(), SystemConfig::ooo4(), ExecMode::Traditional);
}

#[test]
fn table2_specialized_io_x() {
    run_mode(table2(), SystemConfig::io_x(), ExecMode::Specialized);
}

#[test]
fn table2_specialized_ooo2_x() {
    run_mode(table2(), SystemConfig::ooo2_x(), ExecMode::Specialized);
}

#[test]
fn table2_specialized_ooo4_x() {
    run_mode(table2(), SystemConfig::ooo4_x(), ExecMode::Specialized);
}

#[test]
fn table2_adaptive_io_x() {
    run_mode(table2(), SystemConfig::io_x(), ExecMode::Adaptive);
}

#[test]
fn table2_adaptive_ooo4_x() {
    run_mode(table2(), SystemConfig::ooo4_x(), ExecMode::Adaptive);
}

#[test]
fn table4_variants_all_modes() {
    let kernels = table4();
    run_mode(kernels, SystemConfig::io(), ExecMode::Traditional);
    run_mode(kernels, SystemConfig::io_x(), ExecMode::Specialized);
    run_mode(kernels, SystemConfig::ooo2_x(), ExecMode::Specialized);
    run_mode(kernels, SystemConfig::ooo4_x(), ExecMode::Adaptive);
}

#[test]
fn specialized_runs_actually_use_the_lpsu() {
    // Guard against silently falling back to traditional execution: each
    // Table II kernel must specialize at least one xloop instance.
    for k in table2() {
        let mut sys = System::new(SystemConfig::io_x());
        k.init_memory(sys.mem_mut());
        let stats = sys.run(&k.program, ExecMode::Specialized).expect("runs");
        assert!(
            stats.xloops_specialized > 0,
            "{} never reached the LPSU (fallbacks: {})",
            k.name,
            stats.xloops_fallback
        );
        assert!(stats.lpsu.iterations > 0, "{} committed no LPSU iterations", k.name);
    }
}

#[test]
fn design_space_configs_stay_correct() {
    // Figure 9's LPSU variants must not change results, only timing.
    use xloops::lpsu::LpsuConfig;
    let variants = [
        LpsuConfig::default4().with_multithreading(),
        LpsuConfig::default4().with_lanes(8),
        LpsuConfig::default4().with_lanes(8).with_double_resources(),
        LpsuConfig::default4().with_lanes(8).with_double_resources().with_big_lsq(),
        LpsuConfig::default4().with_lanes(2),
    ];
    for k in table2() {
        for lpsu in variants {
            let mut sys = System::new(SystemConfig::ooo4_x().with_lpsu(lpsu));
            k.init_memory(sys.mem_mut());
            sys.run(&k.program, ExecMode::Specialized)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", k.name, lpsu.name()));
            kverify(k, &sys, &lpsu.name());
        }
    }
}

fn kverify(k: &Kernel, sys: &System, tag: &str) {
    k.verify(sys.mem()).unwrap_or_else(|e| panic!("{} on {tag}: {e}", k.name));
}
