//! Single-source guard for the wire protocol: every NDJSON frame that
//! crosses a process boundary must go through `bench::proto`'s
//! `FrameReader`/`FrameWriter`. This grep-style test fails the build if a
//! hand-rolled line loop (`read_line`, `read_until`, or a raw
//! `BufReader`) reappears in any of the transport-adjacent modules — the
//! daemon, the worker halves, the scheduler, the transport layer, or the
//! CLI. Three hand-rolled loops drifting apart is exactly the bug class
//! the unified codec retired; this test keeps it retired.

use std::path::Path;

/// Framing primitives that only `proto.rs` may touch.
const BANNED: &[&str] = &["read_line", "read_until", "BufReader"];

/// The modules that sit next to the wire and are not allowed to frame.
const GUARDED: &[&str] = &[
    "crates/bench/src/serve.rs",
    "crates/bench/src/worker.rs",
    "crates/bench/src/sched.rs",
    "crates/bench/src/transport.rs",
    "src/cli.rs",
];

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn ndjson_framing_lives_only_in_the_proto_module() {
    for rel in GUARDED {
        let path = workspace_root().join(rel);
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        for token in BANNED {
            for (i, line) in source.lines().enumerate() {
                assert!(
                    !line.contains(token),
                    "{rel}:{}: `{token}` outside bench::proto — route this frame \
                     through proto::FrameReader/FrameWriter instead:\n    {}",
                    i + 1,
                    line.trim()
                );
            }
        }
    }
}

/// The inverse sanity check: the guard only means something while the
/// codec itself still uses the primitives it monopolizes.
#[test]
fn the_proto_module_actually_owns_the_framing_primitives() {
    let path = workspace_root().join("crates/bench/src/proto.rs");
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    // The codec frames with `fill_buf`/`consume` rather than
    // `read_until` so the MAX_FRAME cap is enforced while bytes arrive,
    // not after a newline finally shows up.
    assert!(
        source.contains("BufReader") && source.contains("fill_buf") && source.contains("MAX_FRAME"),
        "proto.rs no longer frames with a capped BufReader loop; update this guard \
         alongside the codec"
    );
}
