//! Crash-isolation oracle for the multi-process worker pool: a worker
//! that is SIGKILLed mid-job, wedges past its deadline, or cannot even
//! be spawned must never change artifact bytes or wedge the sweep.
//!
//! Each scenario drives the real [`Scheduler`] with a [`PoolConfig`]
//! pointing at the actual `xloops` binary (via `CARGO_BIN_EXE_xloops`),
//! arming the test-only chaos hooks through the pool's child
//! environment so this process's environment stays untouched:
//!
//! * `XLOOPS_WORKER_CRASH=FP:INDEX:MARKER` — the worker `kill -9`s
//!   itself once (marker-file once-semantics); the retry must land the
//!   byte-identical result.
//! * `XLOOPS_WORKER_CRASH=FP:INDEX` — every attempt dies; after
//!   `max_retries` the job must end `Failed(WorkerLost)` with the
//!   attempt count and accumulated backoff in the diagnosis.
//! * `XLOOPS_WORKER_WEDGE=FP:INDEX` — the worker hangs but keeps
//!   heartbeating, so only the per-job deadline can reap it; the job
//!   must end `Failed(Timeout)` and the sweep must still complete.
//! * an unspawnable worker executable — the pool degrades to in-process
//!   execution with identical results.
//!
//! Byte-identity is asserted on the rendered per-point result documents:
//! artifacts are a pure function of those bytes, so equality here is
//! equality of every downstream `results/*.txt`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use xloops::bench::job::JobState;
use xloops::bench::manifest::{ExperimentSpec, PointResult};
use xloops::bench::sched::Scheduler;
use xloops::bench::worker::PoolConfig;
use xloops::sim::{RunOptions, SimError};
use xloops::stats::JsonValue;

/// A three-point slice of Table II: small enough to keep every scenario
/// fast, real enough that each point is a full kernel simulation.
fn small_spec() -> ExperimentSpec {
    let mut spec = xloops::bench::experiments::spec_by_name("table2").expect("table2 spec exists");
    spec.points.truncate(3);
    spec.sections.clear();
    spec
}

/// A pool aimed at the real CLI binary, with the chaos hooks riding the
/// child environment and a short backoff base so retries stay fast.
fn pool(env: Vec<(String, String)>) -> PoolConfig {
    let mut cfg = PoolConfig::new(2);
    cfg.exe = PathBuf::from(env!("CARGO_BIN_EXE_xloops"));
    cfg.backoff_base = Duration::from_millis(2);
    cfg.env = env;
    cfg
}

/// Runs `spec` through the scheduler (pooled when `cfg` is `Some`) and
/// returns the outcomes of its single work item.
fn sweep(spec: &ExperimentSpec, cfg: Option<PoolConfig>) -> Vec<xloops::bench::sched::JobOutcome> {
    let work = vec![(spec, (0..spec.points.len()).collect::<Vec<_>>())];
    let mut swept = Scheduler::new(RunOptions::default(), None).with_pool(cfg).run(&work);
    swept.outcomes.remove(0)
}

/// The byte-exact per-point documents an artifact render consumes.
fn rendered(outcomes: &[xloops::bench::sched::JobOutcome]) -> Vec<String> {
    outcomes.iter().map(|o| o.result.to_json_value().render()).collect()
}

fn exit_code(doc: &JsonValue) -> Option<f64> {
    doc.get("exit_code").and_then(JsonValue::as_f64)
}

/// kill -9 mid-job: the crash fires exactly once (marker-file
/// semantics), the supervisor reaps the worker and retries on a fresh
/// one, and every result byte matches the in-process reference.
#[test]
fn a_sigkilled_worker_is_retried_to_the_identical_artifact() {
    let spec = small_spec();
    let marker =
        std::env::temp_dir().join(format!("xloops-crash-once-{}.marker", std::process::id()));
    let _ = std::fs::remove_file(&marker);

    let chaos = format!("{}:1:{}", spec.fingerprint(), marker.display());
    let cfg = pool(vec![("XLOOPS_WORKER_CRASH".to_string(), chaos)]);
    let pooled = sweep(&spec, Some(cfg));
    let reference = sweep(&spec, None);

    assert!(marker.exists(), "the chaos hook must actually have fired");
    let _ = std::fs::remove_file(&marker);
    for (i, o) in pooled.iter().enumerate() {
        assert!(matches!(o.state, JobState::Done(_)), "point {i} must recover: {:?}", o.state);
    }
    assert_eq!(rendered(&pooled), rendered(&reference), "retried results must be byte-identical");
}

/// Persistent crash: after `max_retries` the job lands in the typed
/// terminal failure with exit code 6, the attempt count and accumulated
/// seeded backoff recorded, and the rest of the sweep unharmed.
#[test]
fn a_persistently_crashing_job_is_quarantined_with_a_typed_error_doc() {
    let spec = small_spec();
    let mut cfg =
        pool(vec![("XLOOPS_WORKER_CRASH".to_string(), format!("{}:1", spec.fingerprint()))]);
    cfg.max_retries = 2;
    let outcomes = sweep(&spec, Some(cfg));

    for (i, o) in outcomes.iter().enumerate() {
        if i == 1 {
            continue;
        }
        assert!(matches!(o.state, JobState::Done(_)), "point {i} must survive: {:?}", o.state);
    }
    let sick = &outcomes[1];
    match &sick.state {
        JobState::Failed(SimError::WorkerLost { attempts, backoff_ms, .. }) => {
            assert_eq!(*attempts, 3, "max_retries=2 means exactly three attempts");
            assert!(*backoff_ms > 0, "retries must have waited out a backoff");
        }
        other => panic!("expected Failed(WorkerLost), got {other:?}"),
    }
    let doc = sick.to_error_doc().expect("a failed outcome carries an error doc");
    assert_eq!(exit_code(&doc), Some(6.0), "{}", doc.render());
    let message = sick.result.error.as_deref().expect("diagnosis attached to the result");
    assert!(message.contains("worker lost"), "{message}");
    assert!(message.contains("3 attempt(s)"), "{message}");
}

/// A wedged worker keeps heartbeating, so only the per-job deadline can
/// catch it: the job must end `Failed(Timeout)` with exit code 7 and the
/// sweep must complete instead of hanging.
#[test]
fn a_wedged_job_expires_on_its_deadline_and_the_sweep_completes() {
    let spec = small_spec();
    let mut cfg =
        pool(vec![("XLOOPS_WORKER_WEDGE".to_string(), format!("{}:0", spec.fingerprint()))]);
    cfg.job_timeout = Some(Duration::from_millis(300));
    cfg.max_retries = 1;
    let t = Instant::now();
    let outcomes = sweep(&spec, Some(cfg));
    assert!(t.elapsed() < Duration::from_secs(60), "sweep must not wedge: {:?}", t.elapsed());

    let sick = &outcomes[0];
    match &sick.state {
        JobState::Failed(SimError::Timeout { timeout_ms, attempts }) => {
            assert_eq!(*timeout_ms, 300);
            assert_eq!(*attempts, 2, "max_retries=1 means exactly two attempts");
        }
        other => panic!("expected Failed(Timeout), got {other:?}"),
    }
    let doc = sick.to_error_doc().expect("a timed-out outcome carries an error doc");
    assert_eq!(exit_code(&doc), Some(7.0), "{}", doc.render());
    for (i, o) in outcomes.iter().enumerate().skip(1) {
        assert!(matches!(o.state, JobState::Done(_)), "point {i} must survive: {:?}", o.state);
    }
}

/// When workers cannot spawn at all, the scheduler degrades to
/// in-process execution — slower, never wrong: every point completes
/// and the result bytes match the reference exactly.
#[test]
fn an_unspawnable_worker_degrades_to_in_process_identical_results() {
    let spec = small_spec();
    let mut cfg = pool(Vec::new());
    cfg.exe = PathBuf::from("/nonexistent/xloops-no-such-worker");
    let degraded = sweep(&spec, Some(cfg));
    let reference = sweep(&spec, None);

    for (i, o) in degraded.iter().enumerate() {
        assert!(matches!(o.state, JobState::Done(_)), "point {i} must complete: {:?}", o.state);
    }
    assert_eq!(rendered(&degraded), rendered(&reference), "degraded route must match bytes");
}

/// A pure `PointResult` placeholder sanity check so a future refactor
/// cannot silently let supervision diagnoses leak into stored artifacts:
/// failed points carry the error in the document, not in the stats.
#[test]
fn failure_documents_carry_the_diagnosis_out_of_band() {
    let spec = small_spec();
    let mut cfg =
        pool(vec![("XLOOPS_WORKER_CRASH".to_string(), format!("{}:2", spec.fingerprint()))]);
    cfg.max_retries = 0;
    let outcomes = sweep(&spec, Some(cfg));
    let sick = &outcomes[2];
    let doc = sick.result.to_json_value();
    let err = doc.get("error").and_then(JsonValue::as_str).expect("error field present");
    assert!(err.contains("worker lost"), "{err}");
    let round = PointResult::from_json_value(&doc).expect("failure docs round-trip");
    assert_eq!(round.error.as_deref(), Some(err), "diagnosis survives the round trip");
}
