//! Guard: instruction *semantics* live in exactly one place.
//!
//! The shared architectural-state layer (`xloops-func`'s `semantics`
//! module) is the only code allowed to interpret what an instruction
//! *does*; the timing engines consume its `Effect`/`EffectClass` and
//! decide only *when* things happen. This test greps the timing-engine
//! sources for the `Instr::` variant-match token, so a reintroduced
//! private semantics match fails CI instead of silently forking behavior.
//!
//! Deliberately out of scope:
//! * `crates/func/src/semantics.rs` — the one sanctioned interpreter.
//! * `crates/lpsu/src/scan.rs` — the scan phase *classifies* instructions
//!   (which registers form CIRs, which bodies are executable) without
//!   executing them; structural matching there is not semantics.

use std::fs;
use std::path::Path;

/// Timing-engine sources that must stay free of instruction-variant
/// matches (and of `Instr::` in any form, including doc comments — keep
/// prose in those files variant-free so the check stays a simple grep).
const BANNED_FILES: &[&str] = &[
    "crates/lpsu/src/engine.rs",
    "crates/gpp/src/core.rs",
    "crates/gpp/src/inorder.rs",
    "crates/gpp/src/ooo.rs",
];

#[test]
fn timing_engines_contain_no_instruction_semantics() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in BANNED_FILES {
        let path = root.join(rel);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let hits: Vec<_> = text
            .lines()
            .enumerate()
            .filter(|(_, line)| line.contains("Instr::"))
            .map(|(i, line)| format!("  {rel}:{}: {}", i + 1, line.trim()))
            .collect();
        assert!(
            hits.is_empty(),
            "instruction semantics leaked back into a timing engine \
             (match on EffectClass instead, or extend xloops-func):\n{}",
            hits.join("\n")
        );
    }
}

#[test]
fn the_sanctioned_interpreter_exists_and_matches_instructions() {
    // Sanity check on the guard itself: the shared semantics module is
    // where the `Instr::` matches actually are. If this ever fails the
    // grep above is checking the wrong universe.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(root.join("crates/func/src/semantics.rs")).unwrap();
    assert!(
        text.matches("Instr::").count() >= 10,
        "semantics module no longer matches instruction variants — \
         did the interpreter move? Update BANNED_FILES' rationale."
    );
}
