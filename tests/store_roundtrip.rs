//! End-to-end test of the durable result store against the committed
//! artifacts: a cold Figure 9 sweep populates the store, a warm rerun is
//! served entirely from disk, and both render `results/fig9.txt` byte
//! for byte. Also pins the cache-key discipline (changing [`RunOptions`]
//! must miss), corruption recovery (a damaged entry is a miss that gets
//! rewritten, never a panic), and the binary shard format's size bound.

use xloops::bench::experiments::fig9_spec;
use xloops::bench::manifest::render_spec;
use xloops::bench::store::run_shard_stored;
use xloops::bench::ResultStore;
use xloops::sim::{RunOptions, SampleSpec};

fn committed(name: &str) -> String {
    let path = format!("{}/results/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// A fresh store directory under the target-local temp dir; removed on
/// drop so repeated test runs stay cold.
struct StoreDir(std::path::PathBuf);

impl StoreDir {
    fn new(tag: &str) -> StoreDir {
        let dir =
            std::env::temp_dir().join(format!("xloops-store-rt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        StoreDir(dir)
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn cold_then_warm_fig9_sweep_is_byte_identical_and_fully_cached() {
    let spec = fig9_spec();
    let options = RunOptions::default();
    let dir = StoreDir::new("fig9");
    let golden = committed("fig9");

    // Cold: every point simulates and is written to the store.
    let store = ResultStore::open(&dir.0).expect("open store");
    let cold = run_shard_stored(&spec, 0, 1, options.clone(), Some(&store));
    let stats = store.stats();
    assert_eq!(stats.hits, 0, "a fresh store has nothing to serve");
    assert_eq!(stats.misses as usize, spec.points.len());
    assert!(stats.bytes_written > 0);
    let results: Vec<_> = cold.results.iter().map(|(_, r)| r.clone()).collect();
    assert_eq!(render_spec(&spec, &results), golden);

    // Warm: a fresh store handle on the same directory serves every
    // point from disk — zero simulations, identical artifact.
    let store = ResultStore::open(&dir.0).expect("reopen store");
    let warm = run_shard_stored(&spec, 0, 1, options.clone(), Some(&store));
    let stats = store.stats();
    assert_eq!(stats.hits as usize, spec.points.len(), "warm run must be fully store-served");
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.bytes_written, 0);
    let results: Vec<_> = warm.results.iter().map(|(_, r)| r.clone()).collect();
    assert_eq!(render_spec(&spec, &results), golden);

    // The two shard documents agree byte for byte in both file formats.
    assert_eq!(warm.to_json(), cold.to_json());
    assert_eq!(warm.to_binary(), cold.to_binary());

    // Size bound pinned by the issue: the binary shard encoding stays at
    // or under a third of the pretty-JSON file format.
    let json = cold.to_json().len();
    let binary = cold.to_binary().len();
    assert!(
        binary * 3 <= json,
        "binary shard must be <= 1/3 of pretty JSON, got {binary} vs {json}"
    );

    // Changed RunOptions derive different keys: a sampled sweep finds
    // none of the unsampled entries (pure key probes, no simulation).
    let sampled = RunOptions {
        sample: Some(SampleSpec::new(1000, 100, 1000).expect("valid sample spec")),
        ..RunOptions::default()
    };
    for i in 0..spec.points.len() {
        let unsampled = ResultStore::point_key(&spec.fingerprint(), i, &options);
        let resampled = ResultStore::point_key(&spec.fingerprint(), i, &sampled);
        assert_ne!(unsampled, resampled);
        assert!(store.load(&unsampled).is_some(), "point {i} must be stored");
        assert!(store.load(&resampled).is_none(), "sampled options must miss");
    }

    // Corruption recovery: truncate one entry and garble another; the
    // next sweep treats both as misses, re-simulates, rewrites them, and
    // still renders the committed artifact.
    let key0 = ResultStore::point_key(&spec.fingerprint(), 0, &options);
    let key1 = ResultStore::point_key(&spec.fingerprint(), 1, &options);
    let path0 = dir.0.join(format!("{key0}.dxr"));
    let path1 = dir.0.join(format!("{key1}.dxr"));
    let bytes = std::fs::read(&path0).expect("read entry");
    std::fs::write(&path0, &bytes[..bytes.len() / 2]).expect("truncate entry");
    std::fs::write(&path1, b"\xd8XLS not a document").expect("garble entry");

    let store = ResultStore::open(&dir.0).expect("reopen store");
    let healed = run_shard_stored(&spec, 0, 1, options, Some(&store));
    let stats = store.stats();
    assert_eq!(stats.misses, 2, "both damaged entries must read as misses");
    assert_eq!(stats.hits as usize, spec.points.len() - 2);
    let results: Vec<_> = healed.results.iter().map(|(_, r)| r.clone()).collect();
    assert_eq!(render_spec(&spec, &results), golden);
    assert_eq!(std::fs::read(&path0).expect("rewritten entry"), bytes, "entry must be rewritten");
}
