//! End-to-end test of the sharded sweep pipeline against the committed
//! artifacts: splitting Figure 9 across two shards, serializing each
//! shard document through its JSON file format, and merging must
//! reproduce `results/fig9.txt` byte for byte. Also pins the typed
//! failure modes of [`merge`] on mismatched or incomplete shard sets.

use xloops::bench::experiments::{fig9_spec, table5_spec};
use xloops::bench::manifest::{merge, render_spec, run_shard, ManifestError, ShardDoc};
use xloops::sim::RunOptions;

fn committed(name: &str) -> String {
    let path = format!("{}/results/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn sharded_fig9_reproduces_the_committed_artifact() {
    let spec = fig9_spec();
    // Round-trip the spec itself through the manifest file format first:
    // the shards must be runnable from the parsed copy.
    let spec = xloops::bench::manifest::ExperimentSpec::from_json(&spec.to_json_pretty())
        .expect("manifest file round trip");

    let shards: Vec<ShardDoc> = (0..2)
        .map(|i| {
            let doc = run_shard(&spec, i, 2, RunOptions::default());
            // Each shard document survives its on-disk JSON format.
            ShardDoc::from_json(&doc.to_json()).expect("shard file round trip")
        })
        .collect();
    assert_eq!(shards[0].results.len() + shards[1].results.len(), spec.points.len());

    // Shard order must not matter.
    let (merged_spec, results) = merge(&[shards[1].clone(), shards[0].clone()]).expect("merge");
    assert_eq!(merged_spec, spec);
    assert_eq!(render_spec(&merged_spec, &results), committed("fig9"));
}

#[test]
fn merge_failure_modes_are_typed() {
    // table5 has no simulation points, so shard documents are free to
    // construct; the failure modes under test are all metadata-level.
    let spec = table5_spec();
    let half0 = run_shard(&spec, 0, 2, RunOptions::default());
    let half1 = run_shard(&spec, 1, 2, RunOptions::default());

    // Missing shard: only one half of a two-shard split.
    assert!(matches!(
        merge(std::slice::from_ref(&half0)),
        Err(ManifestError::MissingShards(ref m)) if m == &vec![1]
    ));

    // Duplicate shard index.
    assert!(matches!(
        merge(&[half0.clone(), half0.clone()]),
        Err(ManifestError::DuplicateShard(0))
    ));

    // Disagreeing shard counts.
    let lone = run_shard(&spec, 0, 1, RunOptions::default());
    assert!(matches!(
        merge(&[half0.clone(), lone]),
        Err(ManifestError::ShardCountMismatch { expected: 2, found: 1 })
    ));

    // Shards of different manifests must refuse to merge.
    let mut forged = half1;
    forged.fingerprint = "0000000000000000".into();
    assert!(matches!(merge(&[half0, forged]), Err(ManifestError::FingerprintMismatch { .. })));

    // And an empty shard list is rejected rather than "merging" to nothing.
    assert!(matches!(merge(&[]), Err(ManifestError::Schema(_))));
}
