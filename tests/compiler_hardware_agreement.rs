//! The compiler's software dependence analysis and the LMU's hardware scan
//! are two independent implementations of the same contract. For loops the
//! compiler generates, the hardware must (a) accept the chosen pattern,
//! (b) identify exactly the CIRs the compiler identified, and (c) execute
//! to the serial result.

use xloops::asm::assemble;
use xloops::compiler::analysis::select_pattern;
use xloops::compiler::codegen::{lower_loop, CodegenCtx};
use xloops::compiler::ir::{Annotation, ArrayRef, BinOp, Bound, Expr, Loop, Stmt, Subscript};
use xloops::func::Interp;
use xloops::isa::Reg;
use xloops::lpsu::{scan, LpsuConfig};
use xloops::mem::Memory;
use xloops::sim::{ExecMode, System, SystemConfig};

fn ctx() -> CodegenCtx {
    CodegenCtx {
        arrays: vec![("a".into(), 0x10000), ("b".into(), 0x14000), ("out".into(), 0x18000)],
        scalars: vec![("acc".into(), 0), ("m".into(), 0)],
        outputs: vec![("acc".into(), 0x1C000), ("m".into(), 0x1C004)],
        use_xi: false,
    }
}

/// Generated loops the analysis classifies differently.
fn test_loops() -> Vec<(&'static str, Loop)> {
    let mut loops = Vec::new();

    // uc: b[i] = a[i] * 3 + i
    let mut l = Loop::new("i", Bound::Fixed(Expr::konst(40)), Annotation::Unordered);
    l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
    l.body.push(Stmt::assign(
        "t2",
        Expr::add(Expr::mul(Expr::var("t"), Expr::konst(3)), Expr::var("i")),
    ));
    l.body.push(Stmt::store(ArrayRef::new("b", Subscript::linear(1, 0)), Expr::var("t2")));
    loops.push(("uc-map", l));

    // or: acc += a[i]; m = max(m, a[i]) — two CIRs, one conditional.
    let mut l = Loop::new("i", Bound::Fixed(Expr::konst(40)), Annotation::Ordered);
    l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, 0))));
    l.body.push(Stmt::assign("acc", Expr::add(Expr::var("acc"), Expr::var("t"))));
    l.body.push(Stmt::If {
        cond: Expr::Bin(BinOp::LtS, Box::new(Expr::var("m")), Box::new(Expr::var("t"))),
        then: vec![Stmt::assign("m", Expr::var("t"))],
    });
    l.body.push(Stmt::store(ArrayRef::new("out", Subscript::linear(1, 0)), Expr::var("acc")));
    loops.push(("or-two-cirs", l));

    // om: a[i] = a[i-2] + b[i]
    let mut l = Loop::new("i", Bound::Fixed(Expr::konst(40)), Annotation::Ordered);
    l.body.push(Stmt::load("t", ArrayRef::new("a", Subscript::linear(1, -2))));
    l.body.push(Stmt::load("u", ArrayRef::new("b", Subscript::linear(1, 0))));
    l.body.push(Stmt::assign("t2", Expr::add(Expr::var("t"), Expr::var("u"))));
    l.body.push(Stmt::store(ArrayRef::new("a", Subscript::linear(1, 0)), Expr::var("t2")));
    loops.push(("om-recurrence", l));

    loops
}

fn init_mem(mem: &mut Memory) {
    for i in 0..48u32 {
        mem.write_u32(0x10000 + 4 * i, (i * 7 + 3) % 101);
        mem.write_u32(0x14000 + 4 * i, i + 1);
    }
}

#[test]
fn hardware_scan_accepts_and_matches_the_compiler_analysis() {
    for (name, l) in test_loops() {
        let choice = select_pattern(&l);
        let asm = lower_loop(&l, &ctx()).unwrap_or_else(|e| panic!("{name}: {e}"));
        let program = assemble(&asm).unwrap_or_else(|e| panic!("{name}: {e}\n{asm}"));
        let xloop_pc =
            program.instrs().iter().position(|i| i.is_xloop()).expect("has xloop") as u32 * 4;

        // Run the serial prefix so live-ins are realistic, then scan.
        let mut mem = Memory::new();
        init_mem(&mut mem);
        let mut cpu = Interp::new();
        while cpu.pc() != xloop_pc {
            cpu.step(&program, &mut mem).expect("prefix runs");
        }
        let mut live_ins = [0u32; 32];
        for r in Reg::all() {
            live_ins[r.index()] = cpu.reg(r);
        }
        let s = scan(&program, xloop_pc, live_ins, &LpsuConfig::default4())
            .unwrap_or_else(|e| panic!("{name}: hardware rejected the compiled loop: {e}"));

        assert_eq!(s.pattern, choice.pattern, "{name}: pattern mismatch");
        assert_eq!(
            s.cirs.len(),
            choice.cirs.len(),
            "{name}: compiler found CIRs {:?}, hardware found {:?}",
            choice.cirs,
            s.cirs
        );
    }
}

#[test]
fn compiled_loops_run_specialized_to_the_serial_result() {
    for (name, l) in test_loops() {
        let asm = lower_loop(&l, &ctx()).unwrap();
        let program = assemble(&asm).unwrap();

        // Serial golden image.
        let mut gold_mem = Memory::new();
        init_mem(&mut gold_mem);
        let mut cpu = Interp::new();
        cpu.run(&program, &mut gold_mem, 10_000_000).expect("serial run");

        // Specialized on the LPSU.
        let mut sys = System::new(SystemConfig::io_x());
        init_mem(sys.mem_mut());
        let stats = sys.run(&program, ExecMode::Specialized).expect("specialized run");
        assert!(stats.xloops_specialized > 0, "{name}: loop never specialized");

        for addr in (0x10000..0x1C008u32).step_by(4) {
            assert_eq!(
                sys.load_word(addr),
                gold_mem.read_u32(addr),
                "{name}: divergence at {addr:#x}"
            );
        }
    }
}
