//! # XLOOPS
//!
//! A vertically integrated, pure-Rust reproduction of *"Architectural
//! Specialization for Inter-Iteration Loop Dependence Patterns"*
//! (Srinath et al., MICRO 2014).
//!
//! XLOOPS encodes inter-iteration loop **data-dependence** patterns
//! (unordered-concurrent, ordered-through-registers, ordered-through-memory,
//! both, unordered-atomic) and **control-dependence** patterns (fixed vs
//! dynamic bound) directly in the instruction set. The same binary runs on:
//!
//! * a **traditional** general-purpose processor (xloop ≈ conditional branch),
//! * a **specialized** loop-pattern specialization unit (LPSU) with four
//!   decoupled lanes, or
//! * **adaptively**, with hardware migrating the loop to whichever is faster.
//!
//! This facade crate re-exports the whole stack. See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the reproduced evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use xloops::asm::assemble;
//! use xloops::sim::{System, SystemConfig, ExecMode};
//!
//! // Element-wise vector multiply: an unordered-concurrent xloop (Fig 1a).
//! let src = r#"
//!     li   r4, 0x2000     # a
//!     li   r5, 0x2400     # b
//!     li   r6, 0x2800     # c
//!     li   r2, 0          # i = 0
//!     li   r3, 64         # n
//! loop:
//!     sll  r7, r2, 2
//!     addu r8, r4, r7
//!     lw   r9, 0(r8)
//!     addu r8, r5, r7
//!     lw   r10, 0(r8)
//!     mul  r9, r9, r10
//!     addu r8, r6, r7
//!     sw   r9, 0(r8)
//!     addiu r2, r2, 1
//!     xloop.uc loop, r2, r3
//!     exit
//! "#;
//! let prog = assemble(src)?;
//! let mut sys = System::new(SystemConfig::io_x());
//! for i in 0..64u32 {
//!     sys.store_word(0x2000 + 4 * i, i);
//!     sys.store_word(0x2400 + 4 * i, 3);
//! }
//! let stats = sys.run(&prog, ExecMode::Specialized)?;
//! assert_eq!(sys.load_word(0x2800), 0);
//! assert_eq!(sys.load_word(0x2800 + 4 * 10), 30);
//! assert!(stats.cycles > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cli;

pub use xloops_asm as asm;
pub use xloops_bench as bench;
pub use xloops_compiler as compiler;
pub use xloops_energy as energy;
pub use xloops_func as func;
pub use xloops_gpp as gpp;
pub use xloops_isa as isa;
pub use xloops_kernels as kernels;
pub use xloops_lpsu as lpsu;
pub use xloops_mem as mem;
pub use xloops_sim as sim;
pub use xloops_stats as stats;
