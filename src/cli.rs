//! Implementation of the `xloops` command-line tool (`src/bin/xloops.rs`).
//!
//! Subcommands:
//!
//! ```text
//! xloops asm <file.s> [-o <file.bin>]        assemble to a binary image
//! xloops disasm <file.bin>                   disassemble a binary image
//! xloops run <file.s> [options]              assemble + simulate
//! xloops kernels                             list the bundled paper kernels
//! xloops kernel <name> [options]             run a bundled kernel and verify
//! xloops manifest [<name>] [-o <file>]       list specs / emit one as JSON
//! xloops sweep --manifest <file> [--shard K/N] [--store DIR] [--out <file>]
//!                                            run one shard of a manifest
//! xloops merge [--store DIR] <shard>...      recombine shards and render
//!
//! run/kernel options:
//!   --config io|ooo2|ooo4|io+x|ooo2+x|ooo4+x   (default io+x)
//!   --mode   traditional|specialized|adaptive  (default specialized)
//!   --init   ADDR=VALUE    (repeatable; hex accepted)
//!   --dump   ADDR:WORDS    print memory after the run
//!   --trace  N             print the first N instructions (functional trace)
//!   --stats  text|json     report format (json emits the unified StatSet tree)
//!   --faults SEED[:N]      inject N (default 3) seeded faults (supervised run)
//!   --checkpoint CYCLES    supervise with this checkpoint interval
//!   --budget CYCLES        supervise with an end-to-end cycle budget
//!   --sample N:W:M         interval-sampled run: fast-forward N instructions,
//!                          warm W cycles, measure M cycles per window
//!                          (mutually exclusive with supervision flags)
//! ```
//!
//! The binary image format is the raw little-endian instruction words,
//! starting at pc 0.
//!
//! Exit codes: `0` success, `1` generic failure, `2` usage/parse error,
//! `3` simulation wedge ([`crate::sim::SimError::NoForwardProgress`]),
//! `4` architectural/injected fault, `5` exceeded cycle budget, `6` lost
//! worker process ([`crate::sim::SimError::WorkerLost`]), `7` expired job
//! deadline ([`crate::sim::SimError::Timeout`]).
//!
//! There is also a hidden `xloops worker` subcommand: the child half of
//! the supervised worker pool (`XLOOPS_WORKERS`), speaking NDJSON on
//! stdin/stdout. It is spawned by the scheduler, not by people — except
//! in its `xloops worker --connect HOST:PORT` form, which dials a TCP
//! daemon and registers as a remote executor. See [`crate::bench::worker`].

use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::PathBuf;

use crate::asm::{assemble, disassemble, Program};
use crate::bench::experiments::{all_specs, spec_by_name};
use crate::bench::manifest::{render_spec, ExperimentSpec, MergeFold, ShardDoc};
use crate::bench::proto;
use crate::bench::serve::{self, Daemon, ServeConfig};
use crate::bench::store::run_shard_stored;
use crate::bench::transport::Endpoint;
use crate::bench::ResultStore;
use crate::kernels;
use crate::sim::{
    ExecMode, FaultPlan, SampleSpec, SimError, Supervisor, SupervisorConfig, System, SystemConfig,
};
use crate::stats::{JsonValue, StatValue};

/// A failed CLI command: the process exit code, a one-line human
/// diagnosis for stderr, and (under `--stats json`) a machine-readable
/// error document for stdout.
#[derive(Debug)]
pub struct CliError {
    /// Process exit code (`1` generic, `3` wedge, `4` fault, `5` budget —
    /// parse errors exit `2` before [`execute`] is reached).
    pub code: i32,
    /// One-line diagnosis.
    pub message: String,
    /// JSON error document (only under `--stats json`).
    pub json: Option<String>,
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError { code: 1, message, json: None }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError { code: 1, message: message.to_string(), json: None }
    }
}

/// Maps a simulation error to its CLI surface: distinct exit code, the
/// one-line diagnosis (a wedge reports the loop pc and stalled-context
/// count), and a JSON error document when `--stats json` was requested.
/// The document body is [`SimError::to_json_value`] — the same canonical
/// shape `bench-summary`'s `"errors"` array and the serve daemon's
/// per-job failure reports use.
fn sim_error(e: SimError, stats_json: bool) -> CliError {
    let json = stats_json.then(|| {
        let doc = JsonValue::object(vec![("error", e.to_json_value())]);
        doc.render() + "\n"
    });
    CliError { code: e.exit_code(), message: e.to_string(), json }
}

/// Maps a manifest/shard schema or merge failure to a usage-class error:
/// a malformed or mismatched input document is the caller's mistake, so it
/// exits `2` like any other parse error.
fn manifest_error(e: impl std::fmt::Display) -> CliError {
    CliError { code: 2, message: e.to_string(), json: None }
}

/// Resolves the durable store for `sweep`/`merge`: an explicit `--store`
/// directory must open (usage error otherwise); absent the flag, the
/// `XLOOPS_STORE` environment knob is consulted, whose failure is soft (a
/// sweep without a store is merely cold).
fn open_store(flag: Option<String>) -> Result<Option<ResultStore>, CliError> {
    match flag {
        Some(dir) => ResultStore::open(&dir)
            .map(Some)
            .map_err(|e| manifest_error(format!("--store {dir}: {e}"))),
        None => Ok(ResultStore::from_env()),
    }
}

/// A parsed CLI invocation.
#[derive(Debug)]
pub enum Command {
    Asm {
        source: String,
        out: Option<String>,
    },
    Disasm {
        image: Vec<u8>,
    },
    Run {
        source: String,
        opts: RunOptions,
    },
    Kernels,
    Kernel {
        name: String,
        opts: RunOptions,
    },
    /// `manifest` (list the specs) or `manifest <name>` (emit its JSON,
    /// optionally to a file with `-o`).
    Manifest {
        name: Option<String>,
        out: Option<String>,
    },
    /// `sweep --manifest FILE [--shard K/N] [--store DIR] [--out FILE]`:
    /// run one shard of a spec; `manifest` holds the spec file's contents.
    /// An `--out` path ending in `.dxs` writes the binary shard format.
    Sweep {
        manifest: String,
        shard: (usize, usize),
        out: Option<String>,
        store: Option<String>,
    },
    /// `merge [--store DIR] FILE...`: recombine shard documents (JSON or
    /// binary, sniffed per file) and render the artifact. `shards` holds
    /// paths, not contents: merging is a streaming fold, each file read,
    /// folded, and dropped before the next is opened.
    Merge {
        shards: Vec<String>,
        store: Option<String>,
    },
    /// `serve [--sock PATH] [--listen tcp://ADDR] [--store DIR]`: host
    /// the scheduler as a long-running daemon on a Unix socket — and,
    /// with `--listen` (or `XLOOPS_LISTEN`), a TCP listener alongside it
    /// (blocks until `shutdown`).
    Serve {
        sock: Option<String>,
        listen: Option<String>,
        store: Option<String>,
    },
    /// `submit MANIFEST [--wait] [--sock PATH]`: send a manifest to the
    /// daemon; `manifest` holds the spec file's contents. With `--wait`
    /// the rendered artifact is the output.
    Submit {
        manifest: String,
        wait: bool,
        sock: Option<String>,
    },
    /// `status [JOB] [--sock PATH]`: query a submitted sweep by its job
    /// id (the manifest fingerprint), or — with no job id — list every
    /// job the daemon knows.
    Status {
        job: Option<String>,
        sock: Option<String>,
    },
    /// Hidden: the worker-pool child process (`xloops worker`). Speaks
    /// the NDJSON job protocol on stdin/stdout until EOF or `exit` — or,
    /// with `--connect HOST:PORT` (or `XLOOPS_CONNECT`), dials a TCP
    /// daemon and serves as a registered remote executor.
    Worker {
        connect: Option<String>,
    },
    /// `shutdown [--sock PATH]`: stop the daemon cleanly.
    Shutdown {
        sock: Option<String>,
    },
    /// `store prune --manifest FILE... [--store DIR]`: delete store
    /// entries no manifest's points (under the current `XLOOPS_*` run
    /// options) can ever hit again. `manifests` holds spec file contents.
    StorePrune {
        manifests: Vec<String>,
        store: Option<String>,
    },
    Help,
}

/// Options shared by `run` and `kernel`.
#[derive(Debug)]
pub struct RunOptions {
    pub config: SystemConfig,
    pub mode: ExecMode,
    pub inits: Vec<(u32, u32)>,
    pub dumps: Vec<(u32, u32)>,
    /// Print the first N instructions of a functional trace (0 = off).
    pub trace: u32,
    /// Emit the unified [`crate::stats::StatSet`] tree as JSON instead of
    /// the human-readable report (`--stats json`).
    pub stats_json: bool,
    /// `--faults SEED[:N]`: inject N seeded faults under supervision.
    pub faults: Option<(u64, usize)>,
    /// `--checkpoint CYCLES`: supervise with this checkpoint interval.
    pub checkpoint: Option<u64>,
    /// `--budget CYCLES`: supervise with an end-to-end cycle budget.
    pub budget: Option<u64>,
    /// `--sample N:W:M`: interval-sampled simulation.
    pub sample: Option<SampleSpec>,
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions {
            config: SystemConfig::io_x(),
            mode: ExecMode::Specialized,
            inits: Vec::new(),
            dumps: Vec::new(),
            trace: 0,
            stats_json: false,
            faults: None,
            checkpoint: None,
            budget: None,
            sample: None,
        }
    }
}

impl RunOptions {
    /// Whether any supervision flag was given (fault injection implies
    /// supervision: injected faults are meant to be recovered from).
    fn supervised(&self) -> bool {
        self.faults.is_some() || self.checkpoint.is_some() || self.budget.is_some()
    }

    /// Runs `program` on `sys` — plain when no supervision flag was given,
    /// supervised (with any fault plan, checkpoint interval, and budget)
    /// otherwise.
    fn run_system(
        &self,
        sys: &mut System,
        program: &Program,
    ) -> Result<crate::sim::SystemStats, SimError> {
        // Host-phase profiling rides on the same env knob everywhere
        // (`XLOOPS_BENCH_PROFILE`); stats gain a `profile.*` node.
        sys.set_profiling(crate::sim::RunOptions::from_env().profile);
        if let Some(spec) = self.sample {
            // Parsing rejects --sample alongside supervision flags.
            return sys.run_sampled(program, self.mode, spec);
        }
        if !self.supervised() {
            return sys.run(program, self.mode);
        }
        let mut cfg = SupervisorConfig::protected();
        if let Some(interval) = self.checkpoint {
            cfg.checkpoint_interval = interval.max(1);
        }
        cfg.cycle_budget = self.budget;
        let mut sup = Supervisor::new(sys, cfg);
        if let Some((seed, n)) = self.faults {
            sup = sup.with_plan(FaultPlan::seeded(seed, n));
        }
        sup.run(program, self.mode)
    }
}

/// Usage text.
pub fn usage() -> &'static str {
    "xloops — explicit loop specialization toolchain & simulator\n\n\
     usage:\n\
     \x20 xloops asm <file.s> [-o <file.bin>]\n\
     \x20 xloops disasm <file.bin>\n\
     \x20 xloops run <file.s> [--config C] [--mode M] [--init A=V]... [--dump A:N]... [--trace N] [--stats F]\n\
     \x20 xloops kernels\n\
     \x20 xloops kernel <name> [--config C] [--mode M] [--stats F]\n\
     \x20 xloops manifest [<name>] [-o <file>]\n\
     \x20 xloops sweep --manifest <file> [--shard K/N] [--store DIR] [--out <file>]\n\
     \x20 xloops merge [--store DIR] <shard.json|shard.dxs>...\n\
     \x20 xloops serve [--sock PATH] [--listen tcp://ADDR] [--store DIR]\n\
     \x20 xloops submit <spec.json> [--wait] [--sock PATH]\n\
     \x20 xloops status [<job>] [--sock PATH]\n\
     \x20 xloops shutdown [--sock PATH]\n\
     \x20 xloops store prune --manifest <file>... [--store DIR]\n\n\
     configs: io ooo2 ooo4 io+x ooo2+x ooo4+x   modes: traditional specialized adaptive\n\
     stats formats: text (default) json\n\
     supervision (run/kernel): --faults SEED[:N]  --checkpoint CYCLES  --budget CYCLES\n\
     sampling (run/kernel):    --sample N:W:M (ff N instrs, warm W cycles, measure M cycles)\n\
     store (sweep/merge/serve/prune): --store DIR (or XLOOPS_STORE=DIR) caches point\n\
     \x20                  results durably; a sweep --out ending in .dxs writes the\n\
     \x20                  binary shard format\n\
     daemon (serve/submit/status/shutdown): --sock PATH (or XLOOPS_SOCK=PATH) names the\n\
     \x20                  Unix socket (clients may also dial tcp://HOST:PORT); a sweep's\n\
     \x20                  job id is its manifest fingerprint; status with no job lists\n\
     \x20                  every known job; clients time out after XLOOPS_CLIENT_TIMEOUT\n\
     \x20                  ms (default 10000, 0 = never)\n\
     network (serve): --listen tcp://HOST:PORT (or XLOOPS_LISTEN) opens a TCP listener\n\
     \x20                  alongside the Unix socket; XLOOPS_TOKEN=SECRET gates TCP\n\
     \x20                  peers (clients and remote workers send the same token);\n\
     \x20                  remote executors dial in with `xloops worker --connect\n\
     \x20                  HOST:PORT` (or XLOOPS_CONNECT)\n\
     workers (sweep/serve): XLOOPS_WORKERS=N runs jobs in N supervised worker\n\
     \x20                  processes; XLOOPS_JOB_TIMEOUT=MS sets a per-attempt job\n\
     \x20                  deadline (default off); XLOOPS_MAX_RETRIES=N bounds retries\n\
     \x20                  after worker crashes (default 2)\n\
     exit codes: 0 ok, 1 error, 2 usage, 3 wedge, 4 fault, 5 cycle budget,\n\
     \x20           6 worker lost, 7 job deadline\n"
}

fn parse_u32(s: &str) -> Result<u32, String> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).map_err(|e| format!("bad number `{s}`: {e}"))
    } else {
        s.parse().map_err(|e| format!("bad number `{s}`: {e}"))
    }
}

fn parse_config(s: &str) -> Result<SystemConfig, String> {
    Ok(match s {
        "io" => SystemConfig::io(),
        "ooo2" | "ooo/2" => SystemConfig::ooo2(),
        "ooo4" | "ooo/4" => SystemConfig::ooo4(),
        "io+x" => SystemConfig::io_x(),
        "ooo2+x" | "ooo/2+x" => SystemConfig::ooo2_x(),
        "ooo4+x" | "ooo/4+x" => SystemConfig::ooo4_x(),
        other => return Err(format!("unknown config `{other}`")),
    })
}

fn parse_mode(s: &str) -> Result<ExecMode, String> {
    Ok(match s {
        "t" | "traditional" => ExecMode::Traditional,
        "s" | "specialized" => ExecMode::Specialized,
        "a" | "adaptive" => ExecMode::Adaptive,
        other => return Err(format!("unknown mode `{other}`")),
    })
}

/// Parses a `--shard K/N` operand: `N > 0`, `K < N`.
fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let (k, n) = s.split_once('/').ok_or_else(|| format!("bad --shard `{s}` (expect K/N)"))?;
    let index: usize = k.parse().map_err(|e| format!("bad shard index `{k}`: {e}"))?;
    let of: usize = n.parse().map_err(|e| format!("bad shard count `{n}`: {e}"))?;
    if of == 0 || index >= of {
        return Err(format!("impossible shard {index}/{of} (need 0 <= K < N)"));
    }
    Ok((index, of))
}

fn parse_run_options(args: &[String]) -> Result<RunOptions, String> {
    let mut opts = RunOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| it.next().cloned().ok_or_else(|| format!("{a} expects {what}"));
        match a.as_str() {
            "--config" => opts.config = parse_config(&next("a config name")?)?,
            "--mode" => opts.mode = parse_mode(&next("a mode")?)?,
            "--init" => {
                let spec = next("ADDR=VALUE")?;
                let (addr, value) =
                    spec.split_once('=').ok_or_else(|| format!("bad --init `{spec}`"))?;
                opts.inits.push((parse_u32(addr)?, parse_u32(value)?));
            }
            "--dump" => {
                let spec = next("ADDR:WORDS")?;
                let (addr, n) =
                    spec.split_once(':').ok_or_else(|| format!("bad --dump `{spec}`"))?;
                opts.dumps.push((parse_u32(addr)?, parse_u32(n)?));
            }
            "--trace" => opts.trace = parse_u32(&next("an instruction count")?)?,
            "--faults" => {
                let spec = next("SEED[:N]")?;
                let (seed, n) = match spec.split_once(':') {
                    Some((seed, n)) => (
                        parse_u32(seed)? as u64,
                        n.parse::<usize>().map_err(|e| format!("bad fault count `{n}`: {e}"))?,
                    ),
                    None => (parse_u32(&spec)? as u64, 3),
                };
                opts.faults = Some((seed, n));
            }
            "--checkpoint" => opts.checkpoint = Some(parse_u32(&next("a cycle interval")?)? as u64),
            "--budget" => opts.budget = Some(parse_u32(&next("a cycle budget")?)? as u64),
            "--sample" => {
                let spec = next("N:W:M")?;
                opts.sample = Some(spec.parse().map_err(|e| format!("{e}"))?);
            }
            "--stats" => {
                opts.stats_json = match next("a format (text|json)")?.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown stats format `{other}`")),
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if opts.sample.is_some() && opts.supervised() {
        return Err("--sample cannot be combined with --faults/--checkpoint/--budget \
             (sampled runs are not supervised)"
            .into());
    }
    Ok(opts)
}

/// Parses `argv[1..]` into a [`Command`]; file arguments are read here so
/// [`execute`] is pure — with one deliberate exception: `merge` keeps its
/// shard *paths* and streams the files during execution, so an N-shard
/// merge never holds more than one document in memory.
///
/// # Errors
///
/// Human-readable messages for unknown subcommands/options and I/O errors.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(sub) = args.first() else { return Ok(Command::Help) };
    match sub.as_str() {
        "asm" => {
            let path = args.get(1).ok_or("asm expects a source file")?;
            let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let out = match args.get(2).map(String::as_str) {
                Some("-o") => Some(args.get(3).ok_or("-o expects a path")?.clone()),
                Some(other) => return Err(format!("unknown option `{other}`")),
                None => None,
            };
            Ok(Command::Asm { source, out })
        }
        "disasm" => {
            let path = args.get(1).ok_or("disasm expects a binary file")?;
            let image = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(Command::Disasm { image })
        }
        "run" => {
            let path = args.get(1).ok_or("run expects a source file")?;
            let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(Command::Run { source, opts: parse_run_options(&args[2..])? })
        }
        "kernels" => Ok(Command::Kernels),
        "kernel" => {
            let name = args.get(1).ok_or("kernel expects a kernel name")?.clone();
            Ok(Command::Kernel { name, opts: parse_run_options(&args[2..])? })
        }
        "manifest" => {
            let mut name = None;
            let mut out = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "-o" => out = Some(it.next().ok_or("-o expects a path")?.clone()),
                    other if !other.starts_with('-') && name.is_none() => {
                        name = Some(other.to_string());
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            if out.is_some() && name.is_none() {
                return Err("manifest -o requires a spec name".into());
            }
            Ok(Command::Manifest { name, out })
        }
        "sweep" => {
            let mut manifest = None;
            let mut shard = (0, 1);
            let mut out = None;
            let mut store = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut next =
                    |what: &str| it.next().cloned().ok_or_else(|| format!("{a} expects {what}"));
                match a.as_str() {
                    "--manifest" => {
                        let path = next("a spec file")?;
                        manifest = Some(
                            std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?,
                        );
                    }
                    "--shard" => shard = parse_shard(&next("K/N")?)?,
                    "--out" => out = Some(next("a path")?),
                    "--store" => store = Some(next("a directory")?),
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            let manifest = manifest.ok_or("sweep expects --manifest FILE")?;
            Ok(Command::Sweep { manifest, shard, out, store })
        }
        "merge" => {
            // Paths only: merge streams the files at execute time, folding
            // each shard in before the next is even read.
            let mut shards = Vec::new();
            let mut store = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--store" => {
                        store = Some(it.next().ok_or("--store expects a directory")?.clone());
                    }
                    other if other.starts_with('-') => {
                        return Err(format!("unknown option `{other}`"));
                    }
                    path => shards.push(path.to_string()),
                }
            }
            if shards.is_empty() {
                return Err("merge expects at least one shard file".into());
            }
            Ok(Command::Merge { shards, store })
        }
        "serve" => {
            let mut sock = None;
            let mut listen = None;
            let mut store = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                let mut next =
                    |what: &str| it.next().cloned().ok_or_else(|| format!("{a} expects {what}"));
                match a.as_str() {
                    "--sock" => sock = Some(next("a socket path")?),
                    "--listen" => listen = Some(next("a tcp://HOST:PORT address")?),
                    "--store" => store = Some(next("a directory")?),
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Serve { sock, listen, store })
        }
        "submit" => {
            let mut manifest = None;
            let mut wait = false;
            let mut sock = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--wait" => wait = true,
                    "--sock" => {
                        sock = Some(it.next().ok_or("--sock expects a socket path")?.clone());
                    }
                    other if !other.starts_with('-') && manifest.is_none() => {
                        manifest = Some(
                            std::fs::read_to_string(other).map_err(|e| format!("{other}: {e}"))?,
                        );
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            let manifest = manifest.ok_or("submit expects a manifest file")?;
            Ok(Command::Submit { manifest, wait, sock })
        }
        "status" => {
            let mut job = None;
            let mut sock = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--sock" => {
                        sock = Some(it.next().ok_or("--sock expects a socket path")?.clone());
                    }
                    other if !other.starts_with('-') && job.is_none() => {
                        job = Some(other.to_string());
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Status { job, sock })
        }
        // Mostly hidden: the pipe-serving form is spawned by the worker
        // pool, never typed by people. The `--connect` form is the
        // user-facing remote executor.
        "worker" => {
            let mut connect = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--connect" => {
                        connect = Some(it.next().ok_or("--connect expects HOST:PORT")?.clone());
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Worker { connect })
        }
        "shutdown" => {
            let mut sock = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--sock" => {
                        sock = Some(it.next().ok_or("--sock expects a socket path")?.clone());
                    }
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            Ok(Command::Shutdown { sock })
        }
        "store" => {
            match args.get(1).map(String::as_str) {
                Some("prune") => {}
                Some(other) => return Err(format!("unknown store action `{other}`")),
                None => return Err("store expects an action (prune)".into()),
            }
            let mut manifests = Vec::new();
            let mut store = None;
            let mut it = args[2..].iter();
            while let Some(a) = it.next() {
                let mut next =
                    |what: &str| it.next().cloned().ok_or_else(|| format!("{a} expects {what}"));
                match a.as_str() {
                    "--manifest" => {
                        let path = next("a spec file")?;
                        manifests.push(
                            std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?,
                        );
                    }
                    "--store" => store = Some(next("a directory")?),
                    other => return Err(format!("unknown option `{other}`")),
                }
            }
            if manifests.is_empty() {
                return Err("store prune expects at least one --manifest FILE".into());
            }
            Ok(Command::StorePrune { manifests, store })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown subcommand `{other}`\n\n{}", usage())),
    }
}

/// What [`execute`] produces: text to print, plus an optional
/// `(path, bytes)` file to write (for `asm -o`).
pub type CommandOutput = (String, Option<(String, Vec<u8>)>);

/// Executes a command, returning the text to print (and optionally a file
/// to write for `asm -o`).
///
/// # Errors
///
/// Assembly, simulation, and verification failures as a [`CliError`]: a
/// one-line diagnosis plus the exit code of the error class (and, under
/// `--stats json`, a JSON error document).
pub fn execute(cmd: Command) -> Result<CommandOutput, CliError> {
    match cmd {
        Command::Help => Ok((usage().to_string(), None)),
        Command::Asm { source, out } => {
            let program = assemble(&source).map_err(|e| e.to_string())?;
            let words = program.to_words();
            let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
            let mut text = String::new();
            let _ =
                writeln!(text, "assembled {} instructions ({} bytes)", words.len(), bytes.len());
            if out.is_none() {
                for (i, w) in words.iter().enumerate() {
                    let _ = writeln!(text, "{:#06x}: {w:08x}", i * 4);
                }
            }
            Ok((text, out.map(|p| (p, bytes))))
        }
        Command::Disasm { image } => {
            if image.len() % 4 != 0 {
                return Err("binary image length is not a multiple of 4".into());
            }
            let words: Vec<u32> = image
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            let program = Program::from_words(&words)
                .map_err(|i| format!("invalid instruction word at index {i}"))?;
            Ok((disassemble(&program), None))
        }
        Command::Run { source, opts } => {
            let program = assemble(&source).map_err(|e| e.to_string())?;
            let mut trace_text = String::new();
            if opts.trace > 0 {
                let mut mem = crate::mem::Memory::new();
                for &(addr, value) in &opts.inits {
                    mem.write_u32(addr, value);
                }
                let mut cpu = crate::func::Interp::new();
                let _ = writeln!(trace_text, "functional trace (first {}):", opts.trace);
                for _ in 0..opts.trace {
                    match crate::func::trace_step(&mut cpu, &program, &mut mem) {
                        Ok((step, entry)) => {
                            let _ = writeln!(trace_text, "  {entry}");
                            if step == crate::func::Step::Exit {
                                break;
                            }
                        }
                        Err(e) => {
                            let _ = writeln!(trace_text, "  <{e}>");
                            break;
                        }
                    }
                }
                trace_text.push('\n');
            }
            let mut sys = System::new(opts.config);
            for &(addr, value) in &opts.inits {
                sys.store_word(addr, value);
            }
            let stats =
                opts.run_system(&mut sys, &program).map_err(|e| sim_error(e, opts.stats_json))?;
            if opts.stats_json {
                // Machine-readable mode: the JSON document is the whole
                // output, so trace/dump text never corrupts a parse.
                return Ok((stats.stat_set(is_ooo(&opts.config)).to_json() + "\n", None));
            }
            let mut text = trace_text;
            text.push_str(&report(&sys, &stats));
            for &(addr, n) in &opts.dumps {
                let _ = writeln!(text, "\nmemory at {addr:#x}:");
                for i in 0..n {
                    let _ = writeln!(
                        text,
                        "  {:#010x}: {:#010x}",
                        addr + 4 * i,
                        sys.load_word(addr + 4 * i)
                    );
                }
            }
            Ok((text, None))
        }
        Command::Kernels => {
            let mut text = String::from("Table II kernels:\n");
            for k in kernels::table2() {
                let _ = writeln!(text, "  {:14} [{}] {}", k.name, k.suite.tag(), k.patterns);
            }
            text.push_str("Table IV variants:\n");
            for k in kernels::table4() {
                let _ = writeln!(text, "  {:14} [{}] {}", k.name, k.suite.tag(), k.patterns);
            }
            Ok((text, None))
        }
        Command::Kernel { name, opts } => {
            let kernel = kernels::by_name(&name)
                .ok_or_else(|| format!("no kernel named `{name}` (try `xloops kernels`)"))?;
            let mut sys = System::new(opts.config);
            kernel.init_memory(sys.mem_mut());
            let stats = opts
                .run_system(&mut sys, &kernel.program)
                .map_err(|e| sim_error(e, opts.stats_json))?;
            kernel.verify(sys.mem()).map_err(|e| format!("verification FAILED: {e}"))?;
            if opts.stats_json {
                // Verification still ran (a failure errors out above); the
                // output is just the JSON document.
                return Ok((stats.stat_set(is_ooo(&opts.config)).to_json() + "\n", None));
            }
            let mut text = format!("{name}: verified OK\n");
            text.push_str(&report(&sys, &stats));
            Ok((text, None))
        }
        Command::Manifest { name: None, .. } => {
            let mut text = String::from("experiment manifests:\n");
            for spec in all_specs() {
                let _ = writeln!(
                    text,
                    "  {:8} {:3} points  {}",
                    spec.name,
                    spec.points.len(),
                    spec.caption.lines().next().unwrap_or("")
                );
            }
            Ok((text, None))
        }
        Command::Manifest { name: Some(name), out } => {
            let spec = spec_by_name(&name)
                .ok_or_else(|| format!("no spec named `{name}` (try `xloops manifest`)"))?;
            let json = spec.to_json_pretty();
            match out {
                Some(path) => {
                    let text = format!(
                        "manifest {}: {} points, fingerprint {}\n",
                        spec.name,
                        spec.points.len(),
                        spec.fingerprint()
                    );
                    Ok((text, Some((path, json.into_bytes()))))
                }
                None => Ok((json, None)),
            }
        }
        Command::Sweep { manifest, shard: (index, of), out, store } => {
            let spec = ExperimentSpec::from_json(&manifest).map_err(manifest_error)?;
            let store = open_store(store)?;
            let doc = run_shard_stored(
                &spec,
                index,
                of,
                crate::sim::RunOptions::from_env(),
                store.as_ref(),
            );
            match out {
                Some(path) => {
                    // Extension-driven format: `.dxs` writes the compact
                    // binary shard document, anything else the pretty JSON.
                    let bytes = if path.ends_with(".dxs") {
                        doc.to_binary()
                    } else {
                        doc.to_json().into_bytes()
                    };
                    let mut text = format!(
                        "sweep {}: shard {index}/{of}, {} of {} points\n",
                        spec.name,
                        doc.results.len(),
                        spec.points.len()
                    );
                    if let Some(store) = &store {
                        let s = store.stats();
                        let _ = writeln!(text, "store: {} hits, {} misses", s.hits, s.misses);
                    }
                    Ok((text, Some((path, bytes))))
                }
                None => Ok((doc.to_json(), None)),
            }
        }
        Command::Merge { shards, store } => {
            let store = open_store(store)?;
            let mut fold = MergeFold::new();
            for path in &shards {
                // Streaming: read -> decode -> fold -> drop, one file at a
                // time; decode failures and mismatched shards are usage
                // errors naming the offending file.
                let bytes =
                    std::fs::read(path).map_err(|e| manifest_error(format!("{path}: {e}")))?;
                let doc = ShardDoc::from_bytes(&bytes)
                    .map_err(|e| manifest_error(format!("{path}: {e}")))?;
                if let Some(store) = &store {
                    store.backfill(&doc);
                }
                fold.fold(doc).map_err(|e| manifest_error(format!("{path}: {e}")))?;
            }
            let (spec, results) = fold.finish().map_err(manifest_error)?;
            // The rendered artifact *is* the output, byte-for-byte what the
            // unsharded binary writes under `results/` — so a plain `diff`
            // proves the sharded path reproduced it.
            Ok((render_spec(&spec, &results), None))
        }
        Command::Serve { sock, listen, store } => {
            let sock = match resolve_sock(sock)? {
                Endpoint::Unix(path) => path,
                ep @ Endpoint::Tcp(_) => {
                    return Err(manifest_error(format!(
                        "serve --sock must be a Unix socket path, not {}; use --listen for TCP",
                        ep.describe()
                    )))
                }
            };
            let store_dir = store.map(PathBuf::from).or_else(|| {
                std::env::var("XLOOPS_STORE").ok().filter(|d| !d.is_empty()).map(PathBuf::from)
            });
            let cfg = ServeConfig {
                sock: sock.clone(),
                listen: serve::listen_from(listen),
                store_dir,
                options: crate::sim::RunOptions::from_env(),
                token: proto::token_from_env(),
            };
            let listen_ep = cfg.listen.clone();
            let daemon = Daemon::bind(cfg)
                .map_err(|e| manifest_error(format!("cannot bind {}: {e}", sock.display())))?;
            // A `kill` from an orchestrator must not strand a stale
            // socket file (the `shutdown` command unlinks it in-band).
            #[cfg(unix)]
            serve::install_sigterm_unlink(&sock);
            eprintln!("[serve] listening on {}", sock.display());
            if let Some(ep) = &listen_ep {
                let bound = daemon
                    .tcp_addr()
                    .map(|a| format!("tcp://{a}"))
                    .unwrap_or_else(|| ep.describe());
                eprintln!("[serve] listening on {bound}");
            }
            let swept =
                daemon.run().map_err(|e| CliError::from(format!("{}: {e}", sock.display())))?;
            Ok((format!("served {swept} sweep(s) on {}\n", sock.display()), None))
        }
        Command::Submit { manifest, wait, sock } => {
            let ep = resolve_sock(sock)?;
            let spec = ExperimentSpec::from_json(&manifest).map_err(manifest_error)?;
            let req = JsonValue::object(vec![
                ("cmd", JsonValue::Str("submit".to_string())),
                ("manifest", spec.to_json_value()),
                ("wait", JsonValue::Bool(wait)),
            ]);
            let resp = daemon_request(&ep, &req)?;
            if !wait {
                let state = resp.get("state").and_then(JsonValue::as_str).unwrap_or("?");
                let job = resp.get("job").and_then(JsonValue::as_str).unwrap_or("?");
                return Ok((format!("submitted {}: job {job} ({state})\n", spec.name), None));
            }
            // --wait: the artifact is the output (stdout), so the traffic
            // summary goes to stderr — exactly like `serve`'s own banner.
            if let Some(store) = resp.get("store") {
                let n = |k: &str| store.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                eprintln!("store: {} hits, {} misses", n("hits"), n("misses"));
            }
            let failed = resp.get("failed").and_then(JsonValue::as_u64).unwrap_or(0);
            if failed > 0 {
                let errors = resp.get("errors").and_then(JsonValue::as_array).unwrap_or(&[]);
                let first = errors.first();
                let message = first
                    .and_then(|e| e.get("message"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown failure");
                let code =
                    first.and_then(|e| e.get("exit_code")).and_then(JsonValue::as_u64).unwrap_or(1)
                        as i32;
                return Err(CliError {
                    code,
                    message: format!("{failed} point(s) failed; first: {message}"),
                    json: None,
                });
            }
            let artifact =
                resp.get("artifact").and_then(JsonValue::as_str).unwrap_or_default().to_string();
            Ok((artifact, None))
        }
        Command::Status { job: Some(job), sock } => {
            let ep = resolve_sock(sock)?;
            let req = JsonValue::object(vec![
                ("cmd", JsonValue::Str("status".to_string())),
                ("job", JsonValue::Str(job)),
            ]);
            let resp = daemon_request(&ep, &req)?;
            let job = resp.get("job").and_then(JsonValue::as_str).unwrap_or("?");
            let state = resp.get("state").and_then(JsonValue::as_str).unwrap_or("?");
            let mut text = format!("job {job}: {state}\n");
            if state == "running" {
                if let Some(p) = resp.get("progress") {
                    let _ = writeln!(text, "progress: {}", render_progress(p));
                }
            }
            if state == "done" {
                let n = |k: &str| resp.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                let _ = writeln!(
                    text,
                    "points: {} ({} failed, {} quarantined)",
                    n("points"),
                    n("failed"),
                    n("quarantined")
                );
                if let Some(store) = resp.get("store") {
                    let s = |k: &str| store.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                    let _ = writeln!(text, "store: {} hits, {} misses", s("hits"), s("misses"));
                }
                for e in resp.get("errors").and_then(JsonValue::as_array).unwrap_or(&[]) {
                    if let Some(m) = e.get("message").and_then(JsonValue::as_str) {
                        let _ = writeln!(text, "error: {m}");
                    }
                }
            }
            Ok((text, None))
        }
        Command::Status { job: None, sock } => {
            let ep = resolve_sock(sock)?;
            let req = JsonValue::object(vec![("cmd", JsonValue::Str("status".to_string()))]);
            let resp = daemon_request(&ep, &req)?;
            let mut text = String::new();
            if let Some(version) = resp.get("version").and_then(JsonValue::as_str) {
                let uptime = resp.get("uptime_ms").and_then(JsonValue::as_u64).unwrap_or(0);
                let workers = resp.get("workers").and_then(JsonValue::as_u64).unwrap_or(0);
                let idle = resp.get("workers_idle").and_then(JsonValue::as_u64).unwrap_or(workers);
                let _ = writeln!(
                    text,
                    "daemon v{version}, up {}s, {workers} remote worker(s) ({idle} idle)",
                    uptime / 1000
                );
            }
            let jobs = resp.get("jobs").and_then(JsonValue::as_array).unwrap_or(&[]);
            if jobs.is_empty() {
                text.push_str("no jobs\n");
                return Ok((text, None));
            }
            for j in jobs {
                let id = j.get("job").and_then(JsonValue::as_str).unwrap_or("?");
                let state = j.get("state").and_then(JsonValue::as_str).unwrap_or("?");
                let n = |k: &str| j.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                let _ = write!(text, "job {id}: {state}, {} points", n("points"));
                if state == "done" {
                    let _ = write!(
                        text,
                        " ({} done, {} failed, {} quarantined)",
                        n("done"),
                        n("failed"),
                        n("quarantined")
                    );
                } else if let Some(p) = j.get("progress") {
                    let _ = write!(text, " ({})", render_progress(p));
                }
                text.push('\n');
            }
            Ok((text, None))
        }
        Command::Worker { connect } => {
            let dial =
                connect.or_else(|| std::env::var("XLOOPS_CONNECT").ok().filter(|s| !s.is_empty()));
            match dial {
                // Remote executor: dial a daemon, register, serve jobs until
                // the daemon hangs up or sends `exit`.
                Some(addr) => match crate::bench::worker::worker_connect(&addr) {
                    Ok(0) => Ok((String::new(), None)),
                    Ok(code) => Err(CliError {
                        code,
                        message: "worker lost its daemon connection".into(),
                        json: None,
                    }),
                    Err((code, message)) => Err(CliError { code, message, json: None }),
                },
                // The child half of the supervised worker pool: this blocks
                // on stdin until the parent closes the pipe or sends `exit`.
                None => match crate::bench::worker::worker_main() {
                    0 => Ok((String::new(), None)),
                    code => Err(CliError {
                        code,
                        message: "worker lost its parent pipe".into(),
                        json: None,
                    }),
                },
            }
        }
        Command::Shutdown { sock } => {
            let ep = resolve_sock(sock)?;
            let req = JsonValue::object(vec![("cmd", JsonValue::Str("shutdown".to_string()))]);
            daemon_request(&ep, &req)?;
            Ok((format!("daemon on {} shutting down\n", ep.describe()), None))
        }
        Command::StorePrune { manifests, store } => {
            let store = open_store(store)?
                .ok_or_else(|| manifest_error("store prune needs --store DIR or XLOOPS_STORE"))?;
            // Live keys are options-dependent (the key hashes the
            // result-affecting RunOptions), so prune under the same
            // XLOOPS_* knobs the sweeps ran with.
            let options = crate::sim::RunOptions::from_env();
            let mut live = HashSet::new();
            let mut text = String::new();
            for manifest in &manifests {
                let spec = ExperimentSpec::from_json(manifest).map_err(manifest_error)?;
                let fingerprint = spec.fingerprint();
                for i in 0..spec.points.len() {
                    live.insert(ResultStore::point_key(&fingerprint, i, &options));
                }
                let _ = writeln!(
                    text,
                    "live: {} ({} points, fingerprint {fingerprint})",
                    spec.name,
                    spec.points.len()
                );
            }
            let report = store
                .prune(&live)
                .map_err(|e| CliError::from(format!("prune {}: {e}", store.dir().display())))?;
            let _ = writeln!(
                text,
                "pruned {}: kept {}, removed {}, freed {} bytes",
                store.dir().display(),
                report.kept,
                report.pruned,
                report.bytes_freed
            );
            Ok((text, None))
        }
    }
}

/// Resolves the daemon endpoint (`--sock` flag, else `XLOOPS_SOCK`; a
/// `tcp://HOST:PORT` value dials TCP); its absence is a usage error.
fn resolve_sock(flag: Option<String>) -> Result<Endpoint, CliError> {
    serve::sock_from(flag)
        .ok_or_else(|| manifest_error("no daemon socket: pass --sock PATH or set XLOOPS_SOCK"))
}

/// Renders a daemon progress document as one human-readable clause.
fn render_progress(p: &JsonValue) -> String {
    let n = |k: &str| p.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    format!(
        "{} queued, {} running, {} done, {} failed, {} store hits",
        n("queued"),
        n("running"),
        n("done"),
        n("failed"),
        n("hits")
    )
}

/// Maps a client-side socket failure to its CLI surface: a tripped read
/// or write deadline (the daemon accepted but never answered) is a typed
/// protocol failure with the usage exit code `2`; anything else (no
/// socket, connection refused) stays the generic `1`.
fn client_io_error(at: &str, e: std::io::Error) -> CliError {
    let timed_out =
        matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut);
    if timed_out {
        CliError {
            code: 2,
            message: format!("{at}: daemon did not respond before the client timeout ({e})"),
            json: None,
        }
    } else {
        CliError::from(format!("{at}: {e}"))
    }
}

/// One client round-trip to the daemon, with `ok:false` responses mapped
/// to a [`CliError`] carrying the daemon's message and exit code. A hung
/// daemon trips the client's socket deadline ([`proto::client_timeout`]),
/// which maps through [`client_io_error`] to the usage/protocol exit
/// code `2` — a deliberate typed failure, never an indefinite block.
fn daemon_request(ep: &Endpoint, req: &JsonValue) -> Result<JsonValue, CliError> {
    let resp = proto::request(ep, req).map_err(|e| client_io_error(&ep.describe(), e))?;
    if resp.get("ok").and_then(JsonValue::as_bool) == Some(true) {
        return Ok(resp);
    }
    let error = resp.get("error");
    let message = error
        .and_then(|e| e.get("message"))
        .and_then(JsonValue::as_str)
        .unwrap_or("malformed daemon response")
        .to_string();
    let code =
        error.and_then(|e| e.get("exit_code")).and_then(JsonValue::as_u64).unwrap_or(1) as i32;
    Err(CliError { code, message, json: None })
}

/// Whether the configured GPP pays out-of-order energy accounting (the
/// in-order core is the only width-1 configuration).
fn is_ooo(config: &SystemConfig) -> bool {
    config.gpp.width() > 1
}

fn report(sys: &System, stats: &crate::sim::SystemStats) -> String {
    // Render from the unified stat tree rather than the raw structs, so
    // the text report and `--stats json` read the same schema by
    // construction and cannot disagree on a value.
    let set = stats.stat_set(is_ooo(sys.config()));
    let counter = |path: &str| set.lookup(path).and_then(StatValue::as_counter).unwrap_or(0);
    let metric = |path: &str| set.lookup(path).map(StatValue::as_f64).unwrap_or(0.0);
    let mut t = String::new();
    let _ = writeln!(t, "config           {}", sys.config().name());
    let _ = writeln!(t, "cycles           {}", counter("cycles"));
    let _ = writeln!(t, "instructions     {} (IPC {:.2})", counter("instret"), metric("ipc"));
    let _ = writeln!(t, "energy           {:.1} nJ", metric("energy_nj"));
    if counter("xloops_specialized") > 0 || counter("xloops_fallback") > 0 {
        let _ = writeln!(
            t,
            "xloops           {} specialized, {} fell back",
            counter("xloops_specialized"),
            counter("xloops_fallback")
        );
        let _ = writeln!(
            t,
            "lpsu             {} iterations, {} squashed, {} CIR transfers",
            counter("lpsu.iterations"),
            counter("lpsu.squashed_iters"),
            counter("lpsu.cir_transfers")
        );
    }
    if counter("adaptive_to_gpp") + counter("adaptive_to_lpsu") > 0 {
        let _ = writeln!(
            t,
            "adaptive         {} loops chose the LPSU, {} the GPP",
            counter("adaptive_to_lpsu"),
            counter("adaptive_to_gpp")
        );
    }
    if counter("sampling.intervals") > 0 {
        let _ = writeln!(
            t,
            "sampling         {} windows: {} measured + {} extrapolated cycles, \
             {} fast-forwarded instructions (rel stderr {:.4})",
            counter("sampling.intervals"),
            counter("sampling.measured_cycles"),
            counter("sampling.extrapolated_cycles"),
            counter("sampling.ff_instrs"),
            metric("sampling.rel_stderr")
        );
    }
    if counter("supervisor.checkpoints") + counter("supervisor.rewinds") > 0 {
        let _ = writeln!(
            t,
            "supervisor       {} checkpoints, {} rewinds ({} injected), {} retries, \
             {} loops degraded to GPP",
            counter("supervisor.checkpoints"),
            counter("supervisor.rewinds"),
            counter("supervisor.injected_faults"),
            counter("supervisor.retries"),
            counter("supervisor.degraded")
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_configs_and_modes() {
        let opts = parse_run_options(&sv(&[
            "--config", "ooo4+x", "--mode", "adaptive", "--init", "0x100=7", "--dump", "0x100:2",
        ]))
        .unwrap();
        assert_eq!(opts.config.name(), "ooo/4+x");
        assert_eq!(opts.mode, ExecMode::Adaptive);
        assert_eq!(opts.inits, vec![(0x100, 7)]);
        assert_eq!(opts.dumps, vec![(0x100, 2)]);
    }

    #[test]
    fn rejects_unknown_options() {
        assert!(parse_run_options(&sv(&["--bogus"])).is_err());
        assert!(parse_run_options(&sv(&["--config", "pentium"])).is_err());
        assert!(parse(&sv(&["frobnicate"])).is_err());
    }

    #[test]
    fn kernels_listing_names_everything() {
        let (text, _) = execute(Command::Kernels).unwrap();
        for k in kernels::table2() {
            assert!(text.contains(k.name), "missing {}", k.name);
        }
    }

    #[test]
    fn run_command_executes_and_dumps() {
        let source = "
            li r1, 0x100
            lw r2, 0(r1)
            addiu r2, r2, 5
            sw r2, 4(r1)
            exit";
        let mut opts = RunOptions { mode: ExecMode::Traditional, ..RunOptions::default() };
        opts.config = SystemConfig::io();
        opts.inits.push((0x100, 37));
        opts.dumps.push((0x104, 1));
        let (text, _) = execute(Command::Run { source: source.into(), opts }).unwrap();
        assert!(text.contains("0x0000002a"), "{text}"); // 37 + 5
        assert!(text.contains("cycles"));
    }

    #[test]
    fn kernel_command_verifies() {
        let (text, _) =
            execute(Command::Kernel { name: "huffman-ua".into(), opts: RunOptions::default() })
                .unwrap();
        assert!(text.contains("verified OK"), "{text}");
        assert!(text.contains("specialized"));
    }

    #[test]
    fn stats_format_parses_and_rejects_garbage() {
        assert!(parse_run_options(&sv(&["--stats", "json"])).unwrap().stats_json);
        assert!(!parse_run_options(&sv(&["--stats", "text"])).unwrap().stats_json);
        assert!(parse_run_options(&sv(&["--stats", "xml"])).is_err());
        assert!(parse_run_options(&sv(&["--stats"])).is_err());
    }

    #[test]
    fn run_command_emits_json_stats() {
        let mut opts = RunOptions { mode: ExecMode::Traditional, ..RunOptions::default() };
        opts.config = SystemConfig::io();
        opts.stats_json = true;
        opts.trace = 3; // must be suppressed: JSON is the whole output
        let (text, _) = execute(Command::Run { source: "li r1, 9\n exit".into(), opts }).unwrap();
        assert!(text.starts_with("{\"name\":\"system\""), "{text}");
        assert!(text.ends_with("]}\n"), "{text}");
        assert!(text.contains("\"counters\":{\"cycles\":"), "{text}");
        assert!(!text.contains("functional trace"), "{text}");
    }

    #[test]
    fn kernel_command_emits_json_stats_with_component_children() {
        let opts = RunOptions { stats_json: true, ..RunOptions::default() };
        let (text, _) = execute(Command::Kernel { name: "huffman-ua".into(), opts }).unwrap();
        assert!(!text.contains("verified OK"), "{text}");
        for child in ["\"name\":\"gpp\"", "\"name\":\"lpsu\"", "\"name\":\"energy\""] {
            assert!(text.contains(child), "missing {child} in {text}");
        }
        assert!(text.contains("\"name\":\"stalls\""), "{text}");
        // Still a verification failure if the kernel is broken: the flag
        // only changes the report, not the checking.
        let opts =
            RunOptions { stats_json: true, mode: ExecMode::Traditional, ..RunOptions::default() };
        assert!(execute(Command::Kernel { name: "huffman-ua".into(), opts }).is_ok());
    }

    #[test]
    fn supervision_flags_parse() {
        let o = parse_run_options(&sv(&[
            "--faults",
            "7:5",
            "--checkpoint",
            "1000",
            "--budget",
            "100000",
        ]))
        .unwrap();
        assert_eq!(o.faults, Some((7, 5)));
        assert_eq!(o.checkpoint, Some(1000));
        assert_eq!(o.budget, Some(100_000));
        assert_eq!(parse_run_options(&sv(&["--faults", "9"])).unwrap().faults, Some((9, 3)));
        assert!(parse_run_options(&sv(&["--faults", "x:y"])).is_err());
        assert!(parse_run_options(&sv(&["--budget"])).is_err());
    }

    #[test]
    fn sample_flag_parses_and_rejects_supervision_combos() {
        let o = parse_run_options(&sv(&["--sample", "10000:2000:50000"])).unwrap();
        assert_eq!(o.sample, Some(SampleSpec::new(10_000, 2_000, 50_000).unwrap()));
        assert!(parse_run_options(&sv(&["--sample", "0:1:1"])).is_err());
        assert!(parse_run_options(&sv(&["--sample", "nope"])).is_err());
        assert!(parse_run_options(&sv(&["--sample"])).is_err());
        let e = parse_run_options(&sv(&["--sample", "1:1:1", "--budget", "99"])).unwrap_err();
        assert!(e.contains("not supervised"), "{e}");
    }

    #[test]
    fn sampled_kernel_run_verifies_and_reports_sampling_stats() {
        let opts = RunOptions {
            sample: Some(SampleSpec::new(500, 100, 500).unwrap()),
            ..RunOptions::default()
        };
        let (text, _) = execute(Command::Kernel { name: "huffman-ua".into(), opts }).unwrap();
        assert!(text.contains("verified OK"), "{text}");
        assert!(text.contains("sampling"), "{text}");

        // And the JSON surface carries the sampling node with the error bar.
        let opts = RunOptions {
            sample: Some(SampleSpec::new(500, 100, 500).unwrap()),
            stats_json: true,
            ..RunOptions::default()
        };
        let (json, _) = execute(Command::Kernel { name: "huffman-ua".into(), opts }).unwrap();
        assert!(json.contains("\"name\":\"sampling\""), "{json}");
        assert!(json.contains("rel_stderr"), "{json}");
    }

    #[test]
    fn wedge_maps_to_exit_code_3_with_a_one_line_diagnosis() {
        let e = sim_error(SimError::NoForwardProgress { pc: 0x40, cycle: 123, stalled: 4 }, false);
        assert_eq!(e.code, 3);
        assert!(!e.message.contains('\n'), "one line: {}", e.message);
        assert!(e.message.contains("0x40"), "{}", e.message);
        assert!(e.message.contains("4 stalled"), "{}", e.message);
        assert!(e.json.is_none());
    }

    #[test]
    fn budget_error_has_distinct_exit_code_and_json_document() {
        let opts = RunOptions { stats_json: true, budget: Some(10), ..RunOptions::default() };
        let e = execute(Command::Kernel { name: "huffman-ua".into(), opts }).unwrap_err();
        assert_eq!(e.code, 5);
        assert!(e.message.contains("cycle budget"), "{}", e.message);
        assert!(e.json.as_deref().is_some_and(|j| j.contains("\"exit_code\":5")), "{e:?}");
    }

    #[test]
    fn injected_faults_recover_under_supervision_and_report() {
        let opts =
            RunOptions { faults: Some((1, 3)), checkpoint: Some(1000), ..RunOptions::default() };
        let (text, _) = execute(Command::Kernel { name: "huffman-ua".into(), opts }).unwrap();
        assert!(text.contains("verified OK"), "{text}");
        assert!(text.contains("supervisor"), "supervised run reports activity: {text}");
    }

    #[test]
    fn trace_option_prints_instructions() {
        let mut opts = RunOptions { mode: ExecMode::Traditional, ..RunOptions::default() };
        opts.config = SystemConfig::io();
        opts.trace = 3;
        let (text, _) =
            execute(Command::Run { source: "li r1, 9\n sw r1, 0(r0)\n exit".into(), opts })
                .unwrap();
        assert!(text.contains("functional trace"), "{text}");
        assert!(text.contains("r1 <- 0x9"), "{text}");
        assert!(text.contains("[W 0x0]"), "{text}");
    }

    #[test]
    fn manifest_listing_names_every_spec() {
        let (text, _) = execute(Command::Manifest { name: None, out: None }).unwrap();
        for name in ["table2", "fig5", "fig6", "fig7", "fig8", "fig9", "table4", "table5", "fig10"]
        {
            assert!(text.contains(name), "missing {name} in {text}");
        }
    }

    #[test]
    fn manifest_command_emits_parseable_spec_json() {
        let (json, _) =
            execute(Command::Manifest { name: Some("fig9".into()), out: None }).unwrap();
        let spec = ExperimentSpec::from_json(&json).expect("emitted JSON parses back");
        assert_eq!(spec.name, "fig9");
        assert!(!spec.points.is_empty());
        assert!(execute(Command::Manifest { name: Some("fig99".into()), out: None }).is_err());
        // -o routes the document into the returned file instead of stdout.
        let (text, file) =
            execute(Command::Manifest { name: Some("fig9".into()), out: Some("s.json".into()) })
                .unwrap();
        assert!(text.contains(&spec.fingerprint()), "{text}");
        let (path, bytes) = file.expect("-o produces a file");
        assert_eq!(path, "s.json");
        assert_eq!(bytes, json.into_bytes());
    }

    #[test]
    fn shard_flag_parses_and_rejects_impossible_shards() {
        assert_eq!(parse_shard("0/2").unwrap(), (0, 2));
        assert_eq!(parse_shard("3/4").unwrap(), (3, 4));
        assert!(parse_shard("2/2").is_err());
        assert!(parse_shard("0/0").is_err());
        assert!(parse_shard("x/y").is_err());
        assert!(parse_shard("1").is_err());
    }

    /// A scratch directory for tests that exercise the streaming (path
    /// based) merge; removed on drop.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir = std::env::temp_dir().join(format!("xloops-cli-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        fn file(&self, name: &str, contents: &[u8]) -> String {
            let path = self.0.join(name);
            std::fs::write(&path, contents).unwrap();
            path.to_string_lossy().into_owned()
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn sweep_then_merge_reproduces_the_rendered_artifact() {
        // table5 is the analytical artifact (zero simulation points), so
        // the whole sweep -> merge path runs instantly even in debug.
        let tmp = TempDir::new("merge");
        let (json, _) =
            execute(Command::Manifest { name: Some("table5".into()), out: None }).unwrap();
        let (shard_json, _) =
            execute(Command::Sweep { manifest: json, shard: (0, 1), out: None, store: None })
                .unwrap();
        let shard0 = tmp.file("shard0.json", shard_json.as_bytes());
        let (merged, _) =
            execute(Command::Merge { shards: vec![shard0.clone()], store: None }).unwrap();
        let spec = crate::bench::experiments::spec_by_name("table5").unwrap();
        let expect = render_spec(&spec, &[]);
        assert_eq!(merged, expect, "merge renders the artifact byte-for-byte");

        // The binary form of the same shard merges to identical output.
        let doc = ShardDoc::from_json(&shard_json).unwrap();
        let dxs = tmp.file("shard0.dxs", &doc.to_binary());
        let (from_binary, _) = execute(Command::Merge { shards: vec![dxs], store: None }).unwrap();
        assert_eq!(from_binary, expect, "binary shard renders byte-identically");

        // An unparseable shard is a usage-class failure (exit code 2) with
        // the offending file named in the diagnosis; so is a missing file.
        let bad = tmp.file("bad.json", &shard_json.as_bytes()[..shard_json.len() / 2]);
        let e = execute(Command::Merge { shards: vec![bad], store: None }).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("bad.json"), "{}", e.message);
        let e = execute(Command::Merge { shards: vec!["no-such.json".into()], store: None })
            .unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("no-such.json"), "{}", e.message);

        // Shards from different manifests parse fine but refuse to merge,
        // also exit code 2.
        let forged = tmp.file(
            "forged.json",
            shard_json.replace("\"fingerprint\": \"", "\"fingerprint\": \"dead").as_bytes(),
        );
        let e = execute(Command::Merge { shards: vec![shard0, forged], store: None }).unwrap_err();
        assert_eq!(e.code, 2);
        assert!(e.message.contains("different manifests"), "{}", e.message);
    }

    #[test]
    fn merge_parse_collects_paths_and_store_flag() {
        let cmd = parse(&sv(&["merge", "--store", "/tmp/s", "a.json", "b.dxs"])).unwrap();
        match cmd {
            Command::Merge { shards, store } => {
                assert_eq!(shards, vec!["a.json".to_string(), "b.dxs".to_string()]);
                assert_eq!(store.as_deref(), Some("/tmp/s"));
            }
            other => panic!("expected merge, got {other:?}"),
        }
        assert!(parse(&sv(&["merge"])).is_err());
        assert!(parse(&sv(&["merge", "--bogus", "a.json"])).is_err());
    }

    #[test]
    fn sweep_with_store_serves_the_warm_run_from_disk() {
        let tmp = TempDir::new("sweep-store");
        let store_dir = tmp.0.join("store").to_string_lossy().into_owned();
        let (json, _) =
            execute(Command::Manifest { name: Some("table5".into()), out: None }).unwrap();
        let run = |out: &str| {
            execute(Command::Sweep {
                manifest: json.clone(),
                shard: (0, 1),
                out: Some(out.into()),
                store: Some(store_dir.clone()),
            })
            .unwrap()
        };
        let (cold_text, cold_file) = run("cold.json");
        // table5 has zero points, so both counters are zero — the line
        // format is what this pins (CI greps it on a real manifest).
        assert!(cold_text.contains("store: 0 hits, 0 misses"), "{cold_text}");
        let (warm_text, warm_file) = run("warm.dxs");
        assert!(warm_text.contains("store: 0 hits, 0 misses"), "{warm_text}");
        // JSON out vs .dxs out: different bytes, same document.
        let cold_doc = ShardDoc::from_bytes(&cold_file.unwrap().1).unwrap();
        let warm_doc = ShardDoc::from_bytes(&warm_file.unwrap().1).unwrap();
        assert_eq!(cold_doc, warm_doc);
    }

    #[test]
    fn status_parses_with_and_without_a_job_id() {
        match parse(&sv(&["status", "abc123", "--sock", "/tmp/x.sock"])).unwrap() {
            Command::Status { job, sock } => {
                assert_eq!(job.as_deref(), Some("abc123"));
                assert_eq!(sock.as_deref(), Some("/tmp/x.sock"));
            }
            other => panic!("expected status, got {other:?}"),
        }
        // No job id is the listing query, not a usage error.
        match parse(&sv(&["status"])).unwrap() {
            Command::Status { job: None, sock: None } => {}
            other => panic!("expected bare status, got {other:?}"),
        }
    }

    #[test]
    fn worker_subcommand_is_hidden_but_parses() {
        assert!(matches!(parse(&sv(&["worker"])).unwrap(), Command::Worker { connect: None }));
        match parse(&sv(&["worker", "--connect", "127.0.0.1:9"])).unwrap() {
            Command::Worker { connect } => assert_eq!(connect.as_deref(), Some("127.0.0.1:9")),
            other => panic!("expected worker, got {other:?}"),
        }
        assert!(parse(&sv(&["worker", "--frob"])).is_err());
        // Hidden means hidden: the usage text has no `xloops worker`
        // synopsis line; only the remote-executor form is documented.
        assert!(!usage().contains("\n  xloops worker"), "worker must stay off the synopsis");
        assert!(usage().contains("worker --connect"), "the remote form must be documented");
    }

    #[test]
    fn hung_daemon_times_out_with_the_protocol_exit_code() {
        // A listener that accepts but never answers: the client must trip
        // its read deadline and map it to exit code 2, not block forever.
        let tmp = TempDir::new("hung-daemon");
        let sock = tmp.0.join("hung.sock");
        let listener = std::os::unix::net::UnixListener::bind(&sock).unwrap();
        let hold = std::thread::spawn(move || {
            // Hold the accepted connection open, silently, until the
            // client gives up and the test ends.
            listener.incoming().next().map(|c| {
                let c = c.unwrap();
                std::thread::sleep(std::time::Duration::from_millis(900));
                drop(c);
            })
        });
        let req = JsonValue::object(vec![("cmd", JsonValue::Str("status".to_string()))]);
        let t = std::time::Instant::now();
        // Route through the explicit-timeout entry so the test does not
        // depend on (or mutate) the process environment.
        let ep = Endpoint::unix(&sock);
        let resp = proto::request_with(&ep, &req, Some(std::time::Duration::from_millis(200)));
        let e = resp.expect_err("a silent daemon must time the client out");
        assert!(t.elapsed() < std::time::Duration::from_millis(800), "{:?}", t.elapsed());
        // The CLI maps exactly that error to the typed protocol failure
        // with the usage exit code — a hung daemon is never exit 1 noise.
        let cli = client_io_error(&ep.describe(), e);
        assert_eq!(cli.code, 2, "{}", cli.message);
        assert!(cli.message.contains("client timeout"), "{}", cli.message);
        // Other socket failures keep the generic class.
        let refused = client_io_error(
            "/nonexistent.sock",
            std::io::Error::new(std::io::ErrorKind::NotFound, "no such socket"),
        );
        assert_eq!(refused.code, 1);
        let _ = hold.join();
    }

    #[test]
    fn asm_and_disasm_round_trip_via_cli() {
        let source = "top: addiu r1, r1, 1\n bne r1, r2, top\n exit";
        let (_, file) =
            execute(Command::Asm { source: source.into(), out: Some("x.bin".into()) }).unwrap();
        let (path, bytes) = file.expect("asm -o produces a file");
        assert_eq!(path, "x.bin");
        let (text, _) = execute(Command::Disasm { image: bytes }).unwrap();
        assert!(text.contains("addiu r1, r1, 1"), "{text}");
    }
}
