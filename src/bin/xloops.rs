//! The `xloops` command-line tool: assemble, disassemble, and simulate
//! XLOOPS binaries, and run the bundled paper kernels. See `xloops help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match xloops::cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match xloops::cli::execute(cmd) {
        Ok((text, file)) => {
            print!("{text}");
            if let Some((path, bytes)) = file {
                if let Err(e) = std::fs::write(&path, bytes) {
                    eprintln!("error writing {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote {path}");
            }
        }
        Err(e) => {
            // Machine-readable mode still gets a parseable document on
            // stdout; the human diagnosis goes to stderr either way.
            if let Some(json) = e.json {
                print!("{json}");
            }
            eprintln!("error: {}", e.message);
            std::process::exit(e.code);
        }
    }
}
