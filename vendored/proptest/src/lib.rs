//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API slice its property tests use: the [`Strategy`] trait with
//! `prop_map`, range/tuple/`any`/`Just`/`select`/`collection::vec`
//! strategies, the `prop_oneof!` union, the `proptest!` test macro with
//! `ProptestConfig::with_cases`, and the `prop_assert*` macros.
//!
//! Semantics: each test runs `cases` deterministic random cases (seeded
//! from the test name, so failures reproduce run-to-run). There is **no
//! shrinking** — a failing case reports its generated inputs via `Debug`
//! and panics. That is a weaker debugging experience than real proptest
//! but identical pass/fail power for a fixed case budget.

use std::rc::Rc;

/// Deterministic xoshiro256++ source driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a test identifier and case index (stable across runs).
    pub fn deterministic(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut x = h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A value generator. Mirrors `proptest::strategy::Strategy` minus
/// shrinking machinery.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, so unions can hold heterogeneous strategies.
trait DynStrategy<V> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.dyn_new_value(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Union<V> {
        Union { options: self.options.clone() }
    }
}

impl<V: std::fmt::Debug> Union<V> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

range_strategy!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($n,)+) = self;
                ($($n.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Full-domain strategy for primitives, mirroring `proptest::arbitrary`.
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// `any::<T>()`: every representable value of `T`, uniformly.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Mirrors `proptest::sample`.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone + std::fmt::Debug>(Vec<T>);

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }

    /// Picks uniformly from `items`; panics if empty.
    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from an empty list");
        Select(items)
    }
}

/// Mirrors `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Vector of generated elements with a length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().new_value(rng);
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// `vec(strategy, lo..hi)`: a vector with `lo..hi` elements.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// A failed (or rejected) test case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold, with an explanation.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
        }
    }
}

/// Runner configuration (only the case budget is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Equal-weight union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} == {:?}: {}",
            l, r, format!($($fmt)*)
        );
    }};
}

/// The test-defining macro. Each `fn name(arg in strategy, ...)` body runs
/// for `cases` deterministic random cases; `prop_assert*` failures and `?`
/// propagation abort the case with a panic that reports the inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategies = ($($crate::Strategy::boxed($strategy),)+);
            #[allow(non_snake_case)]
            let ($($arg,)+) = &strategies;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::new_value($arg, &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $arg.clone();)+
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}\ninputs: {:#?}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e,
                        ($(&$arg,)+)
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
        Pair(u8, u8),
    }

    fn shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            Just(Shape::Dot),
            (1u8..10).prop_map(Shape::Line),
            (0u8..4, any::<u8>()).prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = crate::TestRng::deterministic("t", 3);
        let mut b = crate::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 3u8..9, yz in (0i8..5, any::<bool>())) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0..5).contains(&yz.0));
        }

        #[test]
        fn unions_cover_alternatives(s in shape()) {
            match s {
                Shape::Dot => {}
                Shape::Line(n) => prop_assert!((1..10).contains(&n)),
                Shape::Pair(a, _) => prop_assert!(a < 4),
            }
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u16>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
        }

        #[test]
        fn select_draws_from_list(v in prop::sample::select(vec![1, 2, 3])) {
            prop_assert_ne!(v, 0);
            prop_assert!(v <= 3);
        }
    }
}
