//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny API slice it actually uses: `SmallRng::seed_from_u64` plus
//! `Rng::gen_range` over half-open and inclusive integer ranges and
//! half-open `f32` ranges. The generator is a fixed xoshiro256++ so
//! datasets are deterministic across runs and machines (the only property
//! the kernels' dataset generation relies on).

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Value-producing helpers layered over a raw u64 source (subset of
/// `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit source.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut || self.next_u64())
    }
}

/// Ranges that can produce a uniform sample (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample using the provided u64 source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((next() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return next() as $t;
                }
                lo.wrapping_add((next() % (span + 1)) as $t)
            }
        }
    )*};
}

int_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f32> for Range<f32> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f32 {
        assert!(self.start < self.end, "empty range");
        // 24 uniform mantissa bits in [0, 1).
        let unit = (next() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++ with a
    /// splitmix64-expanded seed — the same construction real `SmallRng`
    /// uses on 64-bit targets).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 stream to fill the state, as the xoshiro authors
            // recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(0..10);
            assert!(v < 10);
            let w: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&w));
            let u: usize = r.gen_range(0..=3);
            assert!(u <= 3);
            let f: f32 = r.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_i8_range_hits_negatives() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut neg = false;
        for _ in 0..100 {
            let v: i8 = r.gen_range(i8::MIN..=i8::MAX);
            neg |= v < 0;
        }
        assert!(neg);
    }
}
