//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the API slice its benches use (`Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, bench_function, finish}`, the
//! `criterion_group!`/`criterion_main!` macros). Unlike a pure compile
//! shim, this harness *measures*: each benchmark is warmed up, then timed
//! over enough iterations to cover a minimum measurement window, and the
//! median per-iteration time (plus throughput, when declared) is printed
//! in a `name ... time: [x ns/iter]` line. No statistics machinery, no
//! HTML reports — numbers suitable for before/after comparisons in
//! EXPERIMENTS.md.

use std::time::{Duration, Instant};

/// Declared workload per iteration, used to derive throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, mirroring criterion's API.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { group: name.to_string(), throughput: None }
    }

    /// Runs a single ungrouped benchmark. Accepts `&str` or `String`
    /// (real criterion takes any `IntoBenchmarkId`).
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name.as_ref(), None, f);
    }
}

/// A named group of benchmarks sharing a throughput declaration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Times one benchmark and prints its result line. Accepts `&str` or
    /// `String` (real criterion takes any `IntoBenchmarkId`).
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, name.as_ref());
        run_bench(&full, self.throughput, f);
    }

    /// Ends the group (printing is incremental; nothing left to flush).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the payload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, collecting per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: size a sample so one sample is >= ~2 ms.
        let calib = Instant::now();
        std::hint::black_box(f());
        let once = calib.elapsed().max(Duration::from_nanos(50));
        let iters =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        const SAMPLES: usize = 15;
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed());
            if start.elapsed() > budget {
                break;
            }
        }
    }

    fn median_ns_per_iter(&self) -> Option<f64> {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return None;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(|d| d.as_nanos()).collect();
        ns.sort_unstable();
        Some(ns[ns.len() / 2] as f64 / self.iters_per_sample as f64)
    }
}

fn run_bench<F>(name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher::default();
    f(&mut b);
    match b.median_ns_per_iter() {
        Some(ns) => {
            let rate = throughput.map(|t| match t {
                Throughput::Elements(n) => format!("  thrpt: {:.3} Melem/s", n as f64 * 1e3 / ns),
                Throughput::Bytes(n) => {
                    format!("  thrpt: {:.3} MiB/s", n as f64 * 1e9 / ns / (1 << 20) as f64)
                }
            });
            println!("{name:40} time: [{} /iter]{}", fmt_ns(ns), rate.unwrap_or_default());
        }
        None => println!("{name:40} time: [no samples]"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirrors criterion's macro: bundles benchmark functions into one runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors criterion's macro: the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::default();
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert!(b.median_ns_per_iter().is_some());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4));
        g.bench_function("add", |b| b.iter(|| std::hint::black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
    }
}
