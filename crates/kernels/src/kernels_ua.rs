//! The `xloop.ua` kernels of Table II: btree, hsort, huffman, rsort.
//! Iterations may execute in any order but their memory updates must
//! appear atomic; the current microarchitecture (like the paper's)
//! guarantees this with the serial-order `om` mechanisms, so results are
//! serial-equivalent and verified against serial references.

use crate::dataset::{pack_bytes, Rng};
use crate::{check_words, Kernel, Suite};

pub fn all() -> Vec<Kernel> {
    vec![btree(), hsort(), huffman(), rsort_ua()]
}

const BTREE_N: usize = 256;

/// Binary-search-tree construction from random integers (custom kernel):
/// each iteration inserts one key, atomically linking itself into the
/// shared tree.
pub fn btree() -> Kernel {
    let keys = Rng::new(0xB7).permutation(BTREE_N as u32);

    // Golden serial insertion. Node i = pool[3i..3i+3] = (key, left, right).
    let mut pool = vec![-1i32; 3 * BTREE_N];
    let mut root = -1i32;
    for (i, &k) in keys.iter().enumerate() {
        pool[3 * i] = k as i32;
        pool[3 * i + 1] = -1;
        pool[3 * i + 2] = -1;
        if root < 0 {
            root = i as i32;
            continue;
        }
        let mut cur = root as usize;
        loop {
            let field = if (k as i32) < pool[3 * cur] { 1 } else { 2 };
            let child = pool[3 * cur + field];
            if child < 0 {
                pool[3 * cur + field] = i as i32;
                break;
            }
            cur = child as usize;
        }
    }

    let asm = format!(
        "
    li r4, 0x1000      # keys
    li r5, 0x2000      # node pool (12 bytes per node)
    li r6, 0x3000      # root cell
    li r2, 0
    li r3, {BTREE_N}
body:
    sll r8, r2, 2
    addu r8, r4, r8
    lw r9, 0(r8)
    li r10, 12
    mul r11, r2, r10
    addu r11, r5, r11
    sw r9, 0(r11)
    li r12, -1
    sw r12, 4(r11)
    sw r12, 8(r11)
    lw r13, 0(r6)
    bge r13, r0, bwalk
    sw r2, 0(r6)
    b bdone
bwalk:
    li r10, 12
    mul r14, r13, r10
    addu r14, r5, r14
    lw r15, 0(r14)
    blt r9, r15, goleft
    lw r16, 8(r14)
    bge r16, r0, goright
    sw r2, 8(r14)
    b bdone
goright:
    move r13, r16
    b bwalk
goleft:
    lw r16, 4(r14)
    bge r16, r0, goleftc
    sw r2, 4(r14)
    b bdone
goleftc:
    move r13, r16
    b bwalk
bdone:
    addiu r2, r2, 1
    xloop.ua body, r2, r3
    exit"
    );
    let segments = vec![
        (0x1000, keys),
        (0x2000, vec![-1i32 as u32; 3 * BTREE_N]),
        (0x3000, vec![-1i32 as u32]),
    ];
    let expected_pool: Vec<u32> = pool.iter().map(|&v| v as u32).collect();
    Kernel::new(
        "btree-ua",
        Suite::Custom,
        "ua,uc",
        asm,
        segments,
        Box::new(move |mem| {
            if mem.read_u32(0x3000) != root as u32 {
                return Err(format!("root {} expected {root}", mem.read_u32(0x3000) as i32));
            }
            check_words("pool", 0x2000, expected_pool.clone())(mem)
        }),
    )
}

const HSORT_N: usize = 512;

/// Heap construction (the insertion phase of heap-sort, custom kernel):
/// each iteration appends to a shared binary min-heap and sifts up.
pub fn hsort() -> Kernel {
    let vals: Vec<u32> = Rng::new(0x45).vec_below(HSORT_N, 10_000);

    let mut heap: Vec<u32> = Vec::new();
    for &v in &vals {
        heap.push(v);
        let mut cur = heap.len() - 1;
        while cur > 0 {
            let parent = (cur - 1) / 2;
            if heap[parent] <= v {
                break;
            }
            heap[cur] = heap[parent];
            heap[parent] = v;
            cur = parent;
        }
    }

    let asm = format!(
        "
    li r4, 0x1000      # input
    li r5, 0x2000      # heap
    li r6, 0x3000      # size cell
    li r2, 0
    li r3, {HSORT_N}
body:
    sll r8, r2, 2
    addu r8, r4, r8
    lw r9, 0(r8)
    lw r10, 0(r6)
    addiu r11, r10, 1
    sw r11, 0(r6)
    sll r12, r10, 2
    addu r12, r5, r12
    sw r9, 0(r12)
hsift:
    beqz r10, hdone
    addiu r13, r10, -1
    srl r13, r13, 1
    sll r14, r13, 2
    addu r14, r5, r14
    lw r15, 0(r14)
    ble r15, r9, hdone
    sll r16, r10, 2
    addu r16, r5, r16
    sw r15, 0(r16)
    sw r9, 0(r14)
    move r10, r13
    b hsift
hdone:
    addiu r2, r2, 1
    xloop.ua body, r2, r3
    exit"
    );
    Kernel::new(
        "hsort-ua",
        Suite::Custom,
        "ua",
        asm,
        vec![(0x1000, vals)],
        Box::new(move |mem| {
            if mem.read_u32(0x3000) != HSORT_N as u32 {
                return Err(format!("heap size {}", mem.read_u32(0x3000)));
            }
            check_words("heap", 0x2000, heap.clone())(mem)
        }),
    )
}

const HUFF_N: usize = 2048;
const HUFF_SYMS: usize = 16;

/// Symbol-frequency histogram of the Huffman encoder (custom kernel):
/// every iteration atomically bumps one of 16 counters — maximal
/// contention on a handful of cells.
pub fn huffman() -> Kernel {
    let mut rng = Rng::new(0x4F);
    // Skewed distribution, as an entropy coder expects.
    let input: Vec<u8> = (0..HUFF_N)
        .map(|_| {
            let r = rng.below(100);
            match r {
                0..=39 => 0,
                40..=64 => 1,
                65..=79 => 2,
                80..=89 => 3,
                _ => 4 + (r % 12) as u8,
            }
        })
        .collect();
    let mut freq = vec![0u32; HUFF_SYMS];
    for &b in &input {
        freq[b as usize] += 1;
    }

    let asm = format!(
        "
    li r4, 0x1000      # input bytes
    li r5, 0x2000      # freq
    li r2, 0
    li r3, {HUFF_N}
body:
    addu r8, r4, r2
    lbu r9, 0(r8)
    sll r9, r9, 2
    addu r9, r5, r9
    lw r10, 0(r9)
    addiu r10, r10, 1
    sw r10, 0(r9)
    addiu r2, r2, 1
    xloop.ua body, r2, r3
    exit"
    );
    Kernel::new(
        "huffman-ua",
        Suite::Custom,
        "ua",
        asm,
        vec![(0x1000, pack_bytes(&input))],
        check_words("freq", 0x2000, freq),
    )
}

pub(crate) const RSORT_N: usize = 512;

pub(crate) fn rsort_input() -> Vec<u32> {
    Rng::new(0x4A).vec_below(RSORT_N, 1 << 16)
}

/// Stable counting sort by the low digit — the golden image of one radix
/// pass.
pub(crate) fn rsort_reference(input: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut hist = vec![0u32; 16];
    for &v in input {
        hist[(v & 15) as usize] += 1;
    }
    let mut offsets = vec![0u32; 16];
    let mut acc = 0;
    for d in 0..16 {
        offsets[d] = acc;
        acc += hist[d];
    }
    let mut cursor = offsets.clone();
    let mut sorted = vec![0u32; input.len()];
    for &v in input {
        let d = (v & 15) as usize;
        sorted[cursor[d] as usize] = v;
        cursor[d] += 1;
    }
    (hist, sorted)
}

/// One pass of incremental radix sort (custom kernel): an `xloop.ua`
/// histogram, a serial prefix-sum, and an `xloop.ua` scatter whose bucket
/// cursors are shared read-modify-write cells.
pub fn rsort_ua() -> Kernel {
    let input = rsort_input();
    let (hist, sorted) = rsort_reference(&input);

    let asm = format!(
        "
    li r4, 0x1000      # input
    li r5, 0x2000      # hist
    li r6, 0x2100      # cursors
    li r7, 0x3000      # sorted
    li r2, 0
    li r3, {RSORT_N}
body:
    sll r8, r2, 2
    addu r8, r4, r8
    lw r9, 0(r8)
    andi r9, r9, 15
    sll r9, r9, 2
    addu r9, r5, r9
    lw r10, 0(r9)
    addiu r10, r10, 1
    sw r10, 0(r9)
    addiu r2, r2, 1
    xloop.ua body, r2, r3
    # serial prefix sum into cursors
    li r11, 0          # acc
    li r12, 0          # d
prefix:
    sll r13, r12, 2
    addu r14, r6, r13
    sw r11, 0(r14)
    addu r13, r5, r13
    lw r13, 0(r13)
    addu r11, r11, r13
    addiu r12, r12, 1
    li r13, 16
    blt r12, r13, prefix
    # scatter pass
    li r2, 0
    li r3, {RSORT_N}
body2:
    sll r8, r2, 2
    addu r8, r4, r8
    lw r9, 0(r8)
    andi r10, r9, 15
    sll r10, r10, 2
    addu r10, r6, r10
    lw r11, 0(r10)
    addiu r12, r11, 1
    sw r12, 0(r10)
    sll r11, r11, 2
    addu r11, r7, r11
    sw r9, 0(r11)
    addiu r2, r2, 1
    xloop.ua body2, r2, r3
    exit"
    );
    Kernel::new(
        "rsort-ua",
        Suite::Custom,
        "ua",
        asm,
        vec![(0x1000, input)],
        Box::new(move |mem| {
            check_words("hist", 0x2000, hist.clone())(mem)?;
            check_words("sorted", 0x3000, sorted.clone())(mem)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ua_kernels_pass_functionally() {
        for k in all() {
            k.run_functional().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }
}
