//! The `xloop.om` / `xloop.orm` kernels of Table II: dynprog, knn,
//! ksack-sm, ksack-lg, war-om, mm, stencil. These exercise the LPSU's
//! memory-dependence speculation: per-lane LSQs, store-address broadcast,
//! and violation squash.

use crate::dataset::Rng;
use crate::kernels_uc::war_parts;
use crate::{check_words, Kernel, Suite};

pub fn all() -> Vec<Kernel> {
    vec![dynprog(), knn(), ksack(true), ksack(false), war_om(), mm(), stencil()]
}

/// 1-D dynamic programming (PolyBench dynprog flavour): each cell is the
/// windowed minimum of the previous `W` cells plus a local weight — a
/// distance-`1..=W` memory recurrence.
pub fn dynprog() -> Kernel {
    const N: usize = 256;
    const W: usize = 4;
    let mut rng = Rng::new(0xD9);
    let w: Vec<u32> = (0..N).map(|_| rng.below(50)).collect();
    let mut c = vec![0u32; N];
    for (i, cell) in c.iter_mut().enumerate().take(W) {
        *cell = 10 * i as u32;
    }
    let init = c.clone();
    for i in W..N {
        let best = (1..=W).map(|k| c[i - k]).min().expect("window");
        c[i] = best + w[i];
    }

    let asm = format!(
        "
    li r4, 0x1000      # c
    li r5, 0x2000      # w
    li r2, {W}
    li r3, {N}
body:
    li r8, 0x7FFFFF
    li r9, 1
dkloop:
    subu r10, r2, r9
    sll r10, r10, 2
    addu r10, r4, r10
    lw r11, 0(r10)
    bge r11, r8, dskip
    move r8, r11
dskip:
    addiu r9, r9, 1
    li r10, {W}
    ble r9, r10, dkloop
    sll r10, r2, 2
    addu r11, r5, r10
    lw r12, 0(r11)
    addu r8, r8, r12
    addu r10, r4, r10
    sw r8, 0(r10)
    addiu r2, r2, 1
    xloop.om body, r2, r3
    exit"
    );
    Kernel::new(
        "dynprog-om",
        Suite::PolyBench,
        "om",
        asm,
        vec![(0x1000, init), (0x2000, w)],
        check_words("c", 0x1000, c),
    )
}

const KNN_M: usize = 128;

/// k-nearest-neighbour construction (PBBS flavour): points insert
/// themselves into per-cell linked lists while searching the list for
/// their nearest earlier neighbour — reads genuinely depend on earlier
/// iterations' inserts (`om`), with an inner search loop (`uc`-free).
pub fn knn() -> Kernel {
    let mut rng = Rng::new(0x88);
    let px: Vec<u32> = (0..KNN_M).map(|_| rng.below(256)).collect();
    let py: Vec<u32> = (0..KNN_M).map(|_| rng.below(256)).collect();

    // Golden reference replicating the kernel exactly.
    let cell = |x: u32, y: u32| ((((x >> 6) & 3) << 2) | ((y >> 6) & 3)) as usize;
    let mut head = [-1i32; 16];
    let mut next = vec![-1i32; KNN_M];
    let mut nn = vec![-1i32; KNN_M];
    for i in 0..KNN_M {
        let c = cell(px[i], py[i]);
        let mut j = head[c];
        let mut bestj = -1i32;
        let mut bestd = 0x7FFFFFi64;
        while j >= 0 {
            let dx = px[i] as i64 - px[j as usize] as i64;
            let dy = py[i] as i64 - py[j as usize] as i64;
            let d = dx * dx + dy * dy;
            if d < bestd {
                bestd = d;
                bestj = j;
            }
            j = next[j as usize];
        }
        next[i] = head[c];
        head[c] = i as i32;
        nn[i] = bestj;
    }

    let asm = format!(
        "
    li r4, 0x1000      # px
    li r5, 0x1400      # py
    li r6, 0x1800      # head (16 cells)
    li r7, 0x1900      # next
    li r21, 0x2000     # nn
    li r2, 0
    li r3, {KNN_M}
body:
    sll r8, r2, 2
    addu r9, r4, r8
    lw r10, 0(r9)
    addu r9, r5, r8
    lw r11, 0(r9)
    srl r12, r10, 6
    andi r12, r12, 3
    sll r12, r12, 2
    srl r13, r11, 6
    andi r13, r13, 3
    or r12, r12, r13
    sll r12, r12, 2
    addu r12, r6, r12
    lw r14, 0(r12)
    li r15, -1
    li r16, 0x7FFFFF
walk:
    blt r14, r0, wdone
    sll r17, r14, 2
    addu r18, r4, r17
    lw r19, 0(r18)
    subu r19, r10, r19
    mul r19, r19, r19
    addu r18, r5, r17
    lw r20, 0(r18)
    subu r20, r11, r20
    mul r20, r20, r20
    addu r19, r19, r20
    bge r19, r16, wnext
    move r16, r19
    move r15, r14
wnext:
    addu r18, r7, r17
    lw r14, 0(r18)
    b walk
wdone:
    lw r17, 0(r12)
    sll r18, r2, 2
    addu r19, r7, r18
    sw r17, 0(r19)
    sw r2, 0(r12)
    addu r19, r21, r18
    sw r15, 0(r19)
    addiu r2, r2, 1
    xloop.om body, r2, r3
    exit"
    );
    let segments = vec![
        (0x1000, px),
        (0x1400, py),
        (0x1800, vec![-1i32 as u32; 16]),
        (0x1900, vec![-1i32 as u32; KNN_M]),
    ];
    let expected: Vec<u32> = nn.iter().map(|&v| v as u32).collect();
    Kernel::new("knn-om", Suite::Pbbs, "om,uc", asm, segments, check_words("nn", 0x2000, expected))
}

/// Unbounded knapsack DP (custom kernel). `small` weights put the
/// dependence distance within the speculation window — nearby iterations
/// collide and squash; large weights rarely do. This is the paper's
/// data-dependent-performance example (static analysis could not predict
/// it).
pub fn ksack(small: bool) -> Kernel {
    const CAP: usize = 200;
    let (name, weights): (&'static str, [u32; 4]) =
        if small { ("ksack-sm-om", [2, 3, 5, 7]) } else { ("ksack-lg-om", [11, 14, 17, 23]) };
    let values: [u32; 4] = [3, 5, 9, 14];
    let mut dp = vec![0u32; CAP];
    for c in 1..CAP {
        let mut best = 0;
        for j in 0..4 {
            if c as u32 >= weights[j] {
                let cand = dp[c - weights[j] as usize] + values[j];
                if cand > best {
                    best = cand;
                }
            }
        }
        dp[c] = best;
    }

    let asm = format!(
        "
    li r4, 0x1000      # dp
    li r5, 0x2000      # weights
    li r6, 0x2100      # values
    li r2, 1
    li r3, {CAP}
body:
    li r8, 0
    li r9, 0
iloop:
    sll r10, r9, 2
    addu r11, r5, r10
    lw r12, 0(r11)
    blt r2, r12, nofit
    subu r13, r2, r12
    sll r13, r13, 2
    addu r13, r4, r13
    lw r14, 0(r13)
    addu r15, r6, r10
    lw r16, 0(r15)
    addu r14, r14, r16
    bge r8, r14, nofit
    move r8, r14
nofit:
    addiu r9, r9, 1
    li r10, 4
    blt r9, r10, iloop
    sll r10, r2, 2
    addu r10, r4, r10
    sw r8, 0(r10)
    addiu r2, r2, 1
    xloop.om body, r2, r3
    exit"
    );
    let segments = vec![(0x2000, weights.to_vec()), (0x2100, values.to_vec())];
    Kernel::new(name, Suite::Custom, "om", asm, segments, check_words("dp", 0x1000, dp))
}

/// Floyd-Warshall with the *middle* i-loop specialized as `xloop.om`
/// (Figure 2's compiler mapping).
pub fn war_om() -> Kernel {
    let (asm, segments, check) = war_parts(false);
    Kernel::new("war-om", Suite::PolyBench, "om", asm, segments, check)
}

const MM_V: usize = 128;
const MM_E: usize = 512;

/// Greedy maximal matching on an undirected graph (PBBS, Figure 3):
/// `out[k++] = i` makes `k` a CIR while the `vertices[]` updates are
/// indirect memory dependences — the compiler maps this to `xloop.orm`.
pub fn mm() -> Kernel {
    let mut rng = Rng::new(0x33);
    let mut edges = Vec::with_capacity(2 * MM_E);
    for _ in 0..MM_E {
        let v = rng.below(MM_V as u32);
        let mut u = rng.below(MM_V as u32);
        if u == v {
            u = (u + 1) % MM_V as u32;
        }
        edges.push(v);
        edges.push(u);
    }
    // Golden greedy matching.
    let mut vertices = vec![-1i32; MM_V];
    let mut out = Vec::new();
    for i in 0..MM_E {
        let (v, u) = (edges[2 * i] as usize, edges[2 * i + 1] as usize);
        if vertices[v] < 0 && vertices[u] < 0 {
            vertices[v] = u as i32;
            vertices[u] = v as i32;
            out.push(i as u32);
        }
    }
    let k = out.len() as u32;

    let asm = format!(
        "
    li r4, 0x1000      # edges (v,u interleaved)
    li r5, 0x2800      # vertices
    li r6, 0x2C00      # out
    li r9, 0           # k (CIR)
    li r2, 0
    li r3, {MM_E}
body:
    sll r8, r2, 3
    addu r8, r4, r8
    lw r10, 0(r8)
    lw r11, 4(r8)
    sll r12, r10, 2
    addu r12, r5, r12
    lw r13, 0(r12)
    bge r13, r0, mskip
    sll r14, r11, 2
    addu r14, r5, r14
    lw r15, 0(r14)
    bge r15, r0, mskip
    sw r11, 0(r12)
    sw r10, 0(r14)
    sll r16, r9, 2
    addu r16, r6, r16
    sw r2, 0(r16)
    addiu r9, r9, 1
mskip:
    addiu r2, r2, 1
    xloop.orm body, r2, r3
    li r4, 0x2FF0
    sw r9, 0(r4)
    exit"
    );
    let segments = vec![(0x1000, edges), (0x2800, vec![-1i32 as u32; MM_V])];
    let expected_vertices: Vec<u32> = vertices.iter().map(|&v| v as u32).collect();
    let out_clone = out.clone();
    Kernel::new(
        "mm-orm",
        Suite::Pbbs,
        "orm,uc",
        asm,
        segments,
        Box::new(move |mem| {
            if mem.read_u32(0x2FF0) != k {
                return Err(format!("matched {} edges, expected {k}", mem.read_u32(0x2FF0)));
            }
            check_words("out", 0x2C00, out_clone.clone())(mem)?;
            check_words("vertices", 0x2800, expected_vertices.clone())(mem)
        }),
    )
}

/// In-place 1-D stencil with a running checksum: the smoothing reads the
/// element the previous iteration wrote (`om`) while the checksum is a
/// CIR (`or`) — together, `xloop.orm`.
pub fn stencil() -> Kernel {
    const N: usize = 256;
    let mut rng = Rng::new(0x57E);
    let a0: Vec<u32> = (0..N).map(|_| rng.below(1000)).collect();
    let mut a = a0.clone();
    let mut sum = 0u32;
    for i in 1..N - 1 {
        a[i] = (a[i - 1] + a[i] + a[i + 1]) >> 2;
        sum = sum.wrapping_add(a[i]);
    }

    let asm = format!(
        "
    li r4, 0x1000      # a
    li r9, 0           # checksum (CIR)
    li r2, 1
    li r3, {bound}
body:
    sll r8, r2, 2
    addu r8, r4, r8
    lw r10, -4(r8)
    lw r11, 0(r8)
    lw r12, 4(r8)
    addu r10, r10, r11
    addu r10, r10, r12
    srl r10, r10, 2
    sw r10, 0(r8)
    addu r9, r9, r10
    addiu r2, r2, 1
    xloop.orm body, r2, r3
    li r4, 0x2000
    sw r9, 0(r4)
    exit",
        bound = N - 1
    );
    Kernel::new(
        "stencil-orm",
        Suite::Pbbs,
        "orm,uc",
        asm,
        vec![(0x1000, a0)],
        Box::new(move |mem| {
            check_words("a", 0x1000, a.clone())(mem)?;
            let got = mem.read_u32(0x2000);
            if got != sum {
                return Err(format!("checksum {got}, expected {sum}"));
            }
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn om_kernels_pass_functionally() {
        for k in all() {
            k.run_functional().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn ksack_variants_share_code_but_not_data() {
        // The structural property the paper's data-dependent results rely
        // on: same binary shape, different dependence distances in memory.
        let sm = ksack(true);
        let lg = ksack(false);
        assert_eq!(sm.asm, lg.asm, "identical code");
        let mut sm_mem = xloops_mem::Memory::new();
        let mut lg_mem = xloops_mem::Memory::new();
        sm.init_memory(&mut sm_mem);
        lg.init_memory(&mut lg_mem);
        assert_ne!(sm_mem.read_u32(0x2000), lg_mem.read_u32(0x2000), "different weights");
    }
}
