//! Seeded dataset generation. All kernels use this deterministic generator
//! so every run of the suite sees identical inputs.

use rand::rngs::SmallRng;
use rand::{Rng as _, SeedableRng};

/// A deterministic random source for kernel datasets.
///
/// Thin wrapper over a seeded [`SmallRng`]; each kernel constructs it with
/// its own fixed seed so datasets are stable across runs and machines.
pub struct Rng {
    inner: SmallRng,
}

impl Rng {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Rng {
        Rng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Uniform `u32` in `[0, bound)`.
    pub fn below(&mut self, bound: u32) -> u32 {
        self.inner.gen_range(0..bound)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.inner.gen_range(lo..hi)
    }

    /// A vector of `n` values below `bound`.
    pub fn vec_below(&mut self, n: usize, bound: u32) -> Vec<u32> {
        (0..n).map(|_| self.below(bound)).collect()
    }

    /// An `f32` in `[0, 1)`, returned as raw register bits.
    pub fn f32_bits(&mut self) -> u32 {
        self.inner.gen_range(0.0f32..1.0).to_bits()
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..n).collect();
        for i in (1..v.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            v.swap(i, j);
        }
        v
    }
}

/// Packs bytes into little-endian words for memory segments (zero-padded).
pub fn pack_bytes(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks(4)
        .map(|c| {
            let mut w = [0u8; 4];
            w[..c.len()].copy_from_slice(c);
            u32::from_le_bytes(w)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u32> = Rng::new(7).vec_below(32, 1000);
        let b: Vec<u32> = Rng::new(7).vec_below(32, 1000);
        assert_eq!(a, b);
        let c: Vec<u32> = Rng::new(8).vec_below(32, 1000);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut p = Rng::new(3).permutation(64);
        p.sort_unstable();
        assert_eq!(p, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn pack_bytes_little_endian() {
        assert_eq!(pack_bytes(&[1, 2, 3, 4, 5]), vec![0x04030201, 0x0000_0005]);
    }
}
