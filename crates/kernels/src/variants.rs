//! Table IV case-study variants: hand-optimized `xloop.or` schedules
//! (`*-or-opt`) and alternative loop parallelization strategies that turn
//! ordered or dynamic-bound loops into plain `xloop.uc` loops.

use crate::dataset::pack_bytes;
use crate::kernels_db::{bfs_graph, qsort_check, qsort_input, BFS_V, QSORT_N};
use crate::kernels_or::{
    adpcm, dither_input, dither_or, dither_reference, kmeans_points, kmeans_reference, sha,
    DITHER_H, DITHER_W, KMEANS_CENTROIDS, KMEANS_N,
};
use crate::kernels_ua::{rsort_input, rsort_reference, RSORT_N};
use crate::{check_bytes, check_words, Kernel, Suite};

pub fn all() -> Vec<Kernel> {
    vec![
        adpcm(true),
        dither_or(true),
        sha(true),
        bfs_uc(),
        dither_uc(),
        kmeans_uc(),
        qsort_uc(),
        rsort_uc(),
    ]
}

/// Level-synchronous BFS: the worklist disappears; an outer plain loop
/// walks levels and an inner `xloop.uc` sweeps all vertices, relaxing
/// those on the current level with `amo.min`.
pub fn bfs_uc() -> Kernel {
    let (row_ptr, cols, dist) = bfs_graph();
    const LEVELS: usize = 24;
    assert!(dist.iter().all(|&d| (d as usize) < LEVELS), "level cap must cover the graph diameter");

    let asm = format!(
        "
    li r4, 0x1000      # row_ptr
    li r5, 0x1200      # cols
    li r6, 0x2000      # dist
    li r20, 0          # level
    li r21, {LEVELS}
lvloop:
    li r2, 0
    li r3, {BFS_V}
body:
    sll r8, r2, 2
    addu r9, r6, r8
    lw r10, 0(r9)
    bne r10, r20, vdone   # only vertices on the current level expand
    addu r11, r4, r8
    lw r12, 0(r11)
    lw r13, 4(r11)
    addiu r14, r20, 1
nloop:
    bge r12, r13, vdone
    sll r15, r12, 2
    addu r15, r5, r15
    lw r16, 0(r15)
    sll r17, r16, 2
    addu r17, r6, r17
    amo.min r18, (r17), r14
    addiu r12, r12, 1
    b nloop
vdone:
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    addiu r20, r20, 1
    blt r20, r21, lvloop
    exit"
    );
    let mut dist_init = vec![0x7FFFFFu32; BFS_V];
    dist_init[0] = 0;
    Kernel::new(
        "bfs-uc",
        Suite::Custom,
        "uc",
        asm,
        vec![(0x1000, row_ptr), (0x1200, cols), (0x2000, dist_init)],
        check_words("dist", 0x2000, dist),
    )
}

/// Row-parallel dithering: rows are independent (the error resets per
/// row), so an `xloop.uc` over rows with the diffusion loop inside each
/// iteration computes the identical image without any CIR.
pub fn dither_uc() -> Kernel {
    // Same dataset and golden output as the -or kernel: per-row private
    // error gives an identical image.
    let img = dither_input();
    let expected = dither_reference(&img);
    let img_words = pack_bytes(&img);
    const W: usize = DITHER_W;
    const H: usize = DITHER_H;

    let asm = format!(
        "
    li r4, 0x1000      # img
    li r5, 0x2000      # out
    li r2, 0
    li r3, {H}
body:
    sll r8, r2, 6      # row offset (W = 64)
    addu r9, r4, r8
    addu r10, r5, r8
    li r11, 0          # x
    li r12, 0          # private err
xline:
    addu r13, r9, r11
    lbu r14, 0(r13)
    addu r14, r14, r12
    li r15, 0
    li r16, 127
    ble r14, r16, xdark
    li r15, 255
    addiu r14, r14, -255
xdark:
    move r12, r14
    addu r13, r10, r11
    sb r15, 0(r13)
    addiu r11, r11, 1
    li r16, {W}
    blt r11, r16, xline
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit"
    );
    Kernel::new(
        "dither-uc",
        Suite::Custom,
        "uc",
        asm,
        vec![(0x1000, img_words)],
        check_bytes("out", 0x2000, expected),
    )
}

/// k-means assignment with atomic accumulation: per-cluster sums and
/// counts move from CIRs into memory cells updated with `amo.add`, making
/// the loop `uc` (the privatize-and-reduce transformation).
pub fn kmeans_uc() -> Kernel {
    let points = kmeans_points();
    let (sums, counts) = kmeans_reference(&points);
    let c = KMEANS_CENTROIDS;

    let asm = format!(
        "
    li r4, 0x1000      # points
    li r5, 0x2000      # sums (4) then counts (4)
    li r24, {c0}
    li r25, {c1}
    li r26, {c2}
    li r27, {c3}
    li r2, 0
    li r3, {KMEANS_N}
body:
    sll r6, r2, 2
    addu r6, r4, r6
    lw r6, 0(r6)
    subu r7, r6, r24
    bge r7, r0, a0
    subu r7, r0, r7
a0:
    li r8, 0
    move r9, r7
    subu r7, r6, r25
    bge r7, r0, a1
    subu r7, r0, r7
a1:
    bge r7, r9, a2
    li r8, 1
    move r9, r7
a2:
    subu r7, r6, r26
    bge r7, r0, a3
    subu r7, r0, r7
a3:
    bge r7, r9, a4
    li r8, 2
    move r9, r7
a4:
    subu r7, r6, r27
    bge r7, r0, a5
    subu r7, r0, r7
a5:
    bge r7, r9, a6
    li r8, 3
    move r9, r7
a6:
    sll r10, r8, 2
    addu r11, r5, r10
    amo.add r12, (r11), r6
    addiu r11, r11, 16
    li r13, 1
    amo.add r12, (r11), r13
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit",
        c0 = c[0],
        c1 = c[1],
        c2 = c[2],
        c3 = c[3],
    );
    let expected: Vec<u32> = sums.iter().chain(counts.iter()).copied().collect();
    Kernel::new(
        "kmeans-uc",
        Suite::Custom,
        "uc",
        asm,
        vec![(0x1000, points)],
        check_words("sums+counts", 0x2000, expected),
    )
}

/// Level-synchronous quicksort: partitions of one level are processed by
/// an inner `xloop.uc` that writes next-level partitions into a second
/// worklist (split worklists instead of one dynamic-bound list).
pub fn qsort_uc() -> Kernel {
    let input = qsort_input();
    const LEVELS: usize = 32;

    // Worklist A at 0x3000, worklist B at 0x4800, tails at 0x6000/0x6004.
    // Each level swaps the roles via pointer registers.
    let asm = format!(
        "
    li r4, 0x1000      # a
    li r7, 0x3000      # current worklist
    li r6, 0x6000      # current tail cell
    li r28, 0x4800     # next worklist
    li r29, 0x6004     # next tail cell
    li r20, 0          # level
    li r21, {LEVELS}
lvloop:
    sw r0, 0(r29)      # next tail = 0
    li r2, 0
    lw r3, 0(r6)       # bound = current tail (fixed within the level)
    beqz r3, lvnext
body:
    sll r8, r2, 3
    addu r8, r7, r8
    lw r9, 0(r8)       # lo
    lw r10, 4(r8)      # hi
    bge r9, r10, qdone
    sll r11, r10, 2
    addu r11, r4, r11
    lw r12, 0(r11)
    move r13, r9
    move r14, r9
qscan:
    bge r14, r10, qscand
    sll r15, r14, 2
    addu r15, r4, r15
    lw r16, 0(r15)
    bge r16, r12, qnext
    sll r17, r13, 2
    addu r17, r4, r17
    lw r18, 0(r17)
    sw r16, 0(r17)
    sw r18, 0(r15)
    addiu r13, r13, 1
qnext:
    addiu r14, r14, 1
    b qscan
qscand:
    sll r17, r13, 2
    addu r17, r4, r17
    lw r18, 0(r17)
    sw r12, 0(r17)
    sw r18, 0(r11)
    li r19, 2
    amo.add r20x, (r29), r19
    sll r22, r20x, 3
    addu r22, r28, r22
    addiu r23, r13, -1
    sw r9, 0(r22)
    sw r23, 4(r22)
    addiu r23, r13, 1
    sw r23, 8(r22)
    sw r10, 12(r22)
qdone:
    addiu r2, r2, 1
    xloop.uc body, r2, r3
lvnext:
    # swap current/next worklists and tails
    move r22, r7
    move r7, r28
    move r28, r22
    move r22, r6
    move r6, r29
    move r29, r22
    addiu r20, r20, 1
    blt r20, r21, lvloop
    exit"
    );
    let asm = asm.replace("r20x", "r24");
    let segments = vec![
        (0x1000, input),
        (0x3000, vec![0u32, QSORT_N as u32 - 1]),
        (0x6000, vec![1u32]),
        (0x6004, vec![0u32]),
    ];
    Kernel::new("qsort-uc", Suite::Custom, "uc", asm, segments, qsort_check())
}

/// Radix-sort pass with atomic histogram and cursor updates: both loops
/// become `xloop.uc`. Bucket contents are order-sensitive under `uc`, so
/// verification checks the histogram plus per-bucket multisets.
pub fn rsort_uc() -> Kernel {
    let input = rsort_input();
    let (hist, sorted) = rsort_reference(&input);

    let asm = format!(
        "
    li r4, 0x1000      # input
    li r5, 0x2000      # hist
    li r6, 0x2100      # cursors
    li r7, 0x3000      # sorted
    li r2, 0
    li r3, {RSORT_N}
body:
    sll r8, r2, 2
    addu r8, r4, r8
    lw r9, 0(r8)
    andi r9, r9, 15
    sll r9, r9, 2
    addu r9, r5, r9
    li r10, 1
    amo.add r11, (r9), r10
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    li r11, 0
    li r12, 0
prefix:
    sll r13, r12, 2
    addu r14, r6, r13
    sw r11, 0(r14)
    addu r13, r5, r13
    lw r13, 0(r13)
    addu r11, r11, r13
    addiu r12, r12, 1
    li r13, 16
    blt r12, r13, prefix
    li r2, 0
    li r3, {RSORT_N}
body2:
    sll r8, r2, 2
    addu r8, r4, r8
    lw r9, 0(r8)
    andi r10, r9, 15
    sll r10, r10, 2
    addu r10, r6, r10
    li r12, 1
    amo.add r11, (r10), r12
    sll r11, r11, 2
    addu r11, r7, r11
    sw r9, 0(r11)
    addiu r2, r2, 1
    xloop.uc body2, r2, r3
    exit"
    );
    // Verification: exact histogram; per-bucket multiset equality (bucket
    // boundaries from the stable reference are the same).
    let bucket_bounds: Vec<(usize, usize)> = {
        let mut bounds = Vec::new();
        let mut start = 0usize;
        for &h in &hist {
            let len = h as usize;
            bounds.push((start, start + len));
            start += len;
        }
        bounds
    };
    let sorted_ref = sorted;
    let hist_ref = hist;
    Kernel::new(
        "rsort-uc",
        Suite::Custom,
        "uc",
        asm,
        vec![(0x1000, input)],
        Box::new(move |mem| {
            check_words("hist", 0x2000, hist_ref.clone())(mem)?;
            for (d, &(lo, hi)) in bucket_bounds.iter().enumerate() {
                let mut got: Vec<u32> =
                    (lo..hi).map(|i| mem.read_u32(0x3000 + 4 * i as u32)).collect();
                let mut want: Vec<u32> = sorted_ref[lo..hi].to_vec();
                got.sort_unstable();
                want.sort_unstable();
                if got != want {
                    return Err(format!("bucket {d} multiset mismatch"));
                }
            }
            Ok(())
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_pass_functionally() {
        for k in all() {
            k.run_functional().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn pack_bytes_is_reexported_for_this_module() {
        // Keep the import honest if variants stop using it.
        assert_eq!(pack_bytes(&[1]), vec![1]);
    }
}
