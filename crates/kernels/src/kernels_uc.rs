//! The `xloop.uc` kernels of Table II: rgb2cmyk, sgemm, ssearch, symm-uc,
//! viterbi, war-uc.

use crate::dataset::{pack_bytes, Rng};
use crate::{check_bytes, check_words, Kernel, Suite};

pub fn all() -> Vec<Kernel> {
    vec![rgb2cmyk(), sgemm(), ssearch(), symm_uc(), viterbi(), war_uc()]
}

/// Color-space conversion on a test image (custom kernel).
pub fn rgb2cmyk() -> Kernel {
    const N: usize = 1024;
    let mut rng = Rng::new(0xC01);
    let r: Vec<u8> = (0..N).map(|_| rng.below(256) as u8).collect();
    let g: Vec<u8> = (0..N).map(|_| rng.below(256) as u8).collect();
    let b: Vec<u8> = (0..N).map(|_| rng.below(256) as u8).collect();

    // Golden reference.
    let mut c = vec![0u8; N];
    let mut m = vec![0u8; N];
    let mut y = vec![0u8; N];
    let mut k = vec![0u8; N];
    for i in 0..N {
        let mx = r[i].max(g[i]).max(b[i]);
        k[i] = 255 - mx;
        c[i] = mx - r[i];
        m[i] = mx - g[i];
        y[i] = mx - b[i];
    }

    let asm = format!(
        "
    li r4, 0x1000      # R
    li r5, 0x1400      # G
    li r6, 0x1800      # B
    li r7, 0x2000      # C
    li r8, 0x2400      # M
    li r9, 0x2800      # Y
    li r10, 0x2C00     # K
    li r2, 0
    li r3, {N}
body:
    addu r11, r4, r2
    lbu r12, 0(r11)
    addu r11, r5, r2
    lbu r13, 0(r11)
    addu r11, r6, r2
    lbu r14, 0(r11)
    move r15, r12
    bge r15, r13, s1
    move r15, r13
s1:
    bge r15, r14, s2
    move r15, r14
s2:
    li r16, 255
    subu r17, r16, r15
    subu r18, r15, r12
    subu r19, r15, r13
    subu r20, r15, r14
    addu r11, r7, r2
    sb r18, 0(r11)
    addu r11, r8, r2
    sb r19, 0(r11)
    addu r11, r9, r2
    sb r20, 0(r11)
    addu r11, r10, r2
    sb r17, 0(r11)
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit"
    );
    let segments =
        vec![(0x1000, pack_bytes(&r)), (0x1400, pack_bytes(&g)), (0x1800, pack_bytes(&b))];
    let (cc, mm, yy) = (c.clone(), m.clone(), y.clone());
    Kernel::new(
        "rgb2cmyk-uc",
        Suite::Custom,
        "uc",
        asm,
        segments,
        Box::new(move |mem| {
            check_bytes("c", 0x2000, cc.clone())(mem)?;
            check_bytes("m", 0x2400, mm.clone())(mem)?;
            check_bytes("y", 0x2800, yy.clone())(mem)?;
            check_bytes("k", 0x2C00, k.clone())(mem)
        }),
    )
}

/// Single-precision matrix multiply, square matrices (custom kernel).
pub fn sgemm() -> Kernel {
    const N: usize = 16;
    let mut rng = Rng::new(0x5E);
    let a: Vec<f32> = (0..N * N).map(|_| rng.below(16) as f32 / 4.0).collect();
    let b: Vec<f32> = (0..N * N).map(|_| rng.below(16) as f32 / 4.0).collect();
    let mut c = vec![0f32; N * N];
    for i in 0..N {
        for j in 0..N {
            let mut acc = 0f32;
            for k in 0..N {
                acc += a[i * N + k] * b[k * N + j];
            }
            c[i * N + j] = acc;
        }
    }

    let asm = format!(
        "
    li r4, 0x3000   # A
    li r5, 0x3400   # B
    li r6, 0x3800   # C
    li r2, 0
    li r3, {N}
body:
    sll r7, r2, 6
    addu r7, r4, r7
    li r8, 0
jloop:
    li r9, 0
    li r10, 0
    sll r11, r8, 2
    addu r11, r5, r11
    move r12, r7
kloop:
    lw r13, 0(r12)
    lw r14, 0(r11)
    fmul.s r15, r13, r14
    fadd.s r10, r10, r15
    addiu r12, r12, 4
    addiu r11, r11, 64
    addiu r9, r9, 1
    li r16, {N}
    blt r9, r16, kloop
    sll r17, r2, 6
    sll r18, r8, 2
    addu r17, r17, r18
    addu r17, r6, r17
    sw r10, 0(r17)
    addiu r8, r8, 1
    li r16, {N}
    blt r8, r16, jloop
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit"
    );
    let segments = vec![
        (0x3000, a.iter().map(|v| v.to_bits()).collect()),
        (0x3400, b.iter().map(|v| v.to_bits()).collect()),
    ];
    let expected: Vec<u32> = c.iter().map(|v| v.to_bits()).collect();
    Kernel::new("sgemm-uc", Suite::Custom, "uc", asm, segments, check_words("C", 0x3800, expected))
}

/// The mid-size sgemm input: 96×96 matrices, 216× the inner-loop
/// iteration count of the Table II point (96³ vs 16³). Built for the
/// interval-sampled / fast-forward path — it is reachable through
/// [`crate::by_name`] but deliberately **not** part of [`crate::table2`],
/// so no full cycle-accurate artifact ever sweeps it. The row stride no
/// longer fits a shift, so addresses are formed with `mul` against a
/// register-held stride; the dataset lives above the Table II heap
/// (0x10000/0x20000/0x30000) to keep the 0x1000..0x7000 oracle span
/// untouched.
pub fn sgemm_scaled() -> Kernel {
    const N: usize = 96;
    let mut rng = Rng::new(0x5E96);
    let a: Vec<f32> = (0..N * N).map(|_| rng.below(16) as f32 / 4.0).collect();
    let b: Vec<f32> = (0..N * N).map(|_| rng.below(16) as f32 / 4.0).collect();
    let mut c = vec![0f32; N * N];
    for i in 0..N {
        for j in 0..N {
            let mut acc = 0f32;
            for k in 0..N {
                acc += a[i * N + k] * b[k * N + j];
            }
            c[i * N + j] = acc;
        }
    }

    let stride = N * 4;
    let asm = format!(
        "
    li r4, 0x10000  # A
    li r5, 0x20000  # B
    li r6, 0x30000  # C
    li r2, 0
    li r3, {N}
    li r19, {stride} # row stride in bytes
body:
    mul r7, r2, r19
    addu r7, r4, r7  # &A[i][0]
    li r8, 0
jloop:
    li r9, 0
    li r10, 0
    sll r11, r8, 2
    addu r11, r5, r11 # &B[0][j]
    move r12, r7
kloop:
    lw r13, 0(r12)
    lw r14, 0(r11)
    fmul.s r15, r13, r14
    fadd.s r10, r10, r15
    addiu r12, r12, 4
    addu r11, r11, r19
    addiu r9, r9, 1
    blt r9, r3, kloop
    mul r17, r2, r19
    sll r18, r8, 2
    addu r17, r17, r18
    addu r17, r6, r17
    sw r10, 0(r17)
    addiu r8, r8, 1
    blt r8, r3, jloop
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit"
    );
    let segments = vec![
        (0x10000, a.iter().map(|v| v.to_bits()).collect()),
        (0x20000, b.iter().map(|v| v.to_bits()).collect()),
    ];
    let expected: Vec<u32> = c.iter().map(|v| v.to_bits()).collect();
    Kernel::new(
        "sgemm-uc-scaled",
        Suite::Custom,
        "uc",
        asm,
        segments,
        check_words("C", 0x30000, expected),
    )
}

/// Knuth-Morris-Pratt substring search over a collection of byte streams
/// (custom kernel).
pub fn ssearch() -> Kernel {
    const STREAMS: usize = 16;
    const LEN: usize = 128;
    const M: usize = 8;
    let mut rng = Rng::new(0x5EA);
    let pattern: Vec<u8> = b"abcabcad".to_vec();
    debug_assert_eq!(pattern.len(), M);
    let mut texts = Vec::with_capacity(STREAMS);
    for _ in 0..STREAMS {
        let mut t: Vec<u8> = (0..LEN).map(|_| b'a' + rng.below(4) as u8).collect();
        // Plant the pattern a few times so counts are non-trivial.
        for _ in 0..rng.below(4) {
            let pos = rng.below((LEN - M) as u32) as usize;
            t[pos..pos + M].copy_from_slice(&pattern);
        }
        texts.push(t);
    }
    // Failure table.
    let mut fail = vec![0u32; M];
    let mut k = 0usize;
    for j in 1..M {
        while k > 0 && pattern[j] != pattern[k] {
            k = fail[k - 1] as usize;
        }
        if pattern[j] == pattern[k] {
            k += 1;
        }
        fail[j] = k as u32;
    }
    // Golden reference: overlapping match counts per stream.
    let mut counts = vec![0u32; STREAMS];
    for (s, t) in texts.iter().enumerate() {
        let mut j = 0usize;
        for &ch in t {
            while j > 0 && pattern[j] != ch {
                j = fail[j - 1] as usize;
            }
            if pattern[j] == ch {
                j += 1;
            }
            if j == M {
                counts[s] += 1;
                j = fail[j - 1] as usize;
            }
        }
    }

    let asm = format!(
        "
    li r4, 0x4000
    li r5, 0x5000
    li r6, 0x5100
    li r7, 0x5200
    li r2, 0
    li r3, {STREAMS}
body:
    sll r8, r2, 7
    addu r8, r4, r8
    li r9, 0
    li r10, 0
    li r11, 0
tloop:
    addu r12, r8, r9
    lbu r13, 0(r12)
wloop:
    beqz r10, wdone
    addu r14, r5, r10
    lbu r15, 0(r14)
    beq r15, r13, wdone
    sll r14, r10, 2
    addu r14, r6, r14
    lw r10, -4(r14)
    b wloop
wdone:
    addu r14, r5, r10
    lbu r15, 0(r14)
    bne r15, r13, nomatch
    addiu r10, r10, 1
nomatch:
    li r16, {M}
    bne r10, r16, nofull
    addiu r11, r11, 1
    sll r14, r10, 2
    addu r14, r6, r14
    lw r10, -4(r14)
nofull:
    addiu r9, r9, 1
    li r16, {LEN}
    blt r9, r16, tloop
    sll r14, r2, 2
    addu r14, r7, r14
    sw r11, 0(r14)
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit"
    );
    let mut text_words = Vec::new();
    for t in &texts {
        text_words.extend(pack_bytes(t));
    }
    let segments = vec![(0x4000, text_words), (0x5000, pack_bytes(&pattern)), (0x5100, fail)];
    Kernel::new(
        "ssearch-uc",
        Suite::Custom,
        "uc",
        asm,
        segments,
        check_words("count", 0x5200, counts),
    )
}

/// PolyBench symm-style kernel: `C = A·B` with `A` symmetric, stored as
/// its lower triangle (accesses `A[i][k]` for `k ≤ i`, `A[k][i]` above).
pub fn symm_uc() -> Kernel {
    symm_kernel("symm-uc", true)
}

pub(crate) fn symm_kernel(name: &'static str, unordered: bool) -> Kernel {
    const N: usize = 12;
    let mut rng = Rng::new(0x57);
    let a: Vec<f32> = (0..N * N).map(|_| rng.below(8) as f32 / 2.0).collect();
    let b: Vec<f32> = (0..N * N).map(|_| rng.below(8) as f32 / 2.0).collect();
    let sym = |a: &[f32], i: usize, k: usize| if k <= i { a[i * N + k] } else { a[k * N + i] };
    let mut c = vec![0f32; N * N];
    for i in 0..N {
        for j in 0..N {
            let mut acc = 0f32;
            for k in 0..N {
                acc += sym(&a, i, k) * b[k * N + j];
            }
            c[i * N + j] = acc;
        }
    }

    // The -uc variant parallelizes the i loop; the -or variant instead
    // annotates the accumulation loop (acc is the CIR) with the i and j
    // loops plain — the paper's two symm rows.
    let asm = if unordered {
        format!(
            "
    li r4, 0x6000
    li r5, 0x6400
    li r6, 0x6800
    li r2, 0
    li r3, {N}
body:
    li r8, 0
sjloop:
    li r9, 0
    li r10, 0
skloop:
    ble r9, r2, lower
    li r11, 48
    mul r12, r9, r11
    sll r13, r2, 2
    b haveaddr
lower:
    li r11, 48
    mul r12, r2, r11
    sll r13, r9, 2
haveaddr:
    addu r12, r12, r13
    addu r12, r4, r12
    lw r14, 0(r12)
    li r11, 48
    mul r12, r9, r11
    sll r13, r8, 2
    addu r12, r12, r13
    addu r12, r5, r12
    lw r15, 0(r12)
    fmul.s r16, r14, r15
    fadd.s r10, r10, r16
    addiu r9, r9, 1
    li r11, {N}
    blt r9, r11, skloop
    li r11, 48
    mul r12, r2, r11
    sll r13, r8, 2
    addu r12, r12, r13
    addu r12, r6, r12
    sw r10, 0(r12)
    addiu r8, r8, 1
    li r11, {N}
    blt r8, r11, sjloop
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit"
        )
    } else {
        format!(
            "
    li r4, 0x6000
    li r5, 0x6400
    li r6, 0x6800
    li r20, 0          # i
    li r21, {N}
siloop:
    li r8, 0           # j
sjloop:
    li r10, 0          # acc (CIR of the inner xloop)
    li r2, 0           # k
    li r3, {N}
body:
    ble r2, r20, lower
    li r11, 48
    mul r12, r2, r11
    sll r13, r20, 2
    b haveaddr
lower:
    li r11, 48
    mul r12, r20, r11
    sll r13, r2, 2
haveaddr:
    addu r12, r12, r13
    addu r12, r4, r12
    lw r14, 0(r12)
    li r11, 48
    mul r12, r2, r11
    sll r13, r8, 2
    addu r12, r12, r13
    addu r12, r5, r12
    lw r15, 0(r12)
    fmul.s r16, r14, r15
    fadd.s r10, r10, r16
    addiu r2, r2, 1
    xloop.or body, r2, r3
    li r11, 48
    mul r12, r20, r11
    sll r13, r8, 2
    addu r12, r12, r13
    addu r12, r6, r12
    sw r10, 0(r12)
    addiu r8, r8, 1
    li r11, {N}
    blt r8, r11, sjloop
    addiu r20, r20, 1
    blt r20, r21, siloop
    exit"
        )
    };
    let segments = vec![
        (0x6000, a.iter().map(|v| v.to_bits()).collect()),
        (0x6400, b.iter().map(|v| v.to_bits()).collect()),
    ];
    let expected: Vec<u32> = c.iter().map(|v| v.to_bits()).collect();
    Kernel::new(
        name,
        Suite::PolyBench,
        if unordered { "uc" } else { "or" },
        asm,
        segments,
        check_words("C", 0x6800, expected),
    )
}

/// Viterbi decoding of convolutionally-encoded frames (custom kernel):
/// 4-state trellis, 16 steps per frame, 64 independent frames.
pub fn viterbi() -> Kernel {
    const FRAMES: usize = 64;
    const STEPS: usize = 16;
    const STATES: usize = 4;
    let mut rng = Rng::new(0x71);
    let tc: Vec<u32> = (0..STATES * STATES).map(|_| rng.below(10)).collect();
    let obs: Vec<u8> = (0..FRAMES * STEPS).map(|_| rng.below(4) as u8).collect();

    // Golden reference.
    let mut out = vec![0u32; FRAMES];
    for f in 0..FRAMES {
        let mut pm = [0u32; STATES];
        for t in 0..STEPS {
            let o = obs[f * STEPS + t] as u32;
            let mut new = [0u32; STATES];
            for s in 0..STATES {
                let mut best = 0x7FFFFFu32;
                for p in 0..STATES {
                    let cand = pm[p] + tc[p * STATES + s];
                    if cand < best {
                        best = cand;
                    }
                }
                new[s] = best + ((o ^ s as u32) & 3) * 4;
            }
            pm = new;
        }
        out[f] = *pm.iter().min().expect("states");
    }

    let asm = format!(
        "
    li r4, 0x1000   # tc
    li r5, 0x1100   # obs
    li r6, 0x1600   # out
    li r7, 0x1800   # per-frame scratch
    li r2, 0
    li r3, {FRAMES}
body:
    sll r8, r2, 5
    addu r8, r7, r8
    sw r0, 0(r8)
    sw r0, 4(r8)
    sw r0, 8(r8)
    sw r0, 12(r8)
    sll r9, r2, 4
    addu r9, r5, r9
    li r10, 0
tvloop:
    addu r11, r9, r10
    lbu r11, 0(r11)
    li r12, 0
vsloop:
    li r13, 0x7FFFFF
    li r14, 0
vploop:
    sll r15, r14, 2
    addu r16, r8, r15
    lw r16, 0(r16)
    sll r17, r14, 4
    sll r18, r12, 2
    addu r17, r17, r18
    addu r17, r4, r17
    lw r17, 0(r17)
    addu r16, r16, r17
    bge r16, r13, vskip
    move r13, r16
vskip:
    addiu r14, r14, 1
    li r15, {STATES}
    blt r14, r15, vploop
    xor r15, r11, r12
    andi r15, r15, 3
    sll r15, r15, 2
    addu r13, r13, r15
    sll r15, r12, 2
    addu r15, r8, r15
    sw r13, 16(r15)
    addiu r12, r12, 1
    li r15, {STATES}
    blt r12, r15, vsloop
    lw r15, 16(r8)
    sw r15, 0(r8)
    lw r15, 20(r8)
    sw r15, 4(r8)
    lw r15, 24(r8)
    sw r15, 8(r8)
    lw r15, 28(r8)
    sw r15, 12(r8)
    addiu r10, r10, 1
    li r15, {STEPS}
    blt r10, r15, tvloop
    lw r13, 0(r8)
    lw r15, 4(r8)
    bge r15, r13, v1
    move r13, r15
v1:
    lw r15, 8(r8)
    bge r15, r13, v2
    move r13, r15
v2:
    lw r15, 12(r8)
    bge r15, r13, v3
    move r13, r15
v3:
    sll r15, r2, 2
    addu r15, r6, r15
    sw r13, 0(r15)
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit"
    );
    let segments = vec![(0x1000, tc), (0x1100, pack_bytes(&obs))];
    Kernel::new(
        "viterbi-uc",
        Suite::Custom,
        "uc",
        asm,
        segments,
        check_words("metric", 0x1600, out),
    )
}

/// Floyd-Warshall with the inner j-loop specialized (`war-uc`); the om
/// variant in `kernels_om` annotates the middle i-loop instead (Figure 2).
pub fn war_uc() -> Kernel {
    let (asm, segments, check) = war_parts(true);
    Kernel::new("war-uc", Suite::PolyBench, "uc", asm, segments, check)
}

pub(crate) fn war_parts(inner_uc: bool) -> (String, Vec<(u32, Vec<u32>)>, crate::CheckFn) {
    const N: usize = 16;
    const INF: u32 = 1 << 20;
    let mut rng = Rng::new(0xFA);
    let mut path = vec![INF; N * N];
    for i in 0..N {
        path[i * N + i] = 0;
    }
    for _ in 0..3 * N {
        let u = rng.below(N as u32) as usize;
        let v = rng.below(N as u32) as usize;
        let w = 1 + rng.below(20);
        if u != v && w < path[u * N + v] {
            path[u * N + v] = w;
        }
    }
    let init = path.clone();
    for k in 0..N {
        for i in 0..N {
            for j in 0..N {
                let cand = path[i * N + k] + path[k * N + j];
                if cand < path[i * N + j] {
                    path[i * N + j] = cand;
                }
            }
        }
    }

    // war-uc: inner j-loop is the xloop; war-om: middle i-loop is the
    // xloop (its body contains the plain j loop).
    let asm = if inner_uc {
        format!(
            "
    li r4, 0x6000
    li r20, 0
    li r21, {N}
kloop:
    li r22, 0
iloop:
    li r2, 0
    li r3, {N}
body:
    sll r8, r22, 6
    addu r8, r4, r8
    sll r9, r2, 2
    addu r10, r8, r9
    lw r11, 0(r10)
    sll r12, r20, 2
    addu r12, r8, r12
    lw r13, 0(r12)
    sll r14, r20, 6
    addu r14, r4, r14
    addu r14, r14, r9
    lw r15, 0(r14)
    addu r13, r13, r15
    bge r13, r11, wskip
    sw r13, 0(r10)
wskip:
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    addiu r22, r22, 1
    blt r22, r21, iloop
    addiu r20, r20, 1
    blt r20, r21, kloop
    exit"
        )
    } else {
        format!(
            "
    li r4, 0x6000
    li r20, 0
    li r21, {N}
kloop:
    li r2, 0
    li r3, {N}
body:
    li r22, 0          # j
jloop:
    sll r8, r2, 6
    addu r8, r4, r8
    sll r9, r22, 2
    addu r10, r8, r9
    lw r11, 0(r10)
    sll r12, r20, 2
    addu r12, r8, r12
    lw r13, 0(r12)
    sll r14, r20, 6
    addu r14, r4, r14
    addu r14, r14, r9
    lw r15, 0(r14)
    addu r13, r13, r15
    bge r13, r11, wskip
    sw r13, 0(r10)
wskip:
    addiu r22, r22, 1
    blt r22, r21, jloop
    addiu r2, r2, 1
    xloop.om body, r2, r3
    addiu r20, r20, 1
    blt r20, r21, kloop
    exit"
        )
    };
    (asm, vec![(0x6000, init)], check_words("path", 0x6000, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uc_kernels_pass_functionally() {
        for k in all() {
            k.run_functional().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn ssearch_counts_are_nontrivial() {
        let k = ssearch();
        let mem = k.run_functional().unwrap();
        let total: u32 = (0..16).map(|s| mem.read_u32(0x5200 + 4 * s)).sum();
        assert!(total > 0, "at least one planted pattern must be found");
    }
}
