//! The `xloop.uc.db` kernels of Table II: bfs and qsort. Both use a
//! dynamically-growing worklist: iterations reserve space with `amo.add`
//! and monotonically raise the loop-bound register (Figure 1(e)).

use crate::dataset::Rng;
use crate::{check_words, CheckFn, Kernel, Suite};

pub fn all() -> Vec<Kernel> {
    vec![bfs(), qsort()]
}

pub(crate) const BFS_V: usize = 64;
const INF: u32 = 0x7FFFFF;

/// CSR of a random connected-ish digraph, plus golden BFS distances.
pub(crate) fn bfs_graph() -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut rng = Rng::new(0xBF);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); BFS_V];
    // A ring to guarantee reachability, plus random shortcuts.
    for (v, edges) in adj.iter_mut().enumerate() {
        edges.push(((v + 1) % BFS_V) as u32);
    }
    for _ in 0..2 * BFS_V {
        let u = rng.below(BFS_V as u32) as usize;
        let w = rng.below(BFS_V as u32);
        if w as usize != u && !adj[u].contains(&w) {
            adj[u].push(w);
        }
    }
    let mut row_ptr = Vec::with_capacity(BFS_V + 1);
    let mut cols = Vec::new();
    row_ptr.push(0);
    for edges in &adj {
        cols.extend(edges);
        row_ptr.push(cols.len() as u32);
    }
    // Golden BFS from vertex 0.
    let mut dist = vec![INF; BFS_V];
    dist[0] = 0;
    let mut q = std::collections::VecDeque::from([0usize]);
    while let Some(u) = q.pop_front() {
        for &w in &adj[u] {
            if dist[w as usize] == INF {
                dist[w as usize] = dist[u] + 1;
                q.push_back(w as usize);
            }
        }
    }
    (row_ptr, cols, dist)
}

/// Worklist breadth-first search (custom kernel). Each iteration relaxes
/// one worklist entry with `amo.min` on the distances and re-pushes
/// improved vertices, so the final distances are exact shortest paths
/// regardless of iteration order — the property that makes `uc` (rather
/// than `om`) the right pattern.
pub fn bfs() -> Kernel {
    let (row_ptr, cols, dist) = bfs_graph();

    let asm = "
    li r4, 0x1000      # row_ptr
    li r5, 0x1200      # cols
    li r6, 0x2000      # dist
    li r7, 0x3000      # worklist
    li r21, 0x6000     # tail cell
    li r2, 0
    lw r3, 0(r21)      # bound = initial tail (1)
body:
    sll r8, r2, 2
    addu r8, r7, r8
    lw r9, 0(r8)       # u
    sll r10, r9, 2
    addu r10, r6, r10
    lw r11, 0(r10)     # dist[u]
    addiu r11, r11, 1
    sll r12, r9, 2
    addu r12, r4, r12
    lw r13, 0(r12)     # start
    lw r14, 4(r12)     # end
nloop:
    bge r13, r14, ndone
    sll r15, r13, 2
    addu r15, r5, r15
    lw r16, 0(r15)     # v
    sll r17, r16, 2
    addu r17, r6, r17
    amo.min r18, (r17), r11
    ble r18, r11, nnext
    li r19, 1
    amo.add r20, (r21), r19
    sll r22, r20, 2
    addu r22, r7, r22
    sw r16, 0(r22)
    addiu r23, r20, 1
    bge r3, r23, nnext
    move r3, r23
nnext:
    addiu r13, r13, 1
    b nloop
ndone:
    addiu r2, r2, 1
    xloop.uc.db body, r2, r3
    exit"
        .to_string();
    let mut dist_init = vec![INF; BFS_V];
    dist_init[0] = 0;
    let segments = vec![
        (0x1000, row_ptr),
        (0x1200, cols),
        (0x2000, dist_init),
        (0x3000, vec![0u32]), // worklist[0] = source
        (0x6000, vec![1u32]), // tail = 1
    ];
    Kernel::new(
        "bfs-uc-db",
        Suite::Custom,
        "uc,db",
        asm,
        segments,
        check_words("dist", 0x2000, dist),
    )
}

pub(crate) const QSORT_N: usize = 128;

pub(crate) fn qsort_input() -> Vec<u32> {
    Rng::new(0x95).vec_below(QSORT_N, 100_000)
}

pub(crate) fn qsort_check() -> CheckFn {
    let mut sorted = qsort_input();
    sorted.sort_unstable();
    check_words("a", 0x1000, sorted)
}

/// Quicksort with a dynamically-growing worklist of partitions (custom
/// kernel): each iteration Lomuto-partitions its range in place and
/// reserves two new worklist slots with `amo.add`. Partitions are
/// disjoint, so the loop is `uc`.
pub fn qsort() -> Kernel {
    let input = qsort_input();

    let asm = "
    li r4, 0x1000      # a
    li r6, 0x6000      # tail cell (in pairs)
    li r7, 0x3000      # worklist of (lo, hi) pairs
    li r2, 0
    lw r3, 0(r6)       # bound = 1
body:
    sll r8, r2, 3
    addu r8, r7, r8
    lw r9, 0(r8)       # lo
    lw r10, 4(r8)      # hi
    bge r9, r10, qdone
    sll r11, r10, 2
    addu r11, r4, r11
    lw r12, 0(r11)     # pivot = a[hi]
    move r13, r9
    move r14, r9
qscan:
    bge r14, r10, qscand
    sll r15, r14, 2
    addu r15, r4, r15
    lw r16, 0(r15)
    bge r16, r12, qnext
    sll r17, r13, 2
    addu r17, r4, r17
    lw r18, 0(r17)
    sw r16, 0(r17)
    sw r18, 0(r15)
    addiu r13, r13, 1
qnext:
    addiu r14, r14, 1
    b qscan
qscand:
    sll r17, r13, 2
    addu r17, r4, r17
    lw r18, 0(r17)
    sw r12, 0(r17)
    sw r18, 0(r11)
    li r19, 2
    amo.add r20, (r6), r19
    sll r21, r20, 3
    addu r21, r7, r21
    addiu r22, r13, -1
    sw r9, 0(r21)
    sw r22, 4(r21)
    addiu r22, r13, 1
    sw r22, 8(r21)
    sw r10, 12(r21)
    addiu r23, r20, 2
    bge r3, r23, qdone
    move r3, r23
qdone:
    addiu r2, r2, 1
    xloop.uc.db body, r2, r3
    exit"
        .to_string();
    let segments = vec![
        (0x1000, input),
        (0x3000, vec![0u32, QSORT_N as u32 - 1]), // initial partition
        (0x6000, vec![1u32]),                     // tail = 1 pair
    ];
    Kernel::new("qsort-uc-db", Suite::Custom, "uc,db", asm, segments, qsort_check())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_kernels_pass_functionally() {
        for k in all() {
            k.run_functional().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn bfs_distances_are_finite() {
        let (_, _, dist) = bfs_graph();
        assert!(dist.iter().all(|&d| d < INF), "ring guarantees reachability");
        assert!(dist.iter().any(|&d| d > 2), "graph is not trivially shallow");
    }
}
