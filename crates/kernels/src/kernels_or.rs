//! The `xloop.or` kernels of Table II: adpcm, covar, dither, kmeans, sha,
//! symm-or. Their defining feature is one or more cross-iteration
//! registers (CIRs) whose serial values the LPSU must reproduce through
//! the CIBs.

use crate::dataset::{pack_bytes, Rng};
use crate::kernels_uc::symm_kernel;
use crate::{check_bytes, check_words, CheckFn, Kernel, Suite};

pub fn all() -> Vec<Kernel> {
    vec![
        adpcm(false),
        covar(),
        dither_or(false),
        kmeans_or(),
        sha(false),
        symm_kernel("symm-or", false),
    ]
}

const ADPCM_N: usize = 1024;
const STEP_TABLE: [i32; 16] = [7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31];
const INDEX_TABLE: [i32; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

fn adpcm_samples() -> Vec<i32> {
    let mut rng = Rng::new(0xADC);
    let mut v = 0i32;
    (0..ADPCM_N)
        .map(|i| {
            v += rng.range_i32(-80, 81) + if i % 64 < 32 { 15 } else { -15 };
            v = v.clamp(-20000, 20000);
            v
        })
        .collect()
}

/// Golden IMA-style ADPCM encoder matching the kernel's arithmetic.
fn adpcm_reference(samples: &[i32]) -> Vec<u8> {
    let mut valpred = 0i32;
    let mut index = 0i32;
    samples
        .iter()
        .map(|&s| {
            let step = STEP_TABLE[index as usize];
            let mut diff = s - valpred;
            let sign = if diff < 0 {
                diff = -diff;
                8
            } else {
                0
            };
            let mut delta = 0i32;
            let mut vpdiff = step >> 3;
            let mut st = step;
            if diff >= st {
                delta |= 4;
                diff -= st;
                vpdiff += st;
            }
            st >>= 1;
            if diff >= st {
                delta |= 2;
                diff -= st;
                vpdiff += st;
            }
            st >>= 1;
            if diff >= st {
                delta |= 1;
                vpdiff += st;
            }
            if sign != 0 {
                valpred -= vpdiff;
            } else {
                valpred += vpdiff;
            }
            valpred = valpred.clamp(-32768, 32767);
            index = (index + INDEX_TABLE[delta as usize]).clamp(0, 15);
            (delta | sign) as u8
        })
        .collect()
}

/// ADPCM speech compression (MiBench). `opt` applies the Table IV
/// hand-scheduling: the state (CIR) updates move as early as possible so
/// their "last CIR write" forwards sooner, and pattern-independent work
/// (output-byte formation and store) sinks below them.
pub(crate) fn adpcm(opt: bool) -> Kernel {
    let samples = adpcm_samples();
    let expected = adpcm_reference(&samples);

    // Common prologue and per-sample prefix: load sample, load step via
    // the index CIR (r10), quantize into delta (r17) and vpdiff (r18).
    let prefix = format!(
        "
    li r4, 0x1000      # samples (words)
    li r5, 0x3000      # output codes (bytes)
    li r6, 0x4000      # step table
    li r7, 0x4100      # index table
    li r9, 0           # valpred (CIR)
    li r10, 0          # index (CIR)
    li r2, 0
    li r3, {ADPCM_N}
body:
    sll r11, r2, 2
    addu r11, r4, r11
    lw r12, 0(r11)
    sll r13, r10, 2
    addu r13, r6, r13
    lw r14, 0(r13)
    subu r15, r12, r9
    li r16, 0
    bge r15, r0, pos
    li r16, 8
    subu r15, r0, r15
pos:
    li r17, 0
    srl r18, r14, 3
    blt r15, r14, d1
    ori r17, r17, 4
    subu r15, r15, r14
    addu r18, r18, r14
d1:
    srl r14, r14, 1
    blt r15, r14, d2
    ori r17, r17, 2
    subu r15, r15, r14
    addu r18, r18, r14
d2:
    srl r14, r14, 1
    blt r15, r14, d3
    ori r17, r17, 1
    addu r18, r18, r14
d3:"
    );
    let state_update = "
    beqz r16, posv
    subu r9, r9, r18
    b clampv
posv:
    addu r9, r9, r18
clampv:
    li r19, 32767
    ble r9, r19, c1
    move r9, r19
c1:
    li r19, -32768
    bge r9, r19, c2
    move r9, r19
c2:
    sll r19, r17, 2
    addu r19, r7, r19
    lw r19, 0(r19)
    addu r10, r10, r19
    bge r10, r0, c3
    li r10, 0
c3:
    li r19, 15
    ble r10, r19, c4
    move r10, r19
c4:";
    let emit = "
    or r20, r17, r16
    addu r21, r5, r2
    sb r20, 0(r21)";
    let tail = "
    addiu r2, r2, 1
    xloop.or body, r2, r3
    exit";

    // Baseline (compiler-like) schedule emits the output before updating
    // the CIRs; the -opt schedule updates the CIRs first.
    let asm = if opt {
        format!("{prefix}{state_update}{emit}{tail}")
    } else {
        format!("{prefix}{emit}{state_update}{tail}")
    };
    Kernel::new(
        if opt { "adpcm-or-opt" } else { "adpcm-or" },
        Suite::MiBench,
        "or",
        asm,
        vec![
            (0x1000, samples.iter().map(|&v| v as u32).collect()),
            (0x4000, STEP_TABLE.iter().map(|&v| v as u32).collect()),
            (0x4100, INDEX_TABLE.iter().map(|&v| v as u32).collect()),
        ],
        check_bytes("code", 0x3000, expected),
    )
}

/// Covariance (PolyBench): the dominant loop accumulates
/// `(d[i][j1]-mean[j1])·(d[i][j2]-mean[j2])` over observations `i`, a
/// floating-point CIR chain.
pub fn covar() -> Kernel {
    const VARS: usize = 8;
    const OBS: usize = 32;
    let mut rng = Rng::new(0xC0);
    let data: Vec<f32> = (0..OBS * VARS).map(|_| rng.below(16) as f32 / 2.0).collect();
    let mut mean = [0f32; VARS];
    for j in 0..VARS {
        for i in 0..OBS {
            mean[j] += data[i * VARS + j];
        }
        mean[j] /= OBS as f32;
    }
    let mut cov = vec![0f32; VARS * VARS];
    for j1 in 0..VARS {
        for j2 in 0..=j1 {
            let mut acc = 0f32;
            for i in 0..OBS {
                acc += (data[i * VARS + j1] - mean[j1]) * (data[i * VARS + j2] - mean[j2]);
            }
            cov[j1 * VARS + j2] = acc;
        }
    }
    // Expected image covers the computed (lower) triangle only.
    let expected: Vec<u32> = cov.iter().map(|v| v.to_bits()).collect();
    let check: CheckFn = Box::new(move |mem| {
        for j1 in 0..VARS {
            for j2 in 0..=j1 {
                let idx = (j1 * VARS + j2) as u32;
                let got = mem.read_u32(0x5000 + 4 * idx);
                if got != expected[idx as usize] {
                    return Err(format!(
                        "cov[{j1}][{j2}] = {:?}, expected {:?}",
                        f32::from_bits(got),
                        f32::from_bits(expected[idx as usize])
                    ));
                }
            }
        }
        Ok(())
    });

    let asm = format!(
        "
    li r4, 0x1000      # data
    li r5, 0x2000      # mean
    li r6, 0x5000      # cov
    li r20, 0          # j1
    li r21, {VARS}
j1loop:
    sll r7, r20, 2
    addu r7, r5, r7
    lw r22, 0(r7)      # mean[j1]
    li r23, 0          # j2
j2loop:
    sll r7, r23, 2
    addu r7, r5, r7
    lw r24, 0(r7)      # mean[j2]
    li r10, 0          # acc (CIR)
    li r2, 0
    li r3, {OBS}
body:
    sll r11, r2, 5
    sll r12, r20, 2
    addu r13, r11, r12
    addu r13, r4, r13
    lw r14, 0(r13)
    fsub.s r14, r14, r22
    sll r12, r23, 2
    addu r13, r11, r12
    addu r13, r4, r13
    lw r15, 0(r13)
    fsub.s r15, r15, r24
    fmul.s r14, r14, r15
    fadd.s r10, r10, r14
    addiu r2, r2, 1
    xloop.or body, r2, r3
    sll r7, r20, 5
    sll r8, r23, 2
    addu r7, r7, r8
    addu r7, r6, r7
    sw r10, 0(r7)
    addiu r23, r23, 1
    ble r23, r20, j2loop
    addiu r20, r20, 1
    blt r20, r21, j1loop
    exit"
    );
    let mut segments = vec![(0x1000, data.iter().map(|v| v.to_bits()).collect::<Vec<u32>>())];
    segments.push((0x2000, mean.iter().map(|v| v.to_bits()).collect()));
    Kernel::new("covar-or", Suite::PolyBench, "or", asm, segments, check)
}

pub(crate) const DITHER_W: usize = 64;
pub(crate) const DITHER_H: usize = 16;

pub(crate) fn dither_input() -> Vec<u8> {
    let mut rng = Rng::new(0xD1);
    (0..DITHER_W * DITHER_H)
        .map(|i| {
            let x = (i % DITHER_W) as i32;
            (((x * 4) % 256) as i64 + rng.range_i32(-30, 30) as i64).clamp(0, 255) as u8
        })
        .collect()
}

/// Error diffusion: out[x] thresholds pix+err; err (the CIR) carries the
/// residual rightward and resets at each row start.
pub(crate) fn dither_reference(img: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; img.len()];
    for y in 0..DITHER_H {
        let mut err = 0i32;
        for x in 0..DITHER_W {
            let v = img[y * DITHER_W + x] as i32 + err;
            if v > 127 {
                out[y * DITHER_W + x] = 255;
                err = v - 255;
            } else {
                out[y * DITHER_W + x] = 0;
                err = v;
            }
        }
    }
    out
}

/// Floyd–Steinberg-style dithering (custom kernel): one `xloop.or` over
/// all pixels with the running error as the CIR (reset at row starts).
/// `opt` hand-schedules the error update before the output store.
pub(crate) fn dither_or(opt: bool) -> Kernel {
    let img = dither_input();
    let expected = dither_reference(&img);
    let n = DITHER_W * DITHER_H;
    let wmask = DITHER_W - 1;

    let head = format!(
        "
    li r4, 0x1000      # img
    li r5, 0x2000      # out
    li r9, 0           # err (CIR)
    li r2, 0
    li r3, {n}
body:
    andi r11, r2, {wmask}
    sltu r11, r0, r11
    subu r11, r0, r11
    and r9, r9, r11    # err = (x == 0) ? 0 : err (read-then-write CIR)
    addu r11, r4, r2
    lbu r12, 0(r11)
    addu r12, r12, r9
    li r13, 0
    li r14, 127
    ble r12, r14, dark"
    );
    // Baseline: set out value, store it, then update err; opt: update the
    // CIR first so the CIB transfer launches earlier.
    let asm = if !opt {
        format!(
            "{head}
    li r13, 255
dark:
    addu r15, r5, r2
    sb r13, 0(r15)
    beqz r13, keep
    addiu r12, r12, -255
keep:
    move r9, r12
    addiu r2, r2, 1
    xloop.or body, r2, r3
    exit"
        )
    } else {
        format!(
            "{head}
    li r13, 255
    addiu r12, r12, -255
dark:
    move r9, r12
    addu r15, r5, r2
    sb r13, 0(r15)
    addiu r2, r2, 1
    xloop.or body, r2, r3
    exit"
        )
    };
    Kernel::new(
        if opt { "dither-or-opt" } else { "dither-or" },
        Suite::Custom,
        "or",
        asm,
        vec![(0x1000, pack_bytes(&img))],
        check_bytes("out", 0x2000, expected),
    )
}

pub(crate) const KMEANS_N: usize = 256;
pub(crate) const KMEANS_K: usize = 4;
pub(crate) const KMEANS_CENTROIDS: [i32; KMEANS_K] = [40, 120, 200, 300];

pub(crate) fn kmeans_points() -> Vec<u32> {
    let mut rng = Rng::new(0x44);
    (0..KMEANS_N)
        .map(|_| {
            let c = KMEANS_CENTROIDS[rng.below(KMEANS_K as u32) as usize];
            (c + rng.range_i32(-35, 36)).max(0) as u32
        })
        .collect()
}

/// `(sums, counts)` of the assignment step.
pub(crate) fn kmeans_reference(points: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut sums = vec![0u32; KMEANS_K];
    let mut counts = vec![0u32; KMEANS_K];
    for &p in points {
        let mut best = 0usize;
        let mut bestd = i32::MAX;
        for (c, &ctr) in KMEANS_CENTROIDS.iter().enumerate() {
            let d = (p as i32 - ctr).abs();
            if d < bestd {
                bestd = d;
                best = c;
            }
        }
        sums[best] += p;
        counts[best] += 1;
    }
    (sums, counts)
}

/// k-means assignment step (custom kernel): per-cluster sums and counts
/// accumulate in registers — eight CIRs.
pub fn kmeans_or() -> Kernel {
    let points = kmeans_points();
    let (sums, counts) = kmeans_reference(&points);
    let c = KMEANS_CENTROIDS;

    let asm = format!(
        "
    li r4, 0x1000      # points
    li r16, 0          # sum0 (CIR)
    li r17, 0
    li r18, 0
    li r19, 0
    li r20, 0          # cnt0 (CIR)
    li r21, 0
    li r22, 0
    li r23, 0
    li r24, {c0}
    li r25, {c1}
    li r26, {c2}
    li r27, {c3}
    li r2, 0
    li r3, {KMEANS_N}
body:
    sll r5, r2, 2
    addu r5, r4, r5
    lw r6, 0(r5)       # p
    # distance to each centroid (abs diff)
    subu r7, r6, r24
    bge r7, r0, a0
    subu r7, r0, r7
a0:
    li r8, 0           # best cluster
    move r9, r7        # best distance
    subu r7, r6, r25
    bge r7, r0, a1
    subu r7, r0, r7
a1:
    bge r7, r9, a2
    li r8, 1
    move r9, r7
a2:
    subu r7, r6, r26
    bge r7, r0, a3
    subu r7, r0, r7
a3:
    bge r7, r9, a4
    li r8, 2
    move r9, r7
a4:
    subu r7, r6, r27
    bge r7, r0, a5
    subu r7, r0, r7
a5:
    bge r7, r9, a6
    li r8, 3
    move r9, r7
a6:
    # accumulate into cluster r8
    li r10, 1
    beq r8, r10, k1
    li r10, 2
    beq r8, r10, k2
    li r10, 3
    beq r8, r10, k3
    addu r16, r16, r6
    addiu r20, r20, 1
    b kdone
k1:
    addu r17, r17, r6
    addiu r21, r21, 1
    b kdone
k2:
    addu r18, r18, r6
    addiu r22, r22, 1
    b kdone
k3:
    addu r19, r19, r6
    addiu r23, r23, 1
kdone:
    addiu r2, r2, 1
    xloop.or body, r2, r3
    li r5, 0x2000
    sw r16, 0(r5)
    sw r17, 4(r5)
    sw r18, 8(r5)
    sw r19, 12(r5)
    sw r20, 16(r5)
    sw r21, 20(r5)
    sw r22, 24(r5)
    sw r23, 28(r5)
    exit",
        c0 = c[0],
        c1 = c[1],
        c2 = c[2],
        c3 = c[3],
    );
    let expected: Vec<u32> = sums.iter().chain(counts.iter()).copied().collect();
    Kernel::new(
        "kmeans-or",
        Suite::Custom,
        "or,uc",
        asm,
        vec![(0x1000, points)],
        check_words("sums+counts", 0x2000, expected),
    )
}

pub(crate) const SHA_ROUNDS: usize = 64;

pub(crate) fn sha_words() -> Vec<u32> {
    Rng::new(0x5A).vec_below(SHA_ROUNDS, u32::MAX)
}

pub(crate) fn sha_reference(w: &[u32]) -> [u32; 5] {
    let (mut a, mut b, mut c, mut d, mut e) =
        (0x67452301u32, 0xEFCDAB89u32, 0x98BADCFEu32, 0x10325476u32, 0xC3D2E1F0u32);
    for &wt in w {
        let f = (b & c) | (!b & d);
        let temp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(wt)
            .wrapping_add(0x5A827999);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = temp;
    }
    [a, b, c, d, e]
}

/// SHA-1-style compression rounds (MiBench): five rotating CIRs. `opt`
/// hand-schedules the simple CIR rotations (`e=d`, `d=c`, …) to the top of
/// the body so successors unblock while `temp` is still being computed.
pub(crate) fn sha(opt: bool) -> Kernel {
    let w = sha_words();
    let expected = sha_reference(&w).to_vec();

    let head = format!(
        "
    li r4, 0x1000      # message schedule
    li r10, 0x67452301 # a
    li r11, 0xEFCDAB89 # b
    li r12, 0x98BADCFE # c
    li r13, 0x10325476 # d
    li r14, 0xC3D2E1F0 # e
    li r15, 0x5A827999 # K
    li r2, 0
    li r3, {SHA_ROUNDS}
body:"
    );
    let compute_f_temp = "
    and r16, r11, r12
    nor r17, r11, r0
    and r17, r17, r13
    or r16, r16, r17   # f
    sll r18, r10, 5
    srl r19, r10, 27
    or r18, r18, r19   # rol(a,5)
    addu r18, r18, r16
    addu r18, r18, r14
    addu r18, r18, r20
    addu r18, r18, r15 # temp";
    let load_w = "
    sll r21, r2, 2
    addu r21, r4, r21
    lw r20, 0(r21)     # w[t]";
    let rotate_late = "
    move r14, r13      # e = d
    move r13, r12      # d = c
    sll r22, r11, 30
    srl r23, r11, 2
    or r12, r22, r23   # c = rol(b,30)
    move r11, r10      # b = a
    move r10, r18      # a = temp";
    let opt_body = "
    sll r21, r2, 2
    addu r21, r4, r21
    lw r20, 0(r21)     # w[t]
    sll r18, r10, 5
    srl r19, r10, 27
    or r18, r18, r19   # rol(a,5)
    addu r18, r18, r14 # + e (old e consumed)
    and r16, r11, r12
    nor r17, r11, r0
    and r17, r17, r13
    or r16, r16, r17   # f (old b,c,d consumed)
    move r14, r13      # e = d      — CIR writes retire early
    move r13, r12      # d = c
    sll r22, r11, 30
    srl r23, r11, 2
    or r12, r22, r23   # c = rol(b,30)
    move r11, r10      # b = a
    addu r18, r18, r16
    addu r18, r18, r20
    addu r18, r18, r15
    move r10, r18      # a = temp";
    let tail = "
    addiu r2, r2, 1
    xloop.or body, r2, r3
    li r4, 0x2000
    sw r10, 0(r4)
    sw r11, 4(r4)
    sw r12, 8(r4)
    sw r13, 12(r4)
    sw r14, 16(r4)
    exit";

    let asm = if !opt {
        // Compiler-like order: load w, compute f and temp, then rotate.
        format!("{head}{load_w}{compute_f_temp}{rotate_late}{tail}")
    } else {
        // Hand schedule: f/temp consume the old values first, then the
        // cheap rotations retire the CIR chain as early as possible.
        format!("{head}{opt_body}{tail}")
    };
    Kernel::new(
        if opt { "sha-or-opt" } else { "sha-or" },
        Suite::MiBench,
        "or,uc",
        asm,
        vec![(0x1000, w)],
        check_words("digest", 0x2000, expected),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_kernels_pass_functionally() {
        for k in all() {
            k.run_functional().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }

    #[test]
    fn opt_variants_compute_identical_results() {
        for k in [adpcm(true), dither_or(true), sha(true)] {
            k.run_functional().unwrap_or_else(|e| panic!("{}: {e}", k.name));
        }
    }
}
