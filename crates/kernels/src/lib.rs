//! # xloops-kernels
//!
//! The application-kernel suite of Table II (all 25 kernels) and the
//! hand-optimized / loop-transformed variants of Table IV.
//!
//! Every kernel bundles:
//!
//! * XLOOPS assembly (hand-written, as discussed in `DESIGN.md`: the
//!   paper's LLVM backend cannot be reproduced, and the loop *dependence
//!   structure* — which is what XLOOPS exercises — is what matters);
//! * a seeded synthetic dataset sized to fit the modeled 16 KB L1 (the
//!   paper's VLSI methodology does the same);
//! * a pure-Rust golden reference, so results of every execution mode on
//!   every microarchitecture are verified, not eyeballed.
//!
//! Kernel names follow the paper: the suffix is the dominant
//! inter-iteration dependence pattern (`-uc`, `-or`, `-om`, `-orm`, `-ua`,
//! `-uc-db`).
//!
//! ```
//! use xloops_kernels::{table2, by_name};
//! assert_eq!(table2().len(), 25);
//! let k = by_name("sgemm-uc").expect("kernel exists");
//! assert!(k.patterns.contains("uc"));
//! ```

mod dataset;
mod kernels_db;
mod kernels_om;
mod kernels_or;
mod kernels_ua;
mod kernels_uc;
mod variants;

use std::sync::OnceLock;

use xloops_asm::{assemble, Program};
use xloops_mem::Memory;

pub use dataset::Rng;

/// Benchmark suite a kernel is drawn from (Table II's `Suite` column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// Custom kernels written for the paper.
    Custom,
    /// PolyBench.
    PolyBench,
    /// MiBench.
    MiBench,
    /// Problem-Based Benchmark Suite.
    Pbbs,
}

impl Suite {
    /// One-letter tag used in the tables (`C`, `Po`, `M`, `P`).
    pub fn tag(self) -> &'static str {
        match self {
            Suite::Custom => "C",
            Suite::PolyBench => "Po",
            Suite::MiBench => "M",
            Suite::Pbbs => "P",
        }
    }
}

type CheckFn = Box<dyn Fn(&Memory) -> Result<(), String> + Send + Sync>;

/// A runnable, verifiable application kernel.
pub struct Kernel {
    /// Table II name (e.g. `ksack-sm-om`).
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Dominant dependence pattern(s), e.g. `"or,uc"`.
    pub patterns: &'static str,
    /// XLOOPS assembly source.
    pub asm: String,
    /// Assembled XLOOPS binary.
    pub program: Program,
    segments: Vec<(u32, Vec<u32>)>,
    check: CheckFn,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("patterns", &self.patterns)
            .field("instrs", &self.program.len())
            .finish()
    }
}

impl Kernel {
    /// Builds a kernel, assembling its source.
    ///
    /// # Panics
    ///
    /// Panics if the assembly does not assemble — kernels are static data
    /// and an error is a bug in this crate (covered by tests).
    pub(crate) fn new(
        name: &'static str,
        suite: Suite,
        patterns: &'static str,
        asm: String,
        segments: Vec<(u32, Vec<u32>)>,
        check: CheckFn,
    ) -> Kernel {
        let program =
            assemble(&asm).unwrap_or_else(|e| panic!("kernel `{name}` does not assemble: {e}"));
        Kernel { name, suite, patterns, asm, program, segments, check }
    }

    /// Writes the kernel's dataset into memory.
    pub fn init_memory(&self, mem: &mut Memory) {
        for (addr, words) in &self.segments {
            mem.write_words(*addr, words);
        }
    }

    /// Verifies the kernel's result in `mem` against the golden reference.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatch.
    pub fn verify(&self, mem: &Memory) -> Result<(), String> {
        (self.check)(mem)
    }

    /// Runs the kernel functionally (serial, traditional semantics) and
    /// verifies it — the fastest smoke test of kernel correctness.
    ///
    /// # Errors
    ///
    /// Propagates execution errors and verification mismatches as strings.
    pub fn run_functional(&self) -> Result<Memory, String> {
        let mut mem = Memory::new();
        self.init_memory(&mut mem);
        let mut cpu = xloops_func::Interp::new();
        cpu.run(&self.program, &mut mem, 500_000_000).map_err(|e| e.to_string())?;
        self.verify(&mem)?;
        Ok(mem)
    }
}

/// Checker comparing a word array against an expected image.
pub(crate) fn check_words(label: &'static str, addr: u32, expected: Vec<u32>) -> CheckFn {
    Box::new(move |mem| {
        for (i, &want) in expected.iter().enumerate() {
            let got = mem.read_u32(addr + 4 * i as u32);
            if got != want {
                return Err(format!("{label}[{i}] = {got:#x}, expected {want:#x}"));
            }
        }
        Ok(())
    })
}

/// Checker comparing a byte array against an expected image.
pub(crate) fn check_bytes(label: &'static str, addr: u32, expected: Vec<u8>) -> CheckFn {
    Box::new(move |mem| {
        for (i, &want) in expected.iter().enumerate() {
            let got = mem.read_u8(addr + i as u32);
            if got != want {
                return Err(format!("{label}[{i}] = {got:#x}, expected {want:#x}"));
            }
        }
        Ok(())
    })
}

/// All 25 kernels of Table II, in the table's order.
///
/// Building a kernel assembles its source, generates its dataset, and
/// computes its golden reference, so the suite is built once per process
/// and served from a static registry thereafter.
pub fn table2() -> &'static [Kernel] {
    static TABLE2: OnceLock<Vec<Kernel>> = OnceLock::new();
    TABLE2.get_or_init(|| {
        let mut v = Vec::new();
        v.extend(kernels_uc::all());
        v.extend(kernels_or::all());
        v.extend(kernels_om::all());
        v.extend(kernels_ua::all());
        v.extend(kernels_db::all());
        v
    })
}

/// The hand-optimized and loop-transformed variants of Table IV (built
/// once per process, like [`table2`]).
pub fn table4() -> &'static [Kernel] {
    static TABLE4: OnceLock<Vec<Kernel>> = OnceLock::new();
    TABLE4.get_or_init(variants::all)
}

/// Scaled-input variants for sampled / fast-forward simulation. These are
/// deliberately *not* part of [`table2`]: full cycle-accurate sweeps never
/// pick them up, but [`by_name`] (and so the CLI and manifests) can.
pub fn scaled() -> &'static [Kernel] {
    static SCALED: OnceLock<Vec<Kernel>> = OnceLock::new();
    SCALED.get_or_init(|| vec![kernels_uc::sgemm_scaled()])
}

/// Looks a kernel up by its Table II / Table IV / scaled-variant name.
pub fn by_name(name: &str) -> Option<&'static Kernel> {
    table2().iter().chain(table4()).chain(scaled()).find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_distinct() {
        let t2 = table2();
        assert_eq!(t2.len(), 25, "Table II has 25 kernels");
        let t4 = table4();
        assert_eq!(t4.len(), 8, "Table IV has 8 case-study variants");
        let mut names: Vec<_> = t2.iter().chain(t4).map(|k| k.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n, "kernel names are unique");
    }

    #[test]
    fn every_kernel_assembles_and_has_an_xloop() {
        for k in table2().iter().chain(table4()).chain(scaled()) {
            assert!(
                k.program.instrs().iter().any(|i| i.is_xloop()),
                "{} contains no xloop",
                k.name
            );
        }
    }

    #[test]
    fn scaled_variants_resolve_by_name_but_stay_out_of_table2() {
        for k in scaled() {
            assert!(by_name(k.name).is_some(), "{} not reachable by name", k.name);
            assert!(
                table2().iter().chain(table4()).all(|t| t.name != k.name),
                "{} leaked into a sweep registry",
                k.name
            );
        }
    }

    #[test]
    fn sgemm_scaled_verifies_functionally() {
        kernels_uc::sgemm_scaled().run_functional().expect("sgemm-uc-scaled verifies");
    }
}
