//! Property tests: every constructible instruction encodes to a word that
//! decodes back to itself, and no two distinct instructions share an
//! encoding within a sampled batch.

use proptest::prelude::*;
use xloops_isa::{
    AluOp, AmoOp, BranchCond, ControlPattern, DataPattern, Instr, LlfuOp, LoopPattern, MemOp, Reg,
    XiKind,
};

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::ALL.to_vec())
}

fn imm_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(
        AluOp::ALL.iter().copied().filter(|o| o.imm_mnemonic().is_some()).collect::<Vec<_>>(),
    )
}

fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (alu_op(), reg(), reg(), reg()).prop_map(|(op, rd, rs, rt)| Instr::Alu { op, rd, rs, rt }),
        (imm_alu_op(), reg(), reg(), any::<i16>()).prop_map(|(op, rd, rs, imm)| Instr::AluImm {
            op,
            rd,
            rs,
            imm
        }),
        (reg(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (prop::sample::select(LlfuOp::ALL.to_vec()), reg(), reg(), reg())
            .prop_map(|(op, rd, rs, rt)| Instr::Llfu { op, rd, rs, rt }),
        (prop::sample::select(AmoOp::ALL.to_vec()), reg(), reg(), reg())
            .prop_map(|(op, rd, addr, src)| Instr::Amo { op, rd, addr, src }),
        (prop::sample::select(MemOp::ALL.to_vec()), reg(), reg(), any::<i16>())
            .prop_map(|(op, data, base, offset)| Instr::Mem { op, data, base, offset }),
        (prop::sample::select(BranchCond::ALL.to_vec()), reg(), reg(), any::<i16>())
            .prop_map(|(cond, rs, rt, offset)| Instr::Branch { cond, rs, rt, offset }),
        (any::<bool>(), 0u32..(1 << 26))
            .prop_map(|(link, target_word)| Instr::Jump { link, target_word }),
        reg().prop_map(|rs| Instr::JumpReg { link: false, rd: Reg::ZERO, rs }),
        (reg(), reg()).prop_map(|(rd, rs)| Instr::JumpReg { link: true, rd, rs }),
        Just(Instr::Sync),
        Just(Instr::Exit),
        Just(Instr::Nop),
        (
            prop::sample::select(DataPattern::ALL.to_vec()),
            any::<bool>(),
            reg(),
            reg(),
            1u16..(1 << 12)
        )
            .prop_map(|(data, db, idx, bound, body_offset)| Instr::Xloop {
                pattern: LoopPattern {
                    data,
                    control: if db { ControlPattern::Dynamic } else { ControlPattern::Fixed },
                },
                idx,
                bound,
                body_offset,
            }),
        (reg(), any::<i16>()).prop_map(|(r, imm)| Instr::Xi { reg: r, kind: XiKind::Imm(imm) }),
        (reg(), reg()).prop_map(|(r, rt)| Instr::Xi { reg: r, kind: XiKind::Reg(rt) }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(i in instr()) {
        let word = i.encode();
        prop_assert_eq!(Instr::decode(word), Some(i));
    }

    #[test]
    fn encoding_is_injective(a in instr(), b in instr()) {
        if a != b {
            prop_assert_ne!(a.encode(), b.encode(), "{} vs {}", a, b);
        }
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        // Arbitrary bit patterns either decode to a canonical instruction
        // (whose re-encoding reproduces the word) or are rejected.
        if let Some(i) = Instr::decode(word) {
            prop_assert_eq!(i.encode(), word, "decode must be canonical for {}", i);
        }
    }

    #[test]
    fn display_is_nonempty_and_stable(i in instr()) {
        let s = i.to_string();
        prop_assert!(!s.is_empty());
        prop_assert_eq!(i.to_string(), s);
    }

    #[test]
    fn srcs_and_dst_are_valid_registers(i in instr()) {
        for s in i.srcs().into_iter().flatten() {
            prop_assert!(s.index() < 32);
        }
        if let Some(d) = i.dst() {
            prop_assert!(d.index() < 32);
        }
    }
}
