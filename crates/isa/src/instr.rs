use std::fmt;

use crate::op::{AluOp, AmoOp, LlfuOp};
use crate::pattern::{ControlPattern, DataPattern, LoopPattern};
use crate::reg::Reg;

/// Memory access operations (loads and stores of all widths).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Load word (32-bit).
    Lw,
    /// Load half, sign-extended.
    Lh,
    /// Load half, zero-extended.
    Lhu,
    /// Load byte, sign-extended.
    Lb,
    /// Load byte, zero-extended.
    Lbu,
    /// Store word.
    Sw,
    /// Store half.
    Sh,
    /// Store byte.
    Sb,
}

impl MemOp {
    /// All memory operations.
    pub const ALL: [MemOp; 8] =
        [MemOp::Lw, MemOp::Lh, MemOp::Lhu, MemOp::Lb, MemOp::Lbu, MemOp::Sw, MemOp::Sh, MemOp::Sb];

    /// Whether this is a load.
    pub fn is_load(self) -> bool {
        matches!(self, MemOp::Lw | MemOp::Lh | MemOp::Lhu | MemOp::Lb | MemOp::Lbu)
    }

    /// Whether this is a store.
    pub fn is_store(self) -> bool {
        !self.is_load()
    }

    /// Access size in bytes (1, 2, or 4).
    pub fn size(self) -> u32 {
        match self {
            MemOp::Lw | MemOp::Sw => 4,
            MemOp::Lh | MemOp::Lhu | MemOp::Sh => 2,
            MemOp::Lb | MemOp::Lbu | MemOp::Sb => 1,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MemOp::Lw => "lw",
            MemOp::Lh => "lh",
            MemOp::Lhu => "lhu",
            MemOp::Lb => "lb",
            MemOp::Lbu => "lbu",
            MemOp::Sw => "sw",
            MemOp::Sh => "sh",
            MemOp::Sb => "sb",
        }
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Conditions for conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater or equal (signed).
    Ge,
    /// Branch if less than (unsigned).
    Ltu,
    /// Branch if greater or equal (unsigned).
    Geu,
}

impl BranchCond {
    /// All branch conditions.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The increment operand of a cross-iteration (`xi`) instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum XiKind {
    /// `addiu.xi rX, rX, imm` — immediate increment.
    Imm(i16),
    /// `addu.xi rX, rX, rT` — increment held in a loop-invariant register.
    Reg(Reg),
}

/// One TRISC/XLOOPS instruction.
///
/// Branch targets are *pc-relative*: `target = pc + 4 × offset`, where
/// `offset` is in instructions and relative to the branch itself (TRISC has
/// no delay slot). The `xloop` body start is `pc − 4 × body_offset` with
/// `body_offset ≥ 1`; the ISA makes a label at or after the `xloop` itself
/// undefined, which the encoding rules out by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Register-register ALU operation: `rd ← rs op rt`.
    Alu { op: AluOp, rd: Reg, rs: Reg, rt: Reg },
    /// Immediate ALU operation: `rd ← rs op imm`.
    ///
    /// Logical ops (`andi`/`ori`/`xori`) zero-extend the immediate; all
    /// others sign-extend. Shifts use the low 5 bits.
    AluImm { op: AluOp, rd: Reg, rs: Reg, imm: i16 },
    /// Load upper immediate: `rd ← imm << 16`.
    Lui { rd: Reg, imm: u16 },
    /// Long-latency op (integer mul/div, FP): `rd ← rs op rt`.
    Llfu { op: LlfuOp, rd: Reg, rs: Reg, rt: Reg },
    /// Atomic memory operation: `rd ← M[addr]; M[addr] ← op(rd, src)`.
    Amo { op: AmoOp, rd: Reg, addr: Reg, src: Reg },
    /// Load or store: loads write `data ← M[base+offset]`, stores write
    /// `M[base+offset] ← data`.
    Mem { op: MemOp, data: Reg, base: Reg, offset: i16 },
    /// Conditional branch to `pc + 4 × offset` if `rs cond rt`.
    Branch { cond: BranchCond, rs: Reg, rt: Reg, offset: i16 },
    /// Unconditional jump to the absolute word address `target_word`
    /// (byte address `4 × target_word`); `jal` links into `ra`.
    Jump { link: bool, target_word: u32 },
    /// Jump to the address in `rs`; `jalr` links `pc + 4` into `rd`.
    JumpReg { link: bool, rd: Reg, rs: Reg },
    /// Memory fence: all prior memory operations complete before any later
    /// one issues.
    Sync,
    /// Halt the hart (end of kernel).
    Exit,
    /// No operation.
    Nop,
    /// XLOOPS loop instruction: the body is the static sequence
    /// `[pc − 4 × body_offset, pc)`; `idx` is the loop induction variable
    /// register and `bound` the loop-bound register. On a traditional
    /// microarchitecture this is exactly `blt idx, bound, body`.
    Xloop { pattern: LoopPattern, idx: Reg, bound: Reg, body_offset: u16 },
    /// Cross-iteration instruction encoding a mutual induction variable:
    /// `reg ← reg + inc`, where hardware may instead compute
    /// `reg ← reg + inc × (1 + i_cur − i_prev)` in parallel.
    Xi { reg: Reg, kind: XiKind },
}

/// Opcode field values (bits `[31:26]`) of the binary encoding.
mod opc {
    pub const ALU: u32 = 0x00;
    pub const LLFU: u32 = 0x02;
    pub const AMO: u32 = 0x03;
    pub const ADDIU: u32 = 0x04;
    pub const ANDI: u32 = 0x05;
    pub const ORI: u32 = 0x06;
    pub const XORI: u32 = 0x07;
    pub const SLTI: u32 = 0x08;
    pub const SLTIU: u32 = 0x09;
    pub const SLLI: u32 = 0x0A;
    pub const SRLI: u32 = 0x0B;
    pub const SRAI: u32 = 0x0C;
    pub const LUI: u32 = 0x0D;
    pub const MEM_BASE: u32 = 0x10; // 0x10..=0x17, MemOp::ALL order
    pub const BR_BASE: u32 = 0x18; // 0x18..=0x1D, BranchCond::ALL order
    pub const J: u32 = 0x20;
    pub const JAL: u32 = 0x21;
    pub const JR: u32 = 0x22;
    pub const JALR: u32 = 0x23;
    pub const SYNC: u32 = 0x24;
    pub const EXIT: u32 = 0x25;
    pub const NOP: u32 = 0x26;
    pub const XLOOP: u32 = 0x28;
    pub const XI_ADDIU: u32 = 0x29;
    pub const XI_ADDU: u32 = 0x2A;
}

const fn imm_op_opcode(op: AluOp) -> Option<u32> {
    Some(match op {
        AluOp::Addu => opc::ADDIU,
        AluOp::And => opc::ANDI,
        AluOp::Or => opc::ORI,
        AluOp::Xor => opc::XORI,
        AluOp::Slt => opc::SLTI,
        AluOp::Sltu => opc::SLTIU,
        AluOp::Sll => opc::SLLI,
        AluOp::Srl => opc::SRLI,
        AluOp::Sra => opc::SRAI,
        AluOp::Subu | AluOp::Nor => return None,
    })
}

fn imm_op_from_opcode(opcode: u32) -> Option<AluOp> {
    Some(match opcode {
        opc::ADDIU => AluOp::Addu,
        opc::ANDI => AluOp::And,
        opc::ORI => AluOp::Or,
        opc::XORI => AluOp::Xor,
        opc::SLTI => AluOp::Slt,
        opc::SLTIU => AluOp::Sltu,
        opc::SLLI => AluOp::Sll,
        opc::SRLI => AluOp::Srl,
        opc::SRAI => AluOp::Sra,
        _ => return None,
    })
}

fn rd_field(word: u32) -> Option<Reg> {
    Reg::try_new(((word >> 21) & 31) as u8)
}
fn rs_field(word: u32) -> Option<Reg> {
    Reg::try_new(((word >> 16) & 31) as u8)
}
fn rt_field(word: u32) -> Option<Reg> {
    Reg::try_new(((word >> 11) & 31) as u8)
}

impl Instr {
    /// Encodes the instruction into its 32-bit binary form.
    ///
    /// # Panics
    ///
    /// Panics if an [`Instr::AluImm`] uses an operation without an immediate
    /// form (`subu`, `nor`), if a jump target exceeds 26 bits, or if an
    /// `xloop` body offset is zero or exceeds 12 bits. The assembler
    /// validates these before constructing the instruction.
    pub fn encode(self) -> u32 {
        let r3 = |opcode: u32, a: Reg, b: Reg, c: Reg, func: u32| {
            (opcode << 26) | (a.field() << 21) | (b.field() << 16) | (c.field() << 11) | func
        };
        let ri = |opcode: u32, a: Reg, b: Reg, imm: u16| {
            (opcode << 26) | (a.field() << 21) | (b.field() << 16) | imm as u32
        };
        match self {
            Instr::Alu { op, rd, rs, rt } => r3(opc::ALU, rd, rs, rt, op.code()),
            Instr::AluImm { op, rd, rs, imm } => {
                let opcode = imm_op_opcode(op).expect("ALU op has no immediate form");
                ri(opcode, rd, rs, imm as u16)
            }
            Instr::Lui { rd, imm } => (opc::LUI << 26) | (rd.field() << 21) | imm as u32,
            Instr::Llfu { op, rd, rs, rt } => r3(opc::LLFU, rd, rs, rt, op.code()),
            Instr::Amo { op, rd, addr, src } => r3(opc::AMO, rd, addr, src, op.code()),
            Instr::Mem { op, data, base, offset } => {
                let idx = MemOp::ALL.iter().position(|&m| m == op).unwrap() as u32;
                ri(opc::MEM_BASE + idx, data, base, offset as u16)
            }
            Instr::Branch { cond, rs, rt, offset } => {
                let idx = BranchCond::ALL.iter().position(|&c| c == cond).unwrap() as u32;
                ri(opc::BR_BASE + idx, rs, rt, offset as u16)
            }
            Instr::Jump { link, target_word } => {
                assert!(target_word < (1 << 26), "jump target out of range");
                let opcode = if link { opc::JAL } else { opc::J };
                (opcode << 26) | target_word
            }
            Instr::JumpReg { link, rd, rs } => {
                let opcode = if link { opc::JALR } else { opc::JR };
                (opcode << 26) | (rd.field() << 21) | (rs.field() << 16)
            }
            Instr::Sync => opc::SYNC << 26,
            Instr::Exit => opc::EXIT << 26,
            Instr::Nop => opc::NOP << 26,
            Instr::Xloop { pattern, idx, bound, body_offset } => {
                assert!((1..(1 << 12)).contains(&body_offset), "xloop body offset out of range");
                let db = (pattern.control == ControlPattern::Dynamic) as u32;
                (opc::XLOOP << 26)
                    | (pattern.data.code() << 23)
                    | (db << 22)
                    | (idx.field() << 17)
                    | (bound.field() << 12)
                    | body_offset as u32
            }
            Instr::Xi { reg, kind } => match kind {
                XiKind::Imm(imm) => ri(opc::XI_ADDIU, reg, reg, imm as u16),
                XiKind::Reg(rt) => r3(opc::XI_ADDU, reg, reg, rt, 0),
            },
        }
    }

    /// Decodes a 32-bit instruction word, returning `None` for any word that
    /// is not a canonical encoding of a valid instruction.
    pub fn decode(word: u32) -> Option<Instr> {
        let opcode = word >> 26;
        let func = word & 0x7FF;
        let imm16 = (word & 0xFFFF) as u16;
        match opcode {
            opc::ALU => {
                let op = AluOp::from_code(word & 63)?;
                if func >> 6 != 0 {
                    return None;
                }
                Some(Instr::Alu {
                    op,
                    rd: rd_field(word)?,
                    rs: rs_field(word)?,
                    rt: rt_field(word)?,
                })
            }
            opc::LLFU => {
                let op = LlfuOp::from_code(word & 63)?;
                if func >> 6 != 0 {
                    return None;
                }
                Some(Instr::Llfu {
                    op,
                    rd: rd_field(word)?,
                    rs: rs_field(word)?,
                    rt: rt_field(word)?,
                })
            }
            opc::AMO => {
                let op = AmoOp::from_code(word & 63)?;
                if func >> 6 != 0 {
                    return None;
                }
                Some(Instr::Amo {
                    op,
                    rd: rd_field(word)?,
                    addr: rs_field(word)?,
                    src: rt_field(word)?,
                })
            }
            opc::LUI => {
                if word >> 16 & 31 != 0 {
                    return None;
                }
                Some(Instr::Lui { rd: rd_field(word)?, imm: imm16 })
            }
            opc::MEM_BASE..=0x17 => {
                let op = MemOp::ALL[(opcode - opc::MEM_BASE) as usize];
                Some(Instr::Mem {
                    op,
                    data: rd_field(word)?,
                    base: rs_field(word)?,
                    offset: imm16 as i16,
                })
            }
            opc::BR_BASE..=0x1D => {
                let cond = BranchCond::ALL[(opcode - opc::BR_BASE) as usize];
                Some(Instr::Branch {
                    cond,
                    rs: rd_field(word)?,
                    rt: rs_field(word)?,
                    offset: imm16 as i16,
                })
            }
            opc::J => Some(Instr::Jump { link: false, target_word: word & 0x03FF_FFFF }),
            opc::JAL => Some(Instr::Jump { link: true, target_word: word & 0x03FF_FFFF }),
            opc::JR => {
                if word & 0x03E0_FFFF != 0 {
                    return None;
                }
                Some(Instr::JumpReg { link: false, rd: Reg::ZERO, rs: rs_field(word)? })
            }
            opc::JALR => {
                if word & 0xFFFF != 0 {
                    return None;
                }
                Some(Instr::JumpReg { link: true, rd: rd_field(word)?, rs: rs_field(word)? })
            }
            opc::SYNC if word & 0x03FF_FFFF == 0 => Some(Instr::Sync),
            opc::EXIT if word & 0x03FF_FFFF == 0 => Some(Instr::Exit),
            opc::NOP if word & 0x03FF_FFFF == 0 => Some(Instr::Nop),
            opc::XLOOP => {
                let data = DataPattern::from_code((word >> 23) & 7)?;
                let control = if word & (1 << 22) != 0 {
                    ControlPattern::Dynamic
                } else {
                    ControlPattern::Fixed
                };
                let body_offset = (word & 0xFFF) as u16;
                if body_offset == 0 {
                    return None;
                }
                Some(Instr::Xloop {
                    pattern: LoopPattern { data, control },
                    idx: Reg::try_new(((word >> 17) & 31) as u8)?,
                    bound: Reg::try_new(((word >> 12) & 31) as u8)?,
                    body_offset,
                })
            }
            opc::XI_ADDIU => {
                let rd = rd_field(word)?;
                if rs_field(word)? != rd {
                    return None;
                }
                Some(Instr::Xi { reg: rd, kind: XiKind::Imm(imm16 as i16) })
            }
            opc::XI_ADDU => {
                let rd = rd_field(word)?;
                if rs_field(word)? != rd || func != 0 {
                    return None;
                }
                Some(Instr::Xi { reg: rd, kind: XiKind::Reg(rt_field(word)?) })
            }
            _ => {
                let _ = imm16;
                imm_op_from_opcode(opcode).and_then(|op| {
                    Some(Instr::AluImm {
                        op,
                        rd: rd_field(word)?,
                        rs: rs_field(word)?,
                        imm: imm16 as i16,
                    })
                })
            }
        }
    }

    /// The architectural destination register, if the instruction writes one.
    ///
    /// Writes to `r0` are still reported; they are architecturally discarded.
    pub fn dst(&self) -> Option<Reg> {
        match *self {
            Instr::Alu { rd, .. }
            | Instr::AluImm { rd, .. }
            | Instr::Lui { rd, .. }
            | Instr::Llfu { rd, .. }
            | Instr::Amo { rd, .. } => Some(rd),
            Instr::Mem { op, data, .. } if op.is_load() => Some(data),
            Instr::Jump { link: true, .. } => Some(Reg::RA),
            Instr::JumpReg { link: true, rd, .. } => Some(rd),
            Instr::Xi { reg, .. } => Some(reg),
            _ => None,
        }
    }

    /// The source registers read by the instruction (up to two), `None`
    /// slots unused. An `xloop` reads its index and bound registers.
    pub fn srcs(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Alu { rs, rt, .. } | Instr::Llfu { rs, rt, .. } => [Some(rs), Some(rt)],
            Instr::AluImm { rs, .. } => [Some(rs), None],
            Instr::Lui { .. } => [None, None],
            Instr::Amo { addr, src, .. } => [Some(addr), Some(src)],
            Instr::Mem { op, data, base, .. } => {
                if op.is_load() {
                    [Some(base), None]
                } else {
                    [Some(base), Some(data)]
                }
            }
            Instr::Branch { rs, rt, .. } => [Some(rs), Some(rt)],
            Instr::Jump { .. } => [None, None],
            Instr::JumpReg { rs, .. } => [Some(rs), None],
            Instr::Sync | Instr::Exit | Instr::Nop => [None, None],
            Instr::Xloop { idx, bound, .. } => [Some(idx), Some(bound)],
            Instr::Xi { reg, kind } => match kind {
                XiKind::Imm(_) => [Some(reg), None],
                XiKind::Reg(rt) => [Some(reg), Some(rt)],
            },
        }
    }

    /// Whether this is a memory load (AMOs count as both load and store).
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Mem { op, .. } if op.is_load()) || self.is_amo()
    }

    /// Whether this writes memory (stores and AMOs).
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Mem { op, .. } if op.is_store()) || self.is_amo()
    }

    /// Whether this accesses the data memory port at all.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Mem { .. } | Instr::Amo { .. })
    }

    /// Whether this is an atomic memory operation.
    pub fn is_amo(&self) -> bool {
        matches!(self, Instr::Amo { .. })
    }

    /// Whether this instruction executes on the long-latency functional unit.
    pub fn is_llfu(&self) -> bool {
        matches!(self, Instr::Llfu { .. })
    }

    /// Whether this may redirect the pc (branches, jumps, and `xloop`, which
    /// traditional execution treats as a conditional branch).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Branch { .. } | Instr::Jump { .. } | Instr::JumpReg { .. } | Instr::Xloop { .. }
        )
    }

    /// Whether this is an `xloop` instruction.
    pub fn is_xloop(&self) -> bool {
        matches!(self, Instr::Xloop { .. })
    }

    /// Whether this is a cross-iteration (`xi`) instruction.
    pub fn is_xi(&self) -> bool {
        matches!(self, Instr::Xi { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Alu { op, rd, rs, rt } => write!(f, "{} {rd}, {rs}, {rt}", op.mnemonic()),
            Instr::AluImm { op, rd, rs, imm } => {
                let m = op.imm_mnemonic().unwrap_or("<bad-imm-op>");
                write!(f, "{m} {rd}, {rs}, {imm}")
            }
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Instr::Llfu { op, rd, rs, rt } => write!(f, "{op} {rd}, {rs}, {rt}"),
            Instr::Amo { op, rd, addr, src } => write!(f, "{op} {rd}, ({addr}), {src}"),
            Instr::Mem { op, data, base, offset } => write!(f, "{op} {data}, {offset}({base})"),
            Instr::Branch { cond, rs, rt, offset } => write!(f, "{cond} {rs}, {rt}, {offset}"),
            Instr::Jump { link: false, target_word } => write!(f, "j {:#x}", target_word * 4),
            Instr::Jump { link: true, target_word } => write!(f, "jal {:#x}", target_word * 4),
            Instr::JumpReg { link: false, rs, .. } => write!(f, "jr {rs}"),
            Instr::JumpReg { link: true, rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Instr::Sync => f.write_str("sync"),
            Instr::Exit => f.write_str("exit"),
            Instr::Nop => f.write_str("nop"),
            Instr::Xloop { pattern, idx, bound, body_offset } => {
                write!(f, "xloop.{pattern} -{body_offset}, {idx}, {bound}")
            }
            Instr::Xi { reg, kind: XiKind::Imm(imm) } => {
                write!(f, "addiu.xi {reg}, {reg}, {imm}")
            }
            Instr::Xi { reg, kind: XiKind::Reg(rt) } => {
                write!(f, "addu.xi {reg}, {reg}, {rt}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        let r = Reg::new;
        let mut v = Vec::new();
        for op in AluOp::ALL {
            v.push(Instr::Alu { op, rd: r(1), rs: r(2), rt: r(3) });
            if op.imm_mnemonic().is_some() {
                v.push(Instr::AluImm { op, rd: r(4), rs: r(5), imm: -7 });
                v.push(Instr::AluImm { op, rd: r(31), rs: r(0), imm: i16::MAX });
            }
        }
        for op in LlfuOp::ALL {
            v.push(Instr::Llfu { op, rd: r(6), rs: r(7), rt: r(8) });
        }
        for op in AmoOp::ALL {
            v.push(Instr::Amo { op, rd: r(9), addr: r(10), src: r(11) });
        }
        for op in MemOp::ALL {
            v.push(Instr::Mem { op, data: r(12), base: r(13), offset: -128 });
        }
        for cond in BranchCond::ALL {
            v.push(Instr::Branch { cond, rs: r(14), rt: r(15), offset: -3 });
        }
        v.push(Instr::Lui { rd: r(16), imm: 0xBEEF });
        v.push(Instr::Jump { link: false, target_word: 0x123 });
        v.push(Instr::Jump { link: true, target_word: (1 << 26) - 1 });
        v.push(Instr::JumpReg { link: false, rd: Reg::ZERO, rs: r(17) });
        v.push(Instr::JumpReg { link: true, rd: r(18), rs: r(19) });
        v.push(Instr::Sync);
        v.push(Instr::Exit);
        v.push(Instr::Nop);
        for data in DataPattern::ALL {
            for control in [ControlPattern::Fixed, ControlPattern::Dynamic] {
                v.push(Instr::Xloop {
                    pattern: LoopPattern { data, control },
                    idx: r(20),
                    bound: r(21),
                    body_offset: 42,
                });
            }
        }
        v.push(Instr::Xi { reg: r(22), kind: XiKind::Imm(4) });
        v.push(Instr::Xi { reg: r(23), kind: XiKind::Reg(r(24)) });
        v
    }

    #[test]
    fn encode_decode_round_trip() {
        for i in sample_instrs() {
            let word = i.encode();
            assert_eq!(Instr::decode(word), Some(i), "round-trip failed for {i}");
        }
    }

    #[test]
    fn encodings_are_distinct() {
        let instrs = sample_instrs();
        let mut words: Vec<u32> = instrs.iter().map(|i| i.encode()).collect();
        words.sort_unstable();
        words.dedup();
        assert_eq!(words.len(), instrs.len(), "two instructions share an encoding");
    }

    #[test]
    fn invalid_words_decode_to_none() {
        // Unassigned opcodes.
        for opcode in [0x01u32, 0x0E, 0x1E, 0x1F, 0x27, 0x2B, 0x3F] {
            assert_eq!(Instr::decode(opcode << 26), None, "opcode {opcode:#x}");
        }
        // Bad funct codes.
        assert_eq!(Instr::decode(AluOp::ALL.len() as u32), None);
        assert_eq!(Instr::decode((opc_pub::LLFU << 26) | 63), None);
        // xloop with zero body offset.
        let xl = Instr::Xloop {
            pattern: LoopPattern::fixed(DataPattern::Uc),
            idx: Reg::new(1),
            bound: Reg::new(2),
            body_offset: 1,
        };
        assert_eq!(Instr::decode(xl.encode() & !0xFFF), None);
        // xi with rd != rs.
        let xi = Instr::Xi { reg: Reg::new(3), kind: XiKind::Imm(1) }.encode();
        assert_eq!(Instr::decode(xi ^ (1 << 16)), None);
    }

    mod opc_pub {
        pub const LLFU: u32 = 0x02;
    }

    #[test]
    fn traditional_branch_equivalence_fields() {
        // An xloop's operand metadata matches a conditional branch: it reads
        // idx and bound and writes nothing.
        let xl = Instr::Xloop {
            pattern: LoopPattern::fixed(DataPattern::Om),
            idx: Reg::new(5),
            bound: Reg::new(6),
            body_offset: 10,
        };
        assert_eq!(xl.dst(), None);
        assert_eq!(xl.srcs(), [Some(Reg::new(5)), Some(Reg::new(6))]);
        assert!(xl.is_control());
    }

    #[test]
    fn metadata_classification() {
        let r = Reg::new;
        let load = Instr::Mem { op: MemOp::Lw, data: r(1), base: r(2), offset: 0 };
        assert!(load.is_load() && !load.is_store() && load.is_mem());
        assert_eq!(load.dst(), Some(r(1)));
        assert_eq!(load.srcs(), [Some(r(2)), None]);

        let store = Instr::Mem { op: MemOp::Sw, data: r(1), base: r(2), offset: 0 };
        assert!(!store.is_load() && store.is_store());
        assert_eq!(store.dst(), None);
        assert_eq!(store.srcs(), [Some(r(2)), Some(r(1))]);

        let amo = Instr::Amo { op: AmoOp::Add, rd: r(3), addr: r(4), src: r(5) };
        assert!(amo.is_load() && amo.is_store() && amo.is_amo() && amo.is_mem());

        let jal = Instr::Jump { link: true, target_word: 0 };
        assert_eq!(jal.dst(), Some(Reg::RA));

        let llfu = Instr::Llfu { op: LlfuOp::FDiv, rd: r(1), rs: r(2), rt: r(3) };
        assert!(llfu.is_llfu());
    }

    #[test]
    fn display_forms() {
        let r = Reg::new;
        assert_eq!(
            Instr::Alu { op: AluOp::Addu, rd: r(1), rs: r(2), rt: r(3) }.to_string(),
            "addu r1, r2, r3"
        );
        assert_eq!(
            Instr::AluImm { op: AluOp::Addu, rd: r(1), rs: r(2), imm: -4 }.to_string(),
            "addiu r1, r2, -4"
        );
        assert_eq!(
            Instr::Mem { op: MemOp::Lw, data: r(9), base: r(4), offset: 8 }.to_string(),
            "lw r9, 8(r4)"
        );
        assert_eq!(
            Instr::Xloop {
                pattern: LoopPattern::dynamic(DataPattern::Uc),
                idx: r(2),
                bound: r(3),
                body_offset: 9
            }
            .to_string(),
            "xloop.uc.db -9, r2, r3"
        );
        assert_eq!(Instr::Xi { reg: r(7), kind: XiKind::Imm(4) }.to_string(), "addiu.xi r7, r7, 4");
    }
}
