use std::fmt;
use std::str::FromStr;

/// Number of architectural registers in the unified register file.
pub const NUM_REGS: usize = 32;

/// An architectural register specifier, `r0`–`r31`.
///
/// TRISC uses a single unified register file for integer and floating-point
/// values (as the paper's target does). `r0` is hard-wired to zero.
///
/// ```
/// use xloops_isa::Reg;
/// let r: Reg = "r17".parse()?;
/// assert_eq!(r.index(), 17);
/// assert_eq!(r.to_string(), "r17");
/// # Ok::<(), xloops_isa::ParseRegError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The zero register, hard-wired to `0`.
    pub const ZERO: Reg = Reg(0);
    /// Link register written by `jal`/`jalr` by convention.
    pub const RA: Reg = Reg(1);
    /// Stack pointer by convention.
    pub const SP: Reg = Reg(2);

    /// Creates a register specifier.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub const fn new(index: u8) -> Reg {
        assert!(index < NUM_REGS as u8, "register index out of range");
        Reg(index)
    }

    /// Creates a register specifier, returning `None` if out of range.
    #[inline]
    pub const fn try_new(index: u8) -> Option<Reg> {
        if index < NUM_REGS as u8 {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The register number, `0..32`.
    ///
    /// The mask is a no-op (every constructor checks `< 32`) but lets the
    /// optimizer drop bounds checks when this indexes a 32-entry register
    /// file — the single most common operation in the simulators.
    #[inline]
    pub const fn index(self) -> usize {
        (self.0 & 31) as usize
    }

    /// The register number as the 5-bit field used in instruction encodings.
    #[inline]
    pub const fn field(self) -> u32 {
        self.0 as u32
    }

    /// Whether this is the hard-wired zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError {
    text: String,
}

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.text)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Reg, ParseRegError> {
        let err = || ParseRegError { text: s.to_string() };
        match s {
            "zero" => return Ok(Reg::ZERO),
            "ra" => return Ok(Reg::RA),
            "sp" => return Ok(Reg::SP),
            _ => {}
        }
        let num = s.strip_prefix('r').ok_or_else(err)?;
        // Reject `r007`-style names so every register has one spelling.
        if num.len() > 1 && num.starts_with('0') {
            return Err(err());
        }
        let idx: u8 = num.parse().map_err(|_| err())?;
        Reg::try_new(idx).ok_or_else(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_registers() {
        for r in Reg::all() {
            let parsed: Reg = r.to_string().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn named_aliases() {
        assert_eq!("zero".parse::<Reg>().unwrap(), Reg::ZERO);
        assert_eq!("ra".parse::<Reg>().unwrap(), Reg::new(1));
        assert_eq!("sp".parse::<Reg>().unwrap(), Reg::new(2));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!("r32".parse::<Reg>().is_err());
        assert!("r100".parse::<Reg>().is_err());
        assert!(Reg::try_new(32).is_none());
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "x1", "r", "r-1", "r01", "R3"] {
            assert!(bad.parse::<Reg>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_panics_out_of_range() {
        let _ = Reg::new(32);
    }
}
