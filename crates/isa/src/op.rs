use std::fmt;

/// Single-cycle integer ALU operations.
///
/// Shift operations take their shift amount from the low 5 bits of the
/// second operand (register form) or from the immediate (immediate form).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (wrapping; TRISC has no trapping add).
    Addu,
    /// Subtraction (wrapping).
    Subu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOR.
    Nor,
    /// Set-if-less-than, signed comparison.
    Slt,
    /// Set-if-less-than, unsigned comparison.
    Sltu,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
}

impl AluOp {
    /// All ALU operations.
    pub const ALL: [AluOp; 11] = [
        AluOp::Addu,
        AluOp::Subu,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
    ];

    /// Applies the operation to two operand values.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Addu => a.wrapping_add(b),
            AluOp::Subu => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        }
    }

    /// Register-form mnemonic (`addu`, `and`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Addu => "addu",
            AluOp::Subu => "subu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Nor => "nor",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Sll => "sllv",
            AluOp::Srl => "srlv",
            AluOp::Sra => "srav",
        }
    }

    /// Immediate-form mnemonic (`addiu`, `andi`, …), or `None` if the
    /// operation has no immediate form (`subu`, `nor`).
    pub fn imm_mnemonic(self) -> Option<&'static str> {
        Some(match self {
            AluOp::Addu => "addiu",
            AluOp::And => "andi",
            AluOp::Or => "ori",
            AluOp::Xor => "xori",
            AluOp::Slt => "slti",
            AluOp::Sltu => "sltiu",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Subu | AluOp::Nor => return None,
        })
    }

    pub(crate) fn code(self) -> u32 {
        AluOp::ALL.iter().position(|&o| o == self).unwrap() as u32
    }

    pub(crate) fn from_code(code: u32) -> Option<AluOp> {
        AluOp::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Long-latency functional unit operations: integer multiply/divide and
/// single-precision floating point.
///
/// In the LPSU these are executed by the single LLFU shared between the GPP
/// and all lanes (Section II-D); sharing the LLFU is the key decision that
/// keeps the LPSU's area overhead near 40%.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LlfuOp {
    /// 32-bit integer multiply (low word).
    Mul,
    /// Signed integer division. Division by zero yields all ones.
    Div,
    /// Signed integer remainder. Remainder by zero yields the dividend.
    Rem,
    /// Unsigned integer division.
    Divu,
    /// Unsigned integer remainder.
    Remu,
    /// Single-precision add.
    FAdd,
    /// Single-precision subtract.
    FSub,
    /// Single-precision multiply.
    FMul,
    /// Single-precision divide.
    FDiv,
    /// Single-precision compare: set 1 if `a < b`.
    FLt,
    /// Single-precision compare: set 1 if `a <= b`.
    FLe,
    /// Single-precision compare: set 1 if `a == b`.
    FEq,
    /// Convert signed integer to single-precision float.
    CvtSW,
    /// Convert single-precision float to signed integer (round toward zero).
    CvtWS,
}

impl LlfuOp {
    /// All LLFU operations.
    pub const ALL: [LlfuOp; 14] = [
        LlfuOp::Mul,
        LlfuOp::Div,
        LlfuOp::Rem,
        LlfuOp::Divu,
        LlfuOp::Remu,
        LlfuOp::FAdd,
        LlfuOp::FSub,
        LlfuOp::FMul,
        LlfuOp::FDiv,
        LlfuOp::FLt,
        LlfuOp::FLe,
        LlfuOp::FEq,
        LlfuOp::CvtSW,
        LlfuOp::CvtWS,
    ];

    /// Applies the operation. The unified register file stores `f32` values
    /// as raw bits, so both operands and results are `u32`.
    pub fn apply(self, a: u32, b: u32) -> u32 {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        match self {
            LlfuOp::Mul => a.wrapping_mul(b),
            LlfuOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == 0x8000_0000 && b == u32::MAX {
                    a // i32::MIN / -1 overflows; mirror RISC-V semantics
                } else {
                    ((a as i32).wrapping_div(b as i32)) as u32
                }
            }
            LlfuOp::Rem => {
                if b == 0 {
                    a
                } else if a == 0x8000_0000 && b == u32::MAX {
                    0
                } else {
                    ((a as i32).wrapping_rem(b as i32)) as u32
                }
            }
            LlfuOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            LlfuOp::Remu => a.checked_rem(b).unwrap_or(a),
            LlfuOp::FAdd => (fa + fb).to_bits(),
            LlfuOp::FSub => (fa - fb).to_bits(),
            LlfuOp::FMul => (fa * fb).to_bits(),
            LlfuOp::FDiv => (fa / fb).to_bits(),
            LlfuOp::FLt => (fa < fb) as u32,
            LlfuOp::FLe => (fa <= fb) as u32,
            LlfuOp::FEq => (fa == fb) as u32,
            LlfuOp::CvtSW => (a as i32 as f32).to_bits(),
            LlfuOp::CvtWS => {
                // Round toward zero with saturation, like RISC-V fcvt.w.s.
                if fa.is_nan() {
                    0
                } else {
                    (fa.trunc().clamp(i32::MIN as f32, i32::MAX as f32) as i32) as u32
                }
            }
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LlfuOp::Mul => "mul",
            LlfuOp::Div => "div",
            LlfuOp::Rem => "rem",
            LlfuOp::Divu => "divu",
            LlfuOp::Remu => "remu",
            LlfuOp::FAdd => "fadd.s",
            LlfuOp::FSub => "fsub.s",
            LlfuOp::FMul => "fmul.s",
            LlfuOp::FDiv => "fdiv.s",
            LlfuOp::FLt => "flt.s",
            LlfuOp::FLe => "fle.s",
            LlfuOp::FEq => "feq.s",
            LlfuOp::CvtSW => "cvt.s.w",
            LlfuOp::CvtWS => "cvt.w.s",
        }
    }

    /// Whether the operation flows through the LLFU's pipelined datapath
    /// (multiply, FP add/mul, compares, converts) or occupies the iterative
    /// divider for its full latency.
    pub fn is_pipelined(self) -> bool {
        !matches!(self, LlfuOp::Div | LlfuOp::Rem | LlfuOp::Divu | LlfuOp::Remu | LlfuOp::FDiv)
    }

    /// Default occupancy of the long-latency functional unit in cycles.
    /// Pipelined ops occupy an issue slot for one cycle and deliver after
    /// this latency; divides occupy the unit for the whole duration.
    pub fn default_latency(self) -> u32 {
        match self {
            LlfuOp::Mul => 3,
            LlfuOp::Div | LlfuOp::Rem | LlfuOp::Divu | LlfuOp::Remu => 12,
            LlfuOp::FAdd | LlfuOp::FSub => 4,
            LlfuOp::FMul => 4,
            LlfuOp::FDiv => 12,
            LlfuOp::FLt | LlfuOp::FLe | LlfuOp::FEq => 2,
            LlfuOp::CvtSW | LlfuOp::CvtWS => 3,
        }
    }

    pub(crate) fn code(self) -> u32 {
        LlfuOp::ALL.iter().position(|&o| o == self).unwrap() as u32
    }

    pub(crate) fn from_code(code: u32) -> Option<LlfuOp> {
        LlfuOp::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for LlfuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Atomic memory operations.
///
/// Each AMO atomically loads a word, combines it with the source operand,
/// stores the result, and returns the *old* value. `amo.add` is the
/// `amo_inc` primitive used by the dynamic-bound worklist example in
/// Figure 1(e).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Atomic fetch-and-add.
    Add,
    /// Atomic fetch-and-AND.
    And,
    /// Atomic fetch-and-OR.
    Or,
    /// Atomic exchange.
    Xchg,
    /// Atomic fetch-and-minimum (signed).
    Min,
    /// Atomic fetch-and-maximum (signed).
    Max,
}

impl AmoOp {
    /// All AMO operations.
    pub const ALL: [AmoOp; 6] =
        [AmoOp::Add, AmoOp::And, AmoOp::Or, AmoOp::Xchg, AmoOp::Min, AmoOp::Max];

    /// Combines the old memory value with the operand, producing the new
    /// memory value.
    pub fn combine(self, old: u32, operand: u32) -> u32 {
        match self {
            AmoOp::Add => old.wrapping_add(operand),
            AmoOp::And => old & operand,
            AmoOp::Or => old | operand,
            AmoOp::Xchg => operand,
            AmoOp::Min => (old as i32).min(operand as i32) as u32,
            AmoOp::Max => (old as i32).max(operand as i32) as u32,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AmoOp::Add => "amo.add",
            AmoOp::And => "amo.and",
            AmoOp::Or => "amo.or",
            AmoOp::Xchg => "amo.xchg",
            AmoOp::Min => "amo.min",
            AmoOp::Max => "amo.max",
        }
    }

    pub(crate) fn code(self) -> u32 {
        AmoOp::ALL.iter().position(|&o| o == self).unwrap() as u32
    }

    pub(crate) fn from_code(code: u32) -> Option<AmoOp> {
        AmoOp::ALL.get(code as usize).copied()
    }
}

impl fmt::Display for AmoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Addu.apply(3, 4), 7);
        assert_eq!(AluOp::Addu.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Subu.apply(3, 4), u32::MAX);
        assert_eq!(AluOp::Slt.apply(-1i32 as u32, 0), 1);
        assert_eq!(AluOp::Sltu.apply(-1i32 as u32, 0), 0);
        assert_eq!(AluOp::Sll.apply(1, 33), 2, "shift amount is mod 32");
        assert_eq!(AluOp::Sra.apply(-8i32 as u32, 1), -4i32 as u32);
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Nor.apply(0, 0), u32::MAX);
    }

    #[test]
    fn llfu_integer_semantics() {
        assert_eq!(LlfuOp::Mul.apply(7, 6), 42);
        assert_eq!(LlfuOp::Div.apply(-7i32 as u32, 2), -3i32 as u32);
        assert_eq!(LlfuOp::Rem.apply(-7i32 as u32, 2), -1i32 as u32);
        assert_eq!(LlfuOp::Div.apply(5, 0), u32::MAX);
        assert_eq!(LlfuOp::Rem.apply(5, 0), 5);
        assert_eq!(LlfuOp::Div.apply(i32::MIN as u32, -1i32 as u32), i32::MIN as u32);
        assert_eq!(LlfuOp::Rem.apply(i32::MIN as u32, -1i32 as u32), 0);
        assert_eq!(LlfuOp::Divu.apply(7, 2), 3);
        assert_eq!(LlfuOp::Remu.apply(7, 2), 1);
    }

    #[test]
    fn llfu_float_semantics() {
        let b = |f: f32| f.to_bits();
        assert_eq!(LlfuOp::FAdd.apply(b(1.5), b(2.25)), b(3.75));
        assert_eq!(LlfuOp::FMul.apply(b(3.0), b(-2.0)), b(-6.0));
        assert_eq!(LlfuOp::FLt.apply(b(1.0), b(2.0)), 1);
        assert_eq!(LlfuOp::FLe.apply(b(2.0), b(2.0)), 1);
        assert_eq!(LlfuOp::FEq.apply(b(2.0), b(2.5)), 0);
        assert_eq!(LlfuOp::CvtSW.apply(-3i32 as u32, 0), b(-3.0));
        assert_eq!(LlfuOp::CvtWS.apply(b(-3.7), 0), -3i32 as u32);
        assert_eq!(LlfuOp::CvtWS.apply(b(f32::NAN), 0), 0);
        assert_eq!(LlfuOp::CvtWS.apply(b(1e20), 0), i32::MAX as u32);
    }

    #[test]
    fn amo_semantics() {
        assert_eq!(AmoOp::Add.combine(10, 4), 14);
        assert_eq!(AmoOp::Xchg.combine(10, 4), 4);
        assert_eq!(AmoOp::Min.combine(-5i32 as u32, 3), -5i32 as u32);
        assert_eq!(AmoOp::Max.combine(-5i32 as u32, 3), 3);
        assert_eq!(AmoOp::And.combine(0b1100, 0b1010), 0b1000);
        assert_eq!(AmoOp::Or.combine(0b1100, 0b1010), 0b1110);
    }

    #[test]
    fn op_codes_round_trip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_code(op.code()), Some(op));
        }
        for op in LlfuOp::ALL {
            assert_eq!(LlfuOp::from_code(op.code()), Some(op));
        }
        for op in AmoOp::ALL {
            assert_eq!(AmoOp::from_code(op.code()), Some(op));
        }
        assert_eq!(AluOp::from_code(31), None);
        assert_eq!(LlfuOp::from_code(31), None);
        assert_eq!(AmoOp::from_code(31), None);
    }
}
