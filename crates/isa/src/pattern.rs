use std::fmt;
use std::str::FromStr;

/// Inter-iteration **data**-dependence pattern of an `xloop` (Table I).
///
/// The patterns form a partial order of restrictiveness: any valid
/// [`Uc`](DataPattern::Uc) loop is also a valid [`Or`](DataPattern::Or) loop,
/// any valid [`Ua`](DataPattern::Ua) loop is also a valid
/// [`Om`](DataPattern::Om) loop, and any fixed-bound xloop is a valid
/// [`Orm`](DataPattern::Orm) loop. Software should pick the *least
/// restrictive* pattern that is valid, which gives hardware the most freedom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataPattern {
    /// `uc` — unordered concurrent: iterations may appear to execute
    /// concurrently and in any order. Data races are possible; AMOs provide
    /// synchronization when needed.
    Uc,
    /// `or` — ordered through registers: cross-iteration registers (CIRs)
    /// must observe the same values as a serial execution. No memory
    /// ordering.
    Or,
    /// `om` — ordered through memory: all values read from and written to
    /// memory must match a serial execution; no races are possible.
    Om,
    /// `orm` — ordered through registers *and* memory.
    Orm,
    /// `ua` — unordered atomic: iterations may execute in any order but
    /// their memory updates must appear atomic to other iterations.
    Ua,
}

impl DataPattern {
    /// All data-dependence patterns.
    pub const ALL: [DataPattern; 5] =
        [DataPattern::Uc, DataPattern::Or, DataPattern::Om, DataPattern::Orm, DataPattern::Ua];

    /// ISA mnemonic suffix (`uc`, `or`, `om`, `orm`, `ua`).
    pub fn suffix(self) -> &'static str {
        match self {
            DataPattern::Uc => "uc",
            DataPattern::Or => "or",
            DataPattern::Om => "om",
            DataPattern::Orm => "orm",
            DataPattern::Ua => "ua",
        }
    }

    /// Whether the pattern constrains ordering through registers (CIRs).
    pub fn orders_registers(self) -> bool {
        matches!(self, DataPattern::Or | DataPattern::Orm)
    }

    /// Whether the pattern constrains ordering through memory.
    ///
    /// `ua` is included: the current microarchitecture (like the paper's)
    /// executes `xloop.ua` with the same serial-memory-order mechanisms as
    /// `xloop.om`, which trivially satisfies atomicity.
    pub fn orders_memory(self) -> bool {
        matches!(self, DataPattern::Om | DataPattern::Orm | DataPattern::Ua)
    }

    /// Whether `self` is a valid *re-encoding* of `other`, i.e. every loop
    /// that is valid under `other` is also valid under `self`.
    ///
    /// This is the "any valid `xloop.uc` is also a valid `xloop.or`"
    /// relation from Section II-A.
    pub fn generalizes(self, other: DataPattern) -> bool {
        use DataPattern::*;
        if self == other {
            return true;
        }
        matches!(
            (other, self),
            (Uc, Or)
                | (Uc, Om)
                | (Uc, Orm)
                | (Uc, Ua)
                | (Ua, Om)
                | (Ua, Orm)
                | (Or, Orm)
                | (Om, Orm)
        )
    }

    /// Binary encoding of the pattern in the `xloop` instruction word.
    pub(crate) fn code(self) -> u32 {
        match self {
            DataPattern::Uc => 0,
            DataPattern::Or => 1,
            DataPattern::Om => 2,
            DataPattern::Orm => 3,
            DataPattern::Ua => 4,
        }
    }

    pub(crate) fn from_code(code: u32) -> Option<DataPattern> {
        Some(match code {
            0 => DataPattern::Uc,
            1 => DataPattern::Or,
            2 => DataPattern::Om,
            3 => DataPattern::Orm,
            4 => DataPattern::Ua,
            _ => return None,
        })
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Inter-iteration **control**-dependence pattern of an `xloop` (Table I).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ControlPattern {
    /// The loop bound is a loop-invariant value (no suffix in the mnemonic).
    #[default]
    Fixed,
    /// `db` — iterations may monotonically *increase* the loop bound
    /// (worklist-style loops).
    Dynamic,
}

impl ControlPattern {
    /// Mnemonic suffix: `""` for fixed bound, `".db"` for dynamic bound.
    pub fn suffix(self) -> &'static str {
        match self {
            ControlPattern::Fixed => "",
            ControlPattern::Dynamic => ".db",
        }
    }
}

/// The complete inter-iteration dependence pattern of an `xloop`: one
/// [`DataPattern`] combined with one [`ControlPattern`].
///
/// ```
/// use xloops_isa::{DataPattern, LoopPattern};
/// let p: LoopPattern = "uc.db".parse()?;
/// assert_eq!(p.data, DataPattern::Uc);
/// assert!(p.is_dynamic_bound());
/// assert_eq!(p.to_string(), "uc.db");
/// # Ok::<(), xloops_isa::ParsePatternError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LoopPattern {
    /// Data-dependence pattern.
    pub data: DataPattern,
    /// Control-dependence pattern.
    pub control: ControlPattern,
}

impl LoopPattern {
    /// A fixed-bound loop with the given data-dependence pattern.
    pub const fn fixed(data: DataPattern) -> LoopPattern {
        LoopPattern { data, control: ControlPattern::Fixed }
    }

    /// A dynamic-bound loop with the given data-dependence pattern.
    pub const fn dynamic(data: DataPattern) -> LoopPattern {
        LoopPattern { data, control: ControlPattern::Dynamic }
    }

    /// Whether iterations may grow the loop bound while executing.
    pub fn is_dynamic_bound(self) -> bool {
        self.control == ControlPattern::Dynamic
    }
}

impl fmt::Display for LoopPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.data.suffix(), self.control.suffix())
    }
}

/// Error returned when parsing a loop-pattern suffix fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    text: String,
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid xloop pattern suffix `{}`", self.text)
    }
}

impl std::error::Error for ParsePatternError {}

impl FromStr for LoopPattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<LoopPattern, ParsePatternError> {
        let err = || ParsePatternError { text: s.to_string() };
        let (data_str, control) = match s.strip_suffix(".db") {
            Some(prefix) => (prefix, ControlPattern::Dynamic),
            None => (s, ControlPattern::Fixed),
        };
        let data = DataPattern::ALL.into_iter().find(|p| p.suffix() == data_str).ok_or_else(err)?;
        Ok(LoopPattern { data, control })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_round_trip() {
        for data in DataPattern::ALL {
            for control in [ControlPattern::Fixed, ControlPattern::Dynamic] {
                let p = LoopPattern { data, control };
                let parsed: LoopPattern = p.to_string().parse().unwrap();
                assert_eq!(parsed, p);
            }
        }
    }

    #[test]
    fn code_round_trip() {
        for data in DataPattern::ALL {
            assert_eq!(DataPattern::from_code(data.code()), Some(data));
        }
        assert_eq!(DataPattern::from_code(7), None);
    }

    #[test]
    fn generalization_lattice() {
        use DataPattern::*;
        // Reflexive.
        for p in DataPattern::ALL {
            assert!(p.generalizes(p));
        }
        // The relations named in Section II-A.
        assert!(Or.generalizes(Uc));
        assert!(Om.generalizes(Ua));
        assert!(Orm.generalizes(Uc));
        assert!(Orm.generalizes(Or));
        assert!(Orm.generalizes(Om));
        assert!(Orm.generalizes(Ua));
        // And non-relations.
        assert!(!Uc.generalizes(Or));
        assert!(!Or.generalizes(Om));
        assert!(!Om.generalizes(Or));
        assert!(!Ua.generalizes(Om));
        assert!(!Uc.generalizes(Ua));
    }

    #[test]
    fn ordering_predicates() {
        assert!(!DataPattern::Uc.orders_registers());
        assert!(!DataPattern::Uc.orders_memory());
        assert!(DataPattern::Or.orders_registers());
        assert!(!DataPattern::Or.orders_memory());
        assert!(!DataPattern::Om.orders_registers());
        assert!(DataPattern::Om.orders_memory());
        assert!(DataPattern::Orm.orders_registers());
        assert!(DataPattern::Orm.orders_memory());
        assert!(!DataPattern::Ua.orders_registers());
        assert!(DataPattern::Ua.orders_memory());
    }

    #[test]
    fn rejects_bad_suffixes() {
        for bad in ["", "xx", "uc.", "uc.dbx", "db", "UC"] {
            assert!(bad.parse::<LoopPattern>().is_err(), "{bad:?}");
        }
    }
}
