//! # xloops-isa
//!
//! The TRISC instruction set plus the XLOOPS extensions of Table I of the
//! paper. TRISC is a 32-bit RISC ISA with the properties the paper's custom
//! LLVM target assumes: 32 unified integer/floating-point registers, no
//! branch delay slot, word-aligned 32-bit instructions.
//!
//! The XLOOPS extensions are:
//!
//! * `xloop.{uc,or,om,orm,ua}[.db] L, rIdx, rBound` — marks the static
//!   instruction sequence `[L, xloop)` as a parallel loop body with the given
//!   inter-iteration [data-dependence pattern](DataPattern) and
//!   [control-dependence pattern](ControlPattern). On a traditional
//!   microarchitecture the instruction behaves exactly like
//!   `blt rIdx, rBound, L`.
//! * `addiu.xi rX, rX, imm` / `addu.xi rX, rX, rT` — cross-iteration
//!   instructions that explicitly encode mutual induction variables (MIVs) so
//!   specialized hardware can compute them in parallel; traditionally they
//!   execute as plain additions.
//!
//! The crate provides the [`Instr`] representation, a dense 32-bit binary
//! [encoding](Instr::encode) / [decoding](Instr::decode), and the operand /
//! hazard metadata ([`Instr::dst`], [`Instr::srcs`], …) that the cycle-level
//! models in `xloops-gpp` and `xloops-lpsu` are driven by.
//!
//! ```
//! use xloops_isa::{Instr, AluOp, Reg};
//!
//! let i = Instr::Alu { op: AluOp::Addu, rd: Reg::new(3), rs: Reg::new(1), rt: Reg::new(2) };
//! let word = i.encode();
//! assert_eq!(Instr::decode(word), Some(i));
//! ```

mod instr;
mod op;
mod pattern;
mod reg;

pub use instr::{BranchCond, Instr, MemOp, XiKind};
pub use op::{AluOp, AmoOp, LlfuOp};
pub use pattern::{ControlPattern, DataPattern, LoopPattern, ParsePatternError};
pub use reg::{ParseRegError, Reg, NUM_REGS};
// original exports replaced

/// Size of one instruction in bytes. All instructions are fixed width.
pub const INSTR_BYTES: u32 = 4;
