//! # xloops-energy
//!
//! Event-based energy accounting and the analytical VLSI area/cycle-time
//! model.
//!
//! The paper estimates energy with McPAT-1.0 at 45 nm for the cycle-level
//! study (Figure 8) and with a commercial ASIC flow at TSMC 40 nm for the
//! RTL study (Figure 10, Table V). Neither tool can be shipped in a Rust
//! reproduction, so this crate substitutes:
//!
//! * [`EnergyTable`] — per-event energies (pJ) of McPAT-class magnitude.
//!   The *relative* energy claims of the paper depend only on event ratios
//!   (e.g. an LPSU instruction-buffer access measured 10× cheaper than an
//!   I-cache access; out-of-order issue adds tens of pJ of
//!   rename/IQ/ROB overhead per instruction), which the tables encode
//!   directly.
//! * [`lpsu_area_mm2`]/[`lpsu_cycle_time_ns`] — an analytical area and
//!   cycle-time model calibrated to the
//!   published post-place-and-route numbers of Table V (GPP 0.25 mm²;
//!   `lpsu+i128+ln4` ≈ 0.36 mm²; near-linear lane scaling).
//!
//! Energy is accumulated from [`EventCounts`], which `xloops-sim` fills
//! from the GPP and LPSU statistics.

mod area;
mod model;

pub use area::{gpp_area_mm2, lpsu_area_mm2, lpsu_cycle_time_ns, scalar_cycle_time_ns};
pub use model::{EnergyTable, EventCounts};
