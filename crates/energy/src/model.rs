use xloops_func::InsnMix;
use xloops_stats::StatSet;

/// Per-event energies in picojoules.
///
/// Three presets mirror the paper's methodology: [`EnergyTable::mcpat45_io`]
/// and [`EnergyTable::mcpat45_ooo`] for the cycle-level study (Figure 8),
/// and [`EnergyTable::vlsi40`] for the RTL/VLSI study (Figure 10), where
/// the measured instruction-buffer access is ten times cheaper than an
/// I-cache access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyTable {
    /// One instruction fetch from the I-cache (tag + data array).
    pub icache_access: f64,
    /// One instruction fetch from an LPSU loop instruction buffer.
    pub ibuf_access: f64,
    /// Decode energy per instruction.
    pub decode: f64,
    /// One register-file read port access.
    pub rf_read: f64,
    /// One register-file write port access.
    pub rf_write: f64,
    /// One simple integer ALU operation.
    pub alu: f64,
    /// One long-latency operation (integer mul/div, FP) on average.
    pub llfu: f64,
    /// One data-cache access (load, store, or AMO).
    pub dcache_access: f64,
    /// Extra energy of an atomic read-modify-write beyond a store.
    pub amo_extra: f64,
    /// Out-of-order bookkeeping per dispatched instruction (rename tables,
    /// issue queue, ROB, wide bypass). Zero on in-order cores.
    pub ooo_per_instr: f64,
    /// Recovery energy per branch misprediction (fetched-and-squashed
    /// wrong-path work).
    pub mispredict: f64,
    /// One LSQ search/insert (the paper conservatively charges the LPSU
    /// lanes an out-of-order LSQ's energy).
    pub lsq_event: f64,
    /// One cross-iteration MIV computation (conservatively a 32-bit
    /// multiply, as the paper accounts it).
    pub xi_mul: f64,
    /// One CIR transfer through a CIB (extra RF read + write events).
    pub cir_transfer: f64,
    /// Writing one instruction into a loop instruction buffer during the
    /// scan phase, including the one-time rename (amortized over all
    /// iterations).
    pub scan_per_instr: f64,
    /// Fractional overhead for the LMU, index queues, and arbiters,
    /// applied to all LPSU energy (5%, from the paper's VLSI results).
    pub lmu_overhead_frac: f64,
}

impl EnergyTable {
    /// A stable 64-bit fingerprint of every entry, suitable as a hash-map
    /// key component (f64 has no `Hash`/`Eq`; bit patterns do). Two tables
    /// fingerprint equally iff all entries are bit-identical.
    pub fn fingerprint(&self) -> u64 {
        // Destructure so adding a field without extending the fingerprint
        // is a compile error.
        let EnergyTable {
            icache_access,
            ibuf_access,
            decode,
            rf_read,
            rf_write,
            alu,
            llfu,
            dcache_access,
            amo_extra,
            ooo_per_instr,
            mispredict,
            lsq_event,
            xi_mul,
            cir_transfer,
            scan_per_instr,
            lmu_overhead_frac,
        } = *self;
        // FNV-1a over the field bit patterns, in declaration order.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for bits in [
            icache_access,
            ibuf_access,
            decode,
            rf_read,
            rf_write,
            alu,
            llfu,
            dcache_access,
            amo_extra,
            ooo_per_instr,
            mispredict,
            lsq_event,
            xi_mul,
            cir_transfer,
            scan_per_instr,
            lmu_overhead_frac,
        ]
        .map(f64::to_bits)
        {
            for byte in bits.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// McPAT-class 45 nm table for the simple in-order GPP and LPSU lanes.
    pub fn mcpat45_io() -> EnergyTable {
        EnergyTable {
            icache_access: 20.0,
            ibuf_access: 2.0,
            decode: 2.0,
            rf_read: 1.0,
            rf_write: 1.5,
            alu: 3.0,
            llfu: 10.0,
            dcache_access: 25.0,
            amo_extra: 10.0,
            ooo_per_instr: 0.0,
            mispredict: 0.0,
            lsq_event: 8.0,
            xi_mul: 10.0,
            cir_transfer: 3.0,
            scan_per_instr: 16.0,
            lmu_overhead_frac: 0.05,
        }
    }

    /// McPAT-class 45 nm table for an out-of-order GPP of the given width.
    pub fn mcpat45_ooo(width: u32) -> EnergyTable {
        EnergyTable {
            ooo_per_instr: 6.0 * width as f64,
            mispredict: 30.0 * width as f64,
            ..EnergyTable::mcpat45_io()
        }
    }

    /// TSMC-40 nm-flavoured table for the VLSI study: the ASIC flow
    /// measured an instruction-buffer access ten times cheaper than an
    /// I-cache access, and overall savings larger than McPAT predicts.
    pub fn vlsi40() -> EnergyTable {
        EnergyTable {
            icache_access: 28.0,
            ibuf_access: 2.8,
            dcache_access: 30.0,
            ..EnergyTable::mcpat45_io()
        }
    }
}

/// Raw event counts of one execution, filled by `xloops-sim` from the GPP
/// and LPSU statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Instructions fetched from the I-cache (GPP path).
    pub icache_fetches: u64,
    /// Instructions fetched from LPSU instruction buffers.
    pub ibuf_fetches: u64,
    /// Simple ALU operations.
    pub alu_ops: u64,
    /// LLFU operations.
    pub llfu_ops: u64,
    /// Data-cache accesses (loads + stores + AMOs).
    pub dcache_accesses: u64,
    /// Atomic memory operations (charged `amo_extra` on top of the access).
    pub amos: u64,
    /// Register-file reads.
    pub rf_reads: u64,
    /// Register-file writes.
    pub rf_writes: u64,
    /// Instructions that paid out-of-order bookkeeping.
    pub ooo_instrs: u64,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// LSQ search/insert events.
    pub lsq_events: u64,
    /// Cross-iteration MIV computations.
    pub xi_muls: u64,
    /// CIR transfers through CIBs.
    pub cir_transfers: u64,
    /// Instructions written into instruction buffers by scan phases.
    pub scan_instrs: u64,
    /// Whether the LPSU overhead fraction applies to the non-GPP part.
    pub lpsu_fraction_events: u64,
}

impl EventCounts {
    /// Events of a GPP-side execution with the given dynamic mix.
    ///
    /// Register traffic is approximated structurally: two reads and one
    /// write per instruction on average (the exact operand counts are in
    /// the mix, but McPAT works at the same granularity).
    pub fn from_gpp_mix(mix: &InsnMix, mispredicts: u64, is_ooo: bool) -> EventCounts {
        let total = mix.total();
        EventCounts {
            icache_fetches: total,
            alu_ops: mix.alu + mix.branches + mix.jumps + mix.xloops + mix.xis,
            llfu_ops: mix.llfu,
            dcache_accesses: mix.loads + mix.stores + mix.amos,
            amos: mix.amos,
            rf_reads: 2 * total,
            rf_writes: total,
            ooo_instrs: if is_ooo { total } else { 0 },
            mispredicts,
            ..EventCounts::default()
        }
    }

    /// Total energy in **nanojoules** under a table.
    pub fn energy_nj(&self, t: &EnergyTable) -> f64 {
        let decode_events = self.icache_fetches + self.ibuf_fetches;
        let core_pj = self.icache_fetches as f64 * t.icache_access
            + self.ibuf_fetches as f64 * t.ibuf_access
            + decode_events as f64 * t.decode
            + self.alu_ops as f64 * t.alu
            + self.llfu_ops as f64 * t.llfu
            + self.dcache_accesses as f64 * t.dcache_access
            + self.amos as f64 * t.amo_extra
            + self.rf_reads as f64 * t.rf_read
            + self.rf_writes as f64 * t.rf_write
            + self.ooo_instrs as f64 * t.ooo_per_instr
            + self.mispredicts as f64 * t.mispredict
            + self.lsq_events as f64 * t.lsq_event
            + self.xi_muls as f64 * t.xi_mul
            + self.cir_transfers as f64 * t.cir_transfer
            + self.scan_instrs as f64 * t.scan_per_instr;
        // LMU/IDQ/arbiter overhead applies to the LPSU share of the events.
        let lpsu_share_pj = self.ibuf_fetches as f64 * t.ibuf_access
            + self.lsq_events as f64 * t.lsq_event
            + self.xi_muls as f64 * t.xi_mul
            + self.cir_transfers as f64 * t.cir_transfer
            + self.scan_instrs as f64 * t.scan_per_instr;
        (core_pj + lpsu_share_pj * t.lmu_overhead_frac) / 1000.0
    }

    /// These event counts as a node of the unified schema.
    ///
    /// One counter per energy-event class, in the declaration order of
    /// [`EventCounts`].
    pub fn stat_set(&self) -> StatSet {
        let mut s = StatSet::new("energy");
        s.set("icache_fetches", self.icache_fetches)
            .set("ibuf_fetches", self.ibuf_fetches)
            .set("alu_ops", self.alu_ops)
            .set("llfu_ops", self.llfu_ops)
            .set("dcache_accesses", self.dcache_accesses)
            .set("amos", self.amos)
            .set("rf_reads", self.rf_reads)
            .set("rf_writes", self.rf_writes)
            .set("ooo_instrs", self.ooo_instrs)
            .set("mispredicts", self.mispredicts)
            .set("lsq_events", self.lsq_events)
            .set("xi_muls", self.xi_muls)
            .set("cir_transfers", self.cir_transfers)
            .set("scan_instrs", self.scan_instrs);
        s
    }

    /// Component-wise sum of two event sets.
    pub fn add(&self, other: &EventCounts) -> EventCounts {
        EventCounts {
            icache_fetches: self.icache_fetches + other.icache_fetches,
            ibuf_fetches: self.ibuf_fetches + other.ibuf_fetches,
            alu_ops: self.alu_ops + other.alu_ops,
            llfu_ops: self.llfu_ops + other.llfu_ops,
            dcache_accesses: self.dcache_accesses + other.dcache_accesses,
            amos: self.amos + other.amos,
            rf_reads: self.rf_reads + other.rf_reads,
            rf_writes: self.rf_writes + other.rf_writes,
            ooo_instrs: self.ooo_instrs + other.ooo_instrs,
            mispredicts: self.mispredicts + other.mispredicts,
            lsq_events: self.lsq_events + other.lsq_events,
            xi_muls: self.xi_muls + other.xi_muls,
            cir_transfers: self.cir_transfers + other.cir_transfers,
            scan_instrs: self.scan_instrs + other.scan_instrs,
            lpsu_fraction_events: self.lpsu_fraction_events + other.lpsu_fraction_events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(total_alu: u64, loads: u64) -> InsnMix {
        InsnMix { alu: total_alu, loads, ..InsnMix::default() }
    }

    #[test]
    fn ibuf_fetch_is_ten_times_cheaper_than_icache() {
        for t in [EnergyTable::mcpat45_io(), EnergyTable::vlsi40()] {
            assert!((t.icache_access / t.ibuf_access - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ooo_costs_more_than_io_for_the_same_work() {
        let m = mix(1000, 200);
        let io = EventCounts::from_gpp_mix(&m, 0, false).energy_nj(&EnergyTable::mcpat45_io());
        let o2 = EventCounts::from_gpp_mix(&m, 10, true).energy_nj(&EnergyTable::mcpat45_ooo(2));
        let o4 = EventCounts::from_gpp_mix(&m, 10, true).energy_nj(&EnergyTable::mcpat45_ooo(4));
        assert!(io < o2 && o2 < o4, "io {io:.1} < ooo2 {o2:.1} < ooo4 {o4:.1}");
    }

    #[test]
    fn lpsu_fetch_path_saves_energy_versus_gpp_fetch_path() {
        // Same work executed from the instruction buffer instead of the
        // I-cache must be cheaper — the key VLSI result.
        let t = EnergyTable::vlsi40();
        let gpp = EventCounts {
            icache_fetches: 10_000,
            alu_ops: 8_000,
            dcache_accesses: 2_000,
            rf_reads: 20_000,
            rf_writes: 10_000,
            ..EventCounts::default()
        };
        let lpsu = EventCounts { icache_fetches: 0, ibuf_fetches: 10_000, ..gpp };
        assert!(lpsu.energy_nj(&t) < gpp.energy_nj(&t));
        let saving = gpp.energy_nj(&t) / lpsu.energy_nj(&t);
        assert!(saving > 1.3, "fetch energy dominates: saving {saving:.2}x");
    }

    #[test]
    fn energy_is_additive() {
        let t = EnergyTable::mcpat45_io();
        let a = EventCounts::from_gpp_mix(&mix(100, 10), 0, false);
        let b = EventCounts::from_gpp_mix(&mix(50, 5), 0, false);
        let lhs = a.add(&b).energy_nj(&t);
        let rhs = a.energy_nj(&t) + b.energy_nj(&t);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn amos_cost_extra() {
        let t = EnergyTable::mcpat45_io();
        let plain = EventCounts { dcache_accesses: 100, ..EventCounts::default() };
        let atomic = EventCounts { dcache_accesses: 100, amos: 100, ..EventCounts::default() };
        assert!(atomic.energy_nj(&t) > plain.energy_nj(&t));
    }
}
