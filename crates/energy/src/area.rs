//! Analytical area and cycle-time model for Table V.
//!
//! We cannot run a Synopsys flow, so the model is calibrated to the
//! paper's published post-place-and-route numbers (TSMC 40 nm):
//!
//! * scalar GPP (five-stage, 16 KB I$ + 16 KB D$): **0.25 mm²**;
//! * `lpsu+i128+ln4`: **0.36 mm²** total (≈43% overhead);
//! * lane sweep ln2→ln8 at i128: 24%–77% overhead, roughly linear;
//! * instruction-buffer sweep i96→i192 at ln4: 41%–48% overhead;
//! * cycle time 1.98–2.54 ns growing with lane count (arbitration fan-in).
//!
//! The decomposition — fixed LMU/IDQ/arbiter block plus per-lane datapath
//! plus per-lane instruction-buffer SRAM — reproduces all published points
//! to within ~0.01 mm².

/// Area of the baseline scalar GPP including its L1 caches, in mm².
pub fn gpp_area_mm2() -> f64 {
    0.25
}

/// Cycle time of the baseline scalar GPP in ns.
pub fn scalar_cycle_time_ns() -> f64 {
    1.95
}

/// Area of an LPSU (the *additional* block next to the GPP), in mm².
///
/// `ibuf_entries` is the per-lane loop-instruction-buffer capacity and
/// `lanes` the lane count.
pub fn lpsu_area_mm2(ibuf_entries: u32, lanes: u32) -> f64 {
    const LMU_FIXED: f64 = 0.0166; // LMU + index queues + arbiters + MIVT
    const LANE_DATAPATH: f64 = 0.0167; // 2r2w RF + ALU/AGU + control + CIB + LSQ
    const IBUF_PER_ENTRY: f64 = 3.9e-5; // 32-bit SRAM entry (CACTI-class)
    LMU_FIXED + lanes as f64 * (LANE_DATAPATH + ibuf_entries as f64 * IBUF_PER_ENTRY)
}

/// Cycle time of a GPP+LPSU system in ns (the lane/LMU arbitration paths
/// grow with fan-in; large instruction buffers add decode wire delay).
pub fn lpsu_cycle_time_ns(ibuf_entries: u32, lanes: u32) -> f64 {
    1.80 + 0.09 * lanes as f64 + 0.03 * (ibuf_entries as f64 - 96.0) / 96.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published Table V points: (ibuf, lanes, total mm², cycle ns).
    const TABLE_V: [(u32, u32, f64, f64); 7] = [
        (96, 4, 0.35, 2.16),
        (128, 4, 0.36, 2.14),
        (160, 4, 0.36, 2.12),
        (192, 4, 0.37, 2.20),
        (128, 2, 0.31, 1.98),
        (128, 6, 0.41, 2.28),
        (128, 8, 0.44, 2.54),
    ];

    #[test]
    fn reproduces_published_areas_within_tolerance() {
        for (ibuf, lanes, total, _) in TABLE_V {
            let model = gpp_area_mm2() + lpsu_area_mm2(ibuf, lanes);
            assert!(
                (model - total).abs() < 0.015,
                "lpsu+i{ibuf}+ln{lanes}: model {model:.3} vs published {total:.3}"
            );
        }
    }

    #[test]
    fn primary_design_point_overhead_is_about_43_percent() {
        let overhead = lpsu_area_mm2(128, 4) / gpp_area_mm2();
        assert!((0.38..0.48).contains(&overhead), "overhead {overhead:.2}");
    }

    #[test]
    fn area_scales_linearly_with_lanes() {
        let a2 = lpsu_area_mm2(128, 2);
        let a4 = lpsu_area_mm2(128, 4);
        let a8 = lpsu_area_mm2(128, 8);
        let slope1 = (a4 - a2) / 2.0;
        let slope2 = (a8 - a4) / 4.0;
        assert!((slope1 - slope2).abs() < 1e-9, "linear in lanes");
        assert!(a8 < 2.0 * a4, "fixed LMU block is shared");
    }

    #[test]
    fn reproduces_published_cycle_times_within_tolerance() {
        for (ibuf, lanes, _, ct) in TABLE_V {
            let model = lpsu_cycle_time_ns(ibuf, lanes);
            assert!(
                (model - ct).abs() < 0.11,
                "lpsu+i{ibuf}+ln{lanes}: model {model:.2} vs published {ct:.2}"
            );
        }
    }

    #[test]
    fn bigger_buffers_cost_little() {
        // Varying i96→i192 changes overhead by only a few percent of the
        // GPP (the paper's argument that large instruction buffers are
        // reasonable).
        let delta = lpsu_area_mm2(192, 4) - lpsu_area_mm2(96, 4);
        assert!(delta / gpp_area_mm2() < 0.10, "delta {delta:.3}");
    }
}
