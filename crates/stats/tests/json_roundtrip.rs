//! Round-trip properties of the deterministic JSON infrastructure:
//! `render(parse(render(x)))` must be byte-identical to `render(x)` for
//! arbitrary [`JsonValue`] documents and arbitrary [`StatSet`] trees —
//! the invariant that lets experiment manifests and shard result files
//! ship through the same encoder/parser pair without drift. The binary
//! sibling (`xloops_stats::binary`) must agree: `encode -> decode ->
//! encode` is the identity on the bytes, decoding re-renders to the same
//! JSON text, and arbitrary byte soup never panics the decoder.

use proptest::prelude::*;
use xloops_stats::{binary, JsonValue, StatSet};

/// Names exercising the escaping rules: quotes, backslashes, control
/// characters, non-ASCII, and plain identifiers.
fn name_strategy() -> BoxedStrategy<String> {
    prop::sample::select(vec![
        "cycles".to_string(),
        "stalls.raw".to_string(),
        "a b".to_string(),
        "quo\"te".to_string(),
        "back\\slash".to_string(),
        "new\nline".to_string(),
        "tab\tand\rcr".to_string(),
        "ctl\u{1}\u{1f}".to_string(),
        "unicode-λ-😀".to_string(),
        String::new(),
    ])
    .boxed()
}

/// Finite and non-finite floats from raw bit patterns (NaN payloads,
/// infinities, subnormals), plus friendly values.
fn f64_strategy() -> BoxedStrategy<f64> {
    prop_oneof![
        any::<u64>().prop_map(f64::from_bits),
        prop::sample::select(vec![0.0, -0.0, 1.0, 2.5, -17.25, 1e300, 1e-300]),
    ]
    .boxed()
}

fn scalar_strategy() -> BoxedStrategy<JsonValue> {
    prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<u64>().prop_map(JsonValue::UInt),
        any::<i64>().prop_map(|v| {
            if v < 0 {
                JsonValue::Int(v)
            } else {
                JsonValue::UInt(v as u64)
            }
        }),
        f64_strategy().prop_map(JsonValue::Float),
        name_strategy().prop_map(JsonValue::Str),
    ]
    .boxed()
}

/// JSON documents up to three levels deep.
fn value_strategy() -> BoxedStrategy<JsonValue> {
    let mut layer = scalar_strategy();
    for _ in 0..3 {
        layer = prop_oneof![
            scalar_strategy(),
            prop::collection::vec(layer.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::vec((name_strategy(), layer), 0..4).prop_map(JsonValue::Object),
        ]
        .boxed();
    }
    layer
}

/// Stat trees up to three levels deep with arbitrary counters/metrics.
fn stat_set_strategy() -> BoxedStrategy<StatSet> {
    fn node(depth: usize) -> BoxedStrategy<StatSet> {
        let base = (
            name_strategy(),
            prop::collection::vec((name_strategy(), any::<u64>()), 0..4),
            prop::collection::vec((name_strategy(), f64_strategy()), 0..4),
        );
        if depth == 0 {
            base.prop_map(|(name, counters, metrics)| build(&name, counters, metrics, vec![]))
                .boxed()
        } else {
            (base, prop::collection::vec(node(depth - 1), 0..3))
                .prop_map(|((name, counters, metrics), children)| {
                    build(&name, counters, metrics, children)
                })
                .boxed()
        }
    }
    fn build(
        name: &str,
        counters: Vec<(String, u64)>,
        metrics: Vec<(String, f64)>,
        children: Vec<StatSet>,
    ) -> StatSet {
        let mut s = StatSet::new(name);
        for (n, v) in counters {
            s.set(&n, v);
        }
        for (n, v) in metrics {
            s.set_metric(&n, v);
        }
        for c in children {
            s.push_child(c);
        }
        s
    }
    node(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn json_value_encode_parse_encode_is_identity(v in value_strategy()) {
        let once = v.render();
        let parsed = JsonValue::parse(&once)
            .map_err(|e| TestCaseError::fail(format!("{e} in {once}")))?;
        prop_assert_eq!(&parsed.render(), &once);
        // The pretty rendering parses back to the same reparse too.
        let pretty = parsed.render_pretty();
        let reparsed = JsonValue::parse(&pretty)
            .map_err(|e| TestCaseError::fail(format!("{e} in {pretty}")))?;
        prop_assert_eq!(reparsed.render(), once);
    }

    #[test]
    fn stat_set_encode_parse_encode_is_identity(s in stat_set_strategy()) {
        let once = s.to_json();
        let parsed = StatSet::from_json(&once)
            .map_err(|e| TestCaseError::fail(format!("{e} in {once}")))?;
        prop_assert_eq!(parsed.to_json(), once);
    }

    #[test]
    fn parser_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let text: String = bytes.into_iter().map(|b| b as char).collect();
        let _ = JsonValue::parse(&text); // Ok or Err, never an unwind.
        let _ = StatSet::from_json(&text);
    }

    #[test]
    fn binary_encode_decode_encode_is_identity(v in value_strategy()) {
        let bytes = binary::encode(&v);
        prop_assert!(binary::is_binary(&bytes));
        let decoded = binary::decode(&bytes)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        // Byte identity of the re-encode (structural equality would choke
        // on NaN != NaN; the encoding is bit-exact, so this is stronger).
        prop_assert_eq!(binary::encode(&decoded), bytes);
        // And both sides render to identical JSON text: binary ≡ JSON.
        prop_assert_eq!(decoded.render(), v.render());
    }

    #[test]
    fn stat_set_binary_round_trips_and_agrees_with_json(s in stat_set_strategy()) {
        let bytes = s.to_binary();
        let back = StatSet::from_binary(&bytes)
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.to_binary(), bytes);
        prop_assert_eq!(back.to_json(), s.to_json());
    }

    #[test]
    fn binary_decoder_never_panics_on_byte_soup(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
        magic in any::<bool>(),
    ) {
        // Half the cases are prefixed with a valid magic so the decoder
        // gets past the sniff and into the structural code paths.
        let soup = if magic {
            let mut b = binary::MAGIC.to_vec();
            b.push(binary::VERSION);
            b.extend_from_slice(&bytes);
            b
        } else {
            bytes
        };
        let _ = binary::decode(&soup); // Ok or Err, never an unwind.
        let _ = StatSet::from_binary(&soup);
    }

    #[test]
    fn binary_rejects_any_truncation(v in value_strategy()) {
        let bytes = binary::encode(&v);
        for n in 0..bytes.len() {
            prop_assert!(binary::decode(&bytes[..n]).is_err());
        }
    }
}
