//! Dependency-free JSON document model: the parse side of the crate's
//! deterministic JSON encoding.
//!
//! [`crate::StatSet::to_json`] has always emitted hand-rolled JSON; this
//! module adds the matching generic value type ([`JsonValue`]) and a
//! recursive-descent parser so documents can be read back — experiment
//! manifests, shard result files, and stat trees all round-trip through
//! the same infrastructure. Like the rest of the workspace it is vendored
//! logic, not an external dependency.
//!
//! Determinism contract: object keys preserve insertion order on both the
//! build and parse paths, unsigned integers render as integers, and
//! floating-point values render with Rust's shortest round-trippable
//! `{:?}` form (non-finite values render as `null`). Consequently
//! `render(parse(render(x))) == render(x)` for every value this module
//! can build — the property the round-trip tests pin.

use std::fmt;

/// A parsed or constructed JSON value.
///
/// Numbers keep three representations so that integer counters survive a
/// round-trip exactly: a token without `.`/exponent parses to [`JsonValue::UInt`]
/// (or [`JsonValue::Int`] when negative) and only genuinely fractional or
/// exponent-bearing tokens become [`JsonValue::Float`].
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (e.g. a `u64` stat counter).
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number (renders via `{:?}`; non-finite as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `f64`: floats verbatim, integers widened, `null` as
    /// NaN (the encode side maps non-finite metrics to `null`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(v) => Some(*v),
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders the compact (no whitespace) deterministic encoding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => out.push_str(&v.to_string()),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Float(v) => write_f64(out, *v),
            JsonValue::Str(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders with two-space indentation; composite values containing
    /// only scalar leaves stay on one line, which keeps documents like the
    /// bench summary readable without ballooning each entry.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn is_scalar(&self) -> bool {
        !matches!(self, JsonValue::Array(_) | JsonValue::Object(_))
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let inline = match self {
            JsonValue::Array(items) => items.iter().all(JsonValue::is_scalar),
            JsonValue::Object(fields) => fields.iter().all(|(_, v)| v.is_scalar()),
            _ => true,
        };
        if inline {
            self.write(out);
            return;
        }
        let pad = "  ".repeat(depth + 1);
        match self {
            JsonValue::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            _ => self.write(out),
        }
    }

    /// Parses a JSON document. Trailing whitespace is allowed; trailing
    /// non-whitespace input is an error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input after the JSON document"));
        }
        Ok(value)
    }
}

/// Writes `v` exactly as the crate's stat encoding does: `{:?}` (shortest
/// round-trippable form) for finite values, `null` otherwise.
pub(crate) fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        use fmt::Write as _;
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Writes `s` as a JSON string literal with the crate's escaping rules.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a one-line diagnosis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting guard: documents deeper than this are rejected rather than
/// risking a parser stack overflow on hostile input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { pos: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-decode from the byte position: strings are UTF-8.
                    let rest = &self.bytes[self.pos - 1..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits are UTF-8");
        if !fractional {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = digits.parse::<u64>() {
                    return if v == 0 {
                        Ok(JsonValue::UInt(0))
                    } else if v <= i64::MAX as u64 + 1 {
                        Ok(JsonValue::Int((v as i64).wrapping_neg()))
                    } else {
                        Err(self.err(format!("integer out of range: {text}")))
                    };
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::Float(v)),
            _ => Err(self.err(format!("invalid number `{text}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        JsonValue::parse(text).expect(text).render()
    }

    #[test]
    fn scalars_parse_and_render() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip(" false "), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("2.5"), "2.5");
        assert_eq!(roundtrip("1.0"), "1.0");
        assert_eq!(roundtrip("\"a\\nb\""), "\"a\\nb\"");
        assert_eq!(roundtrip("18446744073709551615"), "18446744073709551615");
    }

    #[test]
    fn integers_stay_integers_and_floats_stay_floats() {
        assert_eq!(JsonValue::parse("7").unwrap(), JsonValue::UInt(7));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(JsonValue::parse("7.0").unwrap(), JsonValue::Float(7.0));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(JsonValue::parse("-9223372036854775808").unwrap(), JsonValue::Int(i64::MIN));
    }

    #[test]
    fn composites_preserve_order() {
        let text = "{\"b\":1,\"a\":[1,2,{\"x\":null}],\"c\":\"s\"}";
        assert_eq!(roundtrip(text), text);
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.get("b"), Some(&JsonValue::UInt(1)));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let text = "\"\\\"\\\\\\n\\t\\r\\u0001\"";
        assert_eq!(roundtrip(text), text);
        // \uXXXX for printable characters normalizes to the literal char.
        assert_eq!(roundtrip("\"\\u0041\""), "\"A\"");
        // Surrogate pair.
        assert_eq!(roundtrip("\"\\ud83d\\ude00\""), "\"😀\"");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "nul",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "\"abc",
            "01a",
            "1.2.3",
            "[1] trailing",
            "{\"a\":1,}",
            "\"\\q\"",
            "\"\\ud800\"",
            "1e999",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted `{bad}`");
        }
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(JsonValue::parse(&deep).is_err(), "depth guard");
    }

    #[test]
    fn pretty_rendering_inlines_scalar_leaves() {
        let v = JsonValue::object(vec![
            ("a", JsonValue::UInt(1)),
            ("b", JsonValue::Array(vec![JsonValue::object(vec![("x", JsonValue::UInt(2))])])),
        ]);
        let pretty = v.render_pretty();
        assert_eq!(pretty, "{\n  \"a\": 1,\n  \"b\": [\n    {\"x\":2}\n  ]\n}\n");
        // And pretty output still parses back to the same value.
        assert_eq!(JsonValue::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::Float(1.5).render(), "1.5");
    }
}
