//! # xloops-stats
//!
//! The unified statistics schema shared by every timing model.
//!
//! The three engines (functional interpreter, GPP, LPSU) each keep their
//! own flat counter structs while simulating — those stay cheap to bump in
//! the hot loop. At reporting time each struct converts itself into a
//! [`StatSet`]: a named node holding ordered integer counters, derived
//! floating-point metrics, and child nodes. Every consumer — the CLI
//! report, the `--stats json` emitter, the energy model's event audit, and
//! the benchmark report generators — reads the same tree through the same
//! dotted-path [`StatSet::lookup`] interface, so a counter has exactly one
//! name everywhere it appears.
//!
//! Determinism: counters, metrics, and children preserve insertion order,
//! so the JSON rendering of a given run is byte-stable.

pub mod binary;
pub mod json;

pub use binary::BinaryError;
pub use json::{JsonError, JsonValue};

/// A value retrieved from a [`StatSet`] by [`StatSet::lookup`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StatValue {
    /// An integer event counter.
    Counter(u64),
    /// A derived floating-point metric (rates, ratios, energies).
    Metric(f64),
}

impl StatValue {
    /// The value as `u64`, if it is a counter.
    pub fn as_counter(self) -> Option<u64> {
        match self {
            StatValue::Counter(v) => Some(v),
            StatValue::Metric(_) => None,
        }
    }

    /// The value as `f64`; counters are widened losslessly enough for
    /// reporting purposes.
    pub fn as_f64(self) -> f64 {
        match self {
            StatValue::Counter(v) => v as f64,
            StatValue::Metric(v) => v,
        }
    }
}

/// A named, ordered, hierarchical set of statistics.
///
/// Leaves are either integer `counters` (raw event counts) or floating
/// point `metrics` (derived rates and energies); interior structure comes
/// from named `children`. Names within one node are unique per kind —
/// [`StatSet::set`] and [`StatSet::set_metric`] overwrite in place,
/// preserving the original position so output order is deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatSet {
    name: String,
    counters: Vec<(String, u64)>,
    metrics: Vec<(String, f64)>,
    children: Vec<StatSet>,
}

impl StatSet {
    /// An empty set with the given node name.
    pub fn new(name: &str) -> StatSet {
        StatSet { name: name.to_string(), ..StatSet::default() }
    }

    /// This node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets counter `name` to `value`, inserting it at the end if new.
    pub fn set(&mut self, name: &str, value: u64) -> &mut StatSet {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.counters.push((name.to_string(), value)),
        }
        self
    }

    /// Sets metric `name` to `value`, inserting it at the end if new.
    pub fn set_metric(&mut self, name: &str, value: f64) -> &mut StatSet {
        match self.metrics.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.metrics.push((name.to_string(), value)),
        }
        self
    }

    /// Adds `delta` to counter `name` (creating it at zero first).
    pub fn add(&mut self, name: &str, delta: u64) -> &mut StatSet {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name.to_string(), delta)),
        }
        self
    }

    /// Appends a child node (replacing any existing child of the same name).
    pub fn push_child(&mut self, child: StatSet) -> &mut StatSet {
        match self.children.iter_mut().find(|c| c.name == child.name) {
            Some(slot) => *slot = child,
            None => self.children.push(child),
        }
        self
    }

    /// The child named `name`, if present.
    pub fn child(&self, name: &str) -> Option<&StatSet> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Mutable access to the child named `name`, if present. Lets callers
    /// graft late-arriving nodes (e.g. the result store's `profile.store`
    /// counters) into an existing tree without rebuilding it.
    pub fn child_mut(&mut self, name: &str) -> Option<&mut StatSet> {
        self.children.iter_mut().find(|c| c.name == name)
    }

    /// The counter named `name` in this node, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The metric named `name` in this node, if present.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Iterates this node's counters in insertion order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterates this node's metrics in insertion order.
    pub fn metrics(&self) -> impl Iterator<Item = (&str, f64)> {
        self.metrics.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Iterates this node's children in insertion order.
    pub fn children(&self) -> impl Iterator<Item = &StatSet> {
        self.children.iter()
    }

    /// Resolves a dotted path like `"lpsu.stalls.raw"`: every segment but
    /// the last names a child; the last names a counter (checked first) or
    /// a metric of the final node.
    pub fn lookup(&self, path: &str) -> Option<StatValue> {
        let mut node = self;
        let mut parts = path.split('.').peekable();
        while let Some(part) = parts.next() {
            if parts.peek().is_none() {
                return node
                    .counter(part)
                    .map(StatValue::Counter)
                    .or_else(|| node.metric(part).map(StatValue::Metric));
            }
            node = node.child(part)?;
        }
        None
    }

    /// Merges `other` into `self`: counters add, metrics overwrite, and
    /// children merge recursively by name. Used to accumulate per-run
    /// trees into aggregate reports.
    pub fn merge(&mut self, other: &StatSet) {
        for (name, v) in &other.counters {
            self.add(name, *v);
        }
        for (name, v) in &other.metrics {
            self.set_metric(name, *v);
        }
        for child in &other.children {
            match self.children.iter_mut().find(|c| c.name == child.name) {
                Some(mine) => mine.merge(child),
                None => self.children.push(child.clone()),
            }
        }
    }

    /// Renders the tree as a JSON object:
    /// `{"name": ..., "counters": {...}, "metrics": {...}, "children": [...]}`.
    ///
    /// Deterministic: key order is insertion order. Non-finite metrics
    /// render as `null`, since JSON has no NaN/Infinity literals. Shared
    /// with every other JSON document the workspace emits via
    /// [`StatSet::to_json_value`] and the [`json`] writer (the workspace
    /// carries no serialization dependency).
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The tree as a generic [`JsonValue`] document, for embedding stat
    /// trees inside larger documents (shard results, bench summaries).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::Str(self.name.clone())),
            (
                "counters",
                JsonValue::Object(
                    self.counters.iter().map(|(n, v)| (n.clone(), JsonValue::UInt(*v))).collect(),
                ),
            ),
            (
                "metrics",
                JsonValue::Object(
                    self.metrics.iter().map(|(n, v)| (n.clone(), JsonValue::Float(*v))).collect(),
                ),
            ),
            (
                "children",
                JsonValue::Array(self.children.iter().map(StatSet::to_json_value).collect()),
            ),
        ])
    }

    /// Parses a [`StatSet::to_json`] document back into a tree — the
    /// inverse of the encode side, up to non-finite metrics (encoded as
    /// `null`, parsed back as NaN). `encode(parse(encode(x)))` is always
    /// byte-identical to `encode(x)`.
    pub fn from_json(text: &str) -> Result<StatSet, JsonError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// The tree as one [`binary`] document — the compact wire form the
    /// durable result store writes. Deterministic: equal trees encode to
    /// identical bytes.
    pub fn to_binary(&self) -> Vec<u8> {
        binary::encode(&self.to_json_value())
    }

    /// Decodes a [`StatSet::to_binary`] document. Exact inverse: unlike
    /// the JSON text path, non-finite metrics survive bit-for-bit.
    pub fn from_binary(bytes: &[u8]) -> Result<StatSet, BinaryError> {
        let value = binary::decode(bytes)?;
        Self::from_json_value(&value).map_err(|e| BinaryError { pos: 0, message: e.message })
    }

    /// [`StatSet::from_json`] on an already-parsed [`JsonValue`].
    pub fn from_json_value(v: &JsonValue) -> Result<StatSet, JsonError> {
        let field = |key: &str| {
            v.get(key).ok_or_else(|| JsonError {
                pos: 0,
                message: format!("stat node is missing `{key}`"),
            })
        };
        let bad = |what: &str| JsonError { pos: 0, message: format!("stat node: {what}") };
        let name = field("name")?.as_str().ok_or_else(|| bad("`name` must be a string"))?;
        let mut set = StatSet::new(name);
        for (n, cv) in
            field("counters")?.as_object().ok_or_else(|| bad("`counters` must be an object"))?
        {
            let value = cv
                .as_u64()
                .ok_or_else(|| bad(&format!("counter `{n}` must be an unsigned integer")))?;
            set.set(n, value);
        }
        for (n, mv) in
            field("metrics")?.as_object().ok_or_else(|| bad("`metrics` must be an object"))?
        {
            let value =
                mv.as_f64().ok_or_else(|| bad(&format!("metric `{n}` must be a number")))?;
            set.set_metric(n, value);
        }
        for child in
            field("children")?.as_array().ok_or_else(|| bad("`children` must be an array"))?
        {
            set.push_child(StatSet::from_json_value(child)?);
        }
        Ok(set)
    }
}

/// `num / den` with the zero-denominator case defined as 0.0, so rate
/// metrics of empty or zero-cycle runs stay finite.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatSet {
        let mut root = StatSet::new("system");
        root.set("cycles", 100).set("instret", 250);
        root.set_metric("ipc", 2.5);
        let mut lpsu = StatSet::new("lpsu");
        lpsu.set("exec", 40);
        let mut stalls = StatSet::new("stalls");
        stalls.set("raw", 7).set("lsq", 3);
        lpsu.push_child(stalls);
        root.push_child(lpsu);
        root
    }

    #[test]
    fn set_overwrites_in_place_and_add_accumulates() {
        let mut s = StatSet::new("n");
        s.set("a", 1).set("b", 2).set("a", 9);
        assert_eq!(s.counters().collect::<Vec<_>>(), vec![("a", 9), ("b", 2)]);
        s.add("b", 5).add("c", 1);
        assert_eq!(s.counter("b"), Some(7));
        assert_eq!(s.counter("c"), Some(1));
        s.set_metric("m", 1.0).set_metric("m", 2.0);
        assert_eq!(s.metric("m"), Some(2.0));
    }

    #[test]
    fn lookup_resolves_dotted_paths() {
        let s = sample();
        assert_eq!(s.lookup("cycles"), Some(StatValue::Counter(100)));
        assert_eq!(s.lookup("ipc"), Some(StatValue::Metric(2.5)));
        assert_eq!(s.lookup("lpsu.exec"), Some(StatValue::Counter(40)));
        assert_eq!(s.lookup("lpsu.stalls.raw"), Some(StatValue::Counter(7)));
        assert_eq!(s.lookup("lpsu.stalls.missing"), None);
        assert_eq!(s.lookup("nope.raw"), None);
        assert_eq!(s.lookup("lpsu.stalls.raw").unwrap().as_counter(), Some(7));
        assert_eq!(s.lookup("ipc").unwrap().as_f64(), 2.5);
    }

    #[test]
    fn merge_adds_counters_and_recurses() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.lookup("cycles"), Some(StatValue::Counter(200)));
        assert_eq!(a.lookup("ipc"), Some(StatValue::Metric(2.5))); // overwritten
        assert_eq!(a.lookup("lpsu.stalls.lsq"), Some(StatValue::Counter(6)));
        // A child only `b` has is cloned in.
        let mut c = StatSet::new("system");
        c.push_child(StatSet::new("extra"));
        a.merge(&c);
        assert!(a.child("extra").is_some());
    }

    #[test]
    fn json_is_deterministic_and_escapes() {
        let s = sample();
        let json = s.to_json();
        assert_eq!(
            json,
            "{\"name\":\"system\",\"counters\":{\"cycles\":100,\"instret\":250},\
             \"metrics\":{\"ipc\":2.5},\"children\":[{\"name\":\"lpsu\",\
             \"counters\":{\"exec\":40},\"metrics\":{},\"children\":[\
             {\"name\":\"stalls\",\"counters\":{\"raw\":7,\"lsq\":3},\
             \"metrics\":{},\"children\":[]}]}]}"
        );
        let mut weird = StatSet::new("a\"b\\c\n");
        weird.set_metric("nan", f64::NAN).set_metric("inf", f64::INFINITY);
        assert_eq!(
            weird.to_json(),
            "{\"name\":\"a\\\"b\\\\c\\n\",\"counters\":{},\
             \"metrics\":{\"nan\":null,\"inf\":null},\"children\":[]}"
        );
    }

    #[test]
    fn ratio_guards_zero_denominator() {
        assert_eq!(ratio(10, 4), 2.5);
        assert_eq!(ratio(10, 0), 0.0);
        assert_eq!(ratio(0, 0), 0.0);
    }

    #[test]
    fn push_child_replaces_same_name() {
        let mut s = StatSet::new("root");
        let mut c1 = StatSet::new("x");
        c1.set("v", 1);
        s.push_child(c1);
        let mut c2 = StatSet::new("x");
        c2.set("v", 2);
        s.push_child(c2);
        assert_eq!(s.children().count(), 1);
        assert_eq!(s.lookup("x.v"), Some(StatValue::Counter(2)));
    }
}
