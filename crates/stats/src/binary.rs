//! Compact self-describing binary encoding of [`JsonValue`] documents.
//!
//! The durable result store and the `.dxs` shard files need the same
//! documents the JSON layer already models, but repeated thousands of
//! times per sweep — where pretty JSON pays for its readability in
//! repeated object keys and decimal digits. This module is the wire
//! sibling of [`crate::json`]: one length-prefixed binary container that
//! encodes exactly the [`JsonValue`] data model (so every document that
//! round-trips through JSON round-trips through binary, and vice versa),
//! at a fraction of the size.
//!
//! # Format grammar
//!
//! ```text
//! document := magic version keytable value checksum
//! magic    := 0xD8 'X' 'L' 'S'            (0xD8 is never valid leading UTF-8,
//!                                          so no JSON text aliases a document)
//! version  := 0x01
//! keytable := varint(count) key*           (all object keys, interned in
//! key      := varint(len) utf8-bytes        first-appearance order)
//! value    := 0x00                         null
//!           | 0x01 | 0x02                  false | true
//!           | 0x03 varint(u64)             non-negative integer
//!           | 0x04 varint(zigzag(i64))     negative integer
//!           | 0x05 le64(f64::to_bits)      float, bit-exact (NaN payloads
//!                                          and -0.0 survive, unlike JSON)
//!           | 0x06 varint(len) utf8-bytes  string
//!           | 0x07 varint(count) value*    array
//!           | 0x08 varint(count) field*    object
//! field    := varint(key-index) value
//! checksum := le64(fnv1a64 of every preceding byte, magic included)
//! varint   := LEB128 (7 bits per byte, 0x80 continuation, max 10 bytes)
//! ```
//!
//! The trailing FNV-1a-64 checksum is verified *before* any structural
//! decoding, so a truncated or bit-flipped document fails fast with
//! [`BinaryError`] instead of being misread; decoding never panics on
//! arbitrary bytes (same depth guard as the JSON parser).
//!
//! Determinism: encoding is a pure function of the value (key-table order
//! is first appearance, field order is insertion order), so equal
//! documents encode to identical bytes — the property the
//! content-addressed store and the shard-merge diff tests rely on.

use std::collections::HashMap;
use std::fmt;

use crate::json::JsonValue;

/// First four bytes of every binary document.
pub const MAGIC: [u8; 4] = [0xD8, b'X', b'L', b'S'];

/// Current format version (byte five).
pub const VERSION: u8 = 1;

/// Decode depth guard, mirroring the JSON parser's.
const MAX_DEPTH: usize = 128;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_UINT: u8 = 0x03;
const TAG_INT: u8 = 0x04;
const TAG_FLOAT: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

/// A malformed binary document: byte offset and diagnosis. The typed
/// sibling of [`crate::json::JsonError`] for the binary container.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BinaryError {
    /// Byte offset the decoder had reached.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "binary document error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for BinaryError {}

/// FNV-1a-64 over `bytes` — the same hash the manifest fingerprint uses.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether `bytes` starts with the binary-document magic — the sniff the
/// mixed-format shard reader uses to pick a decoder.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == MAGIC
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Collects every object key of `v` into `keys` in first-appearance order.
fn collect_keys<'a>(v: &'a JsonValue, keys: &mut Vec<&'a str>, index: &mut HashMap<&'a str, u64>) {
    match v {
        JsonValue::Array(items) => {
            for item in items {
                collect_keys(item, keys, index);
            }
        }
        JsonValue::Object(fields) => {
            for (k, item) in fields {
                if !index.contains_key(k.as_str()) {
                    index.insert(k.as_str(), keys.len() as u64);
                    keys.push(k.as_str());
                }
                collect_keys(item, keys, index);
            }
        }
        _ => {}
    }
}

fn put_value(out: &mut Vec<u8>, v: &JsonValue, index: &HashMap<&str, u64>) {
    match v {
        JsonValue::Null => out.push(TAG_NULL),
        JsonValue::Bool(false) => out.push(TAG_FALSE),
        JsonValue::Bool(true) => out.push(TAG_TRUE),
        JsonValue::UInt(n) => {
            out.push(TAG_UINT);
            put_varint(out, *n);
        }
        JsonValue::Int(n) => {
            out.push(TAG_INT);
            put_varint(out, zigzag(*n));
        }
        JsonValue::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        JsonValue::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        JsonValue::Array(items) => {
            out.push(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                put_value(out, item, index);
            }
        }
        JsonValue::Object(fields) => {
            out.push(TAG_OBJECT);
            put_varint(out, fields.len() as u64);
            for (k, item) in fields {
                put_varint(out, index[k.as_str()]);
                put_value(out, item, index);
            }
        }
    }
}

/// Encodes `v` as one binary document (header, interned key table, value,
/// trailing checksum). Deterministic: equal values yield identical bytes.
pub fn encode(v: &JsonValue) -> Vec<u8> {
    let mut keys = Vec::new();
    let mut index = HashMap::new();
    collect_keys(v, &mut keys, &mut index);
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    put_varint(&mut out, keys.len() as u64);
    for k in &keys {
        put_varint(&mut out, k.len() as u64);
        out.extend_from_slice(k.as_bytes());
    }
    put_value(&mut out, v, &index);
    let check = fnv1a64(&out);
    out.extend_from_slice(&check.to_le_bytes());
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, message: impl Into<String>) -> BinaryError {
        BinaryError { pos: self.pos, message: message.into() }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinaryError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.err(format!("truncated: {n} byte(s) expected")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, BinaryError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, BinaryError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            let low = (b & 0x7f) as u64;
            if shift == 63 && low > 1 {
                return Err(self.err("varint overflows u64"));
            }
            v |= low << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.err("varint longer than 10 bytes"))
    }

    /// A varint validated against the remaining byte count, so a forged
    /// huge length cannot drive a with_capacity allocation.
    fn len(&mut self, what: &str) -> Result<usize, BinaryError> {
        let n = self.varint()?;
        if n > (self.bytes.len() - self.pos) as u64 {
            return Err(self.err(format!("{what} length {n} exceeds the document")));
        }
        Ok(n as usize)
    }

    fn string(&mut self, what: &str) -> Result<String, BinaryError> {
        let n = self.len(what)?;
        let pos = self.pos;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes).map(str::to_string).map_err(|e| BinaryError {
            pos: pos + e.valid_up_to(),
            message: format!("{what} is not UTF-8"),
        })
    }

    fn value(&mut self, keys: &[String]) -> Result<JsonValue, BinaryError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        self.depth += 1;
        let v = match self.byte()? {
            TAG_NULL => JsonValue::Null,
            TAG_FALSE => JsonValue::Bool(false),
            TAG_TRUE => JsonValue::Bool(true),
            TAG_UINT => JsonValue::UInt(self.varint()?),
            TAG_INT => JsonValue::Int(unzigzag(self.varint()?)),
            TAG_FLOAT => {
                let b = self.take(8)?;
                JsonValue::Float(f64::from_bits(u64::from_le_bytes([
                    b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
                ])))
            }
            TAG_STR => JsonValue::Str(self.string("string")?),
            TAG_ARRAY => {
                let n = self.len("array")?;
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    items.push(self.value(keys)?);
                }
                JsonValue::Array(items)
            }
            TAG_OBJECT => {
                let n = self.len("object")?;
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = self.varint()?;
                    let key = keys
                        .get(i as usize)
                        .ok_or_else(|| self.err(format!("key index {i} out of table")))?;
                    fields.push((key.clone(), self.value(keys)?));
                }
                JsonValue::Object(fields)
            }
            tag => return Err(self.err(format!("unknown value tag {tag:#04x}"))),
        };
        self.depth -= 1;
        Ok(v)
    }
}

/// Decodes one binary document. Total: any byte string either decodes or
/// returns a typed [`BinaryError`] — never a panic — and the checksum is
/// verified before structural decoding, so corruption is caught up front.
pub fn decode(bytes: &[u8]) -> Result<JsonValue, BinaryError> {
    if !is_binary(bytes) {
        return Err(BinaryError { pos: 0, message: "missing binary-document magic".into() });
    }
    if bytes.len() < MAGIC.len() + 1 + 8 {
        return Err(BinaryError { pos: bytes.len(), message: "truncated header".into() });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes([
        tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
    ]);
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(BinaryError {
            pos: body.len(),
            message: format!("checksum mismatch (stored {stored:016x}, computed {computed:016x})"),
        });
    }
    let mut r = Reader { bytes: body, pos: MAGIC.len(), depth: 0 };
    let version = r.byte()?;
    if version != VERSION {
        return Err(r.err(format!("unsupported version {version} (expected {VERSION})")));
    }
    let key_count = r.len("key table")?;
    let mut keys = Vec::with_capacity(key_count);
    for _ in 0..key_count {
        keys.push(r.string("key")?);
    }
    let value = r.value(&keys)?;
    if r.pos != body.len() {
        return Err(r.err(format!("{} trailing byte(s) after the value", body.len() - r.pos)));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::Str("system".into())),
            (
                "counters",
                JsonValue::object(vec![
                    ("cycles", JsonValue::UInt(123_456)),
                    ("instret", JsonValue::UInt(0)),
                ]),
            ),
            ("neg", JsonValue::Int(-42)),
            ("f", JsonValue::Float(2.5)),
            ("flag", JsonValue::Bool(true)),
            ("nothing", JsonValue::Null),
            (
                "children",
                JsonValue::Array(vec![JsonValue::object(vec![
                    ("name", JsonValue::Str("lpsu".into())),
                    ("counters", JsonValue::object(vec![("cycles", JsonValue::UInt(7))])),
                ])]),
            ),
        ])
    }

    #[test]
    fn round_trips_exactly() {
        let v = sample();
        let bytes = encode(&v);
        assert!(is_binary(&bytes));
        assert_eq!(decode(&bytes).unwrap(), v);
        // Deterministic: re-encoding the decoded value is byte-identical.
        assert_eq!(encode(&decode(&bytes).unwrap()), bytes);
    }

    #[test]
    fn interned_keys_make_repetition_cheap() {
        // 64 objects sharing the same keys: the names are stored once, so
        // the binary form undercuts even compact (non-pretty) JSON.
        let row = JsonValue::object(vec![
            ("a_rather_long_counter_name", JsonValue::UInt(1)),
            ("another_long_counter_name", JsonValue::UInt(2)),
        ]);
        let doc = JsonValue::Array(vec![row; 64]);
        let bytes = encode(&doc);
        assert!(
            bytes.len() * 3 <= doc.render().len(),
            "binary {} vs compact JSON {}",
            bytes.len(),
            doc.render().len()
        );
    }

    #[test]
    fn floats_survive_bit_exactly() {
        for f in [0.0, -0.0, 2.5, f64::NAN, f64::INFINITY, f64::from_bits(0x7ff8_dead_beef_0001)] {
            let v = JsonValue::Float(f);
            match decode(&encode(&v)).unwrap() {
                JsonValue::Float(back) => assert_eq!(back.to_bits(), f.to_bits()),
                other => panic!("expected a float, got {other:?}"),
            }
        }
    }

    #[test]
    fn zigzag_covers_the_i64_domain() {
        for v in [0, -1, 1, i64::MIN, i64::MAX, -123_456_789] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn corruption_is_a_typed_error_not_a_panic() {
        let good = encode(&sample());
        // Truncations at every length.
        for n in 0..good.len() {
            assert!(decode(&good[..n]).is_err(), "truncation to {n} bytes must fail");
        }
        // A single flipped bit anywhere breaks the checksum (or the magic).
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "bit flip at byte {i} must fail");
        }
        // Garbage that happens to carry the magic still fails cleanly.
        let mut soup = MAGIC.to_vec();
        soup.extend_from_slice(&[VERSION, 0xff, 0xff, 0xff, 0xff]);
        assert!(decode(&soup).is_err());
    }

    #[test]
    fn json_text_is_never_mistaken_for_binary() {
        assert!(!is_binary(b"{\"name\":\"system\"}"));
        assert!(!is_binary(b""));
        assert!(!is_binary(b"\xd8XL"));
        assert!(decode(b"{\"name\":\"system\"}").is_err());
    }

    #[test]
    fn version_and_trailing_bytes_are_checked() {
        let v = sample();
        let mut bumped = encode(&v);
        bumped[4] = 2; // forge version 2
        let len = bumped.len();
        let check = fnv1a64(&bumped[..len - 8]).to_le_bytes();
        bumped[len - 8..].copy_from_slice(&check); // keep the checksum valid
        let e = decode(&bumped).unwrap_err();
        assert!(e.message.contains("unsupported version"), "{e}");

        let mut padded = encode(&v);
        let body_len = padded.len() - 8;
        padded.truncate(body_len);
        padded.push(TAG_NULL); // an extra value after the root
        let check = fnv1a64(&padded).to_le_bytes();
        padded.extend_from_slice(&check);
        let e = decode(&padded).unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }
}
