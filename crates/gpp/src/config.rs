use xloops_mem::CacheConfig;

/// Which microarchitecture a [`crate::GppCore`] models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GppKind {
    /// Single-issue five-stage in-order pipeline.
    InOrder,
    /// Out-of-order superscalar with the given fetch/issue/commit width.
    OutOfOrder {
        /// Front-end, issue, and commit width.
        width: u32,
        /// Reorder-buffer entries.
        rob: u32,
        /// Data-memory ports.
        mem_ports: u32,
    },
}

/// Full configuration of a GPP timing model (Table III of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GppConfig {
    /// Core kind and width parameters.
    pub kind: GppKind,
    /// L1 data-cache geometry and latencies.
    pub dcache: CacheConfig,
    /// Penalty in cycles for a taken branch on the in-order core
    /// (predict-not-taken front end) and for a mispredicted branch on the
    /// out-of-order cores (front-end refill).
    pub branch_penalty: u32,
    /// Whether the long-latency functional unit is pipelined (true on the
    /// out-of-order cores, false on the simple in-order core and the LPSU).
    pub llfu_pipelined: bool,
}

impl GppConfig {
    /// The paper's `io` baseline: single-issue in-order, 16 KB L1,
    /// unpipelined LLFU, 2-cycle taken-branch bubble.
    pub fn io() -> GppConfig {
        GppConfig {
            kind: GppKind::InOrder,
            dcache: CacheConfig::l1_default(),
            branch_penalty: 2,
            llfu_pipelined: false,
        }
    }

    /// The paper's `ooo/2` baseline: two-way out-of-order, 64-entry ROB,
    /// one memory port, 8-cycle mispredict penalty, pipelined LLFU.
    pub fn ooo2() -> GppConfig {
        GppConfig {
            kind: GppKind::OutOfOrder { width: 2, rob: 64, mem_ports: 1 },
            dcache: CacheConfig::l1_default(),
            branch_penalty: 8,
            llfu_pipelined: true,
        }
    }

    /// The paper's `ooo/4` baseline: four-way out-of-order, 128-entry ROB,
    /// two memory ports, 10-cycle mispredict penalty, pipelined LLFU.
    pub fn ooo4() -> GppConfig {
        GppConfig {
            kind: GppKind::OutOfOrder { width: 4, rob: 128, mem_ports: 2 },
            dcache: CacheConfig::l1_default(),
            branch_penalty: 10,
            llfu_pipelined: true,
        }
    }

    /// Short name used in result tables (`io`, `ooo/2`, `ooo/4`).
    pub fn name(&self) -> &'static str {
        match self.kind {
            GppKind::InOrder => "io",
            GppKind::OutOfOrder { width: 2, .. } => "ooo/2",
            GppKind::OutOfOrder { width: 4, .. } => "ooo/4",
            GppKind::OutOfOrder { .. } => "ooo/n",
        }
    }

    /// Issue width (1 for the in-order core).
    pub fn width(&self) -> u32 {
        match self.kind {
            GppKind::InOrder => 1,
            GppKind::OutOfOrder { width, .. } => width,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_iii() {
        assert_eq!(GppConfig::io().width(), 1);
        assert_eq!(GppConfig::io().name(), "io");
        match GppConfig::ooo2().kind {
            GppKind::OutOfOrder { width, rob, mem_ports } => {
                assert_eq!((width, rob, mem_ports), (2, 64, 1));
            }
            _ => panic!("ooo2 must be out-of-order"),
        }
        match GppConfig::ooo4().kind {
            GppKind::OutOfOrder { width, rob, mem_ports } => {
                assert_eq!((width, rob, mem_ports), (4, 128, 2));
            }
            _ => panic!("ooo4 must be out-of-order"),
        }
        assert_eq!(GppConfig::ooo4().name(), "ooo/4");
    }
}
