//! A sliding per-cycle slot table used by the out-of-order engine to model
//! bandwidth-limited resources (issue ports, memory ports, commit width).

use std::collections::VecDeque;

/// Tracks how many events have been scheduled in each future cycle and
/// allocates the earliest cycle `≥ at` with a free slot.
///
/// The window slides forward automatically; scheduling in the past (before
/// the window base) is clamped to the base, which is correct here because
/// the caller only moves time forward.
#[derive(Clone, Debug)]
pub struct SlotTable {
    per_cycle: u32,
    base: u64,
    counts: VecDeque<u32>,
}

impl SlotTable {
    /// Creates a table allowing `per_cycle` events per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle` is zero.
    pub fn new(per_cycle: u32) -> SlotTable {
        assert!(per_cycle > 0);
        SlotTable { per_cycle, base: 0, counts: VecDeque::new() }
    }

    /// Allocates a slot at the earliest cycle `≥ at`, returning that cycle.
    pub fn alloc(&mut self, at: u64) -> u64 {
        let at = at.max(self.base);
        // Drop history more than a window behind to bound memory.
        while self.counts.len() > 4096 && self.base + 1024 < at {
            self.counts.pop_front();
            self.base += 1;
        }
        let mut idx = (at - self.base) as usize;
        loop {
            while idx >= self.counts.len() {
                self.counts.push_back(0);
            }
            if self.counts[idx] < self.per_cycle {
                self.counts[idx] += 1;
                return self.base + idx as u64;
            }
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_cycles_in_order() {
        let mut t = SlotTable::new(2);
        assert_eq!(t.alloc(5), 5);
        assert_eq!(t.alloc(5), 5);
        assert_eq!(t.alloc(5), 6);
        assert_eq!(t.alloc(4), 4, "cycle 4 still has free slots");
        assert_eq!(t.alloc(7), 7);
    }

    #[test]
    fn window_slides_without_losing_capacity_accounting() {
        let mut t = SlotTable::new(1);
        for i in 0..10_000u64 {
            assert_eq!(t.alloc(i * 2), i * 2);
        }
    }
}
