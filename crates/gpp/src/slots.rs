//! A sliding per-cycle slot table used by the out-of-order engine to model
//! bandwidth-limited resources (issue ports, memory ports, commit width).

use std::collections::VecDeque;

/// Tracks how many events have been scheduled in each future cycle and
/// allocates the earliest cycle `≥ at` with a free slot.
///
/// The window slides forward automatically; scheduling in the past (before
/// the window base) is clamped to the base, which is correct here because
/// the caller only moves time forward.
#[derive(Clone, Debug)]
pub struct SlotTable {
    per_cycle: u32,
    base: u64,
    counts: VecDeque<u32>,
}

impl SlotTable {
    /// Creates a table allowing `per_cycle` events per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle` is zero.
    pub fn new(per_cycle: u32) -> SlotTable {
        assert!(per_cycle > 0);
        SlotTable { per_cycle, base: 0, counts: VecDeque::new() }
    }

    /// Rebases the window to `cycle`, dropping the per-cycle counts before
    /// it while keeping occupancy already scheduled at `cycle` or later.
    ///
    /// Valid only when the caller guarantees every subsequent
    /// [`alloc`](SlotTable::alloc) uses `at ≥ cycle`; the out-of-order
    /// engine establishes this by redirecting fetch past `cycle` whenever
    /// it skips time forward. Without the rebase, the first allocation
    /// after a long skip would extend and then trim the window across the
    /// whole skipped span, one cycle at a time.
    pub fn skip_to(&mut self, cycle: u64) {
        if cycle <= self.base {
            return;
        }
        let n = (cycle - self.base) as usize;
        if n >= self.counts.len() {
            self.counts.clear();
        } else {
            self.counts.drain(..n);
        }
        self.base = cycle;
    }

    /// Allocates a slot at the earliest cycle `≥ at`, returning that cycle.
    pub fn alloc(&mut self, at: u64) -> u64 {
        let at = at.max(self.base);
        // Drop history more than a window behind to bound memory.
        while self.counts.len() > 4096 && self.base + 1024 < at {
            self.counts.pop_front();
            self.base += 1;
        }
        let mut idx = (at - self.base) as usize;
        loop {
            while idx >= self.counts.len() {
                self.counts.push_back(0);
            }
            if self.counts[idx] < self.per_cycle {
                self.counts[idx] += 1;
                return self.base + idx as u64;
            }
            idx += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_cycles_in_order() {
        let mut t = SlotTable::new(2);
        assert_eq!(t.alloc(5), 5);
        assert_eq!(t.alloc(5), 5);
        assert_eq!(t.alloc(5), 6);
        assert_eq!(t.alloc(4), 4, "cycle 4 still has free slots");
        assert_eq!(t.alloc(7), 7);
    }

    #[test]
    fn window_slides_without_losing_capacity_accounting() {
        let mut t = SlotTable::new(1);
        for i in 0..10_000u64 {
            assert_eq!(t.alloc(i * 2), i * 2);
        }
    }

    #[test]
    fn skip_to_rebases_without_losing_future_counts() {
        let mut t = SlotTable::new(1);
        assert_eq!(t.alloc(10), 10);
        assert_eq!(t.alloc(10), 11);
        t.skip_to(11);
        assert_eq!(t.alloc(11), 12, "cycle 11 occupancy survives the rebase");
        t.skip_to(1_000_000_000);
        assert_eq!(t.alloc(1_000_000_000), 1_000_000_000);
        t.skip_to(500); // behind the base: no-op
        assert_eq!(t.alloc(1_000_000_000), 1_000_000_001);
    }
}
