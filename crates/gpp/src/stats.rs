use xloops_func::InsnMix;
use xloops_mem::CacheStats;
use xloops_stats::{ratio, StatSet};

/// Statistics of one GPP execution phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GppStats {
    /// Total cycles, including any cycles spent stalled waiting for the
    /// LPSU during specialized execution.
    pub cycles: u64,
    /// Instructions retired by the GPP itself.
    pub instret: u64,
    /// Dynamic instruction mix retired by the GPP itself.
    pub mix: InsnMix,
    /// Branch mispredictions (out-of-order cores; zero on the in-order
    /// core, which does not speculate past taken branches).
    pub mispredicts: u64,
    /// Data-cache statistics.
    pub cache: CacheStats,
}

impl GppStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        ratio(self.instret, self.cycles)
    }

    /// This phase's statistics as a node of the unified schema.
    ///
    /// Layout: counters `cycles`, `instret`, `mispredicts` and metric `ipc`
    /// at the root; children `mix` (dynamic instruction classes) and
    /// `dcache` (hit/miss counters plus a `miss_rate` metric).
    pub fn stat_set(&self) -> StatSet {
        let mut s = StatSet::new("gpp");
        s.set("cycles", self.cycles)
            .set("instret", self.instret)
            .set("mispredicts", self.mispredicts)
            .set_metric("ipc", self.ipc());

        let mut mix = StatSet::new("mix");
        mix.set("alu", self.mix.alu)
            .set("llfu", self.mix.llfu)
            .set("loads", self.mix.loads)
            .set("stores", self.mix.stores)
            .set("amos", self.mix.amos)
            .set("branches", self.mix.branches)
            .set("branches_taken", self.mix.branches_taken)
            .set("jumps", self.mix.jumps)
            .set("xloops", self.mix.xloops)
            .set("xis", self.mix.xis)
            .set("syncs", self.mix.syncs)
            .set("total", self.mix.total());
        s.push_child(mix);

        let mut dcache = StatSet::new("dcache");
        dcache
            .set("read_hits", self.cache.read_hits)
            .set("read_misses", self.cache.read_misses)
            .set("write_hits", self.cache.write_hits)
            .set("write_misses", self.cache.write_misses)
            .set_metric("miss_rate", self.cache.miss_rate());
        s.push_child(dcache);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_zero_for_zero_cycle_runs() {
        // A phase that never advanced the clock (e.g. an empty program or
        // an immediately-specialized region) must report 0.0, not NaN.
        let s = GppStats::default();
        assert_eq!(s.ipc(), 0.0);
        let s = GppStats { instret: 100, ..GppStats::default() };
        assert_eq!(s.ipc(), 0.0, "instret without cycles still guards");
        let s = GppStats { instret: 100, cycles: 50, ..GppStats::default() };
        assert_eq!(s.ipc(), 2.0);
    }

    #[test]
    fn stat_set_exposes_every_field_through_the_schema() {
        let mut s = GppStats { cycles: 10, instret: 20, mispredicts: 3, ..GppStats::default() };
        s.mix.alu = 15;
        s.mix.loads = 5;
        s.cache.read_hits = 4;
        s.cache.read_misses = 1;
        let set = s.stat_set();
        assert_eq!(set.lookup("cycles").unwrap().as_counter(), Some(10));
        assert_eq!(set.lookup("ipc").unwrap().as_f64(), 2.0);
        assert_eq!(set.lookup("mix.alu").unwrap().as_counter(), Some(15));
        assert_eq!(set.lookup("mix.total").unwrap().as_counter(), Some(20));
        assert_eq!(set.lookup("dcache.read_misses").unwrap().as_counter(), Some(1));
        assert_eq!(set.lookup("dcache.miss_rate").unwrap().as_f64(), 0.2);
    }
}
