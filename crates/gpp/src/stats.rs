use xloops_func::InsnMix;
use xloops_mem::CacheStats;

/// Statistics of one GPP execution phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GppStats {
    /// Total cycles, including any cycles spent stalled waiting for the
    /// LPSU during specialized execution.
    pub cycles: u64,
    /// Instructions retired by the GPP itself.
    pub instret: u64,
    /// Dynamic instruction mix retired by the GPP itself.
    pub mix: InsnMix,
    /// Branch mispredictions (out-of-order cores; zero on the in-order
    /// core, which does not speculate past taken branches).
    pub mispredicts: u64,
    /// Data-cache statistics.
    pub cache: CacheStats,
}

impl GppStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instret as f64 / self.cycles as f64
        }
    }
}
