//! Timing engine for the single-issue five-stage in-order core.

use xloops_func::EffectClass;
use xloops_isa::NUM_REGS;
use xloops_mem::Cache;

use crate::core::Event;

/// Scoreboard-based timing model of a classic five-stage pipeline with full
/// bypassing: one instruction issues per cycle; consumers stall until their
/// producers' results are available on a bypass path.
///
/// Latency assumptions (cycles from issue until the result is bypassable):
/// ALU 1; load `1 + dcache`; LLFU per-op (unpipelined unit, structural
/// hazard on back-to-back LLFU ops); taken branches cost
/// `branch_penalty` bubbles (predict-not-taken front end); direct jumps one
/// bubble; indirect jumps `branch_penalty` bubbles; AMOs stall the pipeline
/// to completion (simple cores serialize atomics).
#[derive(Clone, Debug)]
pub struct InOrder {
    branch_penalty: u32,
    /// Cycle the next instruction may issue.
    cycle: u64,
    reg_ready: [u64; NUM_REGS],
    llfu_free: u64,
    /// Completion time of the latest memory operation (for `sync`).
    last_mem_done: u64,
    /// Completion time of the latest instruction overall.
    max_done: u64,
    last_dispatch: u64,
}

impl InOrder {
    pub fn new(branch_penalty: u32) -> InOrder {
        InOrder {
            branch_penalty,
            cycle: 0,
            reg_ready: [0; NUM_REGS],
            llfu_free: 0,
            last_mem_done: 0,
            max_done: 0,
            last_dispatch: 0,
        }
    }

    pub fn feed(&mut self, ev: &Event, dcache: &mut Cache) {
        // Operand-ready constraint (full bypass network).
        let mut t = self.cycle;
        for src in ev.srcs.into_iter().flatten() {
            t = t.max(self.reg_ready[src.index()]);
        }
        self.last_dispatch = t;

        let mut next_issue = t + 1;
        let mut done = t + 1;
        match ev.class {
            EffectClass::Llfu(op) => {
                if op.is_pipelined() {
                    // Multiply/FP-arith flow through the pipelined datapath.
                    done = t + op.default_latency() as u64;
                } else {
                    // The iterative divider is occupied for the whole op.
                    let start = t.max(self.llfu_free);
                    done = start + op.default_latency() as u64;
                    self.llfu_free = done;
                    next_issue = start + 1;
                }
            }
            EffectClass::Load(_) => {
                let addr = ev.mem_addr.expect("memory op carries an address");
                let lat = dcache.access(addr, false) as u64;
                done = t + 1 + lat;
                self.last_mem_done = self.last_mem_done.max(done);
            }
            EffectClass::Store(_) => {
                let addr = ev.mem_addr.expect("memory op carries an address");
                let lat = dcache.access(addr, true) as u64;
                self.last_mem_done = self.last_mem_done.max(t + 1 + lat);
                // Stores retire through the write buffer; the pipeline
                // moves on next cycle (done stays t + 1).
            }
            EffectClass::Amo => {
                let addr = ev.mem_addr.expect("amo carries an address");
                let lat = dcache.access(addr, true) as u64;
                // Simple cores serialize atomics: stall to completion.
                done = t + 1 + lat + 1;
                self.last_mem_done = self.last_mem_done.max(done);
                next_issue = done;
            }
            EffectClass::Sync => {
                next_issue = (t + 1).max(self.last_mem_done);
                done = next_issue;
            }
            EffectClass::Branch | EffectClass::Xloop if ev.taken => {
                next_issue = t + 1 + self.branch_penalty as u64;
            }
            EffectClass::Jump => {
                // Target known at decode: one bubble.
                next_issue = t + 2;
            }
            EffectClass::JumpReg => {
                next_issue = t + 1 + self.branch_penalty as u64;
            }
            _ => {}
        }

        if let Some(rd) = ev.dst {
            if !rd.is_zero() {
                self.reg_ready[rd.index()] = done;
            }
        }
        self.cycle = next_issue;
        self.max_done = self.max_done.max(done);
    }

    pub fn drain(&mut self) -> u64 {
        let end = self.cycle.max(self.max_done).max(self.llfu_free).max(self.last_mem_done);
        self.cycle = end;
        end
    }

    pub fn stall_until(&mut self, cycle: u64) {
        if cycle > self.cycle {
            self.cycle = cycle;
        }
        self.max_done = self.max_done.max(cycle);
        // Results produced before the stall are certainly ready after it.
    }

    pub fn last_dispatch(&self) -> u64 {
        self.last_dispatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_isa::{LlfuOp, MemOp, Reg};
    use xloops_mem::CacheConfig;

    fn alu(rd: u8, rs: u8, rt: u8) -> Event {
        Event::of(EffectClass::Alu, Some(Reg::new(rd)), [Some(Reg::new(rs)), Some(Reg::new(rt))])
    }

    fn cache() -> Cache {
        Cache::new(CacheConfig::l1_default())
    }

    #[test]
    fn independent_alu_is_one_ipc() {
        let mut e = InOrder::new(2);
        let mut c = cache();
        for i in 0..10u8 {
            e.feed(&alu(3 + (i % 4), 1, 2), &mut c);
        }
        assert_eq!(e.drain(), 10);
    }

    #[test]
    fn dependent_alu_still_one_ipc_with_bypass() {
        let mut e = InOrder::new(2);
        let mut c = cache();
        // r3 = r1+r2; r4 = r3+r3 ... fully dependent chain bypasses EX→EX.
        e.feed(&alu(3, 1, 2), &mut c);
        e.feed(&alu(4, 3, 3), &mut c);
        e.feed(&alu(5, 4, 4), &mut c);
        assert_eq!(e.drain(), 3);
    }

    #[test]
    fn load_use_stall() {
        let mut e = InOrder::new(2);
        let mut c = cache();
        let load = Event {
            mem_addr: Some(0x100),
            ..Event::of(EffectClass::Load(MemOp::Lw), Some(Reg::new(3)), [Some(Reg::new(1)), None])
        };
        e.feed(&load, &mut c); // cold miss: done = 1 + 21 = 22
        e.feed(&alu(4, 3, 3), &mut c); // stalls until 22
        assert_eq!(e.drain(), 23);

        // Warm: hit latency 1 → load done at t+2, one bubble for the user.
        let mut e = InOrder::new(2);
        e.feed(&load, &mut c);
        e.feed(&alu(4, 3, 3), &mut c);
        assert_eq!(e.drain(), 3); // load issues 0, ready at 2; alu 2..3
    }

    #[test]
    fn taken_branch_bubbles() {
        let mut e = InOrder::new(2);
        let mut c = cache();
        let br = Event {
            taken: true,
            ..Event::of(EffectClass::Branch, None, [Some(Reg::ZERO), Some(Reg::ZERO)])
        };
        e.feed(&br, &mut c); // issues 0, next issue at 3
        e.feed(&alu(3, 1, 2), &mut c);
        assert_eq!(e.drain(), 4);
    }

    #[test]
    fn llfu_structural_hazard() {
        let mut e = InOrder::new(2);
        let mut c = cache();
        let div = Event::of(
            EffectClass::Llfu(LlfuOp::Div),
            Some(Reg::new(3)),
            [Some(Reg::new(1)), Some(Reg::new(2))],
        );
        e.feed(&div, &mut c); // divider occupied 0..12
        e.feed(&div, &mut c); // waits for unit: 12..24
        assert_eq!(e.drain(), 24);
    }

    #[test]
    fn stall_until_advances_time() {
        let mut e = InOrder::new(2);
        let mut c = cache();
        e.feed(&alu(3, 1, 2), &mut c);
        e.stall_until(100);
        e.feed(&alu(4, 1, 2), &mut c);
        assert_eq!(e.drain(), 101);
    }
}
