//! Timing engine for the out-of-order superscalar cores.
//!
//! The model schedules each retired instruction against the machine's
//! structural and dependence constraints:
//!
//! * **Front end**: `width` instructions fetched/renamed per cycle; a
//!   mispredicted branch (gshare + last-target indirect predictor) redirects
//!   fetch to `resolve + branch_penalty`.
//! * **Window**: dispatch requires a free ROB entry (the instruction `rob`
//!   slots earlier must have committed).
//! * **Issue**: out-of-order, `width` per cycle, operands via a renamed
//!   register file (no false dependences); loads take a memory port and the
//!   cache latency, with store-to-load forwarding from older in-flight
//!   stores; the LLFU is pipelined.
//! * **Commit**: in order, `width` per cycle; stores update memory here.
//! * **AMOs and fences** drain the ROB first (the paper notes its AMO
//!   implementation on the out-of-order cores is conservative, and our
//!   traditional-execution results inherit that property).

use std::collections::VecDeque;

use xloops_func::EffectClass;
use xloops_isa::NUM_REGS;
use xloops_mem::{Cache, FxHashMap};

use crate::core::Event;
use crate::predictor::Gshare;
use crate::slots::SlotTable;

#[derive(Clone, Debug)]
pub struct OutOfOrder {
    width: u32,
    rob_size: usize,
    branch_penalty: u32,
    llfu_pipelined: bool,

    fetch_cycle: u64,
    fetched_this_cycle: u32,
    /// Commit times of the youngest `rob_size` instructions.
    rob: VecDeque<u64>,
    reg_ready: [u64; NUM_REGS],
    issue_slots: SlotTable,
    mem_slots: SlotTable,
    commit_slots: SlotTable,
    llfu_busy_until: u64,
    /// In-order commit frontier.
    last_commit: u64,
    /// Data-ready time of the youngest in-flight store per word address
    /// (for store-to-load forwarding).
    store_ready: FxHashMap<u32, u64>,
    /// Completion time of the latest memory op (for fences).
    last_mem_done: u64,
    predictor: Gshare,
    /// Last observed target per indirect-jump pc.
    jr_targets: FxHashMap<u32, u32>,
    last_dispatch: u64,
}

impl OutOfOrder {
    pub fn new(
        width: u32,
        rob: u32,
        mem_ports: u32,
        branch_penalty: u32,
        llfu_pipelined: bool,
    ) -> OutOfOrder {
        OutOfOrder {
            width,
            rob_size: rob as usize,
            branch_penalty,
            llfu_pipelined,
            fetch_cycle: 0,
            fetched_this_cycle: 0,
            rob: VecDeque::new(),
            reg_ready: [0; NUM_REGS],
            issue_slots: SlotTable::new(width),
            mem_slots: SlotTable::new(mem_ports),
            commit_slots: SlotTable::new(width),
            llfu_busy_until: 0,
            last_commit: 0,
            store_ready: FxHashMap::default(),
            last_mem_done: 0,
            predictor: Gshare::new(12, 8),
            jr_targets: FxHashMap::default(),
            last_dispatch: 0,
        }
    }

    pub fn mispredicts(&self) -> u64 {
        self.predictor.mispredicts()
    }

    fn dispatch(&mut self, serialize: bool) -> u64 {
        // ROB-full back-pressure: the entry `rob_size` younger frees when
        // the instruction occupying it commits.
        let mut earliest = self.fetch_cycle;
        if self.rob.len() == self.rob_size {
            earliest = earliest.max(*self.rob.front().expect("rob full"));
        }
        if serialize {
            // Wait until every older instruction has committed.
            earliest = earliest.max(self.last_commit);
        }
        if earliest > self.fetch_cycle {
            self.fetch_cycle = earliest;
            self.fetched_this_cycle = 0;
        }
        let at = self.fetch_cycle;
        self.fetched_this_cycle += 1;
        if self.fetched_this_cycle == self.width {
            self.fetch_cycle += 1;
            self.fetched_this_cycle = 0;
        }
        at
    }

    fn redirect_fetch(&mut self, cycle: u64) {
        if cycle > self.fetch_cycle {
            self.fetch_cycle = cycle;
            self.fetched_this_cycle = 0;
        }
    }

    pub fn feed(&mut self, ev: &Event, dcache: &mut Cache) {
        let serialize = matches!(ev.class, EffectClass::Amo | EffectClass::Sync);
        let disp = self.dispatch(serialize);
        self.last_dispatch = disp;

        // Operand readiness through renamed registers.
        let mut ready = disp + 1;
        for src in ev.srcs.into_iter().flatten() {
            ready = ready.max(self.reg_ready[src.index()]);
        }

        let done;
        match ev.class {
            EffectClass::Llfu(op) => {
                let mut issue = self.issue_slots.alloc(ready);
                if !self.llfu_pipelined {
                    issue = issue.max(self.llfu_busy_until);
                    self.llfu_busy_until = issue + op.default_latency() as u64;
                }
                done = issue + op.default_latency() as u64;
            }
            EffectClass::Store(_) => {
                let addr = ev.mem_addr.expect("memory op carries an address");
                let issue = self.issue_slots.alloc(ready);
                let port = self.mem_slots.alloc(issue);
                // Store completes into the store queue once issued; the
                // cache write happens at commit (timed as background).
                done = port + 1;
                dcache.access(addr, true);
                self.store_ready.insert(addr & !3, done);
                self.last_mem_done = self.last_mem_done.max(done);
            }
            EffectClass::Load(_) => {
                let addr = ev.mem_addr.expect("memory op carries an address");
                let issue = self.issue_slots.alloc(ready);
                let port = self.mem_slots.alloc(issue);
                if let Some(&fwd) = self.store_ready.get(&(addr & !3)) {
                    // Store-to-load forwarding from the store queue.
                    done = port.max(fwd) + 1;
                } else {
                    let lat = dcache.access(addr, false) as u64;
                    done = port + lat;
                }
                self.last_mem_done = self.last_mem_done.max(done);
            }
            EffectClass::Amo => {
                let addr = ev.mem_addr.expect("amo carries an address");
                let issue = self.issue_slots.alloc(ready);
                let port = self.mem_slots.alloc(issue);
                let lat = dcache.access(addr, true) as u64;
                done = port + lat + 1;
                self.store_ready.insert(addr & !3, done);
                self.last_mem_done = self.last_mem_done.max(done);
            }
            EffectClass::Sync => {
                done = ready.max(self.last_mem_done);
            }
            EffectClass::Branch | EffectClass::Xloop => {
                let issue = self.issue_slots.alloc(ready);
                done = issue + 1;
                if !self.predictor.predict_and_update(ev.pc, ev.taken) {
                    self.redirect_fetch(done + self.branch_penalty as u64);
                }
            }
            EffectClass::Jump => {
                // Direct jumps resolve in the front end (BTB): no penalty.
                let issue = self.issue_slots.alloc(ready);
                done = issue + 1;
            }
            EffectClass::JumpReg => {
                let issue = self.issue_slots.alloc(ready);
                done = issue + 1;
                let target = ev.target.unwrap_or(0);
                let predicted = self.jr_targets.insert(ev.pc, target);
                if predicted != Some(target) {
                    self.redirect_fetch(done + self.branch_penalty as u64);
                }
            }
            _ => {
                // Simple ALU / lui / nop / exit / xi.
                let issue = self.issue_slots.alloc(ready);
                done = issue + 1;
            }
        }

        if let Some(rd) = ev.dst {
            if !rd.is_zero() {
                self.reg_ready[rd.index()] = done;
            }
        }

        // In-order commit, `width` per cycle.
        let commit = self.commit_slots.alloc(done.max(self.last_commit));
        self.last_commit = commit;
        if self.rob.len() == self.rob_size {
            self.rob.pop_front();
        }
        self.rob.push_back(commit);

        // Forgetting old stores keeps the forwarding table small; anything
        // committed long ago is in the cache anyway.
        if self.store_ready.len() > 4096 {
            let horizon = self.last_commit.saturating_sub(1024);
            self.store_ready.retain(|_, &mut t| t >= horizon);
        }
    }

    pub fn drain(&mut self) -> u64 {
        let end = self.last_commit.max(self.last_mem_done).max(self.llfu_busy_until);
        self.last_commit = end;
        self.redirect_fetch(end);
        end
    }

    pub fn stall_until(&mut self, cycle: u64) {
        self.last_commit = self.last_commit.max(cycle);
        self.redirect_fetch(cycle);
        // Fetch now resumes at or after `cycle`, so every future slot
        // allocation (issue ≥ dispatch > fetch, memory ≥ issue, commit ≥
        // `last_commit`) lands at `cycle` or later: the slot windows can be
        // rebased instead of being dragged across the skipped span by the
        // next allocation.
        self.issue_slots.skip_to(cycle);
        self.mem_slots.skip_to(cycle);
        self.commit_slots.skip_to(cycle);
    }

    pub fn last_dispatch(&self) -> u64 {
        self.last_dispatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_isa::{MemOp, Reg};
    use xloops_mem::CacheConfig;

    fn alu(rd: u8, rs: u8, rt: u8) -> Event {
        Event::of(EffectClass::Alu, Some(Reg::new(rd)), [Some(Reg::new(rs)), Some(Reg::new(rt))])
    }

    fn load(data: u8, base: u8, addr: u32) -> Event {
        Event {
            mem_addr: Some(addr),
            ..Event::of(
                EffectClass::Load(MemOp::Lw),
                Some(Reg::new(data)),
                [Some(Reg::new(base)), None],
            )
        }
    }

    fn cache() -> Cache {
        Cache::new(CacheConfig::l1_default())
    }

    #[test]
    fn independent_work_reaches_width_ipc() {
        let mut e = OutOfOrder::new(4, 128, 2, 10, true);
        let mut c = cache();
        for i in 0..400u32 {
            // 4 independent chains.
            e.feed(&alu(3 + (i % 4) as u8, 1, 2), &mut c);
        }
        let cycles = e.drain();
        let ipc = 400.0 / cycles as f64;
        assert!(ipc > 3.0, "expected near-4 IPC, got {ipc:.2} ({cycles} cycles)");
    }

    #[test]
    fn dependent_chain_is_one_ipc() {
        let mut e = OutOfOrder::new(4, 128, 2, 10, true);
        let mut c = cache();
        for _ in 0..100 {
            e.feed(&alu(3, 3, 3), &mut c);
        }
        let cycles = e.drain();
        assert!(cycles >= 100, "serial chain cannot beat 1 IPC, got {cycles}");
        assert!(cycles <= 110, "should be close to 100, got {cycles}");
    }

    #[test]
    fn wider_core_is_faster_on_parallel_work() {
        let mut c2 = cache();
        let mut c4 = cache();
        let mut e2 = OutOfOrder::new(2, 64, 1, 8, true);
        let mut e4 = OutOfOrder::new(4, 128, 2, 10, true);
        for i in 0..1000u32 {
            let ev = alu(3 + (i % 8) as u8, 1, 2);
            e2.feed(&ev, &mut c2);
            e4.feed(&ev, &mut c4);
        }
        assert!(e4.drain() < e2.drain());
    }

    #[test]
    fn rob_limits_overlap_past_long_miss() {
        // A miss followed by many independent ops: with a tiny ROB the
        // window closes and the miss serializes execution.
        let load = load(3, 1, 0x8000);
        let run = |rob: u32| {
            let mut e = OutOfOrder::new(4, rob, 2, 10, true);
            let mut c = cache();
            // Make every load a miss by striding cache-sized chunks.
            for i in 0..64u32 {
                let mut ld = load.clone();
                ld.mem_addr = Some(0x10000 + i * 0x10000);
                e.feed(&ld, &mut c);
                for _ in 0..8 {
                    e.feed(&alu(4, 1, 2), &mut c);
                }
            }
            e.drain()
        };
        assert!(run(8) > run(128), "small ROB must hurt MLP");
    }

    #[test]
    fn mispredicted_branch_redirects_fetch() {
        let br = |taken| Event {
            taken,
            ..Event::of(EffectClass::Branch, None, [Some(Reg::ZERO), Some(Reg::ZERO)])
        };
        let mut e = OutOfOrder::new(4, 128, 2, 10, true);
        let mut c = cache();
        // Alternate at a single pc with zero history bits would confuse a
        // bimodal predictor; gshare learns it, so use a random-ish pattern.
        let pattern = [true, true, false, true, false, false, true, false];
        for (i, &t) in pattern.iter().cycle().take(64).enumerate() {
            let mut b = br(t);
            b.pc = (i as u32 % 7) * 4; // several branch pcs
            e.feed(&b, &mut c);
        }
        assert!(e.mispredicts() > 0);
    }

    #[test]
    fn store_to_load_forwarding_beats_miss() {
        let mut e = OutOfOrder::new(2, 64, 1, 8, true);
        let mut c = cache();
        let st = Event {
            mem_addr: Some(0x9000),
            ..Event::of(EffectClass::Store(MemOp::Sw), None, [Some(Reg::new(1)), Some(Reg::new(2))])
        };
        let ld = load(3, 1, 0x9000);
        e.feed(&st, &mut c);
        e.feed(&ld, &mut c);
        let cycles = e.drain();
        assert!(cycles < 10, "forwarded load should not pay a miss, got {cycles}");
    }

    #[test]
    fn amo_serializes() {
        let amo = Event {
            mem_addr: Some(0x100),
            ..Event::of(EffectClass::Amo, Some(Reg::new(3)), [Some(Reg::new(1)), Some(Reg::new(2))])
        };
        let mut with_amo = OutOfOrder::new(4, 128, 2, 10, true);
        let mut without = OutOfOrder::new(4, 128, 2, 10, true);
        let mut c1 = cache();
        let mut c2 = cache();
        for i in 0..32u32 {
            for _ in 0..4 {
                with_amo.feed(&alu(4 + (i % 4) as u8, 1, 2), &mut c1);
                without.feed(&alu(4 + (i % 4) as u8, 1, 2), &mut c2);
            }
            with_amo.feed(&amo, &mut c1);
            without.feed(&alu(3, 1, 2), &mut c2);
        }
        assert!(with_amo.drain() > 2 * without.drain(), "conservative AMOs drain the ROB");
    }
}
