/// A gshare conditional-branch predictor with 2-bit saturating counters.
///
/// Used by the out-of-order GPP models. `xloop` instructions are predicted
/// exactly like conditional branches, which is why traditional execution of
/// XLOOPS binaries costs essentially nothing on these cores (Section IV-B):
/// a loop-closing branch and an `xloop` train identically.
///
/// ```
/// use xloops_gpp::Gshare;
/// let mut p = Gshare::new(12, 8);
/// // A strongly-biased branch becomes predictable after a couple of visits.
/// for _ in 0..20 { p.predict_and_update(0x40, true); }
/// assert!(p.predict_and_update(0x40, true));
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    table: Vec<u8>,
    history: u32,
    history_bits: u32,
    index_mask: u32,
    lookups: u64,
    mispredicts: u64,
}

impl Gshare {
    /// Creates a predictor with `2^index_bits` counters and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is zero or greater than 24.
    pub fn new(index_bits: u32, history_bits: u32) -> Gshare {
        assert!((1..=24).contains(&index_bits));
        Gshare {
            table: vec![1; 1 << index_bits], // weakly not-taken
            history: 0,
            history_bits: history_bits.min(index_bits),
            index_mask: (1 << index_bits) - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Predicts the branch at `pc`, then updates the counter and history
    /// with the actual `taken` outcome. Returns `true` if the *prediction*
    /// was correct.
    pub fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        self.lookups += 1;
        let idx = (((pc >> 2) ^ (self.history & ((1 << self.history_bits) - 1))) & self.index_mask)
            as usize;
        let counter = &mut self.table[idx];
        let predicted_taken = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u32) & ((1 << self.history_bits) - 1);
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredicts += 1;
        }
        correct
    }

    /// Total predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Total mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut p = Gshare::new(10, 4);
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.predict_and_update(0x100, true) {
                wrong += 1;
            }
        }
        assert!(wrong <= 6, "should mispredict only while history warms up, got {wrong}");
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = Gshare::new(12, 8);
        let mut wrong_late = 0;
        for i in 0..200 {
            let taken = i % 2 == 0;
            let correct = p.predict_and_update(0x200, taken);
            if i >= 100 && !correct {
                wrong_late += 1;
            }
        }
        assert_eq!(wrong_late, 0, "history should capture a period-2 pattern");
    }

    #[test]
    fn loop_closing_branch_mispredicts_once_per_trip() {
        let mut p = Gshare::new(12, 0); // no history: plain bimodal
                                        // 10 trips of a 100-iteration loop: expect ~1 mispredict per exit.
        let mut wrong = 0;
        for _ in 0..10 {
            for i in 0..100 {
                if !p.predict_and_update(0x300, i != 99) {
                    wrong += 1;
                }
            }
        }
        assert!(wrong <= 12, "got {wrong}");
    }

    #[test]
    fn stats_accumulate() {
        let mut p = Gshare::new(8, 4);
        p.predict_and_update(0, true);
        p.predict_and_update(0, false);
        assert_eq!(p.lookups(), 2);
        assert!(p.mispredicts() >= 1);
    }
}
