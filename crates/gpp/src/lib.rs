//! # xloops-gpp
//!
//! Cycle-level general-purpose processor (GPP) models:
//!
//! * [`GppConfig::io`] — a single-issue five-stage in-order core with full
//!   bypassing and an unpipelined long-latency functional unit, and
//! * [`GppConfig::ooo2`] / [`GppConfig::ooo4`] — two- and four-wide
//!   out-of-order superscalar cores with register renaming, a reorder
//!   buffer, gshare branch prediction, store-to-load forwarding, and
//!   (deliberately, matching the paper) *conservative* atomic-memory-
//!   operation handling that drains the ROB.
//!
//! Both models execute XLOOPS binaries with **traditional** semantics —
//! the decoder maps `xloop` to a conditional branch and `xi` to an add —
//! which is Section II-C of the paper. The same [`GppCore`] drives the
//! specialized and adaptive execution modes in `xloops-sim`: it can stop
//! when it reaches a taken `xloop` so the system can hand the loop to the
//! LPSU, and it exposes [`GppCore::stall_until`] so the cycles the GPP
//! spends waiting on the LPSU are accounted.
//!
//! The timing models are *trace-driven by their own functional core*: each
//! retired instruction (with its branch outcome and memory address) is fed
//! to a timing engine that schedules it against pipeline width, dependence,
//! and structural constraints. This is the standard lightweight-simulation
//! approach; it reproduces the first-order effects (issue width, ILP
//! extraction, mispredict and miss penalties) that drive the paper's
//! speedup ratios.

mod config;
mod core;
mod inorder;
mod ooo;
mod predictor;
mod slots;
mod stats;

pub use config::{GppConfig, GppKind};
pub use core::{GppCore, RunOpts, StopReason, Watch};
pub use predictor::Gshare;
pub use stats::GppStats;
