use xloops_mem::FxHashSet;

use xloops_asm::Program;
use xloops_func::{ArchState, EffectClass, ExecError, Interp};
use xloops_isa::Reg;
use xloops_mem::{Cache, Memory};

use crate::config::{GppConfig, GppKind};
use crate::inorder::InOrder;
use crate::ooo::OutOfOrder;
use crate::stats::GppStats;

/// One retired instruction with the information the timing engines need —
/// built from the semantics layer's [`xloops_func::Effect`] plus the
/// instruction's register operands. The engines never see an
/// [`xloops_isa::Instr`]:
/// semantics decided *what* happened, this record is everything they need
/// to decide *when*.
#[derive(Clone, Debug)]
pub(crate) struct Event {
    /// Timing class of the retired instruction.
    pub class: EffectClass,
    pub pc: u32,
    /// Outcome for control-flow instructions (`xloop` included).
    pub taken: bool,
    /// Effective address for memory operations.
    pub mem_addr: Option<u32>,
    /// Target for indirect jumps.
    pub target: Option<u32>,
    /// Destination register (r0 writes included; the engines filter).
    pub dst: Option<Reg>,
    /// Source registers read.
    pub srcs: [Option<Reg>; 2],
}

impl Event {
    /// An event with neutral metadata (used by engine unit tests).
    #[allow(dead_code)]
    pub(crate) fn of(class: EffectClass, dst: Option<Reg>, srcs: [Option<Reg>; 2]) -> Event {
        Event { class, pc: 0, taken: false, mem_addr: None, target: None, dst, srcs }
    }
}

// One Engine lives per GppCore (never in collections), and it sits on the
// per-retired-instruction path — boxing the large variant would trade a
// few hundred stack bytes for an extra pointer chase per event.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum Engine {
    InOrder(InOrder),
    OutOfOrder(OutOfOrder),
}

impl Engine {
    fn feed(&mut self, ev: &Event, dcache: &mut Cache) {
        match self {
            Engine::InOrder(e) => e.feed(ev, dcache),
            Engine::OutOfOrder(e) => e.feed(ev, dcache),
        }
    }

    fn drain(&mut self) -> u64 {
        match self {
            Engine::InOrder(e) => e.drain(),
            Engine::OutOfOrder(e) => e.drain(),
        }
    }

    fn stall_until(&mut self, cycle: u64) {
        match self {
            Engine::InOrder(e) => e.stall_until(cycle),
            Engine::OutOfOrder(e) => e.stall_until(cycle),
        }
    }

    fn last_dispatch(&self) -> u64 {
        match self {
            Engine::InOrder(e) => e.last_dispatch(),
            Engine::OutOfOrder(e) => e.last_dispatch(),
        }
    }

    fn mispredicts(&self) -> u64 {
        match self {
            Engine::InOrder(_) => 0,
            Engine::OutOfOrder(e) => e.mispredicts(),
        }
    }
}

/// Why [`GppCore::run`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `exit`. The pipeline has been drained.
    Exited,
    /// A *taken* `xloop` was reached and
    /// [`RunOpts::stop_at_taken_xloop`] was set. The xloop has **not**
    /// executed (the pc still points at it); the system should start the
    /// scan phase and hand the loop to the LPSU.
    XloopTaken {
        /// pc of the xloop instruction.
        pc: u32,
    },
    /// The watched xloop (see [`RunOpts::watch`]) finished `iters` more
    /// iterations, either because the profiling quota was met
    /// (`loop_exited == false`, pc is at the body start) or because the
    /// loop ran out of iterations (`loop_exited == true`, pc is past the
    /// xloop).
    WatchDone {
        /// Iterations of the watched loop executed during this run.
        iters: u64,
        /// Whether the loop exited on its own.
        loop_exited: bool,
    },
}

/// A profiling watch on one xloop pc (GPP profiling phase of adaptive
/// execution): stop at the iteration boundary once either budget is spent.
#[derive(Clone, Copy, Debug)]
pub struct Watch {
    /// pc of the watched `xloop` instruction.
    pub pc: u32,
    /// Stop after this many iterations.
    pub max_iters: u64,
    /// Stop once this many cycles have elapsed (0 = no cycle budget).
    pub max_cycles: u64,
}

/// Options controlling one [`GppCore::run`] call.
#[derive(Clone, Debug, Default)]
pub struct RunOpts {
    /// Stop (before executing) at any taken `xloop` not in [`Self::ignore_pcs`].
    pub stop_at_taken_xloop: bool,
    /// xloop pcs that should *not* stop execution (e.g. pcs the adaptive
    /// profiling table has already decided to run traditionally).
    pub ignore_pcs: FxHashSet<u32>,
    /// Count iterations (and cycles) of one xloop and stop at a budget.
    pub watch: Option<Watch>,
    /// Safety limit on retired instructions.
    pub max_steps: u64,
}

impl RunOpts {
    /// Plain traditional execution to completion.
    pub fn traditional() -> RunOpts {
        RunOpts { max_steps: u64::MAX, ..RunOpts::default() }
    }

    /// Stop at every taken xloop (specialized execution).
    pub fn specialized() -> RunOpts {
        RunOpts { stop_at_taken_xloop: true, max_steps: u64::MAX, ..RunOpts::default() }
    }
}

/// A general-purpose processor: functional core + cycle-level timing engine
/// + L1 data cache.
///
/// ```
/// use xloops_asm::assemble;
/// use xloops_gpp::{GppConfig, GppCore, RunOpts, StopReason};
/// use xloops_mem::Memory;
///
/// let p = assemble("li r1, 3\n mul r2, r1, r1\n sw r2, 0(r0)\n exit")?;
/// let mut mem = Memory::new();
/// let mut gpp = GppCore::new(GppConfig::io());
/// let stop = gpp.run(&p, &mut mem, &RunOpts::traditional())?;
/// assert_eq!(stop, StopReason::Exited);
/// assert_eq!(mem.read_u32(0), 9);
/// assert!(gpp.stats().cycles > 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct GppCore {
    config: GppConfig,
    interp: Interp,
    engine: Engine,
    dcache: Cache,
    drained_cycles: u64,
}

impl GppCore {
    /// Creates a core in the reset state (pc 0, registers zero).
    pub fn new(config: GppConfig) -> GppCore {
        let engine = match config.kind {
            GppKind::InOrder => Engine::InOrder(InOrder::new(config.branch_penalty)),
            GppKind::OutOfOrder { width, rob, mem_ports } => Engine::OutOfOrder(OutOfOrder::new(
                width,
                rob,
                mem_ports,
                config.branch_penalty,
                config.llfu_pipelined,
            )),
        };
        GppCore {
            config,
            interp: Interp::new(),
            engine,
            dcache: Cache::new(config.dcache),
            drained_cycles: 0,
        }
    }

    /// The configuration this core was built with.
    pub fn config(&self) -> &GppConfig {
        &self.config
    }

    /// Current pc.
    pub fn pc(&self) -> u32 {
        self.interp.pc()
    }

    /// Redirects the pc (used when the LPSU hands a finished loop back).
    pub fn set_pc(&mut self, pc: u32) {
        self.interp.set_pc(pc);
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.interp.reg(r)
    }

    /// Writes an architectural register (live-out updates after a loop).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.interp.set_reg(r, value);
    }

    /// Snapshot of the whole register file (scan phase reads live-ins).
    pub fn reg_file(&self) -> [u32; 32] {
        *self.interp.state().regs()
    }

    /// The architectural state (regfile + pc), for system checkpoints.
    pub fn arch_state(&self) -> &ArchState {
        self.interp.state()
    }

    /// Replaces the architectural state (system checkpoint restore). Timing
    /// state (pipeline, caches, predictors) is deliberately left warm.
    pub fn set_arch_state(&mut self, state: ArchState) {
        self.interp.set_state(state);
    }

    /// The L1 data cache. The LPSU shares this cache (and its port) with
    /// the GPP, which is central to the paper's area story.
    pub fn dcache_mut(&mut self) -> &mut Cache {
        &mut self.dcache
    }

    /// Advances the clock to `cycle` (GPP stalled while the LPSU runs).
    pub fn stall_until(&mut self, cycle: u64) {
        self.engine.stall_until(cycle);
        self.drained_cycles = self.drained_cycles.max(cycle);
    }

    /// Retires all in-flight instructions and returns the current cycle.
    pub fn drain(&mut self) -> u64 {
        self.drained_cycles = self.engine.drain();
        self.drained_cycles
    }

    /// Cycle at which the most recent instruction entered the back end —
    /// out-of-order cores overlap the scan phase with draining older work,
    /// so the scan can start here rather than after [`Self::drain`].
    pub fn last_dispatch_cycle(&self) -> u64 {
        self.engine.last_dispatch()
    }

    /// Dynamic instructions retired so far, without draining the pipeline.
    /// [`GppCore::stats`] drains (which perturbs subsequent timing); the
    /// sampling driver reads instruction-count deltas between measurement
    /// windows through this instead.
    pub fn instret(&self) -> u64 {
        self.interp.mix().total()
    }

    /// A monotonic, non-draining read of the core's clock: the later of the
    /// last dispatch and the last drain/stall point. Unlike
    /// [`GppCore::last_dispatch_cycle`] alone, this advances across LPSU
    /// phases (which move the clock via [`GppCore::stall_until`] before the
    /// next instruction dispatches).
    pub fn clock(&self) -> u64 {
        self.engine.last_dispatch().max(self.drained_cycles)
    }

    /// Statistics accumulated so far (drains the pipeline to get a stable
    /// cycle count).
    pub fn stats(&mut self) -> GppStats {
        let cycles = self.drain();
        GppStats {
            cycles,
            instret: self.interp.mix().total(),
            mix: self.interp.mix(),
            mispredicts: self.engine.mispredicts(),
            cache: self.dcache.stats(),
        }
    }

    /// Runs until `exit`, a stop condition from `opts`, or `max_steps`.
    ///
    /// # Errors
    ///
    /// Propagates [`ExecError`] from the functional core (invalid pc,
    /// step-limit exhaustion, or an architectural fault).
    pub fn run(
        &mut self,
        program: &Program,
        mem: &mut Memory,
        opts: &RunOpts,
    ) -> Result<StopReason, ExecError> {
        let mut watch_iters = 0u64;
        let watch_start_cycle = self.engine.last_dispatch();
        let max_steps = if opts.max_steps == 0 { u64::MAX } else { opts.max_steps };
        for step_idx in 0..max_steps {
            let pc = self.interp.pc();
            let instr = program.fetch(pc).ok_or(ExecError::InvalidPc(pc))?;

            if instr.is_xloop() && opts.stop_at_taken_xloop {
                if let [Some(idx), Some(bound)] = instr.srcs() {
                    let taken = (self.interp.reg(idx) as i32) < (self.interp.reg(bound) as i32);
                    if taken && !opts.ignore_pcs.contains(&pc) {
                        return Ok(StopReason::XloopTaken { pc });
                    }
                }
            }

            // Semantics first (what happened), then timing (when): the
            // effect carries every pre-state fact the engines consume.
            let effect = self.interp.exec(instr, mem)?;
            let ev = Event {
                class: effect.class,
                pc,
                taken: effect.taken,
                mem_addr: effect.mem_addr,
                target: (effect.class == EffectClass::JumpReg).then_some(effect.next_pc),
                dst: instr.dst(),
                srcs: instr.srcs(),
            };
            self.engine.feed(&ev, &mut self.dcache);

            if effect.class == EffectClass::Exit {
                self.drain();
                return Ok(StopReason::Exited);
            }

            if let Some(w) = opts.watch {
                // A crossing on the very first step belongs to an iteration
                // that executed *before* this profiling run began (the run
                // starts at the xloop pc): don't count it.
                if pc == w.pc && step_idx > 0 {
                    if !ev.taken {
                        return Ok(StopReason::WatchDone { iters: watch_iters, loop_exited: true });
                    }
                    watch_iters += 1;
                    let elapsed = self.engine.last_dispatch().saturating_sub(watch_start_cycle);
                    if watch_iters >= w.max_iters || (w.max_cycles > 0 && elapsed >= w.max_cycles) {
                        return Ok(StopReason::WatchDone {
                            iters: watch_iters,
                            loop_exited: false,
                        });
                    }
                }
            }
        }
        Err(ExecError::StepLimit(max_steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_asm::assemble;

    fn vector_sum_src(n: u32) -> String {
        format!(
            "
            li r4, 0x1000
            li r2, 0
            li r3, {n}
            li r9, 0
        body:
            sll r5, r2, 2
            addu r5, r4, r5
            lw r6, 0(r5)
            addu r9, r9, r6
            addiu r2, r2, 1
            xloop.or body, r2, r3
            sw r9, 0x800(r0)
            exit"
        )
    }

    fn prep_mem(n: u32) -> Memory {
        let mut mem = Memory::new();
        for i in 0..n {
            mem.write_u32(0x1000 + 4 * i, i + 1);
        }
        mem
    }

    #[test]
    fn traditional_execution_all_cores_same_result() {
        let p = assemble(&vector_sum_src(64)).unwrap();
        for config in [GppConfig::io(), GppConfig::ooo2(), GppConfig::ooo4()] {
            let mut mem = prep_mem(64);
            let mut gpp = GppCore::new(config);
            let stop = gpp.run(&p, &mut mem, &RunOpts::traditional()).unwrap();
            assert_eq!(stop, StopReason::Exited);
            assert_eq!(mem.read_u32(0x800), 64 * 65 / 2, "{}", config.name());
        }
    }

    #[test]
    fn wider_cores_are_faster_on_the_same_binary() {
        let p = assemble(&vector_sum_src(256)).unwrap();
        let mut cycles = Vec::new();
        for config in [GppConfig::io(), GppConfig::ooo2(), GppConfig::ooo4()] {
            let mut mem = prep_mem(256);
            let mut gpp = GppCore::new(config);
            gpp.run(&p, &mut mem, &RunOpts::traditional()).unwrap();
            cycles.push(gpp.stats().cycles);
        }
        assert!(
            cycles[0] > cycles[1],
            "io {} should be slower than ooo/2 {}",
            cycles[0],
            cycles[1]
        );
        assert!(
            cycles[1] > cycles[2],
            "ooo/2 {} should be slower than ooo/4 {}",
            cycles[1],
            cycles[2]
        );
    }

    #[test]
    fn stops_at_taken_xloop_before_executing_it() {
        let p = assemble(&vector_sum_src(8)).unwrap();
        let mut mem = prep_mem(8);
        let mut gpp = GppCore::new(GppConfig::io());
        let stop = gpp.run(&p, &mut mem, &RunOpts::specialized()).unwrap();
        let xloop_pc = match stop {
            StopReason::XloopTaken { pc } => pc,
            other => panic!("expected xloop stop, got {other:?}"),
        };
        assert_eq!(gpp.pc(), xloop_pc);
        // One body iteration has executed traditionally: idx == 1.
        assert_eq!(gpp.reg(Reg::new(2)), 1);
        assert!(p.fetch(xloop_pc).is_some_and(|i| i.is_xloop()));
    }

    #[test]
    fn ignored_xloop_pc_runs_traditionally() {
        let p = assemble(&vector_sum_src(8)).unwrap();
        let mut mem = prep_mem(8);
        let mut gpp = GppCore::new(GppConfig::io());
        let mut opts = RunOpts::specialized();
        opts.ignore_pcs.insert(p.label("body").unwrap() + 5 * 4);
        let stop = gpp.run(&p, &mut mem, &opts).unwrap();
        assert_eq!(stop, StopReason::Exited);
        assert_eq!(mem.read_u32(0x800), 36);
    }

    #[test]
    fn watch_counts_profiling_iterations() {
        let p = assemble(&vector_sum_src(100)).unwrap();
        let xloop_pc = p.instrs().iter().position(|i| i.is_xloop()).unwrap() as u32 * 4;
        let mut mem = prep_mem(100);
        let mut gpp = GppCore::new(GppConfig::io());
        let mut opts = RunOpts::traditional();
        opts.watch = Some(Watch { pc: xloop_pc, max_iters: 10, max_cycles: 0 });
        let stop = gpp.run(&p, &mut mem, &opts).unwrap();
        assert_eq!(stop, StopReason::WatchDone { iters: 10, loop_exited: false });
        // pc is at the body start, about to run iteration 10.
        assert_eq!(gpp.pc(), p.label("body").unwrap());
        assert_eq!(gpp.reg(Reg::new(2)), 10);

        // Watching more iterations than the loop has reports loop exit.
        let mut mem = prep_mem(100);
        let mut gpp = GppCore::new(GppConfig::io());
        opts.watch = Some(Watch { pc: xloop_pc, max_iters: 1000, max_cycles: 0 });
        let stop = gpp.run(&p, &mut mem, &opts).unwrap();
        assert_eq!(stop, StopReason::WatchDone { iters: 99, loop_exited: true });
    }

    #[test]
    fn stall_until_adds_cycles() {
        let p = assemble("li r1, 1\nexit").unwrap();
        let mut mem = Memory::new();
        let mut gpp = GppCore::new(GppConfig::io());
        gpp.stall_until(500);
        gpp.run(&p, &mut mem, &RunOpts::traditional()).unwrap();
        assert!(gpp.stats().cycles >= 500);
    }

    #[test]
    fn stats_mix_counts_match_program() {
        let p = assemble(&vector_sum_src(16)).unwrap();
        let mut mem = prep_mem(16);
        let mut gpp = GppCore::new(GppConfig::ooo2());
        gpp.run(&p, &mut mem, &RunOpts::traditional()).unwrap();
        let stats = gpp.stats();
        assert_eq!(stats.mix.loads, 16);
        assert_eq!(stats.mix.stores, 1);
        assert_eq!(stats.mix.xloops, 16);
        assert!(stats.ipc() > 0.0);
    }
}
