//! Property test: every GPP timing model is functionally transparent —
//! the architectural memory and register state after a run equal the pure
//! functional interpreter's, for random loop programs.

use proptest::prelude::*;
use xloops_asm::Program;
use xloops_func::Interp;
use xloops_gpp::{GppConfig, GppCore, RunOpts};
use xloops_isa::{AluOp, Instr, LlfuOp, MemOp, Reg};
use xloops_mem::Memory;

const ARRAY: u32 = 0x2000;

#[derive(Clone, Debug)]
enum Op {
    Alu(u8, u8, u8, AluOp),
    Llfu(u8, u8, u8, LlfuOp),
    Load(u8, i8),
    Store(u8, i8),
}

fn op() -> impl Strategy<Value = Op> {
    let t = 8u8..16;
    prop_oneof![
        (t.clone(), t.clone(), t.clone(), prop::sample::select(AluOp::ALL.to_vec()))
            .prop_map(|(a, b, c, o)| Op::Alu(a, b, c, o)),
        (
            t.clone(),
            t.clone(),
            t.clone(),
            prop::sample::select(vec![LlfuOp::Mul, LlfuOp::Div, LlfuOp::Rem])
        )
            .prop_map(|(a, b, c, o)| Op::Llfu(a, b, c, o)),
        (t.clone(), -8i8..8).prop_map(|(a, k)| Op::Load(a, k)),
        (t, -8i8..8).prop_map(|(a, k)| Op::Store(a, k)),
    ]
}

fn build(ops: &[Op], iters: u8) -> Program {
    let r = Reg::new;
    let mut v = vec![
        Instr::AluImm { op: AluOp::Addu, rd: r(2), rs: Reg::ZERO, imm: 0 },
        Instr::AluImm { op: AluOp::Addu, rd: r(3), rs: Reg::ZERO, imm: iters.max(1) as i16 },
        Instr::AluImm { op: AluOp::Addu, rd: r(4), rs: Reg::ZERO, imm: ARRAY as i16 },
    ];
    let body_start = v.len();
    for o in ops {
        match *o {
            Op::Alu(a, b, c, op) => v.push(Instr::Alu { op, rd: r(a), rs: r(b), rt: r(c) }),
            Op::Llfu(a, b, c, op) => v.push(Instr::Llfu { op, rd: r(a), rs: r(b), rt: r(c) }),
            Op::Load(a, k) | Op::Store(a, k) => {
                v.push(Instr::AluImm { op: AluOp::Addu, rd: r(6), rs: r(2), imm: k as i16 });
                v.push(Instr::AluImm { op: AluOp::And, rd: r(6), rs: r(6), imm: 31 });
                v.push(Instr::AluImm { op: AluOp::Sll, rd: r(6), rs: r(6), imm: 2 });
                v.push(Instr::Alu { op: AluOp::Addu, rd: r(7), rs: r(4), rt: r(6) });
                let m = if matches!(o, Op::Load(..)) { MemOp::Lw } else { MemOp::Sw };
                v.push(Instr::Mem { op: m, data: r(a), base: r(7), offset: 0 });
            }
        }
    }
    v.push(Instr::AluImm { op: AluOp::Addu, rd: r(2), rs: r(2), imm: 1 });
    v.push(Instr::Branch {
        cond: xloops_isa::BranchCond::Lt,
        rs: r(2),
        rt: r(3),
        offset: -((v.len() - body_start) as i16),
    });
    v.push(Instr::Exit);
    Program::from_instrs(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn timing_models_are_functionally_transparent(
        ops in prop::collection::vec(op(), 1..12),
        iters in 1u8..20,
    ) {
        let p = build(&ops, iters);

        let mut golden_mem = Memory::new();
        let mut golden = Interp::new();
        golden.run(&p, &mut golden_mem, 10_000_000).expect("golden run");

        for config in [GppConfig::io(), GppConfig::ooo2(), GppConfig::ooo4()] {
            let mut mem = Memory::new();
            let mut gpp = GppCore::new(config);
            gpp.run(&p, &mut mem, &RunOpts::traditional()).expect("timed run");
            for i in 0..32u32 {
                prop_assert_eq!(
                    mem.read_u32(ARRAY + 4 * i),
                    golden_mem.read_u32(ARRAY + 4 * i),
                    "{} word {}", config.name(), i
                );
            }
            for reg in Reg::all() {
                prop_assert_eq!(gpp.reg(reg), golden.reg(reg), "{} {}", config.name(), reg);
            }
            prop_assert!(gpp.stats().cycles > 0);
        }
    }

    /// Cycle counts are deterministic: the same program on the same model
    /// always takes the same number of cycles.
    #[test]
    fn timing_is_deterministic(
        ops in prop::collection::vec(op(), 1..10),
        iters in 1u8..12,
    ) {
        let p = build(&ops, iters);
        for config in [GppConfig::io(), GppConfig::ooo4()] {
            let run = || {
                let mut mem = Memory::new();
                let mut gpp = GppCore::new(config);
                gpp.run(&p, &mut mem, &RunOpts::traditional()).expect("runs");
                gpp.stats().cycles
            };
            prop_assert_eq!(run(), run());
        }
    }
}
