//! Behavioural coverage for [`RunOpts`]: the watch/stop plumbing that the
//! adaptive executor drives. These paths decide when control transfers
//! between the GPP, the profiler, and the LPSU, so each stop condition is
//! pinned down here on a small loop with a known iteration structure.

use xloops_asm::assemble;
use xloops_func::ExecError;
use xloops_gpp::{GppConfig, GppCore, RunOpts, StopReason, Watch};
use xloops_isa::{Instr, Reg};
use xloops_mem::Memory;

/// Sums `1..=n` through memory with an `xloop.or` back edge.
fn vector_sum_src(n: u32) -> String {
    format!(
        "
        li r4, 0x1000
        li r2, 0
        li r3, {n}
        li r9, 0
    body:
        sll r5, r2, 2
        addu r5, r4, r5
        lw r6, 0(r5)
        addu r9, r9, r6
        addiu r2, r2, 1
        xloop.or body, r2, r3
        sw r9, 0x800(r0)
        exit"
    )
}

fn prep_mem(n: u32) -> Memory {
    let mut mem = Memory::new();
    for i in 0..n {
        mem.write_u32(0x1000 + 4 * i, i + 1);
    }
    mem
}

fn xloop_pc(p: &xloops_asm::Program) -> u32 {
    p.instrs().iter().position(|i| i.is_xloop()).unwrap() as u32 * 4
}

/// The profiling run starts *at* the xloop pc (the specialized stop left
/// the pc there). That first evaluation belongs to the iteration that ran
/// before profiling began and must not count toward the watch budget.
#[test]
fn watch_does_not_count_the_entry_crossing() {
    let p = assemble(&vector_sum_src(50)).unwrap();
    let pc = xloop_pc(&p);

    // Drive the core to the xloop with a specialized stop, exactly like
    // the adaptive executor does before it starts profiling.
    let mut mem = prep_mem(50);
    let mut gpp = GppCore::new(GppConfig::io());
    let stop = gpp.run(&p, &mut mem, &RunOpts::specialized()).unwrap();
    assert_eq!(stop, StopReason::XloopTaken { pc });
    assert_eq!(gpp.pc(), pc);
    let idx_at_entry = gpp.reg(Reg::new(2));

    // Now watch 3 iterations starting from that pc. If the entry
    // crossing counted, idx would only advance by 2.
    let mut opts = RunOpts::traditional();
    opts.watch = Some(Watch { pc, max_iters: 3, max_cycles: 0 });
    let stop = gpp.run(&p, &mut mem, &opts).unwrap();
    assert_eq!(stop, StopReason::WatchDone { iters: 3, loop_exited: false });
    assert_eq!(gpp.reg(Reg::new(2)), idx_at_entry + 3);
}

/// A cycle budget stops the watch at the next iteration boundary even
/// when the iteration quota is far from exhausted.
#[test]
fn watch_cycle_budget_expires_at_an_iteration_boundary() {
    let p = assemble(&vector_sum_src(200)).unwrap();
    let pc = xloop_pc(&p);
    let mut mem = prep_mem(200);
    let mut gpp = GppCore::new(GppConfig::io());
    let mut opts = RunOpts::traditional();
    opts.watch = Some(Watch { pc, max_iters: u64::MAX, max_cycles: 40 });
    let stop = gpp.run(&p, &mut mem, &opts).unwrap();
    let StopReason::WatchDone { iters, loop_exited } = stop else {
        panic!("expected a watch stop, got {stop:?}");
    };
    assert!(!loop_exited);
    assert!(iters >= 1, "at least one full iteration before the budget bites");
    assert!(iters < 199, "budget must stop the loop well before it exits");
    // Stopped at the body start, mid-loop: idx equals iterations done.
    assert_eq!(u64::from(gpp.reg(Reg::new(2))), iters);
    assert!(gpp.stats().cycles >= 40);
}

/// `max_steps` is a hard safety net: expiry is an error, not a stop
/// reason, and it fires even with a watch active.
#[test]
fn max_steps_expiry_is_a_step_limit_error() {
    let p = assemble(&vector_sum_src(100)).unwrap();
    let mut mem = prep_mem(100);
    let mut gpp = GppCore::new(GppConfig::io());
    let mut opts = RunOpts::traditional();
    opts.max_steps = 25;
    let err = gpp.run(&p, &mut mem, &opts).unwrap_err();
    assert_eq!(err, ExecError::StepLimit(25));

    // With a watch whose budget is beyond the step limit, the step limit
    // still wins.
    let mut mem = prep_mem(100);
    let mut gpp = GppCore::new(GppConfig::io());
    opts.watch = Some(Watch { pc: xloop_pc(&p), max_iters: 1_000, max_cycles: 0 });
    let err = gpp.run(&p, &mut mem, &opts).unwrap_err();
    assert_eq!(err, ExecError::StepLimit(25));
}

/// `max_steps == 0` means "no limit", not "zero steps".
#[test]
fn zero_max_steps_means_unlimited() {
    let p = assemble(&vector_sum_src(8)).unwrap();
    let mut mem = prep_mem(8);
    let mut gpp = GppCore::new(GppConfig::io());
    let stop = gpp.run(&p, &mut mem, &RunOpts::default()).unwrap();
    assert_eq!(stop, StopReason::Exited);
    assert_eq!(mem.read_u32(0x800), 8 * 9 / 2);
}

/// An ignored pc suppresses the specialized stop but leaves watches on
/// the same pc fully functional — the adaptive profiler relies on being
/// able to watch a loop it has already decided not to re-offload.
#[test]
fn ignored_pc_still_honours_a_watch() {
    let p = assemble(&vector_sum_src(60)).unwrap();
    let pc = xloop_pc(&p);
    let mut mem = prep_mem(60);
    let mut gpp = GppCore::new(GppConfig::io());
    let mut opts = RunOpts::specialized();
    opts.ignore_pcs.insert(pc);
    opts.watch = Some(Watch { pc, max_iters: 5, max_cycles: 0 });
    let stop = gpp.run(&p, &mut mem, &opts).unwrap();
    assert_eq!(stop, StopReason::WatchDone { iters: 5, loop_exited: false });

    // Clearing the watch and keeping the ignore runs to completion.
    opts.watch = None;
    let stop = gpp.run(&p, &mut mem, &opts).unwrap();
    assert_eq!(stop, StopReason::Exited);
    assert_eq!(mem.read_u32(0x800), 60 * 61 / 2);
}

/// The stop reasons compose across engines: every core kind takes the
/// same path through the watch bookkeeping.
#[test]
fn watch_stops_agree_across_core_kinds() {
    let p = assemble(&vector_sum_src(40)).unwrap();
    let pc = xloop_pc(&p);
    assert!(matches!(p.fetch(pc), Some(Instr::Xloop { .. })));
    for config in [GppConfig::io(), GppConfig::ooo2(), GppConfig::ooo4()] {
        let mut mem = prep_mem(40);
        let mut gpp = GppCore::new(config);
        let mut opts = RunOpts::traditional();
        opts.watch = Some(Watch { pc, max_iters: 7, max_cycles: 0 });
        let stop = gpp.run(&p, &mut mem, &opts).unwrap();
        assert_eq!(
            stop,
            StopReason::WatchDone { iters: 7, loop_exited: false },
            "{}",
            gpp.config().name()
        );
        assert_eq!(gpp.reg(Reg::new(2)), 7, "{}", gpp.config().name());
    }
}
