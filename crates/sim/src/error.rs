use std::fmt;

use xloops_func::ExecError;
use xloops_lpsu::LpsuError;

/// Errors surfaced by a system-level run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The functional core faulted (invalid pc or step-limit exhaustion).
    Exec(ExecError),
    /// Specialized or adaptive execution was requested on a system with no
    /// LPSU.
    NoLpsu,
    /// The LPSU wedged: no context can issue and no pending event can
    /// unblock one (an engine invariant violation, surfaced instead of
    /// aborting the process).
    NoForwardProgress {
        /// LPSU-phase cycle at which the wedge was detected.
        cycle: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "execution error: {e}"),
            SimError::NoLpsu => f.write_str("this system configuration has no LPSU"),
            SimError::NoForwardProgress { cycle } => {
                write!(f, "LPSU made no forward progress (wedged at cycle {cycle})")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Exec(e) => Some(e),
            SimError::NoLpsu | SimError::NoForwardProgress { .. } => None,
        }
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec(e)
    }
}

impl From<LpsuError> for SimError {
    fn from(e: LpsuError) -> SimError {
        match e {
            LpsuError::NoForwardProgress { cycle } => SimError::NoForwardProgress { cycle },
        }
    }
}
