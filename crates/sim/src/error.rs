use std::fmt;

use xloops_func::ExecError;

/// Errors surfaced by a system-level run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The functional core faulted (invalid pc or step-limit exhaustion).
    Exec(ExecError),
    /// Specialized or adaptive execution was requested on a system with no
    /// LPSU.
    NoLpsu,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "execution error: {e}"),
            SimError::NoLpsu => f.write_str("this system configuration has no LPSU"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Exec(e) => Some(e),
            SimError::NoLpsu => None,
        }
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec(e)
    }
}
