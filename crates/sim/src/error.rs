use std::fmt;

use xloops_func::{ExecError, ExecFault};
use xloops_isa::Reg;
use xloops_lpsu::LpsuError;
use xloops_stats::JsonValue;

/// The one canonical error-document shape every machine-readable surface
/// uses: `{"message": ..., "exit_code": ...}`. The CLI's `--stats json`
/// error output, `bench-summary`'s `"errors"` array, and the serve
/// daemon's per-job failure reports all render through here, so a client
/// parses one schema no matter which surface produced the failure.
/// Failures with no [`SimError`] class behind them (panics, verification
/// failures) use the generic exit code `1`.
pub fn error_doc(message: &str, exit_code: i32) -> JsonValue {
    JsonValue::object(vec![
        ("message", JsonValue::Str(message.to_string())),
        ("exit_code", JsonValue::Int(exit_code as i64)),
    ])
}

/// Errors surfaced by a system-level run — the typed, non-panicking
/// taxonomy every engine's failure threads through. Each variant carries
/// the diagnostics needed for a one-line report (pc, cycle, stalled
/// contexts), and [`SimError::exit_code`] maps the class to a distinct CLI
/// exit status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The functional core faulted (invalid pc, step-limit exhaustion, or
    /// an architectural fault such as a misaligned access).
    Exec(ExecError),
    /// Specialized or adaptive execution was requested on a system with no
    /// LPSU.
    NoLpsu,
    /// The LPSU wedged: no context can issue and no pending event can
    /// unblock one (an engine invariant violation or an injected dropped
    /// publish, surfaced instead of aborting the process).
    NoForwardProgress {
        /// pc of the loop's `xloop` instruction.
        pc: u32,
        /// LPSU-phase cycle at which the wedge was detected.
        cycle: u64,
        /// Number of contexts holding a stalled, uncommitted iteration.
        stalled: u32,
    },
    /// A lane instruction faulted architecturally during a specialized
    /// phase (misaligned access).
    LpsuFault {
        /// pc of the loop's `xloop` instruction.
        pc: u32,
        /// LPSU-phase cycle of the faulting issue.
        cycle: u64,
        /// The fault itself.
        fault: ExecFault,
    },
    /// The fault injector raised a spurious engine fault during a
    /// specialized phase.
    Injected {
        /// pc of the loop's `xloop` instruction.
        pc: u32,
        /// LPSU-phase cycle at which the fault fired.
        cycle: u64,
    },
    /// A specialized phase completed but its architectural handback is
    /// unusable: the last committed iteration never published a
    /// cross-iteration register.
    CorruptHandback {
        /// pc of the loop's `xloop` instruction.
        pc: u32,
        /// The iteration whose publish is missing.
        iter: u64,
        /// The unpublished cross-iteration register.
        reg: Reg,
    },
    /// The supervisor's cycle budget was exceeded before `exit`.
    CycleBudget {
        /// The configured budget in cycles.
        budget: u64,
        /// Cycles consumed when the budget check fired.
        cycles: u64,
    },
    /// An engine violated a run-protocol invariant (a stop reason that the
    /// requested run options cannot produce).
    Protocol(&'static str),
    /// A worker process was lost while running a job: it crashed
    /// (SIGKILL, abort, OOM), went silent past the heartbeat grace, or
    /// returned garbage — and retries on fresh workers were exhausted.
    WorkerLost {
        /// What took the last worker down (`exited`, `silent`, `garbage`,
        /// `spawn failed`, ...).
        cause: String,
        /// Attempts made (first dispatch plus retries).
        attempts: u32,
        /// Total seeded-backoff delay slept between attempts, in ms.
        backoff_ms: u64,
    },
    /// A job exceeded its per-attempt wall-clock deadline
    /// (`XLOOPS_JOB_TIMEOUT`) on every attempt.
    Timeout {
        /// The configured deadline in ms.
        timeout_ms: u64,
        /// Attempts made (first dispatch plus retries).
        attempts: u32,
    },
    /// A typed simulation failure relayed from a worker process: the
    /// original diagnosis and its class exit code, carried across the
    /// wire so error documents stay identical to an in-process run.
    Remote {
        /// The original one-line diagnosis.
        message: String,
        /// The original class's [`SimError::exit_code`].
        exit_code: i32,
    },
}

impl SimError {
    /// Converts an LPSU-phase error, attaching the loop pc the LPSU error
    /// types do not all carry.
    pub(crate) fn from_lpsu(e: LpsuError, pc: u32) -> SimError {
        match e {
            LpsuError::NoForwardProgress { cycle, pc: loop_pc, stalled } => {
                SimError::NoForwardProgress { pc: loop_pc.max(pc), cycle, stalled }
            }
            LpsuError::Injected { cycle } => SimError::Injected { pc, cycle },
            LpsuError::Fault { cycle, fault } => SimError::LpsuFault { pc, cycle, fault },
            LpsuError::MissingCir { iter, reg } => SimError::CorruptHandback { pc, iter, reg },
        }
    }

    /// Whether this error was raised by (or about) a specialized phase the
    /// supervisor can recover from, by rewinding to the last checkpoint
    /// and retrying or degrading the loop to the GPP.
    pub fn is_lpsu_recoverable(&self) -> bool {
        matches!(
            self,
            SimError::NoForwardProgress { .. }
                | SimError::LpsuFault { .. }
                | SimError::Injected { .. }
                | SimError::CorruptHandback { .. }
        )
    }

    /// The loop pc of an LPSU-phase error, if this is one.
    pub fn lpsu_pc(&self) -> Option<u32> {
        match *self {
            SimError::NoForwardProgress { pc, .. }
            | SimError::LpsuFault { pc, .. }
            | SimError::Injected { pc, .. }
            | SimError::CorruptHandback { pc, .. } => Some(pc),
            _ => None,
        }
    }

    /// The process exit code for this error class: `3` for a wedge
    /// (`NoForwardProgress`), `4` for a fault (architectural, injected, or
    /// corrupt handback), `5` for an exceeded cycle budget, `6` for a lost
    /// worker process, `7` for an expired job deadline, `1` otherwise. A
    /// relayed [`SimError::Remote`] keeps the exit code of the original
    /// class it carried across the worker wire.
    pub fn exit_code(&self) -> i32 {
        match self {
            SimError::NoForwardProgress { .. } => 3,
            SimError::Exec(ExecError::Fault { .. })
            | SimError::LpsuFault { .. }
            | SimError::Injected { .. }
            | SimError::CorruptHandback { .. } => 4,
            SimError::CycleBudget { .. } => 5,
            SimError::WorkerLost { .. } => 6,
            SimError::Timeout { .. } => 7,
            SimError::Remote { exit_code, .. } => *exit_code,
            _ => 1,
        }
    }

    /// The error as the canonical [`error_doc`] document: the one-line
    /// diagnosis plus the class's exit code.
    pub fn to_json_value(&self) -> JsonValue {
        error_doc(&self.to_string(), self.exit_code())
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Exec(e) => write!(f, "execution error: {e}"),
            SimError::NoLpsu => f.write_str("this system configuration has no LPSU"),
            SimError::NoForwardProgress { pc, cycle, stalled } => {
                write!(
                    f,
                    "no forward progress: loop pc {pc:#x}, {stalled} stalled contexts, \
                     wedged at cycle {cycle}"
                )
            }
            SimError::LpsuFault { pc, cycle, fault } => {
                write!(f, "LPSU fault in loop at pc {pc:#x} (cycle {cycle}): {fault}")
            }
            SimError::Injected { pc, cycle } => {
                write!(f, "injected fault in loop at pc {pc:#x} (cycle {cycle})")
            }
            SimError::CorruptHandback { pc, iter, reg } => {
                write!(
                    f,
                    "corrupt handback from loop at pc {pc:#x}: iteration {iter} never \
                     published cross-iteration register {reg}"
                )
            }
            SimError::CycleBudget { budget, cycles } => {
                write!(f, "cycle budget exceeded: {cycles} cycles spent (budget {budget})")
            }
            SimError::Protocol(what) => write!(f, "run-protocol violation: {what}"),
            SimError::WorkerLost { cause, attempts, backoff_ms } => {
                write!(
                    f,
                    "worker lost ({cause}) after {attempts} attempt(s), \
                     {backoff_ms} ms total backoff"
                )
            }
            SimError::Timeout { timeout_ms, attempts } => {
                write!(f, "job deadline of {timeout_ms} ms exceeded on {attempts} attempt(s)")
            }
            SimError::Remote { message, .. } => f.write_str(message),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for SimError {
    fn from(e: ExecError) -> SimError {
        SimError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_classes_have_distinct_exit_codes() {
        let lost = SimError::WorkerLost { cause: "exited".into(), attempts: 3, backoff_ms: 175 };
        assert_eq!(lost.exit_code(), 6);
        assert!(lost.to_string().contains("exited"), "{lost}");
        assert!(lost.to_string().contains("3 attempt"), "{lost}");
        let timeout = SimError::Timeout { timeout_ms: 500, attempts: 2 };
        assert_eq!(timeout.exit_code(), 7);
        assert!(timeout.to_string().contains("500 ms"), "{timeout}");
        // Every class keeps its own code; none collide with the new pair.
        assert_eq!(SimError::NoForwardProgress { pc: 0, cycle: 0, stalled: 0 }.exit_code(), 3);
        assert_eq!(SimError::CycleBudget { budget: 1, cycles: 2 }.exit_code(), 5);
        assert_eq!(SimError::Protocol("x").exit_code(), 1);
    }

    #[test]
    fn remote_errors_carry_the_original_class_across_the_wire() {
        let original = SimError::CycleBudget { budget: 10, cycles: 11 };
        let relayed =
            SimError::Remote { message: original.to_string(), exit_code: original.exit_code() };
        assert_eq!(relayed.exit_code(), 5);
        assert_eq!(relayed.to_string(), original.to_string());
        // The error documents — what clients actually parse — are equal.
        assert_eq!(relayed.to_json_value().render(), original.to_json_value().render());
    }
}
