use std::collections::HashMap;

/// The final engine choice for an xloop pc.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Keep the loop on the GPP.
    Traditional,
    /// Hand dynamic instances to the LPSU.
    Specialized,
}

/// Per-xloop profiling progress.
#[derive(Clone, Copy, Debug, Default)]
pub struct AptEntry {
    /// Iterations profiled traditionally so far (may span several dynamic
    /// instances of the xloop — important for short loops).
    pub gpp_iters: u64,
    /// GPP cycles those iterations took.
    pub gpp_cycles: u64,
    /// The decision, once made. The current implementation never
    /// reconsiders it (matching the paper).
    pub decision: Option<Decision>,
}

/// The adaptive profiling table (APT): indexed by the pc of the `xloop`
/// instruction, it records profiling progress and the final
/// traditional-vs-specialized decision (Section II-E).
#[derive(Clone, Debug, Default)]
pub struct Apt {
    entries: HashMap<u32, AptEntry>,
    /// Profiling thresholds from Section IV-D.
    pub iter_threshold: u64,
    pub cycle_threshold: u64,
}

impl Apt {
    /// Creates an APT with the paper's thresholds: 256 iterations or 2000
    /// cycles.
    pub fn new() -> Apt {
        Apt { entries: HashMap::new(), iter_threshold: 256, cycle_threshold: 2000 }
    }

    /// The entry for an xloop pc, creating it on first touch.
    pub fn entry(&mut self, pc: u32) -> &mut AptEntry {
        self.entries.entry(pc).or_default()
    }

    /// The decision for an xloop pc, if one has been made.
    pub fn decision(&self, pc: u32) -> Option<Decision> {
        self.entries.get(&pc).and_then(|e| e.decision)
    }

    /// Accumulates GPP profiling results; returns `true` once a threshold
    /// is crossed and the LPSU profiling phase should run.
    pub fn record_gpp(&mut self, pc: u32, iters: u64, cycles: u64) -> bool {
        let (it, cy) = (self.iter_threshold, self.cycle_threshold);
        let e = self.entry(pc);
        e.gpp_iters += iters;
        e.gpp_cycles += cycles;
        e.gpp_iters >= it || e.gpp_cycles >= cy
    }

    /// Remaining iteration quota for the GPP profiling phase.
    pub fn gpp_quota(&mut self, pc: u32) -> u64 {
        let it = self.iter_threshold;
        let e = self.entry(pc);
        it.saturating_sub(e.gpp_iters).max(1)
    }

    /// Records the final decision by comparing per-iteration costs.
    pub fn decide(&mut self, pc: u32, lpsu_iters: u64, lpsu_cycles: u64) -> Decision {
        let e = self.entry(pc);
        let gpp_per_iter = e.gpp_cycles as f64 / e.gpp_iters.max(1) as f64;
        let lpsu_per_iter = lpsu_cycles as f64 / lpsu_iters.max(1) as f64;
        let d = if lpsu_per_iter <= gpp_per_iter {
            Decision::Specialized
        } else {
            Decision::Traditional
        };
        e.decision = Some(d);
        d
    }

    /// pcs whose decision is [`Decision::Traditional`] (the GPP run should
    /// not stop at them).
    pub fn traditional_pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.entries
            .iter()
            .filter(|(_, e)| e.decision == Some(Decision::Traditional))
            .map(|(&pc, _)| pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_accumulates_across_instances() {
        let mut apt = Apt::new();
        assert!(!apt.record_gpp(0x40, 100, 500));
        assert!(!apt.record_gpp(0x40, 100, 500));
        assert!(apt.record_gpp(0x40, 56, 300), "256 iterations reached");
        assert_eq!(apt.entry(0x40).gpp_iters, 256);
    }

    #[test]
    fn cycle_threshold_also_triggers() {
        let mut apt = Apt::new();
        assert!(apt.record_gpp(0x80, 10, 2500));
    }

    #[test]
    fn decision_compares_per_iteration_cost() {
        let mut apt = Apt::new();
        apt.record_gpp(0x40, 100, 1000); // 10 cycles/iter on the GPP
        assert_eq!(apt.decide(0x40, 100, 500), Decision::Specialized);

        apt.record_gpp(0x80, 100, 1000);
        assert_eq!(apt.decide(0x80, 100, 2000), Decision::Traditional);
        assert_eq!(apt.decision(0x80), Some(Decision::Traditional));
        assert_eq!(apt.traditional_pcs().collect::<Vec<_>>(), vec![0x80]);
    }

    #[test]
    fn quota_shrinks_as_profiling_progresses() {
        let mut apt = Apt::new();
        assert_eq!(apt.gpp_quota(0x40), 256);
        apt.record_gpp(0x40, 200, 100);
        assert_eq!(apt.gpp_quota(0x40), 56);
        apt.record_gpp(0x40, 56, 100);
        assert_eq!(apt.gpp_quota(0x40), 1, "quota never reaches zero");
    }

    #[test]
    fn quota_saturates_at_one_past_the_threshold() {
        // A dynamic instance can overshoot the iteration threshold (the
        // loop body runs to completion); the next quota must not
        // underflow, and stays pinned at the 1-iteration minimum however
        // far past the threshold profiling went.
        let mut apt = Apt::new();
        apt.record_gpp(0x40, 10_000, 50);
        assert_eq!(apt.gpp_quota(0x40), 1);
        apt.record_gpp(0x40, u64::MAX - 20_000, 50);
        assert_eq!(apt.gpp_quota(0x40), 1);
    }

    #[test]
    fn cycle_threshold_crossing_spans_dynamic_instances() {
        // Seven short instances, each far below both thresholds on its
        // own; the accumulated cycle count crosses 2000 on the seventh.
        let mut apt = Apt::new();
        for i in 0..6 {
            assert!(!apt.record_gpp(0x40, 8, 300), "instance {i} must not trigger");
        }
        assert!(apt.record_gpp(0x40, 8, 300), "1800 + 300 cycles crosses 2000");
        assert_eq!(apt.entry(0x40).gpp_iters, 56, "iteration threshold not the trigger");
        // A different pc profiles independently.
        assert!(!apt.record_gpp(0x80, 8, 300));
    }

    #[test]
    fn decide_ties_in_favor_of_the_lpsu() {
        // Equal per-iteration cost: the LPSU wins the tie (it frees the
        // GPP and fetches from cheap instruction buffers at equal speed).
        let mut apt = Apt::new();
        apt.record_gpp(0x40, 128, 1024); // 8 cycles/iter
        assert_eq!(apt.decide(0x40, 64, 512), Decision::Specialized);
        // One cycle over 64 iterations past the tie flips it.
        let mut apt = Apt::new();
        apt.record_gpp(0x40, 128, 1024);
        assert_eq!(apt.decide(0x40, 64, 513), Decision::Traditional);
    }

    #[test]
    fn decide_survives_zero_iteration_counts() {
        // Degenerate profiles (0 iterations recorded on either side) fall
        // back to `max(1)` divisors instead of dividing by zero; with both
        // at zero cost the tie rule picks the LPSU.
        let mut apt = Apt::new();
        assert_eq!(apt.decide(0x40, 0, 0), Decision::Specialized);
        let mut apt = Apt::new();
        apt.record_gpp(0x80, 0, 0);
        assert_eq!(apt.decide(0x80, 0, 100), Decision::Traditional);
    }
}
