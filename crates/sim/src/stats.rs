use xloops_energy::{EnergyTable, EventCounts};
use xloops_gpp::GppStats;
use xloops_lpsu::LpsuStats;
use xloops_stats::{ratio, StatSet};

use crate::sampling::SamplingStats;
use crate::supervisor::SupervisorStats;

/// Statistics of one system-level run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SystemStats {
    /// End-to-end cycles (GPP clock; the GPP stalls while the LPSU runs,
    /// so this covers both).
    pub cycles: u64,
    /// GPP-side statistics.
    pub gpp: GppStats,
    /// LPSU-side statistics, merged over all specialized phases.
    pub lpsu: LpsuStats,
    /// Cycles spent inside specialized-execution phases (including scans).
    pub lpsu_cycles: u64,
    /// Scan phases performed.
    pub scans: u64,
    /// Instructions streamed into instruction buffers by scans.
    pub scan_instrs: u64,
    /// xloop instances executed on the LPSU.
    pub xloops_specialized: u64,
    /// xloop pcs that fell back to traditional execution (scan rejected).
    pub xloops_fallback: u64,
    /// Adaptive decisions that chose the GPP.
    pub adaptive_to_gpp: u64,
    /// Adaptive decisions that chose the LPSU.
    pub adaptive_to_lpsu: u64,
    /// Total dynamic instructions (GPP + LPSU, squashed work excluded).
    pub instret: u64,
    /// Dynamic energy in nanojoules under the system's energy table.
    pub energy_nj: f64,
    /// Supervisor activity (checkpoints, rewinds, degradations); all zero
    /// for unsupervised runs.
    pub supervisor: SupervisorStats,
    /// Interval-sampling measurements and the extrapolation error bar;
    /// `None` for full (unsampled) runs.
    pub sampling: Option<SamplingStats>,
    /// Host wall-time breakdown per simulation phase; `None` unless
    /// profiling is on ([`crate::System::set_profiling`] /
    /// `XLOOPS_BENCH_PROFILE`).
    pub profile: Option<ProfileStats>,
}

/// Host wall-clock nanoseconds spent in each phase of a run — where the
/// *simulator* spends its time, as opposed to where the simulated machine
/// spends its cycles. The one stat family that is not deterministic, which
/// is why it only appears when explicitly requested and is kept out of
/// every golden artifact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Wall time inside cycle-accurate GPP phases.
    pub gpp_ns: u64,
    /// Wall time inside LPSU scan phases.
    pub scan_ns: u64,
    /// Wall time inside LPSU engine (specialized-execution) phases.
    pub engine_ns: u64,
    /// GPP→LPSU handoffs (scan attempts, accepted or rejected).
    pub handoffs: u64,
}

impl ProfileStats {
    /// The breakdown as a `profile` node of the unified stats schema.
    pub fn stat_set(&self) -> StatSet {
        let mut s = StatSet::new("profile");
        s.set("gpp_ns", self.gpp_ns)
            .set("scan_ns", self.scan_ns)
            .set("engine_ns", self.engine_ns)
            .set("handoffs", self.handoffs);
        s
    }
}

impl SystemStats {
    /// Builds the energy event set and totals from the raw component stats.
    pub(crate) fn finalize(&mut self, table: &EnergyTable, is_ooo: bool) {
        self.instret = self.gpp.instret + self.lpsu.instret;
        self.energy_nj = self.events(is_ooo).energy_nj(table);
    }

    /// The energy event counts of this run.
    pub fn events(&self, is_ooo: bool) -> EventCounts {
        let gpp_events = EventCounts::from_gpp_mix(&self.gpp.mix, self.gpp.mispredicts, is_ooo);
        let l = &self.lpsu;
        let fetched = l.instret + l.squashed_instrs;
        let lpsu_events = EventCounts {
            ibuf_fetches: fetched,
            alu_ops: fetched.saturating_sub(l.llfu_ops + l.mem_accesses + l.xi_ops),
            llfu_ops: l.llfu_ops,
            dcache_accesses: l.mem_accesses,
            rf_reads: 2 * fetched,
            rf_writes: fetched,
            lsq_events: l.lsq_events,
            xi_muls: l.xi_ops,
            cir_transfers: l.cir_transfers,
            scan_instrs: self.scan_instrs,
            ..EventCounts::default()
        };
        gpp_events.add(&lpsu_events)
    }

    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        ratio(self.instret, self.cycles)
    }

    /// The whole run as one tree of the unified schema.
    ///
    /// Root node `system` carries the end-to-end counters (`cycles`,
    /// `instret`, `lpsu_cycles`, scan and xloop-dispatch counts) and the
    /// derived `ipc` / `energy_nj` metrics; children are the component
    /// trees [`GppStats::stat_set`] (`gpp`), [`LpsuStats::stat_set`]
    /// (`lpsu`), and [`EventCounts::stat_set`] (`energy`). `is_ooo` selects
    /// the energy-event accounting, exactly as in [`SystemStats::events`].
    pub fn stat_set(&self, is_ooo: bool) -> StatSet {
        let mut s = StatSet::new("system");
        s.set("cycles", self.cycles)
            .set("instret", self.instret)
            .set("lpsu_cycles", self.lpsu_cycles)
            .set("scans", self.scans)
            .set("scan_instrs", self.scan_instrs)
            .set("xloops_specialized", self.xloops_specialized)
            .set("xloops_fallback", self.xloops_fallback)
            .set("adaptive_to_gpp", self.adaptive_to_gpp)
            .set("adaptive_to_lpsu", self.adaptive_to_lpsu)
            .set_metric("ipc", self.ipc())
            .set_metric("energy_nj", self.energy_nj);
        s.push_child(self.gpp.stat_set());
        s.push_child(self.lpsu.stat_set());
        s.push_child(self.events(is_ooo).stat_set());
        // Only supervised runs carry a supervisor child, so unsupervised
        // stat trees (and their JSON renderings) are byte-identical to
        // pre-supervisor output.
        if self.supervisor != SupervisorStats::default() {
            s.push_child(self.supervisor.stat_set());
        }
        // Likewise, only sampled runs carry a sampling child.
        if let Some(sampling) = &self.sampling {
            s.push_child(sampling.stat_set());
        }
        // And only profiled runs a (non-deterministic) profile child.
        if let Some(profile) = &self.profile {
            s.push_child(profile.stat_set());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_is_zero_for_zero_cycle_runs() {
        let s = SystemStats::default();
        assert_eq!(s.ipc(), 0.0);
        let s = SystemStats { instret: 7, ..SystemStats::default() };
        assert_eq!(s.ipc(), 0.0, "no NaN from a zero-cycle run");
        let s = SystemStats { instret: 30, cycles: 10, ..SystemStats::default() };
        assert_eq!(s.ipc(), 3.0);
    }

    #[test]
    fn stat_set_mirrors_components_and_energy_events() {
        let mut s = SystemStats { cycles: 100, xloops_specialized: 2, ..SystemStats::default() };
        s.gpp.cycles = 60;
        s.gpp.instret = 50;
        s.gpp.mix.alu = 50;
        s.lpsu.exec = 40;
        s.lpsu.stall_lsq = 4;
        s.lpsu.instret = 40;
        s.instret = 90;
        let set = s.stat_set(false);
        assert_eq!(set.name(), "system");
        assert_eq!(set.lookup("cycles").unwrap().as_counter(), Some(100));
        assert_eq!(set.lookup("ipc").unwrap().as_f64(), 0.9);
        assert_eq!(set.lookup("gpp.instret").unwrap().as_counter(), Some(50));
        assert_eq!(set.lookup("lpsu.stalls.lsq").unwrap().as_counter(), Some(4));
        // The energy child agrees with `events`: same accounting, one schema.
        let ev = s.events(false);
        assert_eq!(set.lookup("energy.ibuf_fetches").unwrap().as_counter(), Some(ev.ibuf_fetches));
        assert_eq!(
            set.lookup("energy.icache_fetches").unwrap().as_counter(),
            Some(ev.icache_fetches)
        );
        // OoO accounting only differs in the ooo_instrs event.
        let ooo = s.stat_set(true);
        assert_eq!(set.lookup("energy.ooo_instrs").unwrap().as_counter(), Some(0));
        assert_eq!(ooo.lookup("energy.ooo_instrs").unwrap().as_counter(), Some(50));
    }
}
