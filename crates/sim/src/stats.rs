use xloops_energy::{EnergyTable, EventCounts};
use xloops_gpp::GppStats;
use xloops_lpsu::LpsuStats;

/// Statistics of one system-level run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SystemStats {
    /// End-to-end cycles (GPP clock; the GPP stalls while the LPSU runs,
    /// so this covers both).
    pub cycles: u64,
    /// GPP-side statistics.
    pub gpp: GppStats,
    /// LPSU-side statistics, merged over all specialized phases.
    pub lpsu: LpsuStats,
    /// Cycles spent inside specialized-execution phases (including scans).
    pub lpsu_cycles: u64,
    /// Scan phases performed.
    pub scans: u64,
    /// Instructions streamed into instruction buffers by scans.
    pub scan_instrs: u64,
    /// xloop instances executed on the LPSU.
    pub xloops_specialized: u64,
    /// xloop pcs that fell back to traditional execution (scan rejected).
    pub xloops_fallback: u64,
    /// Adaptive decisions that chose the GPP.
    pub adaptive_to_gpp: u64,
    /// Adaptive decisions that chose the LPSU.
    pub adaptive_to_lpsu: u64,
    /// Total dynamic instructions (GPP + LPSU, squashed work excluded).
    pub instret: u64,
    /// Dynamic energy in nanojoules under the system's energy table.
    pub energy_nj: f64,
}

impl SystemStats {
    /// Builds the energy event set and totals from the raw component stats.
    pub(crate) fn finalize(&mut self, table: &EnergyTable, is_ooo: bool) {
        self.instret = self.gpp.instret + self.lpsu.instret;
        self.energy_nj = self.events(is_ooo).energy_nj(table);
    }

    /// The energy event counts of this run.
    pub fn events(&self, is_ooo: bool) -> EventCounts {
        let gpp_events = EventCounts::from_gpp_mix(&self.gpp.mix, self.gpp.mispredicts, is_ooo);
        let l = &self.lpsu;
        let fetched = l.instret + l.squashed_instrs;
        let lpsu_events = EventCounts {
            ibuf_fetches: fetched,
            alu_ops: fetched.saturating_sub(l.llfu_ops + l.mem_accesses + l.xi_ops),
            llfu_ops: l.llfu_ops,
            dcache_accesses: l.mem_accesses,
            rf_reads: 2 * fetched,
            rf_writes: fetched,
            lsq_events: l.lsq_events,
            xi_muls: l.xi_ops,
            cir_transfers: l.cir_transfers,
            scan_instrs: self.scan_instrs,
            ..EventCounts::default()
        };
        gpp_events.add(&lpsu_events)
    }

    /// Instructions per cycle over the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instret as f64 / self.cycles as f64
        }
    }
}
