//! Run-wide options and the single, documented home of every `XLOOPS_*`
//! environment knob.
//!
//! Before this module, the environment was parsed ad hoc in three places
//! (the supervisor's config, the bench harness entry points, and the
//! bench runner's thread-pool setup), so a run's behavior was a function
//! of scattered `std::env::var` calls. [`RunOptions::from_env`] folds all
//! of them into one value that is threaded *explicitly* through the
//! benchmark `Runner` and the CLI — a manifest plus a [`RunOptions`] pair
//! fully determines a run, and [`RunOptions::to_json_value`] records the
//! pair alongside results for reproducibility.
//!
//! | variable | effect |
//! |----------|--------|
//! | `XLOOPS_SUPERVISE=1` | route simulations through a [`Supervisor`](crate::Supervisor) |
//! | `XLOOPS_CHECKPOINT_INTERVAL=N` | supervise with N cycles between checkpoints |
//! | `XLOOPS_CYCLE_BUDGET=N` | supervise with an end-to-end cycle budget |
//! | `XLOOPS_BENCH_SERIAL=1` | execute benchmark job lists serially |
//! | `XLOOPS_BENCH_THREADS=N` | pin the benchmark worker-thread count |
//! | `XLOOPS_BENCH_PROFILE=1` | report the slowest simulation points after a serial fill |
//! | `XLOOPS_BENCH_DATE=YYYY-MM-DD` | override the date in `BENCH_<date>.json` |
//! | `XLOOPS_SAMPLE=N:W:M` | interval-sampled simulation: fast-forward N instructions, warm W cycles, measure M cycles |
//!
//! (`XLOOPS_PROFILE_KERNELS` / `XLOOPS_PROFILE_REPS` belong to the
//! `profile_lpsu` example only and stay local to it. A second family of
//! knobs is *deliberately* outside [`RunOptions`] because it names
//! infrastructure rather than run semantics and must never change
//! results or store keys: `XLOOPS_STORE` / `XLOOPS_STORE_QUIET` are
//! read by the bench crate's `ResultStore`, `XLOOPS_SOCK` and
//! `XLOOPS_CLIENT_TIMEOUT` by the sweep-daemon clients, the networking
//! knobs — `XLOOPS_LISTEN` (daemon TCP listener), `XLOOPS_CONNECT`
//! (remote-worker dial address), `XLOOPS_TOKEN` (shared secret) — by the
//! bench crate's transport layer, and the worker-pool supervision knobs
//! — `XLOOPS_WORKERS`, `XLOOPS_JOB_TIMEOUT`, `XLOOPS_MAX_RETRIES`,
//! `XLOOPS_HEARTBEAT_GRACE`, `XLOOPS_WORKER_EXE` — by the bench crate's
//! `PoolConfig`. Crash isolation, retries, deadlines, and transports
//! decide *where* and *how patiently* a point simulates, never *what* it
//! computes, so keying results on them would only fragment the store.)

use xloops_stats::JsonValue;

use crate::sampling::SampleSpec;
use crate::supervisor::SupervisorConfig;

/// Everything about a run that comes from the environment rather than a
/// manifest: supervision policy and benchmark-executor knobs.
///
/// [`RunOptions::default`] is the hermetic configuration (no supervision,
/// parallel execution, no profiling) regardless of the environment;
/// [`RunOptions::from_env`] is the one place the `XLOOPS_*` variables are
/// read.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// `Some` routes every simulation through a
    /// [`Supervisor`](crate::Supervisor) with this policy; `None` runs
    /// plain (bit-for-bit unaffected by supervisor counters).
    pub supervisor: Option<SupervisorConfig>,
    /// Execute benchmark job lists serially (`XLOOPS_BENCH_SERIAL=1`).
    pub serial: bool,
    /// Pin the benchmark worker-thread count (`XLOOPS_BENCH_THREADS`);
    /// `None` uses the available hardware parallelism.
    pub threads: Option<usize>,
    /// Report the slowest simulation points after a serial fill
    /// (`XLOOPS_BENCH_PROFILE=1`).
    pub profile: bool,
    /// Date stamp override for `BENCH_<date>.json` (`XLOOPS_BENCH_DATE`).
    pub bench_date: Option<String>,
    /// Interval-sampled simulation (`XLOOPS_SAMPLE=N:W:M`); `None` runs
    /// every cycle in detail (bit-for-bit identical to pre-sampling output).
    pub sample: Option<SampleSpec>,
}

impl RunOptions {
    /// Reads every `XLOOPS_*` knob (see the module table). Supervision is
    /// enabled when `XLOOPS_SUPERVISE=1` or when either supervisor
    /// parameter (`XLOOPS_CHECKPOINT_INTERVAL`, `XLOOPS_CYCLE_BUDGET`) is
    /// set; unparsable values are ignored.
    pub fn from_env() -> RunOptions {
        let supervise = env_flag("XLOOPS_SUPERVISE")
            || std::env::var_os("XLOOPS_CHECKPOINT_INTERVAL").is_some()
            || std::env::var_os("XLOOPS_CYCLE_BUDGET").is_some();
        RunOptions {
            supervisor: supervise.then(SupervisorConfig::from_env),
            serial: env_flag("XLOOPS_BENCH_SERIAL"),
            threads: env_u64("XLOOPS_BENCH_THREADS").map(|n| (n as usize).max(1)),
            profile: env_flag("XLOOPS_BENCH_PROFILE"),
            bench_date: std::env::var("XLOOPS_BENCH_DATE").ok(),
            sample: std::env::var("XLOOPS_SAMPLE").ok().and_then(|v| v.trim().parse().ok()),
        }
    }

    /// The options as a deterministic JSON document, recorded inside
    /// shard result files so a result can be traced back to the exact
    /// (manifest, options) pair that produced it.
    pub fn to_json_value(&self) -> JsonValue {
        let supervisor = match &self.supervisor {
            None => JsonValue::Null,
            Some(cfg) => JsonValue::object(vec![
                ("enabled", JsonValue::Bool(cfg.enabled)),
                ("checkpoint_interval", JsonValue::UInt(cfg.checkpoint_interval)),
                ("max_retries", JsonValue::UInt(cfg.max_retries as u64)),
                ("cycle_budget", cfg.cycle_budget.map_or(JsonValue::Null, JsonValue::UInt)),
            ]),
        };
        JsonValue::object(vec![
            ("supervisor", supervisor),
            ("serial", JsonValue::Bool(self.serial)),
            ("threads", self.threads.map_or(JsonValue::Null, |n| JsonValue::UInt(n as u64))),
            ("profile", JsonValue::Bool(self.profile)),
            (
                "bench_date",
                self.bench_date.as_ref().map_or(JsonValue::Null, |d| JsonValue::Str(d.clone())),
            ),
            ("sample", self.sample.map_or(JsonValue::Null, |s| JsonValue::Str(s.to_string()))),
        ])
    }

    /// Parses a [`RunOptions::to_json_value`] document (shard files record
    /// their options; merge surfaces them back).
    pub fn from_json_value(v: &JsonValue) -> Option<RunOptions> {
        let supervisor = match v.get("supervisor")? {
            JsonValue::Null => None,
            sup => Some(SupervisorConfig {
                enabled: sup.get("enabled")?.as_bool()?,
                checkpoint_interval: sup.get("checkpoint_interval")?.as_u64()?,
                max_retries: sup.get("max_retries")?.as_u64()? as u32,
                cycle_budget: match sup.get("cycle_budget")? {
                    JsonValue::Null => None,
                    b => Some(b.as_u64()?),
                },
            }),
        };
        Some(RunOptions {
            supervisor,
            serial: v.get("serial")?.as_bool()?,
            threads: match v.get("threads")? {
                JsonValue::Null => None,
                n => Some(n.as_u64()? as usize),
            },
            profile: v.get("profile")?.as_bool()?,
            bench_date: match v.get("bench_date")? {
                JsonValue::Null => None,
                d => Some(d.as_str()?.to_string()),
            },
            // Absent in documents written before sampling existed: those
            // runs were unsampled, so a missing key reads as `None`.
            sample: match v.get("sample") {
                None | Some(JsonValue::Null) => None,
                Some(s) => Some(s.as_str()?.parse().ok()?),
            },
        })
    }
}

/// `1` (exactly) enables a boolean knob.
pub(crate) fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v == "1")
}

/// A `u64` knob; unparsable values read as unset.
pub(crate) fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_hermetic() {
        let o = RunOptions::default();
        assert!(o.supervisor.is_none());
        assert!(!o.serial && !o.profile);
        assert!(o.threads.is_none() && o.bench_date.is_none());
    }

    #[test]
    fn from_env_without_knobs_is_default() {
        // The test environment leaves every XLOOPS_* variable unset.
        assert_eq!(RunOptions::from_env(), RunOptions::default());
    }

    #[test]
    fn pre_sampling_documents_still_parse() {
        // A document written before the `sample` key existed.
        let old = r#"{"supervisor": null, "serial": false, "threads": null,
                      "profile": false, "bench_date": null}"#;
        let v = xloops_stats::JsonValue::parse(old).unwrap();
        let o = RunOptions::from_json_value(&v).expect("old documents parse");
        assert_eq!(o, RunOptions::default());
    }

    #[test]
    fn json_round_trips_all_field_shapes() {
        for o in [
            RunOptions::default(),
            RunOptions {
                supervisor: Some(SupervisorConfig::protected()),
                serial: true,
                threads: Some(4),
                profile: true,
                bench_date: Some("2026-08-06".into()),
                sample: Some(SampleSpec::new(10_000, 2_000, 50_000).unwrap()),
            },
            RunOptions {
                supervisor: Some(SupervisorConfig {
                    cycle_budget: Some(1_000_000),
                    ..SupervisorConfig::protected()
                }),
                ..RunOptions::default()
            },
        ] {
            let v = o.to_json_value();
            assert_eq!(RunOptions::from_json_value(&v), Some(o.clone()), "{}", v.render());
            // And through the text encoding.
            let reparsed = xloops_stats::JsonValue::parse(&v.render()).unwrap();
            assert_eq!(RunOptions::from_json_value(&reparsed), Some(o));
        }
    }
}
