use xloops_mem::FxHashSet;

use xloops_asm::Program;
use xloops_func::ArchState;
use xloops_gpp::{GppCore, GppKind, RunOpts, StopReason, Watch};
use xloops_lpsu::{scan, FaultInjector, FaultPlan, Lpsu, ScanResult, Stepper};
use xloops_mem::Memory;

use crate::adaptive::{Apt, Decision};
use crate::config::{ExecMode, SystemConfig};
use crate::error::SimError;
use crate::stats::SystemStats;
use crate::supervisor::{run_supervised, SupervisorConfig};

/// A complete simulated system: GPP, optional LPSU, and memory.
///
/// Create one system per run; state (caches, predictors, the APT, memory)
/// persists across [`System::run`] calls, which models repeated kernel
/// invocations on warm hardware.
///
/// ```
/// use xloops_asm::assemble;
/// use xloops_sim::{ExecMode, System, SystemConfig};
///
/// let p = assemble("
///     li r2, 0
///     li r3, 32
/// body:
///     sll r5, r2, 2
///     sw r2, 0x1000(r5)
///     addiu r2, r2, 1
///     xloop.uc body, r2, r3
///     exit")?;
/// let mut sys = System::new(SystemConfig::io_x());
/// let stats = sys.run(&p, ExecMode::Specialized)?;
/// assert_eq!(sys.load_word(0x1000 + 4 * 7), 7);
/// assert_eq!(stats.xloops_specialized, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
/// Architectural state captured by [`System::snapshot`]: the shared
/// [`ArchState`] (register file + pc) plus memory.
#[derive(Clone, Debug)]
pub struct SystemSnapshot {
    arch: ArchState,
    mem: Memory,
}

#[derive(Clone, Debug)]
pub struct System {
    pub(crate) config: SystemConfig,
    pub(crate) gpp: GppCore,
    pub(crate) lpsu: Option<Lpsu>,
    pub(crate) mem: Memory,
    pub(crate) apt: Apt,
    pub(crate) fallback_pcs: FxHashSet<u32>,
    pub(crate) profiling: bool,
}

impl System {
    /// Builds a system in the reset state.
    pub fn new(config: SystemConfig) -> System {
        System {
            config,
            gpp: GppCore::new(config.gpp),
            lpsu: config.lpsu.map(Lpsu::new),
            mem: Memory::new(),
            apt: Apt::new(),
            fallback_pcs: FxHashSet::default(),
            profiling: false,
        }
    }

    /// Enables host wall-time profiling: subsequent runs attach a
    /// [`crate::ProfileStats`] breakdown (`profile.*`) to their stats.
    /// Simulated timing is unaffected; only the stat tree grows a
    /// (non-deterministic) child, so this stays off for golden artifacts.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Architectural memory (for dataset initialization).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Architectural memory (for result verification).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Writes one word of architectural memory.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn store_word(&mut self, addr: u32, value: u32) {
        self.mem.write_u32(addr, value);
    }

    /// Reads one word of architectural memory.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn load_word(&self, addr: u32) -> u32 {
        self.mem.read_u32(addr)
    }

    /// The architectural register file (for differential testing).
    pub fn reg_file(&self) -> [u32; 32] {
        self.gpp.reg_file()
    }

    /// Captures the architectural state of the system: register file, pc,
    /// and memory. Microarchitectural state (caches, predictors, the APT)
    /// is deliberately excluded — restoring rewinds *what* the machine
    /// computed, not what the hardware has learned, so a restored run
    /// models re-execution on warm hardware.
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot { arch: self.gpp.arch_state().clone(), mem: self.mem.clone() }
    }

    /// Restores architectural state captured by [`System::snapshot`].
    pub fn restore(&mut self, snapshot: &SystemSnapshot) {
        self.gpp.set_arch_state(snapshot.arch.clone());
        self.mem = snapshot.mem.clone();
    }

    /// Executes `program` from pc 0 to `exit` in the given mode.
    ///
    /// Equivalent to a [`crate::Supervisor`] run with supervision disabled
    /// and no fault plan — there is exactly one run loop in the crate, so
    /// supervised and unsupervised runs cannot drift apart.
    ///
    /// # Errors
    ///
    /// [`SimError::NoLpsu`] if specialized/adaptive execution is requested
    /// without an LPSU; [`SimError::Exec`] on functional faults; the
    /// LPSU-phase [`SimError`] variants if a specialized phase fails.
    pub fn run(&mut self, program: &Program, mode: ExecMode) -> Result<SystemStats, SimError> {
        run_supervised(self, program, mode, &SupervisorConfig::off(), None)
    }

    /// Timing of the scan phase: in-order GPPs scan after draining; the
    /// out-of-order GPPs overlap the scan with retiring older work
    /// (Section II-D).
    fn scan_timing(&mut self, s: &ScanResult) -> u64 {
        let overlap = matches!(self.config.gpp.kind, GppKind::OutOfOrder { .. });
        let dispatch = self.gpp.last_dispatch_cycle();
        let drained = self.gpp.drain();
        if overlap {
            drained.max(dispatch + s.scan_cycles)
        } else {
            drained + s.scan_cycles
        }
    }

    /// Scans and runs the xloop at `pc` on the LPSU. Returns the
    /// (iterations, cycles) of the specialized phase, or `None` if the
    /// scan rejected the loop (traditional fallback). `inj` threads an
    /// optional fault injector into the engine (supervised runs only).
    pub(crate) fn specialize(
        &mut self,
        program: &Program,
        pc: u32,
        max_iters: Option<u64>,
        stats: &mut SystemStats,
        inj: Option<&mut FaultInjector>,
    ) -> Result<Option<(u64, u64)>, SimError> {
        let Some(lpsu) = self.lpsu.clone() else {
            return Err(SimError::NoLpsu);
        };
        let t0 = self.profiling.then(std::time::Instant::now);
        if let Some(p) = t0.map(|_| stats.profile.get_or_insert_with(Default::default)) {
            p.handoffs += 1;
        }
        let s = match scan(program, pc, self.gpp.reg_file(), lpsu.config()) {
            Ok(s) => s,
            Err(_) => {
                self.fallback_pcs.insert(pc);
                stats.xloops_fallback += 1;
                return Ok(None);
            }
        };
        if let Some(t) = t0 {
            let p = stats.profile.get_or_insert_with(Default::default);
            p.scan_ns += t.elapsed().as_nanos() as u64;
        }
        let scan_end = self.scan_timing(&s);
        let t0 = self.profiling.then(std::time::Instant::now);
        let res = lpsu
            .execute_with(
                Stepper::default_for_build(),
                &s,
                &mut self.mem,
                self.gpp.dcache_mut(),
                max_iters,
                inj,
            )
            .map_err(|e| SimError::from_lpsu(e, pc))?;
        if let Some(t) = t0 {
            let p = stats.profile.get_or_insert_with(Default::default);
            p.engine_ns += t.elapsed().as_nanos() as u64;
        }
        self.gpp.stall_until(scan_end + res.cycles);

        // Architectural handback: induction and bound registers take their
        // serial-equivalent values; CIRs are the defined live-outs; all
        // other loop-written registers are undefined by the ISA (we leave
        // the live-in values in place, a valid choice).
        self.gpp.set_reg(s.idx_reg, res.final_idx);
        self.gpp.set_reg(s.bound_reg, res.final_bound);
        for &(r, v) in &res.cir_finals {
            self.gpp.set_reg(r, v);
        }
        if (res.final_idx as i32) < (res.final_bound as i32) {
            // Profiling cap left iterations: resume at the body start.
            self.gpp.set_pc(s.body_pc);
        } else {
            self.gpp.set_pc(s.xloop_pc + 4);
        }

        stats.lpsu.merge(&res.stats);
        stats.lpsu_cycles += (scan_end + res.cycles) - self.gpp_cycles_before(scan_end, &s);
        stats.scans += 1;
        stats.scan_instrs += s.body.len() as u64;
        stats.xloops_specialized += 1;
        Ok(Some((res.iterations, res.cycles)))
    }

    fn gpp_cycles_before(&self, scan_end: u64, s: &ScanResult) -> u64 {
        // The specialized phase spans [scan_end - scan_cycles, scan_end +
        // lpsu cycles]; report scan + execute as LPSU time.
        scan_end - s.scan_cycles
    }

    /// The two profiling phases of adaptive execution. Returns `true` if
    /// the program exited while profiling. `plan`/`handoff` thread the
    /// supervisor's fault plan into the profiling LPSU phase (it is a
    /// handoff like any other).
    pub(crate) fn adaptive_profile(
        &mut self,
        program: &Program,
        pc: u32,
        stats: &mut SystemStats,
        plan: Option<&FaultPlan>,
        handoff: &mut u64,
    ) -> Result<bool, SimError> {
        loop {
            // GPP profiling phase: run until either remaining budget
            // (iterations or cycles) is spent, at iteration granularity.
            let cycles_left =
                self.apt.cycle_threshold.saturating_sub(self.apt.entry(pc).gpp_cycles).max(1);
            let start = self.gpp.drain();
            let mut opts = RunOpts::traditional();
            opts.watch =
                Some(Watch { pc, max_iters: self.apt.gpp_quota(pc), max_cycles: cycles_left });
            let stop = self.gpp.run(program, &mut self.mem, &opts)?;
            let cycles = self.gpp.drain() - start;
            match stop {
                StopReason::Exited => return Ok(true),
                StopReason::XloopTaken { .. } => {
                    return Err(SimError::Protocol("watch run stopped at an xloop"))
                }
                StopReason::WatchDone { iters, loop_exited } => {
                    let crossed = self.apt.record_gpp(pc, iters, cycles);
                    if loop_exited {
                        // Decision deferred to the next dynamic instance
                        // (the APT stretches profiling across instances).
                        return Ok(false);
                    }
                    if !crossed {
                        continue;
                    }
                    // LPSU profiling phase: at least as many iterations as
                    // the GPP profile, and enough waves to amortize the
                    // lane ramp-up so per-iteration costs compare fairly.
                    let lanes = self.config.lpsu.map(|l| l.lanes as u64).unwrap_or(4);
                    let quota = self.apt.entry(pc).gpp_iters.max(4 * lanes);
                    let mut inj = plan.and_then(|p| p.injector_for(*handoff));
                    *handoff += 1;
                    match self.specialize(program, pc, Some(quota), stats, inj.as_mut())? {
                        None => {
                            // Scan rejected the loop: it stays traditional.
                            self.apt.entry(pc).decision = Some(Decision::Traditional);
                            return Ok(false);
                        }
                        Some((li, lc)) => {
                            match self.apt.decide(pc, li, lc) {
                                Decision::Specialized => stats.adaptive_to_lpsu += 1,
                                Decision::Traditional => stats.adaptive_to_gpp += 1,
                            }
                            return Ok(false);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_asm::assemble;
    use xloops_isa::Reg;

    fn saxpy_src(n: u32) -> String {
        format!(
            "
            li r4, 0x10000      # x
            li r5, 0x20000      # y
            li r10, 3           # a
            li r2, 0
            li r3, {n}
        body:
            sll r6, r2, 2
            addu r7, r4, r6
            lw r8, 0(r7)
            mul r8, r8, r10
            addu r7, r5, r6
            lw r9, 0(r7)
            addu r8, r8, r9
            sw r8, 0(r7)
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit"
        )
    }

    fn init_saxpy(sys: &mut System, n: u32) {
        for i in 0..n {
            sys.store_word(0x10000 + 4 * i, i);
            sys.store_word(0x20000 + 4 * i, 1000 + i);
        }
    }

    fn check_saxpy(sys: &System, n: u32) {
        for i in 0..n {
            assert_eq!(sys.load_word(0x20000 + 4 * i), 3 * i + 1000 + i, "y[{i}]");
        }
    }

    #[test]
    fn traditional_and_specialized_agree_and_specialized_wins_on_io() {
        let p = assemble(&saxpy_src(128)).unwrap();

        let mut trad = System::new(SystemConfig::io());
        init_saxpy(&mut trad, 128);
        let t = trad.run(&p, ExecMode::Traditional).unwrap();
        check_saxpy(&trad, 128);

        let mut spec = System::new(SystemConfig::io_x());
        init_saxpy(&mut spec, 128);
        let s = spec.run(&p, ExecMode::Specialized).unwrap();
        check_saxpy(&spec, 128);

        assert_eq!(s.xloops_specialized, 1);
        assert!(
            (s.cycles as f64) < 0.6 * t.cycles as f64,
            "specialized {} should clearly beat traditional {}",
            s.cycles,
            t.cycles
        );
    }

    #[test]
    fn specialized_without_lpsu_is_an_error() {
        let p = assemble(&saxpy_src(8)).unwrap();
        let mut sys = System::new(SystemConfig::io());
        assert_eq!(sys.run(&p, ExecMode::Specialized), Err(SimError::NoLpsu));
    }

    #[test]
    fn oversized_body_falls_back_to_traditional() {
        let mut src = String::from("li r2, 0\nli r3, 4\nbody:\n");
        for _ in 0..150 {
            src.push_str("nop\n");
        }
        src.push_str("addiu r2, r2, 1\nxloop.uc body, r2, r3\nsw r2, 0x100(r0)\nexit");
        let p = assemble(&src).unwrap();
        let mut sys = System::new(SystemConfig::io_x());
        let stats = sys.run(&p, ExecMode::Specialized).unwrap();
        assert_eq!(stats.xloops_fallback, 1);
        assert_eq!(stats.xloops_specialized, 0);
        assert_eq!(sys.load_word(0x100), 4, "loop still ran (traditionally)");
    }

    #[test]
    fn adaptive_prefers_lpsu_for_parallel_loops() {
        let p = assemble(&saxpy_src(2048)).unwrap();
        let mut sys = System::new(SystemConfig::io_x());
        init_saxpy(&mut sys, 2048);
        let stats = sys.run(&p, ExecMode::Adaptive).unwrap();
        check_saxpy(&sys, 2048);
        assert_eq!(stats.adaptive_to_lpsu, 1);
        assert_eq!(stats.adaptive_to_gpp, 0);
    }

    #[test]
    fn adaptive_prefers_gpp_for_serial_loops_on_ooo4() {
        // A long CIR critical path with ILP inside the iteration: the
        // four-way out-of-order core beats four in-order lanes.
        let src = "
            li r4, 0x10000
            li r2, 0
            li r3, 4096
            li r9, 1
        body:
            sll r6, r2, 2
            addu r7, r4, r6
            lw r8, 0(r7)
            addu r9, r9, r8
            xor r9, r9, r8
            sll r11, r9, 3
            srl r12, r9, 5
            addu r9, r9, r11
            xor r9, r9, r12
            addiu r2, r2, 1
            xloop.or body, r2, r3
            sw r9, 0x100(r0)
            exit";
        let p = assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::ooo4_x());
        for i in 0..4096 {
            sys.store_word(0x10000 + 4 * i, i * 7 + 1);
        }
        let stats = sys.run(&p, ExecMode::Adaptive).unwrap();
        assert_eq!(stats.adaptive_to_gpp, 1, "ooo/4 should win on a serial chain");

        // The result must still equal a traditional run.
        let mut gold = System::new(SystemConfig::ooo4());
        for i in 0..4096 {
            gold.store_word(0x10000 + 4 * i, i * 7 + 1);
        }
        gold.run(&p, ExecMode::Traditional).unwrap();
        assert_eq!(sys.load_word(0x100), gold.load_word(0x100));
    }

    #[test]
    fn adaptive_reuses_cached_decisions_across_instances() {
        // An outer loop re-enters a short inner xloop many times; the APT
        // stretches profiling across instances and then caches the choice.
        let src = "
            li r20, 0          # outer i
            li r21, 40         # outer n
        outer:
            li r2, 0
            li r3, 16
        body:
            sll r6, r2, 2
            addu r7, r6, r20
            sw r7, 0x1000(r6)
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            addiu r20, r20, 1
            blt r20, r21, outer
            exit";
        let p = assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::io_x());
        let stats = sys.run(&p, ExecMode::Adaptive).unwrap();
        // 40 instances × 15 LPSU-eligible iterations; one decision total.
        assert!(stats.adaptive_to_lpsu + stats.adaptive_to_gpp <= 1);
        assert_eq!(sys.load_word(0x1000 + 4 * 5), 4 * 5 + 39, "last instance wrote i=39");
    }

    #[test]
    fn snapshot_restore_rewinds_architectural_state_and_replays() {
        let p = assemble(&saxpy_src(64)).unwrap();
        let mut sys = System::new(SystemConfig::io_x());
        init_saxpy(&mut sys, 64);

        let snap = sys.snapshot();
        let first = sys.run(&p, ExecMode::Specialized).unwrap();
        check_saxpy(&sys, 64);
        let after = sys.snapshot();

        // Rewind: inputs are back, outputs are gone.
        sys.restore(&snap);
        assert_eq!(sys.load_word(0x20000 + 4 * 7), 1000 + 7, "y[7] rewound to input");

        // Replay: same architectural results (timing may differ — the
        // caches stayed warm by design).
        let second = sys.run(&p, ExecMode::Specialized).unwrap();
        check_saxpy(&sys, 64);
        assert_eq!(second.xloops_specialized, first.xloops_specialized);
        assert!(second.cycles <= first.cycles, "warm caches cannot slow the replay");

        // Restoring the post-run snapshot reproduces the post-run memory.
        sys.restore(&after);
        check_saxpy(&sys, 64);
    }

    #[test]
    fn or_loop_cir_liveout_is_visible_after_the_loop() {
        let src = "
            li r4, 0x1000
            li r2, 0
            li r3, 64
            li r9, 0
        body:
            sll r6, r2, 2
            addu r7, r4, r6
            lw r8, 0(r7)
            addu r9, r9, r8
            addiu r2, r2, 1
            xloop.or body, r2, r3
            sw r9, 0x2000(r0)      # uses the CIR live-out
            sw r2, 0x2004(r0)      # uses the induction live-out
            exit";
        let p = assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::io_x());
        let mut expect = 0u32;
        for i in 0..64 {
            sys.store_word(0x1000 + 4 * i, i * 3);
            expect += i * 3;
        }
        let stats = sys.run(&p, ExecMode::Specialized).unwrap();
        assert_eq!(sys.load_word(0x2000), expect);
        assert_eq!(sys.load_word(0x2004), 64);
        assert_eq!(stats.xloops_specialized, 1);
        assert!(stats.energy_nj > 0.0);
    }

    #[test]
    fn nested_war_style_loops_specialize_inner() {
        // Outer plain loop over k; inner xloop.uc: the LPSU specializes
        // each dynamic inner instance (Floyd-Warshall structure).
        let src = "
            li r20, 0
            li r21, 8          # outer n
        outer:
            li r2, 0
            li r3, 8           # inner n
        body:
            sll r6, r2, 2
            sll r7, r20, 5
            addu r7, r7, r6
            lw r8, 0x1000(r7)
            addiu r8, r8, 1
            sw r8, 0x1000(r7)
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            addiu r20, r20, 1
            blt r20, r21, outer
            exit";
        let p = assemble(src).unwrap();
        let mut sys = System::new(SystemConfig::ooo2_x());
        let stats = sys.run(&p, ExecMode::Specialized).unwrap();
        assert_eq!(stats.xloops_specialized, 8, "one scan per dynamic instance");
        assert_eq!(stats.scans, 8);
        for i in 0..64 {
            assert_eq!(sys.load_word(0x1000 + 4 * i), 1);
        }
        let _ = Reg::ZERO;
    }
}
