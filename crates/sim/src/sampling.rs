//! Interval-sampled simulation: fast-forward functionally, measure
//! cycle-accurately, extrapolate (SMARTS-style).
//!
//! A sampled run alternates three phases under one [`SampleSpec`]:
//!
//! 1. **Measure** — the cycle-accurate system (GPP + LPSU, the same
//!    dispatch loop as a full run) executes for `measure` cycles. The
//!    window's cycles and instructions form one CPI observation.
//! 2. **Fast-forward** — the threaded-code engine
//!    ([`xloops_func::FastForward`]) executes `ff` instructions against the
//!    shared [`ArchState`](xloops_func::ArchState) + memory at functional
//!    speed. No timing state advances; caches and predictors keep their
//!    contents (warm-hardware semantics, exactly like
//!    [`System::snapshot`]/[`System::restore`]).
//! 3. **Warm-up** — `warm` cycles of detailed execution whose timing is
//!    *discarded*: they exist to refill the pipeline/cache transient that
//!    fast-forwarding skipped, so the next measurement window is unbiased.
//!
//! The run's cycle estimate is
//!
//! ```text
//! est_cycles = measured_cycles + round(cpi_hat × skipped_instrs)
//! cpi_hat    = Σ measured_cycles / Σ measured_instrs
//! ```
//!
//! where `skipped_instrs` counts both fast-forwarded and warm-up
//! instructions (warm windows are part of the skipped transient, not of
//! the sample). The per-interval CPI spread gives the error bar:
//! `rel_stderr = (stddev(cpi_i) / √n) / mean(cpi_i)`. Energy is scaled by
//! the instruction ratio. All of it lands in [`SamplingStats`], reported
//! as the `sampling.*` stat node — present only on sampled runs, so
//! unsampled output is byte-identical to before.
//!
//! Sampling composes with every [`ExecMode`]: measurement windows stop at
//! taken xloops and dispatch them to the LPSU (or the adaptive profiler)
//! exactly like [`System::run`]. A specialized phase is atomic — if a loop
//! instance overruns the window budget, the overrun is real measured work
//! and is charged to the window. Sampled runs are not supervised and take
//! no fault plan: rewind/replay across functional gaps would need
//! per-window memory snapshots, which is exactly the cost sampling exists
//! to avoid.

use std::fmt;
use std::str::FromStr;

use xloops_asm::Program;
use xloops_func::FastForward;
use xloops_gpp::{GppKind, RunOpts, StopReason};
use xloops_stats::StatSet;

use crate::config::ExecMode;
use crate::error::SimError;
use crate::stats::SystemStats;
use crate::system::System;

/// The three interval lengths of a sampled run, as given by
/// `XLOOPS_SAMPLE=N:W:M` / `--sample N:W:M`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SampleSpec {
    /// Instructions to fast-forward functionally between windows (N ≥ 1).
    pub ff: u64,
    /// Detailed warm-up cycles after each fast-forward, excluded from the
    /// CPI sample (W; 0 disables warm-up).
    pub warm: u64,
    /// Detailed measurement cycles per window (M ≥ 1).
    pub measure: u64,
}

impl SampleSpec {
    /// Builds a spec, validating the invariants (`ff ≥ 1`, `measure ≥ 1`).
    pub fn new(ff: u64, warm: u64, measure: u64) -> Option<SampleSpec> {
        (ff >= 1 && measure >= 1).then_some(SampleSpec { ff, warm, measure })
    }
}

impl fmt::Display for SampleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.ff, self.warm, self.measure)
    }
}

/// Error parsing a `N:W:M` sample spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSampleSpecError {
    text: String,
}

impl fmt::Display for ParseSampleSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sample spec `{}` (expected N:W:M with N ≥ 1 and M ≥ 1)", self.text)
    }
}

impl std::error::Error for ParseSampleSpecError {}

impl FromStr for SampleSpec {
    type Err = ParseSampleSpecError;

    fn from_str(s: &str) -> Result<SampleSpec, ParseSampleSpecError> {
        let err = || ParseSampleSpecError { text: s.to_string() };
        let mut parts = s.split(':');
        let mut field = || parts.next().and_then(|p| p.trim().parse::<u64>().ok()).ok_or_else(err);
        let (ff, warm, measure) = (field()?, field()?, field()?);
        if parts.next().is_some() {
            return Err(err());
        }
        SampleSpec::new(ff, warm, measure).ok_or_else(err)
    }
}

/// What a sampled run measured and estimated — the `sampling.*` stat node.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SamplingStats {
    /// Measurement windows completed.
    pub intervals: u64,
    /// Detailed cycles inside measurement windows.
    pub measured_cycles: u64,
    /// Instructions retired inside measurement windows.
    pub measured_instrs: u64,
    /// Instructions executed by the fast-forward engine.
    pub ff_instrs: u64,
    /// Instructions retired inside warm-up windows (excluded from CPI).
    pub warm_instrs: u64,
    /// Detailed cycles spent warming (excluded from CPI).
    pub warm_cycles: u64,
    /// Cycles added by extrapolation (`cpi_hat × skipped instructions`).
    pub extrapolated_cycles: u64,
    /// Relative standard error of the per-interval CPI sample:
    /// `(stddev / √n) / mean`; 0 with fewer than two intervals.
    pub rel_stderr: f64,
}

impl SamplingStats {
    /// The node pushed into [`SystemStats::stat_set`] on sampled runs.
    pub fn stat_set(&self) -> StatSet {
        let mut s = StatSet::new("sampling");
        s.set("intervals", self.intervals)
            .set("measured_cycles", self.measured_cycles)
            .set("measured_instrs", self.measured_instrs)
            .set("ff_instrs", self.ff_instrs)
            .set("warm_instrs", self.warm_instrs)
            .set("warm_cycles", self.warm_cycles)
            .set("extrapolated_cycles", self.extrapolated_cycles)
            .set_metric("rel_stderr", self.rel_stderr);
        s
    }
}

/// How one detailed window ended.
struct Window {
    cycles: u64,
    instrs: u64,
    exited: bool,
}

impl System {
    /// Executes `program` under interval sampling: detailed measurement
    /// windows separated by functional fast-forward gaps, per `spec`.
    ///
    /// Architectural results (memory, live-out registers) are **exact** —
    /// every instruction executes, functionally or in detail. Only the
    /// timing/energy totals are estimates; [`SystemStats::cycles`] becomes
    /// `measured + extrapolated` and [`SystemStats::sampling`] reports the
    /// decomposition and error bar.
    ///
    /// # Errors
    ///
    /// Same contract as [`System::run`]: [`SimError::NoLpsu`] for
    /// specialized/adaptive modes without an LPSU, [`SimError::Exec`] on
    /// functional faults (from either engine), and the LPSU-phase errors.
    pub fn run_sampled(
        &mut self,
        program: &Program,
        mode: ExecMode,
        spec: SampleSpec,
    ) -> Result<SystemStats, SimError> {
        if mode != ExecMode::Traditional && self.lpsu.is_none() {
            return Err(SimError::NoLpsu);
        }
        let ff = FastForward::new(program);
        let base_cycles = self.gpp.drain();
        let mut stats = SystemStats::default();
        let mut s = SamplingStats::default();
        let mut cpis: Vec<f64> = Vec::new();

        loop {
            // Measure. The first window starts cold (pc 0) like a full run;
            // later windows start right after a warm-up window.
            let w = self.detailed_window(program, mode, &mut stats, spec.measure)?;
            s.intervals += 1;
            s.measured_cycles += w.cycles;
            s.measured_instrs += w.instrs;
            if w.instrs > 0 {
                cpis.push(w.cycles as f64 / w.instrs as f64);
            }
            if w.exited {
                break;
            }

            // Fast-forward through the gap at functional speed.
            let mut arch = self.gpp.arch_state().clone();
            let r = ff.run(&mut arch, &mut self.mem, spec.ff).map_err(SimError::Exec)?;
            self.gpp.set_arch_state(arch);
            s.ff_instrs += r.retired;
            if r.exited {
                break;
            }

            // Warm the microarchitecture back up; timing discarded.
            if spec.warm > 0 {
                let w = self.detailed_window(program, mode, &mut stats, spec.warm)?;
                s.warm_cycles += w.cycles;
                s.warm_instrs += w.instrs;
                if w.exited {
                    break;
                }
            }
        }

        let gpp_stats = self.gpp.stats();
        stats.cycles = gpp_stats.cycles - base_cycles;
        stats.gpp = gpp_stats;
        stats.finalize(
            &self.config.energy,
            matches!(self.config.gpp.kind, GppKind::OutOfOrder { .. }),
        );

        // Extrapolate: charge every skipped (fast-forwarded or warmed)
        // instruction at the measured CPI, and scale energy by the
        // instruction ratio. `measured_instrs` is nonzero — the first
        // window always retires at least `exit`.
        let detailed_instret = stats.instret;
        let cpi_hat = s.measured_cycles as f64 / (s.measured_instrs.max(1)) as f64;
        let skipped = s.ff_instrs + s.warm_instrs;
        s.extrapolated_cycles = (cpi_hat * skipped as f64).round() as u64;
        s.rel_stderr = rel_stderr(&cpis);
        stats.cycles = s.measured_cycles + s.extrapolated_cycles;
        stats.instret = detailed_instret + s.ff_instrs;
        if detailed_instret > 0 {
            stats.energy_nj *= stats.instret as f64 / detailed_instret as f64;
        }
        stats.sampling = Some(s);
        Ok(stats)
    }

    /// One bounded window of cycle-accurate execution: the canonical
    /// dispatch loop (chunked GPP runs, xloops handed to the LPSU or the
    /// adaptive profiler), stopping at the first chunk/loop boundary at or
    /// past `budget` cycles. Specialized phases are atomic, so a window can
    /// overrun its budget by one loop instance; the overrun is real
    /// detailed work and stays charged to this window.
    fn detailed_window(
        &mut self,
        program: &Program,
        mode: ExecMode,
        stats: &mut SystemStats,
        budget: u64,
    ) -> Result<Window, SimError> {
        let start_cycle = self.gpp.clock();
        let start_instrs = self.gpp.instret() + stats.lpsu.instret;
        let mut handoff = 0u64;
        let exited = loop {
            let mut opts = if mode == ExecMode::Traditional {
                RunOpts::traditional()
            } else {
                RunOpts::specialized()
            };
            // Chunked re-entry: the step limit bounds how far past the
            // budget a chunk can run. The GPP keeps no cross-call timing
            // state, so stopping between instructions is invisible.
            opts.max_steps = 256;
            opts.ignore_pcs = self.fallback_pcs.clone();
            if mode == ExecMode::Adaptive {
                opts.ignore_pcs.extend(self.apt.traditional_pcs());
            }
            match self.gpp.run(program, &mut self.mem, &opts) {
                Ok(StopReason::Exited) => break true,
                Ok(StopReason::XloopTaken { pc }) => {
                    if mode == ExecMode::Adaptive && self.apt.decision(pc).is_none() {
                        if self.adaptive_profile(program, pc, stats, None, &mut handoff)? {
                            break true;
                        }
                    } else {
                        self.specialize(program, pc, None, stats, None)?;
                    }
                }
                Ok(StopReason::WatchDone { .. }) => {
                    return Err(SimError::Protocol("watch stop from a sampling window"));
                }
                Err(xloops_func::ExecError::StepLimit(_)) => {}
                Err(e) => return Err(e.into()),
            }
            if self.gpp.clock().saturating_sub(start_cycle) >= budget {
                break false;
            }
        };
        Ok(Window {
            cycles: self.gpp.clock() - start_cycle,
            instrs: (self.gpp.instret() + stats.lpsu.instret) - start_instrs,
            exited,
        })
    }
}

/// `(stddev / √n) / mean` of a CPI sample; 0 for fewer than two points.
fn rel_stderr(cpis: &[f64]) -> f64 {
    let n = cpis.len();
    if n < 2 {
        return 0.0;
    }
    let mean = cpis.iter().sum::<f64>() / n as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = cpis.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (n - 1) as f64;
    (var.sqrt() / (n as f64).sqrt()) / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use xloops_asm::assemble;

    fn store_loop(n: u32) -> Program {
        assemble(&format!(
            "
            li r2, 0
            li r3, {n}
        body:
            sll r5, r2, 2
            sw r2, 0x1000(r5)
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit"
        ))
        .unwrap()
    }

    #[test]
    fn spec_parses_and_round_trips() {
        let s: SampleSpec = "1000:200:5000".parse().unwrap();
        assert_eq!(s, SampleSpec { ff: 1000, warm: 200, measure: 5000 });
        assert_eq!(s.to_string().parse::<SampleSpec>().unwrap(), s);
        for bad in ["", "5", "1:2", "1:2:3:4", "0:1:1", "1:1:0", "a:b:c", "-1:0:1"] {
            assert!(bad.parse::<SampleSpec>().is_err(), "{bad:?} should not parse");
        }
        assert_eq!("  8 : 0 : 4 ".trim().parse::<SampleSpec>().unwrap().warm, 0);
    }

    #[test]
    fn sampled_run_is_architecturally_exact() {
        let p = store_loop(512);
        let mut full = System::new(SystemConfig::io());
        let f = full.run(&p, ExecMode::Traditional).unwrap();
        let mut sampled = System::new(SystemConfig::io());
        let spec = SampleSpec::new(300, 50, 200).unwrap();
        let stats = sampled.run_sampled(&p, ExecMode::Traditional, spec).unwrap();
        for i in 0..512 {
            assert_eq!(sampled.load_word(0x1000 + 4 * i), i, "mem[{i}]");
        }
        let s = stats.sampling.as_ref().unwrap();
        assert!(s.intervals > 1, "run long enough to sample: {s:?}");
        assert!(s.ff_instrs > 0);
        assert_eq!(stats.instret, f.instret, "every dynamic instruction is accounted once");
    }

    #[test]
    fn sampled_cycles_track_full_run() {
        let p = store_loop(2048);
        let mut full = System::new(SystemConfig::io());
        let f = full.run(&p, ExecMode::Traditional).unwrap();
        let mut sampled = System::new(SystemConfig::io());
        let spec = SampleSpec::new(2000, 500, 2000).unwrap();
        let s = sampled.run_sampled(&p, ExecMode::Traditional, spec).unwrap();
        let err = (s.cycles as f64 - f.cycles as f64).abs() / f.cycles as f64;
        assert!(err < 0.05, "estimate {} vs full {} ({:.1}%)", s.cycles, f.cycles, 100.0 * err);
        assert_eq!(s.instret, f.instret, "instruction counts are exact, not estimated");
    }

    #[test]
    fn sampled_specialized_run_uses_the_lpsu_and_matches_memory() {
        let p = store_loop(256);
        let mut full = System::new(SystemConfig::io_x());
        let f = full.run(&p, ExecMode::Specialized).unwrap();
        let mut sampled = System::new(SystemConfig::io_x());
        let spec = SampleSpec::new(100, 20, 100).unwrap();
        let s = sampled.run_sampled(&p, ExecMode::Specialized, spec).unwrap();
        for i in 0..256 {
            assert_eq!(sampled.load_word(0x1000 + 4 * i), i);
        }
        assert!(s.xloops_specialized >= 1, "the loop still runs specialized");
        assert_eq!(f.instret, s.instret);
    }

    #[test]
    fn whole_program_inside_first_window_is_exact() {
        let p = store_loop(4);
        let mut full = System::new(SystemConfig::io());
        let f = full.run(&p, ExecMode::Traditional).unwrap();
        let mut sampled = System::new(SystemConfig::io());
        let spec = SampleSpec::new(1_000_000, 0, 1_000_000).unwrap();
        let s = sampled.run_sampled(&p, ExecMode::Traditional, spec).unwrap();
        let smp = s.sampling.as_ref().unwrap();
        assert_eq!(smp.intervals, 1);
        assert_eq!(smp.ff_instrs, 0);
        assert_eq!(smp.extrapolated_cycles, 0);
        assert_eq!(s.cycles, f.cycles, "no gap, no estimate: exact cycles");
        assert_eq!(s.energy_nj, f.energy_nj);
    }

    #[test]
    fn sampled_without_lpsu_is_an_error() {
        let p = store_loop(8);
        let mut sys = System::new(SystemConfig::io());
        let spec = SampleSpec::new(10, 0, 10).unwrap();
        assert_eq!(sys.run_sampled(&p, ExecMode::Specialized, spec), Err(SimError::NoLpsu));
    }

    #[test]
    fn sampling_node_present_only_on_sampled_runs() {
        let p = store_loop(64);
        let mut sys = System::new(SystemConfig::io());
        let full = sys.run(&p, ExecMode::Traditional).unwrap();
        assert!(full.stat_set(false).lookup("sampling.intervals").is_none());
        let mut sys = System::new(SystemConfig::io());
        let spec = SampleSpec::new(50, 10, 50).unwrap();
        let sampled = sys.run_sampled(&p, ExecMode::Traditional, spec).unwrap();
        let set = sampled.stat_set(false);
        assert!(set.lookup("sampling.intervals").is_some());
        assert!(set.lookup("sampling.rel_stderr").is_some());
        assert!(set.lookup("sampling.extrapolated_cycles").is_some());
    }

    #[test]
    fn rel_stderr_formula() {
        assert_eq!(rel_stderr(&[]), 0.0);
        assert_eq!(rel_stderr(&[2.0]), 0.0);
        assert_eq!(rel_stderr(&[2.0, 2.0, 2.0]), 0.0);
        // Two points 1.0 and 3.0: mean 2, stddev √2, stderr 1, rel 0.5.
        let r = rel_stderr(&[1.0, 3.0]);
        assert!((r - 0.5).abs() < 1e-12, "{r}");
    }
}
