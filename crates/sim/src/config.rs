use xloops_energy::EnergyTable;
use xloops_gpp::GppConfig;
use xloops_lpsu::LpsuConfig;

/// How to execute an XLOOPS binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Everything on the GPP; `xloop` behaves as a conditional branch.
    Traditional,
    /// Taken `xloop`s run on the LPSU (with automatic traditional fallback
    /// for loops the LPSU cannot execute).
    Specialized,
    /// Hardware profiles both and picks the faster engine per xloop pc.
    Adaptive,
}

/// A full system: GPP (+ optional LPSU) + energy table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SystemConfig {
    /// The general-purpose processor.
    pub gpp: GppConfig,
    /// The loop-pattern specialization unit, if present.
    pub lpsu: Option<LpsuConfig>,
    /// Per-event energies used for the energy report.
    pub energy: EnergyTable,
}

/// A hashable identity for a [`SystemConfig`].
///
/// `GppConfig` and `LpsuConfig` are all-integer and hash directly; the
/// `EnergyTable`'s `f64` entries are folded into a stable bit-pattern
/// fingerprint. Two configs share a key iff every parameter that can
/// affect a simulation result is identical, so the key is safe to memoize
/// runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConfigKey {
    /// The GPP parameters, verbatim.
    pub gpp: GppConfig,
    /// The LPSU parameters (or `None` for a GPP-only system), verbatim.
    pub lpsu: Option<LpsuConfig>,
    /// [`EnergyTable::fingerprint`] of the energy table.
    pub energy: u64,
}

impl SystemConfig {
    /// Stable hashable identity of this config (see [`ConfigKey`]).
    pub fn key(&self) -> ConfigKey {
        ConfigKey { gpp: self.gpp, lpsu: self.lpsu, energy: self.energy.fingerprint() }
    }

    fn energy_for(gpp: &GppConfig) -> EnergyTable {
        match gpp.width() {
            1 => EnergyTable::mcpat45_io(),
            w => EnergyTable::mcpat45_ooo(w),
        }
    }

    /// Baseline in-order GPP (the paper's `io`).
    pub fn io() -> SystemConfig {
        let gpp = GppConfig::io();
        SystemConfig { gpp, lpsu: None, energy: Self::energy_for(&gpp) }
    }

    /// Baseline two-way out-of-order GPP (`ooo/2`).
    pub fn ooo2() -> SystemConfig {
        let gpp = GppConfig::ooo2();
        SystemConfig { gpp, lpsu: None, energy: Self::energy_for(&gpp) }
    }

    /// Baseline four-way out-of-order GPP (`ooo/4`).
    pub fn ooo4() -> SystemConfig {
        let gpp = GppConfig::ooo4();
        SystemConfig { gpp, lpsu: None, energy: Self::energy_for(&gpp) }
    }

    /// `io+x`: in-order GPP plus the primary LPSU.
    pub fn io_x() -> SystemConfig {
        SystemConfig { lpsu: Some(LpsuConfig::default4()), ..Self::io() }
    }

    /// `ooo/2+x`.
    pub fn ooo2_x() -> SystemConfig {
        SystemConfig { lpsu: Some(LpsuConfig::default4()), ..Self::ooo2() }
    }

    /// `ooo/4+x`.
    pub fn ooo4_x() -> SystemConfig {
        SystemConfig { lpsu: Some(LpsuConfig::default4()), ..Self::ooo4() }
    }

    /// Replaces the LPSU configuration (design-space studies of Figure 9).
    pub fn with_lpsu(mut self, lpsu: LpsuConfig) -> SystemConfig {
        self.lpsu = Some(lpsu);
        self
    }

    /// Replaces the energy table (the `vlsi40` study of Figure 10).
    pub fn with_energy(mut self, energy: EnergyTable) -> SystemConfig {
        self.energy = energy;
        self
    }

    /// Display name, e.g. `ooo/2+x`.
    pub fn name(&self) -> String {
        match &self.lpsu {
            None => self.gpp.name().to_string(),
            Some(_) => format!("{}+x", self.gpp.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_presets() {
        assert_eq!(SystemConfig::io().name(), "io");
        assert_eq!(SystemConfig::ooo2_x().name(), "ooo/2+x");
        assert!(SystemConfig::io().lpsu.is_none());
        assert!(SystemConfig::io_x().lpsu.is_some());
        assert!(SystemConfig::ooo4_x().energy.ooo_per_instr > 0.0);
        assert_eq!(SystemConfig::io_x().energy.ooo_per_instr, 0.0);
    }

    #[test]
    fn keys_identify_configs() {
        // Same parameters -> same key, independently constructed.
        assert_eq!(SystemConfig::ooo2_x().key(), SystemConfig::ooo2_x().key());
        // Every baseline/LPSU pairing is distinct.
        let configs = [
            SystemConfig::io(),
            SystemConfig::ooo2(),
            SystemConfig::ooo4(),
            SystemConfig::io_x(),
            SystemConfig::ooo2_x(),
            SystemConfig::ooo4_x(),
        ];
        for (i, a) in configs.iter().enumerate() {
            for b in &configs[i + 1..] {
                assert_ne!(a.key(), b.key(), "{} vs {}", a.name(), b.name());
            }
        }
        // An energy-table swap alone changes the key.
        let vlsi = SystemConfig::io_x().with_energy(xloops_energy::EnergyTable::mcpat45_io());
        let mut bumped = vlsi;
        bumped.energy.alu += 0.5;
        assert_ne!(vlsi.key(), bumped.key());
    }
}
