//! # xloops-sim
//!
//! System-level composition: a GPP ([`xloops_gpp`]) optionally augmented
//! with an LPSU ([`xloops_lpsu`]), executing XLOOPS binaries in one of
//! three modes:
//!
//! * [`ExecMode::Traditional`] — the whole binary runs on the GPP; `xloop`
//!   decodes to a conditional branch (Section II-C).
//! * [`ExecMode::Specialized`] — every taken `xloop` triggers a scan phase
//!   and runs on the LPSU; loops the LPSU cannot execute (oversized bodies,
//!   unsupported instructions) automatically fall back to traditional
//!   execution, as the abstraction guarantees (Section II-D).
//! * [`ExecMode::Adaptive`] — per-xloop profiling on the GPP (256
//!   iterations / 2000 cycles, as in Section IV-D) and then on the LPSU;
//!   whichever is faster per iteration wins, and the decision is cached in
//!   the adaptive profiling table (APT) across dynamic instances.
//!
//! The crate also converts execution statistics into
//! [`xloops_energy::EventCounts`] for the Figure 8 / Figure 10 studies.

mod adaptive;
mod config;
mod error;
mod options;
mod sampling;
mod stats;
mod supervisor;
mod system;

pub use adaptive::{Apt, Decision};
pub use config::{ConfigKey, ExecMode, SystemConfig};
pub use error::{error_doc, SimError};
pub use options::RunOptions;
pub use sampling::{ParseSampleSpecError, SampleSpec, SamplingStats};
pub use stats::{ProfileStats, SystemStats};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorStats};
pub use system::{System, SystemSnapshot};
pub use xloops_lpsu::{FaultKind, FaultPlan, FaultSpec};
