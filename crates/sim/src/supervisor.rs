//! The simulation supervisor: one canonical run loop with optional
//! checkpointed fault recovery and LPSU→GPP graceful degradation.
//!
//! [`System::run`] delegates here with supervision off, so supervised and
//! unsupervised runs share every line of dispatch logic. With supervision
//! enabled the loop checkpoints architectural state at taken-xloop
//! boundaries; when a specialized phase fails with a recoverable
//! [`SimError`] (a wedge, an architectural lane fault, an injected fault,
//! or a corrupt handback), the supervisor rewinds to the last checkpoint
//! and retries. After [`SupervisorConfig::max_retries`] failures of the
//! same loop, the loop pc is degraded: added to the ignore set so the loop
//! replays on the GPP, exactly as the XLOOPS abstraction guarantees
//! (traditional execution is always a valid implementation of an `xloop`).
//!
//! A [`FaultPlan`] can be attached to make failures happen on purpose —
//! deterministic, seeded fault injection for testing the recovery paths.

use xloops_asm::Program;
use xloops_gpp::{GppKind, RunOpts, StopReason};
use xloops_lpsu::FaultPlan;
use xloops_mem::{FxHashMap, FxHashSet};
use xloops_stats::StatSet;

use crate::config::ExecMode;
use crate::error::SimError;
use crate::stats::SystemStats;
use crate::system::{System, SystemSnapshot};

/// Policy knobs of a supervised run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Master switch: when `false`, no checkpoints are taken and every
    /// error propagates immediately (plain [`System::run`] behavior).
    pub enabled: bool,
    /// Minimum cycles between checkpoints. The first taken xloop is always
    /// checkpointed; later ones only once this many cycles have passed
    /// since the previous checkpoint (checkpoints happen at xloop
    /// boundaries, the only points where architectural state is quiescent).
    pub checkpoint_interval: u64,
    /// Rewind-and-retry attempts per loop pc before the pc is degraded to
    /// traditional (GPP) execution.
    pub max_retries: u32,
    /// End-to-end cycle budget; exceeding it fails the run with
    /// [`SimError::CycleBudget`]. `None` means unlimited.
    pub cycle_budget: Option<u64>,
}

impl SupervisorConfig {
    /// Supervision disabled: no checkpoints, no recovery, no budget.
    pub fn off() -> SupervisorConfig {
        SupervisorConfig {
            enabled: false,
            checkpoint_interval: 1_000_000,
            max_retries: 2,
            cycle_budget: None,
        }
    }

    /// Supervision enabled with the default policy: checkpoint every
    /// million cycles, two retries per loop before degradation, no budget.
    pub fn protected() -> SupervisorConfig {
        SupervisorConfig { enabled: true, ..SupervisorConfig::off() }
    }

    /// [`SupervisorConfig::protected`] with overrides from the environment:
    /// `XLOOPS_CHECKPOINT_INTERVAL` (cycles between checkpoints) and
    /// `XLOOPS_CYCLE_BUDGET` (end-to-end cycle budget). Unparsable values
    /// are ignored.
    pub fn from_env() -> SupervisorConfig {
        let mut cfg = SupervisorConfig::protected();
        if let Some(v) = crate::options::env_u64("XLOOPS_CHECKPOINT_INTERVAL") {
            cfg.checkpoint_interval = v.max(1);
        }
        if let Some(v) = crate::options::env_u64("XLOOPS_CYCLE_BUDGET") {
            cfg.cycle_budget = Some(v);
        }
        cfg
    }
}

/// What the supervisor did during a run. All-zero for unsupervised runs
/// (and for supervised runs that never saw a fault), in which case the
/// stat tree omits the `supervisor` child entirely.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Architectural checkpoints captured.
    pub checkpoints: u64,
    /// Rewinds to the last checkpoint (one per recovered fault).
    pub rewinds: u64,
    /// Recovered faults answered with a same-mode retry.
    pub retries: u64,
    /// Loop pcs degraded to traditional (GPP) execution.
    pub degraded: u64,
    /// Recovered faults that were injector-made ([`SimError::Injected`]).
    pub injected_faults: u64,
}

impl SupervisorStats {
    /// The supervisor's counters as a `supervisor` node of the unified
    /// stats schema.
    pub fn stat_set(&self) -> StatSet {
        let mut s = StatSet::new("supervisor");
        s.set("checkpoints", self.checkpoints)
            .set("rewinds", self.rewinds)
            .set("retries", self.retries)
            .set("degraded", self.degraded)
            .set("injected_faults", self.injected_faults);
        s
    }
}

/// A supervised view of a [`System`]: runs programs under a
/// [`SupervisorConfig`] policy, optionally with a deterministic
/// [`FaultPlan`] injecting faults into specialized phases.
///
/// ```
/// use xloops_asm::assemble;
/// use xloops_sim::{ExecMode, FaultPlan, Supervisor, SupervisorConfig, System, SystemConfig};
///
/// let p = assemble("
///     li r2, 0
///     li r3, 32
/// body:
///     sll r5, r2, 2
///     sw r2, 0x1000(r5)
///     addiu r2, r2, 1
///     xloop.uc body, r2, r3
///     exit")?;
/// let mut sys = System::new(SystemConfig::io_x());
/// // Every specialized phase faults; the supervisor rewinds, retries, and
/// // finally degrades the loop to the GPP — the program still completes.
/// let stats = Supervisor::new(&mut sys, SupervisorConfig::protected())
///     .with_plan(FaultPlan::persistent_spurious(10))
///     .run(&p, ExecMode::Specialized)?;
/// assert_eq!(stats.supervisor.degraded, 1);
/// assert_eq!(sys.load_word(0x1000 + 4 * 7), 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Supervisor<'a> {
    sys: &'a mut System,
    cfg: SupervisorConfig,
    plan: FaultPlan,
}

impl<'a> Supervisor<'a> {
    /// Wraps `sys` with the given policy.
    pub fn new(sys: &'a mut System, cfg: SupervisorConfig) -> Supervisor<'a> {
        Supervisor { sys, cfg, plan: FaultPlan::none() }
    }

    /// Attaches a deterministic fault plan; each specialized phase (in
    /// handoff order) gets its scheduled faults.
    pub fn with_plan(mut self, plan: FaultPlan) -> Supervisor<'a> {
        self.plan = plan;
        self
    }

    /// Executes `program` under supervision. Same contract as
    /// [`System::run`], plus recovery: with supervision enabled,
    /// recoverable LPSU-phase errors are retried from the last checkpoint
    /// and persistent offenders are degraded to the GPP instead of failing
    /// the run.
    pub fn run(&mut self, program: &Program, mode: ExecMode) -> Result<SystemStats, SimError> {
        let plan = if self.plan.is_empty() { None } else { Some(&self.plan) };
        run_supervised(self.sys, program, mode, &self.cfg, plan)
    }
}

/// Maps a GPP step-limit abort (the budget enforcement mechanism inside
/// [`xloops_gpp::GppCore::run`]) back to the supervisor's cycle budget.
fn budgeted(e: SimError, budget: Option<u64>, cycles: u64) -> SimError {
    match (e, budget) {
        (SimError::Exec(xloops_func::ExecError::StepLimit(_)), Some(b)) => {
            SimError::CycleBudget { budget: b, cycles: cycles.max(b) }
        }
        (e, _) => e,
    }
}

/// The one canonical run loop shared by [`System::run`] (supervision off)
/// and [`Supervisor::run`] (supervision on, optionally with faults).
pub(crate) fn run_supervised(
    sys: &mut System,
    program: &Program,
    mode: ExecMode,
    cfg: &SupervisorConfig,
    plan: Option<&FaultPlan>,
) -> Result<SystemStats, SimError> {
    if mode != ExecMode::Traditional && sys.lpsu.is_none() {
        return Err(SimError::NoLpsu);
    }
    let base_cycles = sys.gpp.drain();
    let mut stats = SystemStats::default();
    let mut sup = SupervisorStats::default();

    // Width ≤ 8, so `cycles >= steps / 8`: a StepLimit stop implies the
    // cycle budget is spent, and the explicit check at each xloop boundary
    // catches overruns between stops.
    let max_steps = cfg.cycle_budget.map_or(u64::MAX, |b| b.saturating_mul(8).max(8));
    let over_budget = |spent: u64| cfg.cycle_budget.is_some_and(|b| spent >= b);

    if mode == ExecMode::Traditional {
        let mut opts = RunOpts::traditional();
        opts.max_steps = max_steps;
        let t0 = sys.profiling.then(std::time::Instant::now);
        sys.gpp.run(program, &mut sys.mem, &opts).map_err(|e| {
            let spent = sys.gpp.last_dispatch_cycle().saturating_sub(base_cycles);
            budgeted(e.into(), cfg.cycle_budget, spent)
        })?;
        if let Some(t) = t0 {
            let p = stats.profile.get_or_insert_with(Default::default);
            p.gpp_ns += t.elapsed().as_nanos() as u64;
        }
    } else {
        let mut checkpoint: Option<SystemSnapshot> = None;
        let mut last_ckpt = 0u64;
        let mut handoff = 0u64;
        let mut retries: FxHashMap<u32, u32> = FxHashMap::default();
        let mut degraded_pcs: FxHashSet<u32> = FxHashSet::default();

        loop {
            let mut opts = RunOpts::specialized();
            opts.max_steps = max_steps;
            opts.ignore_pcs = sys.fallback_pcs.clone();
            opts.ignore_pcs.extend(degraded_pcs.iter().copied());
            if mode == ExecMode::Adaptive {
                opts.ignore_pcs.extend(sys.apt.traditional_pcs());
            }
            let t0 = sys.profiling.then(std::time::Instant::now);
            let stop = sys.gpp.run(program, &mut sys.mem, &opts).map_err(|e| {
                let spent = sys.gpp.last_dispatch_cycle().saturating_sub(base_cycles);
                budgeted(e.into(), cfg.cycle_budget, spent)
            })?;
            if let Some(t) = t0 {
                let p = stats.profile.get_or_insert_with(Default::default);
                p.gpp_ns += t.elapsed().as_nanos() as u64;
            }
            let pc = match stop {
                StopReason::Exited => break,
                StopReason::XloopTaken { pc } => pc,
                StopReason::WatchDone { .. } => {
                    return Err(SimError::Protocol("watch stop from the outer run loop"));
                }
            };

            let now = sys.gpp.last_dispatch_cycle();
            if over_budget(now.saturating_sub(base_cycles)) {
                return Err(SimError::CycleBudget {
                    budget: cfg.cycle_budget.unwrap_or(0),
                    cycles: now - base_cycles,
                });
            }
            if cfg.enabled && (checkpoint.is_none() || now - last_ckpt >= cfg.checkpoint_interval) {
                checkpoint = Some(sys.snapshot());
                last_ckpt = now;
                sup.checkpoints += 1;
            }

            let result = if mode == ExecMode::Adaptive && sys.apt.decision(pc).is_none() {
                sys.adaptive_profile(program, pc, &mut stats, plan, &mut handoff)
            } else {
                let mut inj = plan.and_then(|p| p.injector_for(handoff));
                handoff += 1;
                sys.specialize(program, pc, None, &mut stats, inj.as_mut()).map(|_| false)
            };
            match result {
                Ok(true) => break, // program exited during profiling
                Ok(false) => {}
                Err(e) if cfg.enabled && e.is_lpsu_recoverable() && checkpoint.is_some() => {
                    if matches!(e, SimError::Injected { .. }) {
                        sup.injected_faults += 1;
                    }
                    let fault_pc = e.lpsu_pc().unwrap_or(pc);
                    // Rewind. Stats are deliberately *not* rolled back: the
                    // cycles and instructions spent on the failed attempt
                    // and its replay are real work the machine performed.
                    sys.restore(checkpoint.as_ref().expect("guard checked"));
                    sup.rewinds += 1;
                    let r = retries.entry(fault_pc).or_insert(0);
                    if *r < cfg.max_retries {
                        *r += 1;
                        sup.retries += 1;
                    } else {
                        degraded_pcs.insert(fault_pc);
                        sup.degraded += 1;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    let gpp_stats = sys.gpp.stats();
    stats.cycles = gpp_stats.cycles - base_cycles;
    if over_budget(stats.cycles) {
        return Err(SimError::CycleBudget {
            budget: cfg.cycle_budget.unwrap_or(0),
            cycles: stats.cycles,
        });
    }
    stats.gpp = gpp_stats;
    stats.supervisor = sup;
    stats.finalize(&sys.config.energy, matches!(sys.config.gpp.kind, GppKind::OutOfOrder { .. }));
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use xloops_asm::assemble;
    use xloops_lpsu::FaultKind;

    fn store_loop(n: u32) -> Program {
        assemble(&format!(
            "
            li r2, 0
            li r3, {n}
        body:
            sll r5, r2, 2
            sw r2, 0x1000(r5)
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit"
        ))
        .unwrap()
    }

    fn check_store_loop(sys: &System, n: u32) {
        for i in 0..n {
            assert_eq!(sys.load_word(0x1000 + 4 * i), i, "mem[{i}]");
        }
    }

    #[test]
    fn supervised_run_without_faults_matches_unsupervised() {
        let p = store_loop(64);
        let mut plain = System::new(SystemConfig::io_x());
        let a = plain.run(&p, ExecMode::Specialized).unwrap();
        let mut sup = System::new(SystemConfig::io_x());
        let b = Supervisor::new(&mut sup, SupervisorConfig::protected())
            .run(&p, ExecMode::Specialized)
            .unwrap();
        check_store_loop(&sup, 64);
        assert_eq!(a.cycles, b.cycles, "supervision must not perturb timing");
        assert_eq!(a.energy_nj, b.energy_nj);
        assert_eq!(b.supervisor.checkpoints, 1, "one checkpoint at the first xloop");
        assert_eq!(b.supervisor.rewinds, 0);
        // The checkpoint is the only supervisor activity, so the stat tree
        // of the unsupervised run has no supervisor child while the
        // supervised one does.
        assert!(a.stat_set(false).lookup("supervisor.rewinds").is_none());
        assert!(b.stat_set(false).lookup("supervisor.rewinds").is_some());
    }

    #[test]
    fn transient_fault_is_retried_and_recovers() {
        let p = store_loop(64);
        let mut sys = System::new(SystemConfig::io_x());
        let plan = FaultPlan::once(FaultKind::Spurious { at_cycle: 5 });
        let stats = Supervisor::new(&mut sys, SupervisorConfig::protected())
            .with_plan(plan)
            .run(&p, ExecMode::Specialized)
            .unwrap();
        check_store_loop(&sys, 64);
        assert_eq!(stats.supervisor.injected_faults, 1);
        assert_eq!(stats.supervisor.rewinds, 1);
        assert_eq!(stats.supervisor.retries, 1);
        assert_eq!(stats.supervisor.degraded, 0);
        assert_eq!(stats.xloops_specialized, 1, "the retry succeeded on the LPSU");
    }

    #[test]
    fn persistent_fault_degrades_loop_to_gpp() {
        let p = store_loop(64);
        let mut sys = System::new(SystemConfig::io_x());
        let stats = Supervisor::new(&mut sys, SupervisorConfig::protected())
            .with_plan(FaultPlan::persistent_spurious(5))
            .run(&p, ExecMode::Specialized)
            .unwrap();
        check_store_loop(&sys, 64);
        assert_eq!(stats.supervisor.rewinds, 3, "two retries + the degrading rewind");
        assert_eq!(stats.supervisor.retries, 2);
        assert_eq!(stats.supervisor.degraded, 1);
        assert_eq!(stats.xloops_specialized, 0, "every LPSU attempt faulted");
    }

    #[test]
    fn unsupervised_run_propagates_injected_faults() {
        let p = store_loop(64);
        let mut sys = System::new(SystemConfig::io_x());
        let err = Supervisor::new(&mut sys, SupervisorConfig::off())
            .with_plan(FaultPlan::once(FaultKind::Spurious { at_cycle: 5 }))
            .run(&p, ExecMode::Specialized)
            .unwrap_err();
        assert!(matches!(err, SimError::Injected { .. }), "got {err:?}");
        assert_eq!(err.exit_code(), 4);
    }

    #[test]
    fn cycle_budget_fails_long_runs_with_a_distinct_error() {
        let p = store_loop(256);
        let mut tight = SupervisorConfig::protected();
        tight.cycle_budget = Some(10);
        let mut sys = System::new(SystemConfig::io_x());
        let err = Supervisor::new(&mut sys, tight).run(&p, ExecMode::Specialized).unwrap_err();
        assert!(matches!(err, SimError::CycleBudget { budget: 10, .. }), "got {err:?}");
        assert_eq!(err.exit_code(), 5);

        // Traditional runs respect the budget too.
        let mut tight = SupervisorConfig::protected();
        tight.cycle_budget = Some(10);
        let mut sys = System::new(SystemConfig::io());
        let err = Supervisor::new(&mut sys, tight).run(&p, ExecMode::Traditional).unwrap_err();
        assert!(matches!(err, SimError::CycleBudget { budget: 10, .. }), "got {err:?}");

        // A generous budget does not perturb the run.
        let mut roomy = SupervisorConfig::protected();
        roomy.cycle_budget = Some(u64::MAX / 16);
        let mut sys = System::new(SystemConfig::io_x());
        let stats = Supervisor::new(&mut sys, roomy).run(&p, ExecMode::Specialized).unwrap();
        check_store_loop(&sys, 256);
        assert_eq!(stats.xloops_specialized, 1);
    }

    #[test]
    fn degradation_survives_memport_refusal_storms() {
        // A refusal window long past the engine's ability to make progress
        // wedges the LPSU; the supervisor must still complete the program.
        let p = store_loop(64);
        let mut sys = System::new(SystemConfig::io_x());
        let plan = FaultPlan::once(FaultKind::MemRefusal { at_cycle: 2, cycles: u64::MAX / 2 });
        let stats = Supervisor::new(&mut sys, SupervisorConfig::protected())
            .with_plan(plan)
            .run(&p, ExecMode::Specialized)
            .unwrap();
        check_store_loop(&sys, 64);
        assert!(stats.supervisor.rewinds >= 1);
    }

    #[test]
    fn from_env_parses_overrides() {
        // Only exercises the parser on a copy of the ambient environment;
        // the variables are unset in the test environment, so the defaults
        // must come back.
        let cfg = SupervisorConfig::from_env();
        assert!(cfg.enabled);
        assert_eq!(cfg.max_retries, SupervisorConfig::protected().max_retries);
    }
}
