//! Tests of the statistics/energy plumbing and of the graceful-degradation
//! paths: scan-rejected loops under specialized *and* adaptive execution,
//! and the event accounting the Figure 8 energy study rests on.

use xloops_asm::assemble;
use xloops_sim::{ExecMode, System, SystemConfig};

fn big_body_loop() -> String {
    // A loop body larger than the 128-entry instruction buffer.
    let mut src = String::from("li r2, 0\nli r3, 6\nbody:\n");
    for _ in 0..140 {
        src.push_str("addu r9, r9, r2\n");
    }
    src.push_str("addiu r2, r2, 1\nxloop.uc body, r2, r3\nsw r9, 0x100(r0)\nexit");
    src
}

#[test]
fn adaptive_marks_rejected_loops_traditional_and_completes() {
    let p = assemble(&big_body_loop()).unwrap();
    let mut sys = System::new(SystemConfig::io_x());
    let stats = sys.run(&p, ExecMode::Adaptive).unwrap();
    assert_eq!(stats.xloops_specialized, 0);
    // The loop still produced its serial result.
    let mut gold = System::new(SystemConfig::io());
    gold.run(&p, ExecMode::Traditional).unwrap();
    assert_eq!(sys.load_word(0x100), gold.load_word(0x100));
}

#[test]
fn unsupported_instruction_in_body_falls_back() {
    // A jr inside the body is not lane-executable: the scan must reject it
    // and the system must still produce the correct serial result.
    let src = "
        li r2, 0
        li r3, 4
        jal setup
        b start
    setup:
        jr ra
    start:
    body:
        jal setup
        addiu r2, r2, 1
        xloop.uc body, r2, r3
        sw r2, 0x100(r0)
        exit";
    let p = assemble(src).unwrap();
    let mut sys = System::new(SystemConfig::io_x());
    let stats = sys.run(&p, ExecMode::Specialized).unwrap();
    assert_eq!(stats.xloops_fallback, 1);
    assert_eq!(sys.load_word(0x100), 4);
}

#[test]
fn event_counts_reflect_lpsu_work() {
    let src = "
        li r4, 0x1000
        li r2, 0
        li r3, 32
    body:
        addiu.xi r5, r5, 4
        lw r6, 0(r5)
        addiu r6, r6, 1
        sw r6, 0(r5)
        addiu r2, r2, 1
        xloop.uc body, r2, r3
        exit";
    let p = assemble(src).unwrap();
    let mut sys = System::new(SystemConfig::io_x());
    // The xi pointer starts one step below the array.
    for i in 0..32 {
        sys.store_word(0x1000 + 4 * i, i);
    }
    // r5 starts at 0 → first xi gives 4; initialize the loop to read from
    // 0x1000 by pre-setting memory there irrelevant; simpler: accept the
    // addresses the xi produces (4, 8, …) — they are still valid memory.
    let stats = sys.run(&p, ExecMode::Specialized).unwrap();
    let ev = stats.events(false);
    assert!(ev.ibuf_fetches > 0, "LPSU work fetches from instruction buffers");
    assert!(ev.xi_muls >= 31, "one MIV computation per LPSU iteration");
    assert!(ev.scan_instrs as usize >= 5, "scan streamed the body once");
    assert!(ev.icache_fetches > 0, "prologue fetched from the I-cache");
    // Energy accounting is strictly positive and additive.
    assert!(stats.energy_nj > 0.0);
    let doubled = ev.add(&ev);
    assert_eq!(doubled.ibuf_fetches, 2 * ev.ibuf_fetches);
}

#[test]
fn lpsu_cycles_are_within_total_cycles() {
    let k = xloops_kernels::by_name("war-uc").expect("kernel exists");
    let mut sys = System::new(SystemConfig::ooo2_x());
    k.init_memory(sys.mem_mut());
    let stats = sys.run(&k.program, ExecMode::Specialized).unwrap();
    assert!(stats.lpsu_cycles > 0);
    assert!(
        stats.lpsu_cycles <= stats.cycles,
        "specialized phases ({}) cannot exceed the run ({})",
        stats.lpsu_cycles,
        stats.cycles
    );
    assert!(stats.ipc() > 0.0);
}

#[test]
fn repeated_runs_on_one_system_accumulate_state_but_stay_correct() {
    // Warm hardware: second invocation reuses caches, predictor, and APT.
    let k = xloops_kernels::by_name("huffman-ua").expect("kernel exists");
    let mut sys = System::new(SystemConfig::ooo4_x());
    k.init_memory(sys.mem_mut());
    let first = sys.run(&k.program, ExecMode::Adaptive).unwrap();
    k.verify(sys.mem()).unwrap();

    // Re-init the dataset (the kernel accumulates into freq counters).
    let mut sys2 = System::new(SystemConfig::ooo4_x());
    k.init_memory(sys2.mem_mut());
    sys2.run(&k.program, ExecMode::Adaptive).unwrap();
    k.init_memory(sys2.mem_mut());
    let warm = sys2.run(&k.program, ExecMode::Adaptive).unwrap();
    k.verify(sys2.mem()).unwrap();
    assert!(
        warm.cycles <= first.cycles,
        "a warm APT/predictor never slows the rerun ({} vs {})",
        warm.cycles,
        first.cycles
    );
}
