//! Property tests of the LPSU's central guarantees, on randomly generated
//! loop bodies:
//!
//! * `xloop.om`: the final memory image equals a serial execution, for any
//!   random mix of loads and stores whose addresses create arbitrary
//!   cross-iteration dependences.
//! * `xloop.or`: CIR live-outs and all stores equal a serial execution for
//!   random accumulator chains with conditional updates.
//! * Every pattern with every lane count: results never depend on the
//!   configuration.

use proptest::prelude::*;
use xloops_asm::Program;
use xloops_func::Interp;
use xloops_isa::{AluOp, BranchCond, DataPattern, Instr, LoopPattern, MemOp, Reg};
use xloops_lpsu::{scan, Lpsu, LpsuConfig};
use xloops_mem::{Cache, CacheConfig, Memory};

const ARRAY: u32 = 0x1000;
const ITERS: u32 = 24;

/// One random body statement operating on temps r8..r15, the induction
/// variable r2, and a 64-word array.
#[derive(Clone, Debug)]
enum Op {
    /// rd = rs ⊕ rt over the temp registers.
    Alu(u8, u8, u8, AluOp),
    /// rd = A[(i + k) & 63]
    Load(u8, i8),
    /// A[(i + k) & 63] = rs
    Store(u8, i8),
    /// rd = rd + imm
    AddImm(u8, i8),
}

fn op() -> impl Strategy<Value = Op> {
    let temp = 8u8..16;
    let alu = prop::sample::select(vec![AluOp::Addu, AluOp::Subu, AluOp::Xor, AluOp::And]);
    prop_oneof![
        (temp.clone(), temp.clone(), temp.clone(), alu)
            .prop_map(|(a, b, c, op)| Op::Alu(a, b, c, op)),
        (temp.clone(), -4i8..8).prop_map(|(r, k)| Op::Load(r, k)),
        (temp.clone(), -4i8..8).prop_map(|(r, k)| Op::Store(r, k)),
        (temp, any::<i8>()).prop_map(|(r, imm)| Op::AddImm(r, imm)),
    ]
}

/// Builds `[prologue, body(ops), addiu, xloop, exit]` with the requested
/// pattern. Address computation: r7 = ((r2 + k) & 63) * 4 + ARRAY.
///
/// For patterns without register ordering (`om`/`ua`/`uc`), the ISA
/// forbids cross-iteration register dependences, so every temp is defined
/// from the induction variable before its first read (`orm` skips this
/// and lets random read-before-write chains become CIRs).
fn build_program(ops: &[Op], pattern: DataPattern) -> Program {
    let r = Reg::new;
    let mut v = vec![
        // r2 = 0, r3 = ITERS, r4 = ARRAY base; temps start at zero.
        Instr::AluImm { op: AluOp::Addu, rd: r(2), rs: Reg::ZERO, imm: 0 },
        Instr::AluImm { op: AluOp::Addu, rd: r(3), rs: Reg::ZERO, imm: ITERS as i16 },
        Instr::Lui { rd: r(4), imm: 0 },
        Instr::AluImm { op: AluOp::Addu, rd: r(4), rs: Reg::ZERO, imm: ARRAY as i16 },
    ];
    let body_start = v.len();
    let mut defined = [false; 32];
    let define = |v: &mut Vec<Instr>, defined: &mut [bool; 32], reg: u8| {
        if !pattern.orders_registers() && !defined[reg as usize] {
            v.push(Instr::Alu { op: AluOp::Addu, rd: r(reg), rs: r(2), rt: Reg::ZERO });
        }
        defined[reg as usize] = true;
    };
    for o in ops {
        match *o {
            Op::Alu(a, b, c, _) => {
                define(&mut v, &mut defined, b);
                define(&mut v, &mut defined, c);
                defined[a as usize] = true;
            }
            Op::Store(rd, _) | Op::AddImm(rd, _) => define(&mut v, &mut defined, rd),
            Op::Load(rd, _) => defined[rd as usize] = true,
        }
        match *o {
            Op::Alu(a, b, c, op) => v.push(Instr::Alu { op, rd: r(a), rs: r(b), rt: r(c) }),
            Op::Load(rd, k) | Op::Store(rd, k) => {
                // r6 = (r2 + k) & 63 ; r7 = r4 + r6*4
                v.push(Instr::AluImm { op: AluOp::Addu, rd: r(6), rs: r(2), imm: k as i16 });
                v.push(Instr::AluImm { op: AluOp::And, rd: r(6), rs: r(6), imm: 63 });
                v.push(Instr::AluImm { op: AluOp::Sll, rd: r(6), rs: r(6), imm: 2 });
                v.push(Instr::Alu { op: AluOp::Addu, rd: r(7), rs: r(4), rt: r(6) });
                let op = if matches!(o, Op::Load(..)) { MemOp::Lw } else { MemOp::Sw };
                v.push(Instr::Mem { op, data: r(rd), base: r(7), offset: 0 });
            }
            Op::AddImm(rd, imm) => {
                v.push(Instr::AluImm { op: AluOp::Addu, rd: r(rd), rs: r(rd), imm: imm as i16 })
            }
        }
    }
    v.push(Instr::AluImm { op: AluOp::Addu, rd: r(2), rs: r(2), imm: 1 });
    let body_offset = (v.len() - body_start) as u16;
    v.push(Instr::Xloop {
        pattern: LoopPattern::fixed(pattern),
        idx: r(2),
        bound: r(3),
        body_offset,
    });
    v.push(Instr::Exit);
    Program::from_instrs(v)
}

/// Serial golden execution.
fn run_serial(p: &Program) -> Memory {
    let mut mem = Memory::new();
    init_array(&mut mem);
    let mut cpu = Interp::new();
    cpu.run(p, &mut mem, 10_000_000).expect("serial run");
    mem
}

fn init_array(mem: &mut Memory) {
    for i in 0..64u32 {
        mem.write_u32(ARRAY + 4 * i, i.wrapping_mul(2654435761));
    }
}

/// Runs the loop on the LPSU after one traditional iteration (the handoff
/// protocol of specialized execution).
fn run_lpsu(p: &Program, lanes: u32) -> Memory {
    run_lpsu_cfg(p, LpsuConfig::default4().with_lanes(lanes))
}

fn run_lpsu_cfg(p: &Program, config: LpsuConfig) -> Memory {
    let mut mem = Memory::new();
    init_array(&mut mem);
    let mut cpu = Interp::new();
    let xloop_pc = p.instrs().iter().position(|i| i.is_xloop()).expect("has xloop") as u32 * 4;
    while cpu.pc() != xloop_pc {
        cpu.step(p, &mut mem).expect("prefix");
    }
    let mut live_ins = [0u32; 32];
    for r in Reg::all() {
        live_ins[r.index()] = cpu.reg(r);
    }
    let s = scan(p, xloop_pc, live_ins, &config).expect("scans");
    let mut dcache = Cache::new(CacheConfig::l1_default());
    Lpsu::new(config).execute(&s, &mut mem, &mut dcache, None).expect("engine makes progress");
    mem
}

fn arrays_equal(a: &Memory, b: &Memory) -> Result<(), TestCaseError> {
    for i in 0..64u32 {
        prop_assert_eq!(a.read_u32(ARRAY + 4 * i), b.read_u32(ARRAY + 4 * i), "array word {}", i);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Memory-ordered loops must match serial execution exactly, whatever
    /// random dependence pattern the body creates.
    #[test]
    fn om_equals_serial(ops in prop::collection::vec(op(), 1..10)) {
        let p = build_program(&ops, DataPattern::Om);
        let serial = run_serial(&p);
        for lanes in [2, 4, 8] {
            let lpsu = run_lpsu(&p, lanes);
            arrays_equal(&serial, &lpsu)?;
        }
    }

    /// `ua` uses the same mechanisms and must also be serial-equivalent.
    #[test]
    fn ua_equals_serial(ops in prop::collection::vec(op(), 1..10)) {
        let p = build_program(&ops, DataPattern::Ua);
        let serial = run_serial(&p);
        let lpsu = run_lpsu(&p, 4);
        arrays_equal(&serial, &lpsu)?;
    }

    /// The cross-lane store-load forwarding extension must never change
    /// results, only timing.
    #[test]
    fn om_with_cross_lane_forwarding_equals_serial(
        ops in prop::collection::vec(op(), 1..10),
    ) {
        let p = build_program(&ops, DataPattern::Om);
        let serial = run_serial(&p);
        let lpsu = run_lpsu_cfg(&p, LpsuConfig::default4().with_cross_lane_forwarding());
        arrays_equal(&serial, &lpsu)?;
    }

    /// `orm` adds register ordering on top; random temp chains that read
    /// before writing become CIRs and must still match serial execution.
    #[test]
    fn orm_equals_serial(ops in prop::collection::vec(op(), 1..8)) {
        let p = build_program(&ops, DataPattern::Orm);
        let serial = run_serial(&p);
        let lpsu = run_lpsu(&p, 4);
        arrays_equal(&serial, &lpsu)?;
    }
}

/// `or` loops: random accumulator updates (some conditional) must yield
/// serial CIR live-outs. Built separately because stores must not create
/// memory dependences under `or`.
#[derive(Clone, Debug)]
enum OrOp {
    /// acc = acc op (idx + k)
    Acc(AluOp, i8),
    /// if (idx & 1): acc = acc + k (conditional last-CIR-write path)
    CondAcc(i8),
}

fn or_op() -> impl Strategy<Value = OrOp> {
    prop_oneof![
        (prop::sample::select(vec![AluOp::Addu, AluOp::Xor, AluOp::Subu]), any::<i8>())
            .prop_map(|(op, k)| OrOp::Acc(op, k)),
        any::<i8>().prop_map(OrOp::CondAcc),
    ]
}

fn build_or_program(ops: &[OrOp]) -> Program {
    let r = Reg::new;
    let mut v = vec![
        Instr::AluImm { op: AluOp::Addu, rd: r(2), rs: Reg::ZERO, imm: 0 },
        Instr::AluImm { op: AluOp::Addu, rd: r(3), rs: Reg::ZERO, imm: ITERS as i16 },
        Instr::AluImm { op: AluOp::Addu, rd: r(9), rs: Reg::ZERO, imm: 7 }, // acc
        Instr::AluImm { op: AluOp::Addu, rd: r(4), rs: Reg::ZERO, imm: ARRAY as i16 },
    ];
    let body_start = v.len();
    for o in ops {
        match *o {
            OrOp::Acc(op, k) => {
                v.push(Instr::AluImm { op: AluOp::Addu, rd: r(8), rs: r(2), imm: k as i16 });
                v.push(Instr::Alu { op, rd: r(9), rs: r(9), rt: r(8) });
            }
            OrOp::CondAcc(k) => {
                v.push(Instr::AluImm { op: AluOp::And, rd: r(8), rs: r(2), imm: 1 });
                // beqz r8, +2 (skip the update)
                v.push(Instr::Branch { cond: BranchCond::Eq, rs: r(8), rt: Reg::ZERO, offset: 2 });
                v.push(Instr::AluImm { op: AluOp::Addu, rd: r(9), rs: r(9), imm: k as i16 });
            }
        }
    }
    // Publish the running value into the array so memory checks see it.
    v.push(Instr::AluImm { op: AluOp::Sll, rd: r(6), rs: r(2), imm: 2 });
    v.push(Instr::Alu { op: AluOp::Addu, rd: r(7), rs: r(4), rt: r(6) });
    v.push(Instr::Mem { op: MemOp::Sw, data: r(9), base: r(7), offset: 0 });
    v.push(Instr::AluImm { op: AluOp::Addu, rd: r(2), rs: r(2), imm: 1 });
    let body_offset = (v.len() - body_start) as u16;
    v.push(Instr::Xloop {
        pattern: LoopPattern::fixed(DataPattern::Or),
        idx: r(2),
        bound: r(3),
        body_offset,
    });
    v.push(Instr::Exit);
    Program::from_instrs(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn or_cir_chain_equals_serial(ops in prop::collection::vec(or_op(), 1..8)) {
        let p = build_or_program(&ops);
        let serial = run_serial(&p);
        for lanes in [2, 4] {
            let lpsu = run_lpsu(&p, lanes);
            arrays_equal(&serial, &lpsu)?;
        }
    }
}
