//! End-to-end tests of the LPSU engine: every dependence pattern, squash
//! behaviour, MIV handling, the dynamic-bound worklist, and design-space
//! configuration effects.

use xloops_asm::assemble;
use xloops_func::Interp;
use xloops_isa::Reg;
use xloops_lpsu::{scan, Lpsu, LpsuConfig, LpsuResult, ScanResult};
use xloops_mem::{Cache, CacheConfig, Memory};

/// Assembles `src`, runs it serially (traditional semantics) on the
/// functional interpreter until the first taken xloop, then performs the
/// scan. Returns the scan and the memory image at the handoff point.
fn handoff(src: &str, init: &dyn Fn(&mut Memory)) -> (ScanResult, Memory, xloops_asm::Program) {
    let p = assemble(src).expect("assembles");
    let mut mem = Memory::new();
    init(&mut mem);
    let mut cpu = Interp::new();
    // Run until the pc reaches the xloop instruction for the first time.
    let xloop_idx = p.instrs().iter().position(|i| i.is_xloop()).expect("has xloop");
    let xloop_pc = xloop_idx as u32 * 4;
    for _ in 0..10_000_000 {
        if cpu.pc() == xloop_pc {
            break;
        }
        cpu.step(&p, &mut mem).expect("serial prefix runs");
    }
    assert_eq!(cpu.pc(), xloop_pc, "program must reach its xloop");
    let mut live_ins = [0u32; 32];
    for r in Reg::all() {
        live_ins[r.index()] = cpu.reg(r);
    }
    let s = scan(&p, xloop_pc, live_ins, &LpsuConfig::default4()).expect("loop specializes");
    (s, mem, p)
}

/// Runs the same program fully serially for the golden memory image.
fn golden(src: &str, init: &dyn Fn(&mut Memory)) -> Memory {
    let p = assemble(src).expect("assembles");
    let mut mem = Memory::new();
    init(&mut mem);
    let mut cpu = Interp::new();
    cpu.run(&p, &mut mem, 100_000_000).expect("serial run completes");
    mem
}

fn run_lpsu(config: LpsuConfig, s: &ScanResult, mem: &mut Memory) -> LpsuResult {
    let mut dcache = Cache::new(CacheConfig::l1_default());
    Lpsu::new(config).execute(s, mem, &mut dcache, None).expect("engine makes progress")
}

// ---------------------------------------------------------------- uc ----

const VECTOR_SCALE: &str = "
    li r4, 0x1000        # src
    li r5, 0x2000        # dst
    li r2, 0
    li r3, 64
body:
    sll r6, r2, 2
    addu r7, r4, r6
    lw r8, 0(r7)
    addu r8, r8, r8
    addu r7, r5, r6
    sw r8, 0(r7)
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit";

fn vector_init(mem: &mut Memory) {
    for i in 0..64 {
        mem.write_u32(0x1000 + 4 * i, i + 100);
    }
}

#[test]
fn uc_matches_serial_execution() {
    let (s, mut mem, _) = handoff(VECTOR_SCALE, &vector_init);
    let r = run_lpsu(LpsuConfig::default4(), &s, &mut mem);
    let gold = golden(VECTOR_SCALE, &vector_init);
    for i in 0..64 {
        assert_eq!(mem.read_u32(0x2000 + 4 * i), gold.read_u32(0x2000 + 4 * i), "element {i}");
    }
    assert_eq!(r.iterations, 63, "iteration 0 ran on the GPP");
    assert_eq!(r.final_idx, 64);
    assert_eq!(r.stats.squashed_iters, 0, "uc never squashes");
}

#[test]
fn uc_scales_with_lanes() {
    let (s, mem0, _) = handoff(VECTOR_SCALE, &vector_init);
    let mut cycles = Vec::new();
    for lanes in [1, 2, 4, 8] {
        let mut mem = mem0.clone();
        let r = run_lpsu(LpsuConfig::default4().with_lanes(lanes), &s, &mut mem);
        cycles.push(r.cycles);
    }
    assert!(cycles[0] > cycles[1], "2 lanes beat 1: {cycles:?}");
    assert!(cycles[1] > cycles[2], "4 lanes beat 2: {cycles:?}");
    // 8 lanes may saturate the single shared memory port; allow equality.
    assert!(cycles[2] >= cycles[3], "8 lanes no slower than 4: {cycles:?}");
}

#[test]
fn uc_benefits_from_double_resources_when_port_bound() {
    // Three memory ops per tiny iteration: memory-port bound.
    let (s, mem0, _) = handoff(VECTOR_SCALE, &vector_init);
    let mut base_mem = mem0.clone();
    let base = run_lpsu(LpsuConfig::default4().with_lanes(8), &s, &mut base_mem);
    let mut more_mem = mem0;
    let more =
        run_lpsu(LpsuConfig::default4().with_lanes(8).with_double_resources(), &s, &mut more_mem);
    assert!(
        more.cycles < base.cycles,
        "extra port must help a port-bound loop: {} vs {}",
        more.cycles,
        base.cycles
    );
}

// ---------------------------------------------------------------- xi ----

const XI_LOOP: &str = "
    li r4, 0x1000
    li r2, 0
    li r3, 32
    addiu r6, r4, -4     # r6 is a MIV pointer, pre-decremented
body:
    addiu.xi r6, r6, 4
    sw r2, 0(r6)
    addiu r2, r2, 1
    xloop.uc body, r2, r3
    exit";

#[test]
fn xi_miv_values_match_serial() {
    let (s, mut mem, _) = handoff(XI_LOOP, &|_| {});
    assert_eq!(s.mivt.len(), 1);
    run_lpsu(LpsuConfig::default4(), &s, &mut mem);
    let gold = golden(XI_LOOP, &|_| {});
    for i in 0..32 {
        assert_eq!(mem.read_u32(0x1000 + 4 * i), gold.read_u32(0x1000 + 4 * i), "element {i}");
        assert_eq!(mem.read_u32(0x1000 + 4 * i), i);
    }
}

// ---------------------------------------------------------------- or ----

/// Prefix sum: classic ordered-through-registers loop; r9 is the CIR.
const PREFIX_SUM: &str = "
    li r4, 0x1000
    li r5, 0x2000
    li r2, 0
    li r3, 48
    li r9, 0
body:
    sll r6, r2, 2
    addu r7, r4, r6
    lw r8, 0(r7)
    addu r9, r9, r8
    addu r7, r5, r6
    sw r9, 0(r7)
    addiu r2, r2, 1
    xloop.or body, r2, r3
    exit";

fn prefix_init(mem: &mut Memory) {
    for i in 0..48 {
        mem.write_u32(0x1000 + 4 * i, i * i + 1);
    }
}

#[test]
fn or_cir_values_match_serial() {
    let (s, mut mem, _) = handoff(PREFIX_SUM, &prefix_init);
    assert_eq!(s.cirs.len(), 1, "r9 is the only CIR: {:?}", s.cirs);
    assert_eq!(s.cirs[0].reg, Reg::new(9));
    let r = run_lpsu(LpsuConfig::default4(), &s, &mut mem);
    let gold = golden(PREFIX_SUM, &prefix_init);
    for i in 0..48 {
        assert_eq!(mem.read_u32(0x2000 + 4 * i), gold.read_u32(0x2000 + 4 * i), "prefix {i}");
    }
    // The CIR live-out must equal the full serial sum.
    let total: u32 = (0..48).map(|i| i * i + 1).sum();
    assert_eq!(r.cir_finals, vec![(Reg::new(9), total)]);
    assert!(r.stats.cir_transfers >= r.iterations, "one CIR transfer per iteration");
}

#[test]
fn or_with_conditional_cir_write_matches_serial() {
    // The CIR r9 (running max) is only written when a new max is found, so
    // many iterations skip the last-CIR-write instruction and must forward
    // at end of iteration.
    let src = "
        li r4, 0x1000
        li r2, 0
        li r3, 40
        li r9, 0
    body:
        sll r6, r2, 2
        addu r7, r4, r6
        lw r8, 0(r7)
        bge r9, r8, skip
        addu r9, r8, r0
    skip:
        addiu r2, r2, 1
        xloop.or body, r2, r3
        sw r9, 0x3000(r0)
        exit";
    let init: &dyn Fn(&mut Memory) = &|mem| {
        let vals = [3u32, 17, 5, 99, 4, 23, 99, 1, 57, 80];
        for i in 0..40 {
            mem.write_u32(0x1000 + 4 * i, vals[(i % 10) as usize] + (i / 10));
        }
    };
    let (s, mut mem, _) = handoff(src, init);
    let r = run_lpsu(LpsuConfig::default4(), &s, &mut mem);
    let gold = golden(src, init);
    let expected = gold.read_u32(0x3000);
    assert_eq!(r.cir_finals, vec![(Reg::new(9), expected)]);
}

// ---------------------------------------------------------------- om ----

/// A loop where iteration i reads the element written by iteration i-K
/// (K = 3): genuine cross-iteration memory dependences that speculation
/// must respect.
const CHAINED_STORES: &str = "
    li r4, 0x1000
    li r2, 3             # start at i = K
    li r3, 40
body:
    sll r6, r2, 2
    addu r7, r4, r6
    lw r8, -12(r7)       # a[i-3]
    addiu r8, r8, 7
    sw r8, 0(r7)         # a[i]
    addiu r2, r2, 1
    xloop.om body, r2, r3
    exit";

fn chain_init(mem: &mut Memory) {
    for i in 0..40 {
        mem.write_u32(0x1000 + 4 * i, i);
    }
}

#[test]
fn om_preserves_serial_memory_order() {
    let (s, mut mem, _) = handoff(CHAINED_STORES, &chain_init);
    let r = run_lpsu(LpsuConfig::default4(), &s, &mut mem);
    let gold = golden(CHAINED_STORES, &chain_init);
    for i in 0..40 {
        assert_eq!(mem.read_u32(0x1000 + 4 * i), gold.read_u32(0x1000 + 4 * i), "a[{i}]");
    }
    // Distance-3 dependence with 4 lanes: lane 3 reads what lane 0 writes,
    // so violations (and squashes) are expected.
    assert!(r.stats.squashed_iters > 0, "expected memory-dependence squashes");
}

#[test]
fn om_without_conflicts_runs_parallel() {
    // Same pattern as uc but encoded om: no actual conflicts (disjoint
    // addresses), so it should still beat a single lane clearly.
    let src = VECTOR_SCALE.replace("xloop.uc", "xloop.om");
    let (s, mem0, _) = handoff(&src, &vector_init);
    let mut m4 = mem0.clone();
    let c4 = run_lpsu(LpsuConfig::default4(), &s, &mut m4).cycles;
    let mut m1 = mem0;
    let c1 = run_lpsu(LpsuConfig::default4().with_lanes(1), &s, &mut m1).cycles;
    assert!(c4 * 2 < c1, "conflict-free om should parallelize: 4-lane {c4} vs 1-lane {c1}");
    let gold = golden(&src, &vector_init);
    for i in 0..64 {
        assert_eq!(m4.read_u32(0x2000 + 4 * i), gold.read_u32(0x2000 + 4 * i));
    }
}

#[test]
fn om_bigger_lsq_helps_store_heavy_loops() {
    // Each iteration performs 12 stores: an 8-entry store LSQ stalls
    // speculative lanes; 16 entries relieve the pressure.
    let mut body = String::from(
        "
        li r4, 0x1000
        li r2, 0
        li r3, 64
    body:
        sll r6, r2, 6
        addu r7, r4, r6
    ",
    );
    for k in 0..12 {
        body.push_str(&format!("    sw r2, {}(r7)\n", 4 * k));
    }
    body.push_str(
        "    addiu r2, r2, 1
        xloop.om body, r2, r3
        exit",
    );
    let (s, mem0, _) = handoff(&body, &|_| {});
    let mut m_small = mem0.clone();
    let small = run_lpsu(LpsuConfig::default4(), &s, &mut m_small);
    let mut m_big = mem0;
    let big = run_lpsu(LpsuConfig::default4().with_big_lsq(), &s, &mut m_big);
    assert!(
        big.cycles < small.cycles,
        "16+16 LSQ should beat 8+8 here: {} vs {}",
        big.cycles,
        small.cycles
    );
    assert!(small.stats.stall_lsq > big.stats.stall_lsq);
}

// ---------------------------------------------------------------- ua ----

/// Histogram with plain loads/stores under `ua`: iterations may collide on
/// a bucket; atomicity (here via the serial-order mechanism) keeps counts
/// exact.
const HISTOGRAM_UA: &str = "
    li r4, 0x1000        # input
    li r5, 0x4000        # 16 buckets
    li r2, 0
    li r3, 64
body:
    sll r6, r2, 2
    addu r7, r4, r6
    lw r8, 0(r7)
    andi r8, r8, 15
    sll r8, r8, 2
    addu r8, r5, r8
    lw r9, 0(r8)
    addiu r9, r9, 1
    sw r9, 0(r8)
    addiu r2, r2, 1
    xloop.ua body, r2, r3
    exit";

fn histo_init(mem: &mut Memory) {
    for i in 0..64u32 {
        mem.write_u32(0x1000 + 4 * i, i.wrapping_mul(2654435761) >> 3);
    }
}

#[test]
fn ua_atomic_updates_are_exact() {
    let (s, mut mem, _) = handoff(HISTOGRAM_UA, &histo_init);
    run_lpsu(LpsuConfig::default4(), &s, &mut mem);
    let gold = golden(HISTOGRAM_UA, &histo_init);
    let mut total = 0;
    for b in 0..16 {
        assert_eq!(mem.read_u32(0x4000 + 4 * b), gold.read_u32(0x4000 + 4 * b), "bucket {b}");
        total += mem.read_u32(0x4000 + 4 * b);
    }
    assert_eq!(total, 64, "every element lands in exactly one bucket");
}

// ------------------------------------------------------------- uc.db ----

/// Worklist traversal: each processed item may append two children below a
/// cutoff, reserving space with `amo.add` and growing the bound register —
/// the Figure 1(e) pattern.
const WORKLIST_DB: &str = "
    li r4, 0x1000        # worklist of item values
    li r5, 0x5000        # tail counter (in memory)
    li r10, 0x6000       # output: processed flags
    li r2, 0             # i
    lw r3, 0(r5)         # bound = initial tail
body:
    sll r6, r2, 2
    addu r7, r4, r6
    lw r8, 0(r7)         # item
    sll r9, r8, 2
    addu r9, r10, r9
    sw r8, 0(r9)         # mark processed
    li r11, 24
    bge r8, r11, nokids  # only items < 24 spawn children
    li r12, 2
    amo.add r13, (r5), r12   # reserve two slots, returns old tail
    sll r14, r13, 2
    addu r14, r4, r14
    sll r15, r8, 1
    addiu r16, r15, 1    # child a = 2*item+1
    sw r16, 0(r14)
    addiu r16, r15, 2    # child b = 2*item+2
    sw r16, 4(r14)
    addiu r13, r13, 2
    addu r3, r13, r0     # grow the bound register
nokids:
    addiu r2, r2, 1
    xloop.uc.db body, r2, r3
    exit";

fn worklist_init(mem: &mut Memory) {
    mem.write_u32(0x1000, 0); // seed item: 0
    mem.write_u32(0x5000, 1); // tail = 1
}

#[test]
fn uc_db_processes_dynamically_grown_work() {
    let (s, mut mem, _) = handoff(WORKLIST_DB, &worklist_init);
    assert!(s.pattern.is_dynamic_bound());
    let r = run_lpsu(LpsuConfig::default4(), &s, &mut mem);
    // Seed 0 spawns 1,2; ... binary tree of items < 24: every reachable
    // item in {0..=48} gets marked. Compare against serial execution.
    let gold = golden(WORKLIST_DB, &worklist_init);
    let gold_tail = gold.read_u32(0x5000);
    assert_eq!(mem.read_u32(0x5000), gold_tail, "same total work generated");
    for item in 0..64u32 {
        assert_eq!(
            mem.read_u32(0x6000 + 4 * item),
            gold.read_u32(0x6000 + 4 * item),
            "processed flag for item {item}"
        );
    }
    assert!(r.final_bound >= 3, "bound grew beyond the initial tail");
    assert_eq!(r.final_bound, gold_tail, "final bound equals total items");
}

// -------------------------------------------------- multithreading -------

#[test]
fn multithreading_hides_llfu_latency_for_uc() {
    // Long RAW chains through the LLFU leave lanes idle; a second context
    // per lane fills the bubbles.
    let src = "
        li r4, 0x1000
        li r5, 0x2000
        li r2, 0
        li r3, 64
    body:
        sll r6, r2, 2
        addu r7, r4, r6
        lw r8, 0(r7)
        mul r8, r8, r8
        addiu r8, r8, 3
        mul r8, r8, r8
        addu r7, r5, r6
        sw r8, 0(r7)
        addiu r2, r2, 1
        xloop.uc body, r2, r3
        exit";
    let (s, mem0, _) = handoff(src, &vector_init);
    let mut m1 = mem0.clone();
    let plain = run_lpsu(LpsuConfig::default4().with_double_resources(), &s, &mut m1);
    let mut m2 = mem0;
    let mt =
        run_lpsu(LpsuConfig::default4().with_double_resources().with_multithreading(), &s, &mut m2);
    assert!(
        mt.cycles < plain.cycles,
        "multithreading should fill RAW bubbles: {} vs {}",
        mt.cycles,
        plain.cycles
    );
    // Results identical either way.
    for i in 0..64 {
        assert_eq!(m1.read_u32(0x2000 + 4 * i), m2.read_u32(0x2000 + 4 * i));
    }
}

// -------------------------------------------------------- accounting ----

#[test]
fn lane_cycle_accounting_is_conservative() {
    let (s, mut mem, _) = handoff(PREFIX_SUM, &prefix_init);
    let r = run_lpsu(LpsuConfig::default4(), &s, &mut mem);
    let lanes = 4;
    let budget = lanes * r.cycles;
    let used = r.stats.lane_cycles();
    assert!(used <= budget, "buckets {used} exceed lane-cycles {budget}");
    assert!(used * 10 >= budget * 8, "accounting should cover most lane-cycles: {used}/{budget}");
    assert!(r.stats.exec > 0 && r.stats.stall_cir > 0);
}

#[test]
fn profiling_cap_stops_at_iteration_boundary() {
    let (s, mut mem, _) = handoff(VECTOR_SCALE, &vector_init);
    let mut dcache = Cache::new(CacheConfig::l1_default());
    let r = Lpsu::new(LpsuConfig::default4())
        .execute(&s, &mut mem, &mut dcache, Some(10))
        .expect("engine makes progress");
    assert_eq!(r.iterations, 10);
    assert_eq!(r.final_idx, s.iter_value(10));
    // First 10 LPSU iterations (values 1..=10) are in memory; later ones not.
    assert_eq!(mem.read_u32(0x2000 + 4), (1 + 100) * 2);
    assert_eq!(mem.read_u32(0x2000 + 4 * 20), 0);
}
