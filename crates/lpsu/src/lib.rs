//! # xloops-lpsu
//!
//! The **loop-pattern specialization unit** (LPSU) of Section II-D: a
//! configurable number of decoupled in-order lanes plus a lane management
//! unit (LMU), attached to a GPP. The GPP and the lanes dynamically
//! arbitrate for a shared data-memory port and a shared long-latency
//! functional unit — the sharing that keeps the LPSU's area overhead near
//! 40% of a scalar core.
//!
//! Specialized execution has two phases:
//!
//! 1. **Scan** ([`scan`]): when the GPP reaches a taken `xloop`, the loop
//!    body and live-in registers are streamed into the lanes' instruction
//!    buffers; the LMU renames registers once (amortizing rename energy
//!    over all iterations), builds the mutual-induction-variable table
//!    (MIVT) from `xi` instructions, and identifies cross-iteration
//!    registers (CIRs, read-before-written) with their last-writer.
//! 2. **Specialized execution** ([`Lpsu::execute`]): the LMU hands
//!    iteration indices to idle lanes. Per pattern:
//!    * `uc` — iterations run fully concurrently; stores go straight to
//!      memory; AMOs synchronize.
//!    * `or`/`orm` — CIR values flow between consecutive iterations through
//!      cross-iteration buffers (CIBs); a consumer stalls until the
//!      producing iteration publishes (at its last CIR write, or at
//!      iteration end when the last write was control-flow-skipped).
//!    * `om`/`orm`/`ua` — per-lane load-store queues buffer speculative
//!      stores; the lowest active iteration is non-speculative and writes
//!      memory directly; every store that reaches memory broadcasts its
//!      address, and a speculative lane that already loaded from that
//!      address squashes and restarts its iteration.
//!    * `*.db` — writes to the bound register are reported to the LMU,
//!      which monotonically grows the iteration space.
//!
//! The model is cycle-stepped and deterministic, and it reports the stall
//! breakdown of Figure 6 (RAW, memory-port, LLFU, CIR, LSQ, squash, idle).

mod config;
mod engine;
pub mod fault;
mod lsq;
mod scan;
mod stats;

pub use config::LpsuConfig;
pub use engine::{Lpsu, LpsuError, LpsuResult, Stepper};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
pub use scan::{scan, ScanError, ScanResult};
pub use stats::LpsuStats;
