//! Per-lane load-store queues for memory-dependence speculation
//! (`xloop.om`, `xloop.orm`, `xloop.ua`).

use std::collections::VecDeque;

use xloops_isa::MemOp;

/// A buffered speculative store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct StoreEntry {
    pub addr: u32,
    pub op: MemOp,
    pub value: u32,
}

/// The 2r1w load-store queue attached to each lane.
///
/// Stores issued by a speculative lane are buffered here instead of
/// updating memory; loads check the queue (newest first) for store-to-load
/// forwarding; load addresses are remembered so a broadcast store address
/// from an older iteration can detect a memory-dependence violation.
#[derive(Clone, Debug, Default)]
pub(crate) struct Lsq {
    stores: VecDeque<StoreEntry>,
    /// Word-granular addresses this iteration has loaded from memory.
    load_words: Vec<u32>,
}

impl Lsq {
    /// Whether another store can be buffered.
    pub fn store_has_room(&self, capacity: u32) -> bool {
        (self.stores.len() as u32) < capacity
    }

    /// Whether another load can be tracked.
    pub fn load_has_room(&self, capacity: u32) -> bool {
        (self.load_words.len() as u32) < capacity
    }

    /// Buffers a speculative store (program order within the iteration).
    #[inline]
    pub fn push_store(&mut self, addr: u32, op: MemOp, value: u32) {
        debug_assert!(op.is_store());
        self.stores.push_back(StoreEntry { addr, op, value });
    }

    /// Records that this iteration loaded from `addr` (word granularity).
    pub fn record_load(&mut self, addr: u32) {
        let w = addr & !3;
        if !self.load_words.contains(&w) {
            self.load_words.push(w);
        }
    }

    /// Searches (newest first) for a store to forward to a load of
    /// `(addr, op)`. Returns the value only on an exact address+width
    /// match; an overlapping but non-identical access cannot forward, and
    /// the caller treats it as a forwarding failure (reads memory — any
    /// inconsistency is caught by the violation broadcast at drain).
    pub fn forward(&self, addr: u32, op: MemOp) -> Option<u32> {
        self.stores
            .iter()
            .rev()
            .find(|s| s.addr == addr && s.op.size() == op.size())
            .map(|s| s.value)
    }

    /// Whether this iteration loaded from the word containing `addr`
    /// (violation check against a broadcast store address).
    pub fn loaded_word(&self, addr: u32) -> bool {
        self.load_words.contains(&(addr & !3))
    }

    /// Number of buffered stores.
    pub fn store_count(&self) -> usize {
        self.stores.len()
    }

    /// Removes and returns the oldest buffered store.
    #[inline]
    pub fn pop_store(&mut self) -> Option<StoreEntry> {
        self.stores.pop_front()
    }

    /// Flushes everything (squash or commit).
    pub fn clear(&mut self) {
        self.stores.clear();
        self.load_words.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_prefers_newest_store() {
        let mut q = Lsq::default();
        q.push_store(0x100, MemOp::Sw, 1);
        q.push_store(0x100, MemOp::Sw, 2);
        assert_eq!(q.forward(0x100, MemOp::Lw), Some(2));
        assert_eq!(q.forward(0x104, MemOp::Lw), None);
    }

    #[test]
    fn width_mismatch_does_not_forward() {
        let mut q = Lsq::default();
        q.push_store(0x100, MemOp::Sb, 0xAA);
        assert_eq!(q.forward(0x100, MemOp::Lw), None);
        assert_eq!(q.forward(0x100, MemOp::Lb), Some(0xAA));
    }

    #[test]
    fn violation_detection_is_word_granular() {
        let mut q = Lsq::default();
        q.record_load(0x102); // byte load inside word 0x100
        assert!(q.loaded_word(0x100));
        assert!(q.loaded_word(0x103));
        assert!(!q.loaded_word(0x104));
    }

    #[test]
    fn capacity_checks() {
        let mut q = Lsq::default();
        for i in 0..8 {
            assert!(q.store_has_room(8));
            q.push_store(i * 4, MemOp::Sw, i);
        }
        assert!(!q.store_has_room(8));
        assert!(q.store_has_room(16));
        q.record_load(0);
        assert!(q.load_has_room(8));
    }

    #[test]
    fn drain_in_program_order() {
        let mut q = Lsq::default();
        q.push_store(0x10, MemOp::Sw, 1);
        q.push_store(0x20, MemOp::Sw, 2);
        assert_eq!(q.pop_store().unwrap().addr, 0x10);
        assert_eq!(q.pop_store().unwrap().addr, 0x20);
        assert_eq!(q.pop_store(), None);
    }

    #[test]
    fn clear_resets_both_sides() {
        let mut q = Lsq::default();
        q.push_store(0x10, MemOp::Sw, 1);
        q.record_load(0x20);
        q.clear();
        assert_eq!(q.store_count(), 0);
        assert!(!q.loaded_word(0x20));
    }
}
