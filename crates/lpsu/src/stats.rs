use xloops_stats::StatSet;

/// Statistics of one specialized-execution phase, including the per-cycle
/// breakdown reported in Figure 6 of the paper.
///
/// Every *lane-cycle* of the phase falls into exactly one bucket, so
/// `exec + stall_* + idle + squash ≈ lanes × phase_cycles`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LpsuStats {
    /// Lane-cycles spent executing instructions that were ultimately kept.
    pub exec: u64,
    /// Lane-cycles stalled on intra-iteration RAW dependences (including
    /// load-use and LLFU-result waits).
    pub stall_raw: u64,
    /// Lane-cycles stalled arbitrating for the shared memory port.
    pub stall_mem_port: u64,
    /// Lane-cycles stalled arbitrating for the shared LLFU.
    pub stall_llfu: u64,
    /// Lane-cycles stalled waiting for a cross-iteration register value.
    pub stall_cir: u64,
    /// Lane-cycles stalled because the LSQ was full or waiting to commit.
    pub stall_lsq: u64,
    /// Lane-cycles of squashed (discarded) speculative work.
    pub squash: u64,
    /// Lane-cycles with no iteration to run.
    pub idle: u64,
    /// Iterations that were squashed and restarted.
    pub squashed_iters: u64,
    /// Iterations committed.
    pub iterations: u64,
    /// Instructions executed and kept (instruction-buffer fetches that
    /// retired).
    pub instret: u64,
    /// Instructions executed and then squashed.
    pub squashed_instrs: u64,
    /// Loads + stores + AMOs issued to memory (energy events).
    pub mem_accesses: u64,
    /// LLFU operations executed.
    pub llfu_ops: u64,
    /// `xi` MIV computations (narrow multiplies).
    pub xi_ops: u64,
    /// CIR values transferred through CIBs.
    pub cir_transfers: u64,
    /// LSQ search/insert events.
    pub lsq_events: u64,
}

impl LpsuStats {
    /// Total lane-cycles across all buckets.
    pub fn lane_cycles(&self) -> u64 {
        self.exec
            + self.stall_raw
            + self.stall_mem_port
            + self.stall_llfu
            + self.stall_cir
            + self.stall_lsq
            + self.squash
            + self.idle
    }

    /// This phase's statistics as a node of the unified schema.
    ///
    /// Layout: lane-cycle buckets `exec`/`squash`/`idle` plus the derived
    /// `lane_cycles` total and the event counters at the root; the stall
    /// buckets live in a `stalls` child (`raw`, `mem_port`, `llfu`, `cir`,
    /// `lsq`), so a Figure 6 consumer reads `stalls.raw` etc. through one
    /// dotted path per bucket.
    pub fn stat_set(&self) -> StatSet {
        let mut s = StatSet::new("lpsu");
        s.set("lane_cycles", self.lane_cycles())
            .set("exec", self.exec)
            .set("squash", self.squash)
            .set("idle", self.idle)
            .set("iterations", self.iterations)
            .set("squashed_iters", self.squashed_iters)
            .set("instret", self.instret)
            .set("squashed_instrs", self.squashed_instrs)
            .set("mem_accesses", self.mem_accesses)
            .set("llfu_ops", self.llfu_ops)
            .set("xi_ops", self.xi_ops)
            .set("cir_transfers", self.cir_transfers)
            .set("lsq_events", self.lsq_events);

        let mut stalls = StatSet::new("stalls");
        stalls
            .set("raw", self.stall_raw)
            .set("mem_port", self.stall_mem_port)
            .set("llfu", self.stall_llfu)
            .set("cir", self.stall_cir)
            .set("lsq", self.stall_lsq);
        s.push_child(stalls);
        s
    }

    /// Merges another phase's statistics into this one.
    pub fn merge(&mut self, other: &LpsuStats) {
        self.exec += other.exec;
        self.stall_raw += other.stall_raw;
        self.stall_mem_port += other.stall_mem_port;
        self.stall_llfu += other.stall_llfu;
        self.stall_cir += other.stall_cir;
        self.stall_lsq += other.stall_lsq;
        self.squash += other.squash;
        self.idle += other.idle;
        self.squashed_iters += other.squashed_iters;
        self.iterations += other.iterations;
        self.instret += other.instret;
        self.squashed_instrs += other.squashed_instrs;
        self.mem_accesses += other.mem_accesses;
        self.llfu_ops += other.llfu_ops;
        self.xi_ops += other.xi_ops;
        self.cir_transfers += other.cir_transfers;
        self.lsq_events += other.lsq_events;
    }
}
