/// Configuration of a loop-pattern specialization unit.
///
/// The default matches the paper's primary design point
/// (`lpsu+i128+ln4`): four lanes, 128-entry instruction buffers, 8+8-entry
/// load-store queues, one shared memory port, one shared (unpipelined)
/// LLFU, no lane multithreading.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LpsuConfig {
    /// Number of decoupled lanes (2–8 in the paper's design space).
    pub lanes: u32,
    /// Loop-instruction-buffer entries per lane; loops with bigger bodies
    /// fall back to traditional execution.
    pub ibuf_entries: u32,
    /// Speculative-load entries per lane LSQ.
    pub lsq_loads: u32,
    /// Speculative-store entries per lane LSQ.
    pub lsq_stores: u32,
    /// Shared data-memory ports (1; 2 in the `+r` design point).
    pub mem_ports: u32,
    /// Shared long-latency functional units (1; 2 in the `+r` design point).
    pub llfus: u32,
    /// Vertical multithreading contexts per lane (1 = off; 2 in the `+t`
    /// design point). Only `xloop.uc` uses the extra context — the paper
    /// disables multithreading for ordered patterns because it slows the
    /// inter-iteration critical path and the non-speculative lane.
    pub contexts: u32,
    /// Extra cycles to transfer a CIR value between lanes through a CIB.
    pub cib_latency: u32,
    /// Allow a speculative load that misses its own LSQ to snoop *older
    /// active iterations'* LSQs before going to memory — the paper's
    /// "more aggressive implementations" extension (Section II-D). Adds a
    /// 2-cycle cross-lane network hop, and a provider squash must flush
    /// its consumers.
    pub cross_lane_forwarding: bool,
}

impl LpsuConfig {
    /// The paper's primary LPSU: `lpsu+i128+ln4`.
    pub fn default4() -> LpsuConfig {
        LpsuConfig {
            lanes: 4,
            ibuf_entries: 128,
            lsq_loads: 8,
            lsq_stores: 8,
            mem_ports: 1,
            llfus: 1,
            contexts: 1,
            cib_latency: 1,
            cross_lane_forwarding: false,
        }
    }

    /// Figure 9 `ooo/4+x4+t`: adds two-way lane multithreading.
    pub fn with_multithreading(mut self) -> LpsuConfig {
        self.contexts = 2;
        self
    }

    /// Figure 9 `…x8`: doubles the lane count.
    pub fn with_lanes(mut self, lanes: u32) -> LpsuConfig {
        self.lanes = lanes;
        self
    }

    /// Figure 9 `…+r`: doubles the shared LLFUs and memory ports.
    pub fn with_double_resources(mut self) -> LpsuConfig {
        self.mem_ports = 2;
        self.llfus = 2;
        self
    }

    /// Figure 9 `…+m`: grows the LSQs to 16+16 entries.
    pub fn with_big_lsq(mut self) -> LpsuConfig {
        self.lsq_loads = 16;
        self.lsq_stores = 16;
        self
    }

    /// Enables cross-lane store-load forwarding (paper extension).
    pub fn with_cross_lane_forwarding(mut self) -> LpsuConfig {
        self.cross_lane_forwarding = true;
        self
    }

    /// Sets the CIB transfer latency (ablation studies).
    pub fn with_cib_latency(mut self, cycles: u32) -> LpsuConfig {
        self.cib_latency = cycles;
        self
    }

    /// Table V style name, e.g. `lpsu+i128+ln4`.
    pub fn name(&self) -> String {
        format!("lpsu+i{:03}+ln{}", self.ibuf_entries, self.lanes)
    }
}

impl Default for LpsuConfig {
    fn default() -> LpsuConfig {
        LpsuConfig::default4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_primary_design_point() {
        let c = LpsuConfig::default4();
        assert_eq!(c.lanes, 4);
        assert_eq!(c.ibuf_entries, 128);
        assert_eq!((c.lsq_loads, c.lsq_stores), (8, 8));
        assert_eq!(c.name(), "lpsu+i128+ln4");
    }

    #[test]
    fn design_space_builders() {
        let c = LpsuConfig::default4().with_lanes(8).with_double_resources().with_big_lsq();
        assert_eq!(c.lanes, 8);
        assert_eq!(c.mem_ports, 2);
        assert_eq!(c.llfus, 2);
        assert_eq!(c.lsq_loads, 16);
        assert_eq!(c.name(), "lpsu+i128+ln8");
        assert_eq!(LpsuConfig::default4().with_multithreading().contexts, 2);
    }
}
