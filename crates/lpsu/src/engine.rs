//! The cycle-stepped specialized-execution engine.

use xloops_func::{alu_imm_value, load, store};
use xloops_isa::{Instr, Reg};
use xloops_mem::{Cache, FxHashMap, Memory, SharedPort, SharedUnit};

use crate::config::LpsuConfig;
use crate::lsq::Lsq;
use crate::scan::ScanResult;
use crate::stats::LpsuStats;

/// Result of one specialized-execution phase.
#[derive(Clone, Debug)]
pub struct LpsuResult {
    /// Cycles the phase occupied (the GPP stalls for this long).
    pub cycles: u64,
    /// Iterations committed.
    pub iterations: u64,
    /// Serial-equivalent final value of the induction register.
    pub final_idx: u32,
    /// Final value of the bound register (grows for `.db` loops).
    pub final_bound: u32,
    /// Serial-equivalent final values of the cross-iteration registers
    /// (the one class of live-outs the ISA defines).
    pub cir_finals: Vec<(Reg, u32)>,
    /// Cycle-level statistics (Figure 6 breakdown).
    pub stats: LpsuStats,
}

/// Why a context could not make progress this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    Raw,
    MemPort,
    Llfu,
    Cir,
    Lsq,
    Idle,
}

/// Per-iteration stall tally, merged into [`LpsuStats`] at commit (kept
/// work) or folded into the squash bucket when the iteration restarts.
#[derive(Clone, Copy, Debug, Default)]
struct IterTally {
    exec: u64,
    raw: u64,
    mem_port: u64,
    llfu: u64,
    cir: u64,
    lsq: u64,
    instrs: u64,
    mem_accesses: u64,
    llfu_ops: u64,
    xi_ops: u64,
    cir_transfers: u64,
    lsq_events: u64,
}

impl IterTally {
    fn blocked(&mut self, b: Block) {
        match b {
            Block::Raw => self.raw += 1,
            Block::MemPort => self.mem_port += 1,
            Block::Llfu => self.llfu += 1,
            Block::Cir => self.cir += 1,
            Block::Lsq => self.lsq += 1,
            Block::Idle => {}
        }
    }

    fn commit_into(&self, s: &mut LpsuStats) {
        s.exec += self.exec;
        s.stall_raw += self.raw;
        s.stall_mem_port += self.mem_port;
        s.stall_llfu += self.llfu;
        s.stall_cir += self.cir;
        s.stall_lsq += self.lsq;
        s.instret += self.instrs;
        s.mem_accesses += self.mem_accesses;
        s.llfu_ops += self.llfu_ops;
        s.xi_ops += self.xi_ops;
        s.cir_transfers += self.cir_transfers;
        s.lsq_events += self.lsq_events;
    }

    fn squash_into(&self, s: &mut LpsuStats) {
        s.squash += self.exec + self.raw + self.mem_port + self.llfu + self.cir + self.lsq;
        s.squashed_instrs += self.instrs;
        // Energy was still spent on the discarded work.
        s.mem_accesses += self.mem_accesses;
        s.llfu_ops += self.llfu_ops;
        s.xi_ops += self.xi_ops;
        s.cir_transfers += self.cir_transfers;
        s.lsq_events += self.lsq_events;
    }
}

/// One hardware iteration context (a lane, or one thread of a
/// multithreaded lane).
#[derive(Clone, Debug)]
struct Ctx {
    iter: Option<u64>,
    pc: usize,
    regs: [u32; 32],
    reg_ready: [u64; 32],
    busy_until: u64,
    lsq: Lsq,
    /// CIRs localized this iteration (received from the CIB or written).
    cir_local: u32,
    /// CIRs already forwarded to the next iteration.
    cir_pub: u32,
    /// Finished executing, waiting to commit/drain (ordered-memory only).
    done_exec: bool,
    tally: IterTally,
}

impl Ctx {
    fn new() -> Ctx {
        Ctx {
            iter: None,
            pc: 0,
            regs: [0; 32],
            reg_ready: [0; 32],
            busy_until: 0,
            lsq: Lsq::default(),
            cir_local: 0,
            cir_pub: 0,
            done_exec: false,
            tally: IterTally::default(),
        }
    }
}

/// The loop-pattern specialization unit.
///
/// Construct once per system with a [`LpsuConfig`]; call
/// [`execute`](Lpsu::execute) per specialized loop instance. The unit is
/// stateless between loops (the instruction buffers are re-scanned per
/// dynamic instance, as in the paper).
#[derive(Clone, Debug)]
pub struct Lpsu {
    config: LpsuConfig,
}

impl Lpsu {
    /// Creates an LPSU with the given configuration.
    pub fn new(config: LpsuConfig) -> Lpsu {
        Lpsu { config }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &LpsuConfig {
        &self.config
    }

    /// Executes the scanned loop on the LPSU, mutating architectural
    /// memory, and returns the phase timing/statistics.
    ///
    /// `max_iters` caps how many iterations are *assigned* (used by the
    /// adaptive-execution LPSU profiling phase); migration happens at an
    /// iteration boundary, so all assigned iterations complete.
    ///
    /// # Panics
    ///
    /// Panics if the engine fails to make forward progress (an internal
    /// invariant violation, not reachable from safe inputs).
    pub fn execute(
        &self,
        scan: &ScanResult,
        mem: &mut Memory,
        dcache: &mut Cache,
        max_iters: Option<u64>,
    ) -> LpsuResult {
        Engine::new(&self.config, scan, mem, dcache, max_iters).run()
    }
}

struct Engine<'a> {
    cfg: &'a LpsuConfig,
    scan: &'a ScanResult,
    mem: &'a mut Memory,
    dcache: &'a mut Cache,
    max_iters: u64,

    orders_mem: bool,
    orders_reg: bool,
    contexts_per_lane: u32,
    ctxs: Vec<Ctx>,
    port: SharedPort,
    llfu_pipe: SharedPort,
    llfu_div: SharedUnit,
    /// CIR channel: value produced by iteration `.0` for register `.1`,
    /// available at the stamped cycle.
    chan: FxHashMap<(i64, u8), (u32, u64)>,
    next_iter: u64,
    frontier: u64,
    committed: u64,
    bound: u32,
    stats: LpsuStats,
    cycle: u64,
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a LpsuConfig,
        scan: &'a ScanResult,
        mem: &'a mut Memory,
        dcache: &'a mut Cache,
        max_iters: Option<u64>,
    ) -> Engine<'a> {
        let orders_mem = scan.pattern.data.orders_memory();
        let orders_reg = scan.pattern.data.orders_registers();
        // Multithreading applies only to plain `uc` (the paper disables it
        // for patterns with register or memory ordering).
        let contexts_per_lane = if !orders_mem && !orders_reg { cfg.contexts } else { 1 };
        let n = (cfg.lanes * contexts_per_lane) as usize;
        let mut chan = FxHashMap::default();
        if orders_reg {
            for cir in &scan.cirs {
                chan.insert((-1i64, cir.reg.index() as u8), (scan.live_ins[cir.reg.index()], 0));
            }
        }
        Engine {
            cfg,
            scan,
            mem,
            dcache,
            max_iters: max_iters.unwrap_or(u64::MAX),
            orders_mem,
            orders_reg,
            contexts_per_lane,
            ctxs: vec![Ctx::new(); n],
            port: SharedPort::new(cfg.mem_ports),
            llfu_pipe: SharedPort::new(cfg.llfus),
            llfu_div: SharedUnit::new(cfg.llfus),
            chan,
            next_iter: 0,
            frontier: 0,
            committed: 0,
            bound: scan.live_ins[scan.bound_reg.index()],
            stats: LpsuStats::default(),
            cycle: 0,
        }
    }

    fn run(mut self) -> LpsuResult {
        const CYCLE_CAP: u64 = 50_000_000_000;
        loop {
            if !self.any_work() {
                break;
            }
            self.step_cycle();
            self.cycle += 1;
            assert!(self.cycle < CYCLE_CAP, "LPSU failed to make forward progress");
        }
        self.stats.iterations = self.committed;
        let cir_finals = self
            .scan
            .cirs
            .iter()
            .map(|c| {
                let v = if self.committed == 0 {
                    self.scan.live_ins[c.reg.index()]
                } else {
                    self.chan
                        .get(&(self.committed as i64 - 1, c.reg.index() as u8))
                        .expect("last committed iteration published every CIR")
                        .0
                };
                (c.reg, v)
            })
            .collect();
        LpsuResult {
            cycles: self.cycle,
            iterations: self.committed,
            final_idx: self.scan.iter_value(self.committed),
            final_bound: self.bound,
            cir_finals,
            stats: self.stats,
        }
    }

    fn iter_assignable(&self) -> bool {
        self.next_iter < self.max_iters
            && (self.scan.iter_value(self.next_iter) as i32) < (self.bound as i32)
    }

    fn any_work(&self) -> bool {
        self.iter_assignable() || self.ctxs.iter().any(|c| c.iter.is_some())
    }

    fn step_cycle(&mut self) {
        let lanes = self.cfg.lanes as usize;
        let k = self.contexts_per_lane as usize;
        // Rotate lane polling order for fair arbitration of shared
        // resources, and rotate context preference within a lane.
        let lane_rot = self.cycle as usize % lanes;
        let ctx_rot = self.cycle as usize % k;
        for li in 0..lanes {
            let mut lane = li + lane_rot;
            if lane >= lanes {
                lane -= lanes;
            }
            let mut progressed = false;
            let mut first_block: Option<Block> = None;
            for ci in 0..k {
                let mut co = ci + ctx_rot;
                if co >= k {
                    co -= k;
                }
                let ctx_idx = lane * k + co;
                match self.ctx_step(ctx_idx) {
                    Ok(()) => {
                        progressed = true;
                        break;
                    }
                    Err(b) => {
                        if first_block.is_none() {
                            first_block = Some(b);
                        }
                    }
                }
            }
            if progressed {
                continue;
            }
            // Account the lane-cycle to the first context's blocking cause.
            match first_block.unwrap_or(Block::Idle) {
                Block::Idle => self.stats.idle += 1,
                b => {
                    let ctx_idx = lane * k + ctx_rot;
                    self.ctxs[ctx_idx].tally.blocked(b);
                }
            }
        }
    }

    /// Tries to make the context progress this cycle. `Ok` means it used
    /// its lane's issue slot; `Err` reports why it could not.
    fn ctx_step(&mut self, ci: usize) -> Result<(), Block> {
        if self.ctxs[ci].busy_until > self.cycle {
            // Pipeline occupied by a previous issue (multi-cycle front end
            // effects such as taken-branch bubbles).
            self.ctxs[ci].tally.exec += 1;
            return Ok(());
        }
        if self.ctxs[ci].iter.is_none() {
            if !self.iter_assignable() {
                return Err(Block::Idle);
            }
            let it = self.next_iter;
            self.next_iter += 1;
            self.start_iteration(ci, it);
            // The IDQ dequeue / context start occupies the slot.
            self.ctxs[ci].tally.exec += 1;
            return Ok(());
        }
        let iter = self.ctxs[ci].iter.expect("checked above");

        // Promotion drain: a (possibly still executing) lane that has
        // become non-speculative first drains its buffered stores in
        // program order, one per cycle through the shared port.
        if self.orders_mem && iter == self.frontier && self.ctxs[ci].lsq.store_count() > 0 {
            if !self.port.try_issue(self.cycle) {
                return Err(Block::MemPort);
            }
            let entry = self.ctxs[ci].lsq.pop_store().expect("store count checked");
            store(self.mem, entry.op, entry.addr, entry.value);
            self.dcache.access(entry.addr, true);
            self.ctxs[ci].tally.mem_accesses += 1;
            self.broadcast_store(entry.addr, iter);
            self.ctxs[ci].tally.exec += 1;
            return Ok(());
        }

        if self.ctxs[ci].done_exec {
            if iter == self.frontier {
                // LSQ already drained above; commit.
                self.commit(ci);
                return Ok(());
            }
            return Err(Block::Lsq); // waiting for promotion
        }

        if self.ctxs[ci].pc == self.scan.body.len() {
            return self.end_of_body(ci);
        }

        self.issue_instr(ci)
    }

    fn start_iteration(&mut self, ci: usize, iter: u64) {
        let value = self.scan.iter_value(iter);
        let ctx = &mut self.ctxs[ci];
        ctx.iter = Some(iter);
        ctx.pc = 0;
        ctx.regs = self.scan.live_ins;
        ctx.regs[self.scan.idx_reg.index()] = value;
        ctx.reg_ready = [0; 32];
        ctx.lsq.clear();
        ctx.cir_local = 0;
        ctx.cir_pub = 0;
        ctx.done_exec = false;
        ctx.tally = IterTally::default();
        ctx.busy_until = self.cycle + 1;
    }

    fn commit(&mut self, ci: usize) {
        let ctx = &mut self.ctxs[ci];
        debug_assert_eq!(ctx.lsq.store_count(), 0, "commit requires a drained LSQ");
        ctx.tally.commit_into(&mut self.stats);
        ctx.lsq.clear();
        ctx.iter = None;
        ctx.done_exec = false;
        self.frontier += 1;
        self.committed += 1;
        // Old CIR channel entries are dead once their consumer committed.
        if self.orders_reg && self.frontier.is_multiple_of(64) {
            let horizon = self.frontier as i64 - 2;
            self.chan.retain(|&(it, _), _| it >= horizon);
        }
    }

    /// End-of-iteration sequence: reconcile and publish any CIRs whose
    /// last write was skipped by control flow, then complete.
    fn end_of_body(&mut self, ci: usize) -> Result<(), Block> {
        let iter = self.ctxs[ci].iter.expect("active iteration");
        if self.orders_reg {
            for idx in 0..self.scan.cirs.len() {
                let cir = self.scan.cirs[idx];
                let bit = 1u32 << cir.reg.index();
                if self.ctxs[ci].cir_pub & bit != 0 {
                    continue;
                }
                if self.ctxs[ci].cir_local & bit == 0 {
                    // Never received nor wrote it: pull the previous
                    // iteration's value so it can be forwarded on.
                    match self.chan.get(&(iter as i64 - 1, cir.reg.index() as u8)) {
                        Some(&(v, avail)) if avail <= self.cycle => {
                            self.ctxs[ci].regs[cir.reg.index()] = v;
                            self.ctxs[ci].cir_local |= bit;
                        }
                        _ => return Err(Block::Cir),
                    }
                }
                let value = self.ctxs[ci].regs[cir.reg.index()];
                self.publish_cir(iter, cir.reg, value);
                self.ctxs[ci].cir_pub |= bit;
                self.ctxs[ci].tally.cir_transfers += 1;
                self.ctxs[ci].tally.exec += 1;
                return Ok(()); // one CIB transfer per cycle
            }
        }
        // All CIRs settled; finish the iteration.
        if self.orders_mem && (iter != self.frontier || self.ctxs[ci].lsq.store_count() > 0) {
            self.ctxs[ci].done_exec = true;
            return Err(Block::Lsq); // waits for promotion + drain
        }
        self.commit(ci);
        Ok(())
    }

    fn publish_cir(&mut self, iter: u64, reg: Reg, value: u32) {
        self.chan.insert(
            (iter as i64, reg.index() as u8),
            (value, self.cycle + self.cfg.cib_latency as u64),
        );
    }

    /// A store from `store_iter` reached memory: squash any younger
    /// iteration that already loaded from that word.
    fn broadcast_store(&mut self, addr: u32, store_iter: u64) {
        let mut squash_from: Option<u64> = None;
        for ctx in &self.ctxs {
            if let Some(it) = ctx.iter {
                if it > store_iter && ctx.lsq.loaded_word(addr) {
                    squash_from = Some(squash_from.map_or(it, |s: u64| s.min(it)));
                }
            }
        }
        let Some(first) = squash_from else { return };
        // With register ordering (orm), a squashed iteration may already
        // have forwarded CIR values to its successors; with cross-lane
        // forwarding, so may its buffered stores. Either way the
        // conservative cascade flushes every younger active iteration.
        for ci in 0..self.ctxs.len() {
            if let Some(it) = self.ctxs[ci].iter {
                let direct = it >= first && self.ctxs[ci].lsq.loaded_word(addr);
                let cascade = (self.orders_reg || self.cfg.cross_lane_forwarding) && it > first;
                if direct || cascade {
                    self.squash(ci);
                }
            }
        }
    }

    fn squash(&mut self, ci: usize) {
        let iter = self.ctxs[ci].iter.expect("squashing an active iteration");
        self.stats.squashed_iters += 1;
        self.ctxs[ci].tally.squash_into(&mut self.stats);
        // Un-publish CIR values the squashed iteration produced.
        if self.orders_reg {
            self.chan.retain(|&(it, _), _| it != iter as i64);
        }
        let value = self.scan.iter_value(iter);
        let ctx = &mut self.ctxs[ci];
        ctx.pc = 0;
        ctx.regs = self.scan.live_ins;
        ctx.regs[self.scan.idx_reg.index()] = value;
        ctx.reg_ready = [0; 32];
        ctx.lsq.clear();
        ctx.cir_local = 0;
        ctx.cir_pub = 0;
        ctx.done_exec = false;
        ctx.tally = IterTally::default();
        ctx.busy_until = self.cycle + 1; // pipeline flush
    }

    fn is_cir(&self, r: Reg) -> bool {
        self.scan.cirs.iter().any(|c| c.reg == r)
    }

    fn issue_instr(&mut self, ci: usize) -> Result<(), Block> {
        let iter = self.ctxs[ci].iter.expect("active iteration");
        let pc = self.ctxs[ci].pc;
        let instr = self.scan.body[pc];

        // CIR availability: the first read of a CIR pulls the value from
        // the CIB connected to the previous lane.
        if self.orders_reg {
            for src in instr.srcs().into_iter().flatten() {
                let bit = 1u32 << src.index();
                if self.is_cir(src) && self.ctxs[ci].cir_local & bit == 0 {
                    match self.chan.get(&(iter as i64 - 1, src.index() as u8)) {
                        Some(&(v, avail)) if avail <= self.cycle => {
                            self.ctxs[ci].regs[src.index()] = v;
                            self.ctxs[ci].cir_local |= bit;
                        }
                        _ => return Err(Block::Cir),
                    }
                }
            }
        }

        // RAW: all sources must be ready (full bypassing within the lane).
        for src in instr.srcs().into_iter().flatten() {
            if self.ctxs[ci].reg_ready[src.index()] > self.cycle {
                return Err(Block::Raw);
            }
        }

        // The iteration is speculative w.r.t. memory unless it is the
        // frontier (a frontier lane reaching here has a drained LSQ).
        let speculative = self.orders_mem && iter != self.frontier;

        let mut next_pc = pc + 1;
        let mut busy = self.cycle + 1;
        let mut result: Option<(Reg, u32, u64)> = None; // (reg, value, ready)

        match instr {
            Instr::Alu { op, rd, rs, rt } => {
                let v = op.apply(self.reg(ci, rs), self.reg(ci, rt));
                result = Some((rd, v, self.cycle + 1));
            }
            Instr::AluImm { op, rd, rs, imm } => {
                let v = op.apply(self.reg(ci, rs), alu_imm_value(op, imm));
                result = Some((rd, v, self.cycle + 1));
            }
            Instr::Lui { rd, imm } => {
                result = Some((rd, (imm as u32) << 16, self.cycle + 1));
            }
            Instr::Xi { reg, .. } => {
                self.ctxs[ci].tally.xi_ops += 1;
                if reg == self.scan.idx_reg {
                    // Induction update: a plain add of the step.
                    let v = self.reg(ci, reg).wrapping_add(self.scan.step as u32);
                    result = Some((reg, v, self.cycle + 1));
                } else {
                    // MIVT lookup: value = live-in + inc × (ordinal + 1),
                    // computed with the narrow multiplier.
                    let entry = self
                        .scan
                        .mivt
                        .iter()
                        .find(|m| m.reg == reg)
                        .expect("xi register is in the MIVT");
                    let v = self.scan.live_ins[reg.index()]
                        .wrapping_add((entry.inc as i64 * (iter as i64 + 1)) as u32);
                    result = Some((reg, v, self.cycle + 1));
                }
            }
            Instr::Llfu { op, rd, rs, rt } => {
                let granted = if op.is_pipelined() {
                    self.llfu_pipe.try_issue(self.cycle)
                } else {
                    self.llfu_div.try_start(self.cycle, op.default_latency())
                };
                if !granted {
                    return Err(Block::Llfu);
                }
                self.ctxs[ci].tally.llfu_ops += 1;
                let v = op.apply(self.reg(ci, rs), self.reg(ci, rt));
                result = Some((rd, v, self.cycle + op.default_latency() as u64));
            }
            Instr::Mem { op, data, base, offset } => {
                let addr = self.reg(ci, base).wrapping_add(offset as i32 as u32);
                if op.is_load() {
                    let (value, ready) = if speculative {
                        if let Some(v) = self.ctxs[ci].lsq.forward(addr, op) {
                            self.ctxs[ci].tally.lsq_events += 1;
                            (v, self.cycle + 2)
                        } else if let Some(v) = self.cross_lane_forward(ci, iter, addr, op) {
                            // Cross-lane snoop hit: 2-cycle network hop; the
                            // load is still recorded so a later broadcast
                            // from an intermediate iteration squashes us.
                            if !self.ctxs[ci].lsq.load_has_room(self.cfg.lsq_loads) {
                                return Err(Block::Lsq);
                            }
                            self.ctxs[ci].tally.lsq_events += 1;
                            self.ctxs[ci].lsq.record_load(addr);
                            (v, self.cycle + 3)
                        } else {
                            if !self.ctxs[ci].lsq.load_has_room(self.cfg.lsq_loads) {
                                return Err(Block::Lsq);
                            }
                            if !self.port.try_issue(self.cycle) {
                                return Err(Block::MemPort);
                            }
                            let lat = self.dcache.access(addr, false) as u64;
                            self.ctxs[ci].tally.mem_accesses += 1;
                            self.ctxs[ci].tally.lsq_events += 1;
                            self.ctxs[ci].lsq.record_load(addr);
                            (load(self.mem, op, addr), self.cycle + 1 + lat)
                        }
                    } else {
                        // Non-speculative lanes may still hit their own
                        // not-yet-drained stores (or/uc have no LSQ at all).
                        if let Some(v) = self.ctxs[ci].lsq.forward(addr, op) {
                            self.ctxs[ci].tally.lsq_events += 1;
                            (v, self.cycle + 2)
                        } else {
                            if !self.port.try_issue(self.cycle) {
                                return Err(Block::MemPort);
                            }
                            let lat = self.dcache.access(addr, false) as u64;
                            self.ctxs[ci].tally.mem_accesses += 1;
                            (load(self.mem, op, addr), self.cycle + 1 + lat)
                        }
                    };
                    result = Some((data, value, ready));
                } else {
                    let value = self.reg(ci, data);
                    if speculative {
                        if !self.ctxs[ci].lsq.store_has_room(self.cfg.lsq_stores) {
                            return Err(Block::Lsq);
                        }
                        self.ctxs[ci].lsq.push_store(addr, op, value);
                        self.ctxs[ci].tally.lsq_events += 1;
                    } else {
                        if !self.port.try_issue(self.cycle) {
                            return Err(Block::MemPort);
                        }
                        store(self.mem, op, addr, value);
                        self.dcache.access(addr, true);
                        self.ctxs[ci].tally.mem_accesses += 1;
                        if self.orders_mem {
                            self.broadcast_store(addr, iter);
                        }
                    }
                }
            }
            Instr::Amo { op, rd, addr, src } => {
                let a = self.reg(ci, addr);
                let operand = self.reg(ci, src);
                if speculative {
                    // Read (LSQ-forwarded or memory), combine, buffer the
                    // store; atomicity follows from the serial memory order
                    // the om mechanism enforces.
                    let old = match self.ctxs[ci].lsq.forward(a, xloops_isa::MemOp::Lw) {
                        Some(v) => {
                            self.ctxs[ci].tally.lsq_events += 1;
                            v
                        }
                        None => {
                            if !self.ctxs[ci].lsq.load_has_room(self.cfg.lsq_loads)
                                || !self.ctxs[ci].lsq.store_has_room(self.cfg.lsq_stores)
                            {
                                return Err(Block::Lsq);
                            }
                            if !self.port.try_issue(self.cycle) {
                                return Err(Block::MemPort);
                            }
                            self.dcache.access(a, false);
                            self.ctxs[ci].tally.mem_accesses += 1;
                            self.ctxs[ci].lsq.record_load(a);
                            self.mem.read_u32(a)
                        }
                    };
                    self.ctxs[ci].lsq.push_store(
                        a,
                        xloops_isa::MemOp::Sw,
                        op.combine(old, operand),
                    );
                    self.ctxs[ci].tally.lsq_events += 1;
                    result = Some((rd, old, self.cycle + 2));
                } else {
                    if !self.port.try_issue(self.cycle) {
                        return Err(Block::MemPort);
                    }
                    let old = self.mem.amo(op, a, operand);
                    self.dcache.access(a, true);
                    self.ctxs[ci].tally.mem_accesses += 1;
                    if self.orders_mem {
                        self.broadcast_store(a, iter);
                    }
                    result = Some((rd, old, self.cycle + 2));
                    busy = self.cycle + 2;
                }
            }
            Instr::Branch { cond, rs, rt, offset } => {
                if cond.eval(self.reg(ci, rs), self.reg(ci, rt)) {
                    next_pc = (pc as i64 + offset as i64) as usize;
                    busy = self.cycle + 2; // one-bubble redirect
                }
            }
            Instr::Xloop { idx, bound, body_offset, .. } => {
                // A nested xloop executes traditionally inside the lane.
                if (self.reg(ci, idx) as i32) < (self.reg(ci, bound) as i32) {
                    next_pc = pc - body_offset as usize;
                    busy = self.cycle + 2;
                }
            }
            Instr::Nop => {}
            Instr::Jump { .. } | Instr::JumpReg { .. } | Instr::Sync | Instr::Exit => {
                unreachable!("rejected at scan time")
            }
        }

        // Writeback, dynamic-bound reporting, and CIR forwarding.
        if let Some((rd, value, ready)) = result {
            if !rd.is_zero() {
                self.ctxs[ci].regs[rd.index()] = value;
                self.ctxs[ci].reg_ready[rd.index()] = ready;
            }
            if self.scan.pattern.is_dynamic_bound() && rd == self.scan.bound_reg {
                // Bounds grow monotonically; the LMU keeps the maximum.
                if (value as i32) > (self.bound as i32) {
                    self.bound = value;
                }
            }
            if self.orders_reg && self.is_cir(rd) {
                let bit = 1u32 << rd.index();
                self.ctxs[ci].cir_local |= bit;
                // The "last CIR write" bit: forward when the largest-pc
                // writer executes.
                if let Some(cir) = self.scan.cirs.iter().find(|c| c.reg == rd) {
                    if cir.last_write == pc {
                        self.publish_cir(iter, rd, value);
                        self.ctxs[ci].cir_pub |= bit;
                        self.ctxs[ci].tally.cir_transfers += 1;
                    }
                }
            }
        }

        self.ctxs[ci].pc = next_pc;
        self.ctxs[ci].busy_until = busy;
        self.ctxs[ci].tally.exec += 1;
        self.ctxs[ci].tally.instrs += 1;
        Ok(())
    }

    /// Snoops older active iterations' LSQs (newest older iteration
    /// first) for a forwardable store.
    fn cross_lane_forward(
        &mut self,
        ci: usize,
        iter: u64,
        addr: u32,
        op: xloops_isa::MemOp,
    ) -> Option<u32> {
        if !self.cfg.cross_lane_forwarding {
            return None;
        }
        let mut best: Option<(u64, u32)> = None;
        for (other, ctx) in self.ctxs.iter().enumerate() {
            if other == ci {
                continue;
            }
            if let Some(it) = ctx.iter {
                if it < iter {
                    if let Some(v) = ctx.lsq.forward(addr, op) {
                        if best.is_none_or(|(bit, _)| it > bit) {
                            best = Some((it, v));
                        }
                    }
                }
            }
        }
        best.map(|(_, v)| v)
    }

    fn reg(&self, ci: usize, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.ctxs[ci].regs[r.index()]
        }
    }
}
