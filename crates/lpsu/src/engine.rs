//! The specialized-execution engine.
//!
//! Two steppers drive the same single-cycle evaluation pass
//! ([`Engine::step_pass`]):
//!
//! * [`Stepper::Naive`] polls every lane every simulated cycle — the
//!   reference model, kept as a differential oracle behind the
//!   `naive-stepper` feature.
//! * [`Stepper::EventDriven`] (the default) detects passes in which no
//!   lane made progress, computes the earliest cycle at which any
//!   time-gated condition can change (register-ready times, CIB
//!   availability, LLFU occupancy, cache refills), bulk-accounts the
//!   skipped stall cycles exactly as the naive stepper would have, and
//!   jumps time forward. Cycle counts, statistics, and architectural
//!   state are bit-identical between the two (see DESIGN.md).

use std::fmt;

use xloops_func::{apply, classify, load, store, xi_mivt, xi_step};
use xloops_func::{ApplyError, ArchState, Effect, EffectClass, ExecFault, MemPort};
use xloops_isa::{AmoOp, Instr, MemOp, Reg, INSTR_BYTES};
use xloops_mem::{Cache, FxHashMap, Memory, SharedPort, SharedUnit};

use crate::config::LpsuConfig;
use crate::fault::FaultInjector;
use crate::lsq::Lsq;
use crate::scan::ScanResult;
use crate::stats::LpsuStats;

/// Which main-loop strategy drives the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stepper {
    /// Poll every lane each simulated cycle (the reference model).
    Naive,
    /// Skip runs of globally stalled cycles; timing-identical but faster.
    EventDriven,
}

impl Stepper {
    /// The stepper [`Lpsu::execute`] uses: event-driven unless the crate
    /// is built with the `naive-stepper` oracle feature.
    pub fn default_for_build() -> Stepper {
        if cfg!(feature = "naive-stepper") {
            Stepper::Naive
        } else {
            Stepper::EventDriven
        }
    }
}

/// A specialized-execution phase failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpsuError {
    /// The engine can never make progress again: at least one context
    /// holds an uncommitted iteration, no context can issue, and no
    /// pending event (register ready, CIB publish, LLFU release, cache
    /// refill) exists to unblock one. Both steppers detect this exactly,
    /// at the cycle where progress stops.
    NoForwardProgress {
        /// Cycle at which the wedge was detected.
        cycle: u64,
        /// pc of the loop's `xloop` instruction.
        pc: u32,
        /// Number of contexts holding a stalled, uncommitted iteration.
        stalled: u32,
    },
    /// The fault injector raised a spurious engine fault.
    Injected {
        /// Cycle at which the fault fired.
        cycle: u64,
    },
    /// A lane instruction faulted architecturally (misaligned access).
    Fault {
        /// Cycle of the faulting issue.
        cycle: u64,
        /// The fault itself.
        fault: ExecFault,
    },
    /// The last committed iteration never published a cross-iteration
    /// register (a dropped CIB publish): the live-out value is lost.
    MissingCir {
        /// The iteration whose publish is missing.
        iter: u64,
        /// The unpublished cross-iteration register.
        reg: Reg,
    },
}

impl fmt::Display for LpsuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpsuError::NoForwardProgress { cycle, pc, stalled } => {
                write!(
                    f,
                    "LPSU made no forward progress (loop pc {pc:#x}, {stalled} stalled \
                     contexts, wedged at cycle {cycle})"
                )
            }
            LpsuError::Injected { cycle } => {
                write!(f, "injected engine fault at cycle {cycle}")
            }
            LpsuError::Fault { cycle, fault } => {
                write!(f, "lane fault at cycle {cycle}: {fault}")
            }
            LpsuError::MissingCir { iter, reg } => {
                write!(f, "iteration {iter} never published cross-iteration register {reg}")
            }
        }
    }
}

impl std::error::Error for LpsuError {}

/// Result of one specialized-execution phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LpsuResult {
    /// Cycles the phase occupied (the GPP stalls for this long).
    pub cycles: u64,
    /// Iterations committed.
    pub iterations: u64,
    /// Serial-equivalent final value of the induction register.
    pub final_idx: u32,
    /// Final value of the bound register (grows for `.db` loops).
    pub final_bound: u32,
    /// Serial-equivalent final values of the cross-iteration registers
    /// (the one class of live-outs the ISA defines).
    pub cir_finals: Vec<(Reg, u32)>,
    /// Cycle-level statistics (Figure 6 breakdown).
    pub stats: LpsuStats,
}

/// Why a context could not make progress this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Block {
    Raw,
    MemPort,
    Llfu,
    Cir,
    Lsq,
    Idle,
}

/// Per-iteration stall tally, merged into [`LpsuStats`] at commit (kept
/// work) or folded into the squash bucket when the iteration restarts.
#[derive(Clone, Copy, Debug, Default)]
struct IterTally {
    exec: u64,
    raw: u64,
    mem_port: u64,
    llfu: u64,
    cir: u64,
    lsq: u64,
    instrs: u64,
    mem_accesses: u64,
    llfu_ops: u64,
    xi_ops: u64,
    cir_transfers: u64,
    lsq_events: u64,
}

impl IterTally {
    fn blocked(&mut self, b: Block) {
        self.blocked_n(b, 1);
    }

    /// Accounts `n` stalled lane-cycles with the same cause at once (the
    /// event-driven stepper's bulk accounting for skipped cycles).
    fn blocked_n(&mut self, b: Block, n: u64) {
        match b {
            Block::Raw => self.raw += n,
            Block::MemPort => self.mem_port += n,
            Block::Llfu => self.llfu += n,
            Block::Cir => self.cir += n,
            Block::Lsq => self.lsq += n,
            Block::Idle => {}
        }
    }

    fn commit_into(&self, s: &mut LpsuStats) {
        s.exec += self.exec;
        s.stall_raw += self.raw;
        s.stall_mem_port += self.mem_port;
        s.stall_llfu += self.llfu;
        s.stall_cir += self.cir;
        s.stall_lsq += self.lsq;
        s.instret += self.instrs;
        s.mem_accesses += self.mem_accesses;
        s.llfu_ops += self.llfu_ops;
        s.xi_ops += self.xi_ops;
        s.cir_transfers += self.cir_transfers;
        s.lsq_events += self.lsq_events;
    }

    fn squash_into(&self, s: &mut LpsuStats) {
        s.squash += self.exec + self.raw + self.mem_port + self.llfu + self.cir + self.lsq;
        s.squashed_instrs += self.instrs;
        // Energy was still spent on the discarded work.
        s.mem_accesses += self.mem_accesses;
        s.llfu_ops += self.llfu_ops;
        s.xi_ops += self.xi_ops;
        s.cir_transfers += self.cir_transfers;
        s.lsq_events += self.lsq_events;
    }
}

/// One hardware iteration context (a lane, or one thread of a
/// multithreaded lane).
#[derive(Clone, Debug)]
struct Ctx {
    iter: Option<u64>,
    /// Architectural state of the in-flight iteration. The pc is rebased to
    /// the loop body: byte offset from the first body instruction, so the
    /// body index is `state.pc / INSTR_BYTES`.
    state: ArchState,
    reg_ready: [u64; 32],
    /// Upper bound on every `reg_ready` entry: when `max_ready <= cycle`
    /// no register is still in flight, so [`Engine::next_wakeup`] skips
    /// the 32-entry scan for this context.
    max_ready: u64,
    busy_until: u64,
    lsq: Lsq,
    /// CIRs localized this iteration (received from the CIB or written).
    cir_local: u32,
    /// CIRs already forwarded to the next iteration.
    cir_pub: u32,
    /// Finished executing, waiting to commit/drain (ordered-memory only).
    done_exec: bool,
    tally: IterTally,
    /// Memoized CIR wait (see [`Engine::cir_wait_blocked`]): while the
    /// (body-relative byte) pc, channel epoch, and localized set are
    /// unchanged and `cycle < cir_wait_until`, a CIR pull is known to fail
    /// — the channel lookup can be skipped. `cir_wait_pc == usize::MAX`
    /// means no memo.
    cir_wait_pc: usize,
    cir_wait_epoch: u64,
    cir_wait_local: u32,
    cir_wait_until: u64,
}

impl Ctx {
    fn new() -> Ctx {
        Ctx {
            iter: None,
            state: ArchState::new(),
            reg_ready: [0; 32],
            max_ready: 0,
            busy_until: 0,
            lsq: Lsq::default(),
            cir_local: 0,
            cir_pub: 0,
            done_exec: false,
            tally: IterTally::default(),
            cir_wait_pc: usize::MAX,
            cir_wait_epoch: 0,
            cir_wait_local: 0,
            cir_wait_until: 0,
        }
    }
}

/// Per-body-instruction issue metadata, precomputed once per phase so the
/// per-cycle hot path reads one flat table instead of re-decoding the
/// instruction's source registers (twice) and re-testing CIR membership
/// every poll.
#[derive(Clone, Copy, Debug)]
struct InstrMeta {
    instr: Instr,
    /// Timing class (semantics-layer pre-decode).
    class: EffectClass,
    /// Source register indices, in source-operand order.
    srcs: [u8; 2],
    n_srcs: u8,
    /// Whether the instruction accesses the data-memory port.
    is_mem: bool,
    /// Bits of `srcs` that are cross-iteration registers.
    cir_srcs: u32,
}

/// The loop-pattern specialization unit.
///
/// Construct once per system with a [`LpsuConfig`]; call
/// [`execute`](Lpsu::execute) per specialized loop instance. The unit is
/// stateless between loops (the instruction buffers are re-scanned per
/// dynamic instance, as in the paper).
#[derive(Clone, Debug)]
pub struct Lpsu {
    config: LpsuConfig,
}

impl Lpsu {
    /// Creates an LPSU with the given configuration.
    pub fn new(config: LpsuConfig) -> Lpsu {
        Lpsu { config }
    }

    /// The unit's configuration.
    pub fn config(&self) -> &LpsuConfig {
        &self.config
    }

    /// Executes the scanned loop on the LPSU, mutating architectural
    /// memory, and returns the phase timing/statistics.
    ///
    /// `max_iters` caps how many iterations are *assigned* (used by the
    /// adaptive-execution LPSU profiling phase); migration happens at an
    /// iteration boundary, so all assigned iterations complete.
    ///
    /// Uses the event-driven stepper unless the crate is built with the
    /// `naive-stepper` oracle feature (see [`Stepper::default_for_build`]).
    ///
    /// # Errors
    ///
    /// [`LpsuError::NoForwardProgress`] if the engine wedges — an internal
    /// invariant violation, not reachable from safe inputs.
    pub fn execute(
        &self,
        scan: &ScanResult,
        mem: &mut Memory,
        dcache: &mut Cache,
        max_iters: Option<u64>,
    ) -> Result<LpsuResult, LpsuError> {
        self.execute_stepper(Stepper::default_for_build(), scan, mem, dcache, max_iters)
    }

    /// [`execute`](Lpsu::execute) with an explicit stepper choice. Both
    /// steppers produce bit-identical results; the differential-oracle
    /// test suite relies on this entry point being available regardless
    /// of the `naive-stepper` feature.
    pub fn execute_stepper(
        &self,
        stepper: Stepper,
        scan: &ScanResult,
        mem: &mut Memory,
        dcache: &mut Cache,
        max_iters: Option<u64>,
    ) -> Result<LpsuResult, LpsuError> {
        self.execute_with(stepper, scan, mem, dcache, max_iters, None)
    }

    /// [`execute_stepper`](Lpsu::execute_stepper) with an optional
    /// [`FaultInjector`] threaded into the engine's port-arbitration, CIB
    /// publish, and scheduling hooks. `None` injects nothing (identical to
    /// `execute_stepper`). The supervisor uses this entry point to exercise
    /// recovery paths deterministically.
    ///
    /// # Errors
    ///
    /// Any [`LpsuError`]: injected faults surface as
    /// [`LpsuError::Injected`], injected wedges (dropped CIB publishes) as
    /// [`LpsuError::NoForwardProgress`] or [`LpsuError::MissingCir`].
    pub fn execute_with(
        &self,
        stepper: Stepper,
        scan: &ScanResult,
        mem: &mut Memory,
        dcache: &mut Cache,
        max_iters: Option<u64>,
        inj: Option<&mut FaultInjector>,
    ) -> Result<LpsuResult, LpsuError> {
        Engine::new(&self.config, scan, mem, dcache, max_iters, inj).run(stepper)
    }
}

struct Engine<'a> {
    cfg: &'a LpsuConfig,
    scan: &'a ScanResult,
    mem: &'a mut Memory,
    dcache: &'a mut Cache,
    max_iters: u64,

    orders_mem: bool,
    orders_reg: bool,
    contexts_per_lane: u32,
    ctxs: Vec<Ctx>,
    port: SharedPort,
    llfu_pipe: SharedPort,
    llfu_div: SharedUnit,
    /// CIR channel: value produced by iteration `.0` for register `.1`,
    /// available at the stamped cycle.
    chan: FxHashMap<(i64, u8), (u32, u64)>,
    next_iter: u64,
    frontier: u64,
    committed: u64,
    bound: u32,
    stats: LpsuStats,
    cycle: u64,
    /// `cycle % lanes` / `cycle % contexts_per_lane`, maintained
    /// incrementally (recomputed with `%` only when time jumps).
    lane_rot: usize,
    ctx_rot: usize,
    /// Block reason of each context in the latest pass; meaningful for
    /// skip accounting only after a pass in which no lane progressed
    /// (then every context was polled and blocked).
    block_scratch: Vec<Block>,
    /// Bit `r` set iff register `r` is a CIR (precomputed from the scan).
    cir_mask: u32,
    /// Body index of the last static CIR write per register
    /// (`usize::MAX` for non-CIRs).
    cir_last_write: [usize; 32],
    /// Per-iteration MIVT increment per register (0 for non-MIVs; the
    /// scan guarantees every non-induction `xi` register has an entry).
    mivt_inc: [i32; 32],
    /// Issue metadata parallel to `scan.body`.
    meta: Vec<InstrMeta>,
    /// Register index whose writes grow the dynamic bound (`64` = the
    /// pattern has a static bound, so no write ever matches).
    bound_watch: u8,
    /// Bumped on every CIR-channel mutation; lets a blocked context prove
    /// its memoized failed lookup is still valid without re-hashing.
    cir_epoch: u64,
    /// Optional fault injector consulted at the port-arbitration, CIB
    /// publish, and scheduling hooks.
    inj: Option<&'a mut FaultInjector>,
    /// An architectural fault raised by a lane mid-pass; surfaced by the
    /// run loop at the end of the pass.
    pending_fault: Option<ExecFault>,
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a LpsuConfig,
        scan: &'a ScanResult,
        mem: &'a mut Memory,
        dcache: &'a mut Cache,
        max_iters: Option<u64>,
        inj: Option<&'a mut FaultInjector>,
    ) -> Engine<'a> {
        let orders_mem = scan.pattern.data.orders_memory();
        let orders_reg = scan.pattern.data.orders_registers();
        // Multithreading applies only to plain `uc` (the paper disables it
        // for patterns with register or memory ordering).
        let contexts_per_lane = if !orders_mem && !orders_reg { cfg.contexts } else { 1 };
        let n = (cfg.lanes * contexts_per_lane) as usize;
        let mut chan = FxHashMap::default();
        if orders_reg {
            for cir in &scan.cirs {
                chan.insert((-1i64, cir.reg.index() as u8), (scan.live_ins[cir.reg.index()], 0));
            }
        }
        let mut cir_mask = 0u32;
        let mut cir_last_write = [usize::MAX; 32];
        for cir in &scan.cirs {
            cir_mask |= 1 << cir.reg.index();
            cir_last_write[cir.reg.index()] = cir.last_write;
        }
        let mut mivt_inc = [0i32; 32];
        for m in &scan.mivt {
            mivt_inc[m.reg.index()] = m.inc;
        }
        let meta = scan
            .body
            .iter()
            .map(|&instr| {
                let mut srcs = [0u8; 2];
                let mut n_srcs = 0u8;
                let mut cir_srcs = 0u32;
                for s in instr.srcs().into_iter().flatten() {
                    srcs[n_srcs as usize] = s.index() as u8;
                    n_srcs += 1;
                    cir_srcs |= cir_mask & (1 << s.index());
                }
                let class = classify(instr);
                debug_assert!(
                    !matches!(
                        class,
                        EffectClass::Jump
                            | EffectClass::JumpReg
                            | EffectClass::Sync
                            | EffectClass::Exit
                    ),
                    "the scan rejects bodies the lanes cannot execute"
                );
                InstrMeta { instr, class, srcs, n_srcs, is_mem: instr.is_mem(), cir_srcs }
            })
            .collect();
        Engine {
            cfg,
            scan,
            mem,
            dcache,
            max_iters: max_iters.unwrap_or(u64::MAX),
            orders_mem,
            orders_reg,
            contexts_per_lane,
            ctxs: vec![Ctx::new(); n],
            port: SharedPort::new(cfg.mem_ports),
            llfu_pipe: SharedPort::new(cfg.llfus),
            llfu_div: SharedUnit::new(cfg.llfus),
            chan,
            next_iter: 0,
            frontier: 0,
            committed: 0,
            bound: scan.live_ins[scan.bound_reg.index()],
            stats: LpsuStats::default(),
            cycle: 0,
            lane_rot: 0,
            ctx_rot: 0,
            block_scratch: vec![Block::Idle; n],
            cir_mask,
            cir_last_write,
            mivt_inc,
            meta,
            bound_watch: if scan.pattern.is_dynamic_bound() {
                scan.bound_reg.index() as u8
            } else {
                64
            },
            cir_epoch: 0,
            inj,
            pending_fault: None,
        }
    }

    /// The wedge error with its diagnostics (loop pc, stalled contexts).
    fn wedge(&self) -> LpsuError {
        LpsuError::NoForwardProgress {
            cycle: self.cycle,
            pc: self.scan.xloop_pc,
            stalled: self.ctxs.iter().filter(|c| c.iter.is_some()).count() as u32,
        }
    }

    /// Injected spurious fault due at the current cycle?
    fn injected_fault_due(&mut self) -> bool {
        let cycle = self.cycle;
        self.inj.as_deref_mut().is_some_and(|i| i.spurious_due(cycle))
    }

    /// Injected memory-port refusal active at the current cycle?
    fn inj_refuses_mem(&mut self) -> bool {
        let cycle = self.cycle;
        self.inj.as_deref_mut().is_some_and(|i| i.refuse_mem(cycle))
    }

    /// Livelock backstop for the naive stepper (the event-driven stepper
    /// detects a wedge exactly, at the cycle where progress stops).
    const CYCLE_CAP: u64 = 50_000_000_000;

    fn run(mut self, stepper: Stepper) -> Result<LpsuResult, LpsuError> {
        match stepper {
            Stepper::Naive => self.run_naive()?,
            Stepper::EventDriven => self.run_event()?,
        }
        self.stats.iterations = self.committed;
        let mut cir_finals = Vec::with_capacity(self.scan.cirs.len());
        for c in &self.scan.cirs {
            let v = if self.committed == 0 {
                self.scan.live_ins[c.reg.index()]
            } else {
                self.chan
                    .get(&(self.committed as i64 - 1, c.reg.index() as u8))
                    .ok_or(LpsuError::MissingCir { iter: self.committed - 1, reg: c.reg })?
                    .0
            };
            cir_finals.push((c.reg, v));
        }
        Ok(LpsuResult {
            cycles: self.cycle,
            iterations: self.committed,
            final_idx: self.scan.iter_value(self.committed),
            final_bound: self.bound,
            cir_finals,
            stats: self.stats,
        })
    }

    /// The reference main loop: one pass per simulated cycle. Wedge
    /// detection mirrors the event-driven stepper exactly: a no-progress
    /// pass with no pending wakeup can never unwedge (so polling on is
    /// pointless), and both steppers report the same wedge cycle.
    fn run_naive(&mut self) -> Result<(), LpsuError> {
        while self.any_work() {
            if self.injected_fault_due() {
                return Err(LpsuError::Injected { cycle: self.cycle });
            }
            let progressed = self.step_pass();
            if let Some(fault) = self.pending_fault {
                return Err(LpsuError::Fault { cycle: self.cycle, fault });
            }
            if !progressed && self.next_wakeup().is_none() {
                return Err(self.wedge());
            }
            self.advance_one();
            if self.cycle >= Self::CYCLE_CAP {
                return Err(self.wedge());
            }
        }
        Ok(())
    }

    /// The event-driven main loop. A pass in which some lane progressed
    /// advances time by one cycle, exactly like the naive stepper. A pass
    /// with no progress is a *globally stalled* cycle: nothing observable
    /// can change until the earliest pending event, so the stalled cycles
    /// in between are accounted in bulk and time jumps to the wakeup.
    ///
    /// Waking early is always safe (the extra pass stalls again and is
    /// accounted identically); [`next_wakeup`](Engine::next_wakeup) never
    /// wakes late because it covers every time-gated comparison the pass
    /// can make. No wakeup at all means the engine is wedged.
    fn run_event(&mut self) -> Result<(), LpsuError> {
        while self.any_work() {
            if self.injected_fault_due() {
                return Err(LpsuError::Injected { cycle: self.cycle });
            }
            let progressed = self.step_pass();
            if let Some(fault) = self.pending_fault {
                return Err(LpsuError::Fault { cycle: self.cycle, fault });
            }
            if progressed {
                self.advance_one();
                if self.cycle >= Self::CYCLE_CAP {
                    return Err(self.wedge());
                }
                continue;
            }
            let Some(next) = self.next_wakeup() else {
                return Err(self.wedge());
            };
            debug_assert!(next > self.cycle, "wakeup must move time forward");
            self.skip_to(next);
        }
        Ok(())
    }

    fn advance_one(&mut self) {
        self.cycle += 1;
        self.lane_rot += 1;
        if self.lane_rot == self.cfg.lanes as usize {
            self.lane_rot = 0;
        }
        self.ctx_rot += 1;
        if self.ctx_rot == self.contexts_per_lane as usize {
            self.ctx_rot = 0;
        }
    }

    /// Bulk-accounts the stalled cycles in `(self.cycle, next)` and jumps
    /// to `next`. Valid only right after a no-progress pass: every context
    /// was polled and blocked, and its recorded reason holds until `next`
    /// (the minimum over all pending events).
    fn skip_to(&mut self, next: u64) {
        let lanes = self.cfg.lanes as usize;
        let k = self.contexts_per_lane as usize;
        if next - self.cycle > 1 {
            // The naive stepper attributes the stalled lane-cycle at cycle
            // `x` to context `x % k` of each lane (the first one polled),
            // with that context's own block reason.
            for p in 0..k {
                let count = cycles_with_residue(self.cycle + 1, next, p as u64, k as u64);
                if count == 0 {
                    continue;
                }
                for lane in 0..lanes {
                    match self.block_scratch[lane * k + p] {
                        Block::Idle => self.stats.idle += count,
                        b => self.ctxs[lane * k + p].tally.blocked_n(b, count),
                    }
                }
            }
        }
        self.cycle = next;
        self.lane_rot = (next % self.cfg.lanes as u64) as usize;
        self.ctx_rot = (next % self.contexts_per_lane as u64) as usize;
    }

    /// The earliest cycle after `self.cycle` at which any time-gated
    /// condition in the evaluation pass can change: register-ready times
    /// and front-end occupancy of active contexts, CIB availability
    /// stamps, LLFU (divider) release times, and cache refill completion.
    /// Everything else a pass consults (LSQ occupancy, the commit
    /// frontier, iteration assignability, per-cycle port bandwidth) only
    /// changes when some context progresses.
    fn next_wakeup(&self) -> Option<u64> {
        let c = self.cycle;
        let mut best = u64::MAX;
        for ctx in &self.ctxs {
            if ctx.iter.is_none() {
                continue;
            }
            if ctx.busy_until > c && ctx.busy_until < best {
                best = ctx.busy_until;
            }
            if ctx.max_ready > c {
                for &r in &ctx.reg_ready {
                    if r > c && r < best {
                        best = r;
                    }
                }
            }
        }
        for &(_, avail) in self.chan.values() {
            if avail > c && avail < best {
                best = avail;
            }
        }
        if let Some(t) = self.llfu_div.next_free_after(c) {
            best = best.min(t);
        }
        if let Some(t) = self.dcache.next_event(c) {
            best = best.min(t);
        }
        // Injected state changes (refusal-window edges, pending spurious
        // stamps) are wakeups too: an injected stall must be re-evaluated,
        // never misdiagnosed as a wedge, and a pending spurious fault must
        // fire at its exact stamp under both steppers.
        if let Some(inj) = &self.inj {
            if let Some(t) = inj.next_wakeup(c) {
                best = best.min(t);
            }
        }
        (best != u64::MAX).then_some(best)
    }

    fn iter_assignable(&self) -> bool {
        self.next_iter < self.max_iters
            && (self.scan.iter_value(self.next_iter) as i32) < (self.bound as i32)
    }

    fn any_work(&self) -> bool {
        self.iter_assignable() || self.ctxs.iter().any(|c| c.iter.is_some())
    }

    /// One evaluation pass at `self.cycle`; returns whether any lane made
    /// progress. Each context's block reason is recorded for the skip
    /// accounting (complete only when no lane progressed — exactly when
    /// the event-driven stepper consults it).
    fn step_pass(&mut self) -> bool {
        let lanes = self.cfg.lanes as usize;
        let k = self.contexts_per_lane as usize;
        // Rotate lane polling order for fair arbitration of shared
        // resources, and rotate context preference within a lane.
        let (lane_rot, ctx_rot) = (self.lane_rot, self.ctx_rot);
        let mut any_progress = false;
        for li in 0..lanes {
            let mut lane = li + lane_rot;
            if lane >= lanes {
                lane -= lanes;
            }
            let mut progressed = false;
            let mut first_block: Option<Block> = None;
            for ci in 0..k {
                let mut co = ci + ctx_rot;
                if co >= k {
                    co -= k;
                }
                let ctx_idx = lane * k + co;
                match self.ctx_step(ctx_idx) {
                    Ok(()) => {
                        progressed = true;
                        break;
                    }
                    Err(b) => {
                        self.block_scratch[ctx_idx] = b;
                        if first_block.is_none() {
                            first_block = Some(b);
                        }
                    }
                }
            }
            if progressed {
                any_progress = true;
                continue;
            }
            // Account the lane-cycle to the first context's blocking cause.
            match first_block.unwrap_or(Block::Idle) {
                Block::Idle => self.stats.idle += 1,
                b => {
                    let ctx_idx = lane * k + ctx_rot;
                    self.ctxs[ctx_idx].tally.blocked(b);
                }
            }
        }
        any_progress
    }

    /// Tries to make the context progress this cycle. `Ok` means it used
    /// its lane's issue slot; `Err` reports why it could not.
    fn ctx_step(&mut self, ci: usize) -> Result<(), Block> {
        if self.ctxs[ci].busy_until > self.cycle {
            // Pipeline occupied by a previous issue (multi-cycle front end
            // effects such as taken-branch bubbles).
            self.ctxs[ci].tally.exec += 1;
            return Ok(());
        }
        if self.ctxs[ci].iter.is_none() {
            if !self.iter_assignable() {
                return Err(Block::Idle);
            }
            let it = self.next_iter;
            self.next_iter += 1;
            self.start_iteration(ci, it);
            // The IDQ dequeue / context start occupies the slot.
            self.ctxs[ci].tally.exec += 1;
            return Ok(());
        }
        let iter = self.ctxs[ci].iter.expect("checked above");

        // Promotion drain: a (possibly still executing) lane that has
        // become non-speculative first drains its buffered stores in
        // program order, one per cycle through the shared port.
        if self.orders_mem && iter == self.frontier && self.ctxs[ci].lsq.store_count() > 0 {
            if self.inj_refuses_mem() {
                return Err(Block::MemPort);
            }
            if !self.port.try_issue(self.cycle) {
                return Err(Block::MemPort);
            }
            let entry = self.ctxs[ci].lsq.pop_store().expect("store count checked");
            store(self.mem, entry.op, entry.addr, entry.value);
            self.dcache.access_at(entry.addr, true, self.cycle);
            self.ctxs[ci].tally.mem_accesses += 1;
            self.broadcast_store(entry.addr, iter);
            self.ctxs[ci].tally.exec += 1;
            return Ok(());
        }

        if self.ctxs[ci].done_exec {
            if iter == self.frontier {
                // LSQ already drained above; commit.
                self.commit(ci);
                return Ok(());
            }
            return Err(Block::Lsq); // waiting for promotion
        }

        if self.ctxs[ci].state.pc == self.scan.body.len() as u32 * INSTR_BYTES {
            return self.end_of_body(ci);
        }

        self.issue_instr(ci)
    }

    fn start_iteration(&mut self, ci: usize, iter: u64) {
        let value = self.scan.iter_value(iter);
        let ctx = &mut self.ctxs[ci];
        ctx.iter = Some(iter);
        ctx.state.pc = 0;
        *ctx.state.regs_mut() = self.scan.live_ins;
        ctx.state.regs_mut()[self.scan.idx_reg.index()] = value;
        ctx.reg_ready = [0; 32];
        ctx.max_ready = 0;
        ctx.lsq.clear();
        ctx.cir_local = 0;
        ctx.cir_pub = 0;
        ctx.done_exec = false;
        ctx.tally = IterTally::default();
        ctx.busy_until = self.cycle + 1;
        // The memoized wait keys a different iteration's channel lookup.
        ctx.cir_wait_pc = usize::MAX;
    }

    fn commit(&mut self, ci: usize) {
        let ctx = &mut self.ctxs[ci];
        debug_assert_eq!(ctx.lsq.store_count(), 0, "commit requires a drained LSQ");
        ctx.tally.commit_into(&mut self.stats);
        ctx.lsq.clear();
        ctx.iter = None;
        ctx.done_exec = false;
        self.frontier += 1;
        self.committed += 1;
        // Old CIR channel entries are dead once their consumer committed.
        if self.orders_reg && self.frontier.is_multiple_of(64) {
            let horizon = self.frontier as i64 - 2;
            self.cir_epoch += 1;
            self.chan.retain(|&(it, _), _| it >= horizon);
        }
    }

    /// End-of-iteration sequence: reconcile and publish any CIRs whose
    /// last write was skipped by control flow, then complete.
    fn end_of_body(&mut self, ci: usize) -> Result<(), Block> {
        let iter = self.ctxs[ci].iter.expect("active iteration");
        if self.orders_reg {
            if self.cir_wait_blocked(ci) {
                return Err(Block::Cir);
            }
            for idx in 0..self.scan.cirs.len() {
                let cir = self.scan.cirs[idx];
                let bit = 1u32 << cir.reg.index();
                if self.ctxs[ci].cir_pub & bit != 0 {
                    continue;
                }
                if self.ctxs[ci].cir_local & bit == 0 {
                    // Never received nor wrote it: pull the previous
                    // iteration's value so it can be forwarded on.
                    match self.chan.get(&(iter as i64 - 1, cir.reg.index() as u8)) {
                        Some(&(v, avail)) if avail <= self.cycle => {
                            self.ctxs[ci].state.regs_mut()[cir.reg.index()] = v;
                            self.ctxs[ci].cir_local |= bit;
                        }
                        Some(&(_, avail)) => {
                            self.set_cir_wait(ci, avail);
                            return Err(Block::Cir);
                        }
                        None => {
                            self.set_cir_wait(ci, u64::MAX);
                            return Err(Block::Cir);
                        }
                    }
                }
                let value = self.ctxs[ci].state.reg(cir.reg);
                self.publish_cir(iter, cir.reg, value);
                self.ctxs[ci].cir_pub |= bit;
                self.ctxs[ci].tally.cir_transfers += 1;
                self.ctxs[ci].tally.exec += 1;
                return Ok(()); // one CIB transfer per cycle
            }
        }
        // All CIRs settled; finish the iteration.
        if self.orders_mem && (iter != self.frontier || self.ctxs[ci].lsq.store_count() > 0) {
            self.ctxs[ci].done_exec = true;
            return Err(Block::Lsq); // waits for promotion + drain
        }
        self.commit(ci);
        Ok(())
    }

    fn publish_cir(&mut self, iter: u64, reg: Reg, value: u32) {
        // An injected dropped publish vanishes silently: consumers wait on
        // a value that never arrives (wedge) or the live-out goes missing
        // at the end of the phase (`MissingCir`).
        let cycle = self.cycle;
        if self.inj.as_deref_mut().is_some_and(|i| i.drop_publish(cycle)) {
            return;
        }
        self.cir_epoch += 1;
        self.chan.insert(
            (iter as i64, reg.index() as u8),
            (value, self.cycle + self.cfg.cib_latency as u64),
        );
    }

    /// A store from `store_iter` reached memory: squash any younger
    /// iteration that already loaded from that word.
    fn broadcast_store(&mut self, addr: u32, store_iter: u64) {
        let mut squash_from: Option<u64> = None;
        for ctx in &self.ctxs {
            if let Some(it) = ctx.iter {
                if it > store_iter && ctx.lsq.loaded_word(addr) {
                    squash_from = Some(squash_from.map_or(it, |s: u64| s.min(it)));
                }
            }
        }
        let Some(first) = squash_from else { return };
        // With register ordering (orm), a squashed iteration may already
        // have forwarded CIR values to its successors; with cross-lane
        // forwarding, so may its buffered stores. Either way the
        // conservative cascade flushes every younger active iteration.
        for ci in 0..self.ctxs.len() {
            if let Some(it) = self.ctxs[ci].iter {
                let direct = it >= first && self.ctxs[ci].lsq.loaded_word(addr);
                let cascade = (self.orders_reg || self.cfg.cross_lane_forwarding) && it > first;
                if direct || cascade {
                    self.squash(ci);
                }
            }
        }
    }

    fn squash(&mut self, ci: usize) {
        let iter = self.ctxs[ci].iter.expect("squashing an active iteration");
        self.stats.squashed_iters += 1;
        self.ctxs[ci].tally.squash_into(&mut self.stats);
        // Un-publish CIR values the squashed iteration produced.
        if self.orders_reg {
            self.cir_epoch += 1;
            self.chan.retain(|&(it, _), _| it != iter as i64);
        }
        let value = self.scan.iter_value(iter);
        let ctx = &mut self.ctxs[ci];
        ctx.state.pc = 0;
        *ctx.state.regs_mut() = self.scan.live_ins;
        ctx.state.regs_mut()[self.scan.idx_reg.index()] = value;
        ctx.reg_ready = [0; 32];
        ctx.max_ready = 0;
        ctx.lsq.clear();
        ctx.cir_local = 0;
        ctx.cir_pub = 0;
        ctx.done_exec = false;
        ctx.tally = IterTally::default();
        ctx.busy_until = self.cycle + 1; // pipeline flush
        ctx.cir_wait_pc = usize::MAX;
    }

    fn is_cir(&self, r: Reg) -> bool {
        self.cir_mask & (1u32 << r.index()) != 0
    }

    /// Whether the context's memoized failed CIR pull is still valid: same
    /// pc, no channel mutation since (epoch), no newly localized CIRs, and
    /// still before the earliest availability stamp seen (`u64::MAX` when
    /// the entry did not exist — then only a channel mutation can help).
    /// A valid memo proves the pull would fail again, with no hash lookup.
    fn cir_wait_blocked(&self, ci: usize) -> bool {
        let ctx = &self.ctxs[ci];
        ctx.cir_wait_pc == ctx.state.pc as usize
            && ctx.cir_wait_epoch == self.cir_epoch
            && ctx.cir_wait_local == ctx.cir_local
            && self.cycle < ctx.cir_wait_until
    }

    fn set_cir_wait(&mut self, ci: usize, until: u64) {
        let epoch = self.cir_epoch;
        let ctx = &mut self.ctxs[ci];
        ctx.cir_wait_pc = ctx.state.pc as usize;
        ctx.cir_wait_epoch = epoch;
        ctx.cir_wait_local = ctx.cir_local;
        ctx.cir_wait_until = until;
    }

    fn issue_instr(&mut self, ci: usize) -> Result<(), Block> {
        // A context blocked on a CIR pull stays blocked until the memoized
        // wake condition; skip re-decoding entirely.
        if self.orders_reg && self.cir_wait_blocked(ci) {
            return Err(Block::Cir);
        }
        let iter = self.ctxs[ci].iter.expect("active iteration");
        let bidx = (self.ctxs[ci].state.pc / INSTR_BYTES) as usize;
        let m = self.meta[bidx];
        let instr = m.instr;

        // CIR availability: the first read of a CIR pulls the value from
        // the CIB connected to the previous lane.
        if self.orders_reg && m.cir_srcs & !self.ctxs[ci].cir_local != 0 {
            for i in 0..m.n_srcs as usize {
                let src = m.srcs[i] as usize;
                let bit = 1u32 << src;
                if m.cir_srcs & bit != 0 && self.ctxs[ci].cir_local & bit == 0 {
                    match self.chan.get(&(iter as i64 - 1, src as u8)) {
                        Some(&(v, avail)) if avail <= self.cycle => {
                            self.ctxs[ci].state.regs_mut()[src] = v;
                            self.ctxs[ci].cir_local |= bit;
                        }
                        Some(&(_, avail)) => {
                            self.set_cir_wait(ci, avail);
                            return Err(Block::Cir);
                        }
                        None => {
                            self.set_cir_wait(ci, u64::MAX);
                            return Err(Block::Cir);
                        }
                    }
                }
            }
        }

        // RAW: all sources must be ready (full bypassing within the lane).
        for i in 0..m.n_srcs as usize {
            if self.ctxs[ci].reg_ready[m.srcs[i] as usize] > self.cycle {
                return Err(Block::Raw);
            }
        }

        // Without memory ordering there is no LSQ to satisfy a memory
        // instruction from, so a spent port means a refusal — skip the
        // decode. (`try_issue`'s refusal counter is not consulted by any
        // simulation output, so probing instead of issuing is unobservable.)
        if m.is_mem && !self.orders_mem && self.port.is_exhausted(self.cycle) {
            return Err(Block::MemPort);
        }
        // Injected port refusals hit every issue attempt of the window,
        // before the real port is consulted (they must not consume real
        // bandwidth, which would perturb arbitration for other lanes).
        if m.is_mem && self.inj_refuses_mem() {
            return Err(Block::MemPort);
        }

        // The iteration is speculative w.r.t. memory unless it is the
        // frontier (a frontier lane reaching here has a drained LSQ).
        let speculative = self.orders_mem && iter != self.frontier;

        // LLFU arbitration happens before semantics runs: a refused grant
        // must leave no architectural side effects, and `apply` cannot fail
        // for an LLFU op (it touches no memory), so grant-then-apply is
        // safe.
        if let EffectClass::Llfu(op) = m.class {
            let granted = if op.is_pipelined() {
                self.llfu_pipe.try_issue(self.cycle)
            } else {
                self.llfu_div.try_start(self.cycle, op.default_latency())
            };
            if !granted {
                return Err(Block::Llfu);
            }
            self.ctxs[ci].tally.llfu_ops += 1;
        }

        let mut load_ready = 0u64;
        let mut stored_to: Option<u32> = None;
        let effect = if !m.is_mem && m.class != EffectClass::Xi {
            // Poll-path fast lane: an instruction with no memory operand
            // can never consult the port, so the whole LaneMem apparatus
            // (context split, LSQ/snoop/port/cache routing) is dead weight.
            // Executing against the no-op port both skips its setup and
            // hands `apply` a monomorphized copy with the memory arms
            // compiled out. This is the majority of issued instructions.
            match apply(instr, &mut self.ctxs[ci].state, &mut NoMem) {
                Ok(effect) => effect,
                Err(ApplyError::Fault(fault)) => {
                    self.pending_fault = Some(fault);
                    return Err(Block::Idle);
                }
                Err(ApplyError::Blocked(never)) => match never {},
            }
        } else if m.class == EffectClass::Xi {
            // `xi` is the ISA's one semantic degree of freedom: the lane
            // computes the induction register with the serial step and
            // mutual-induction registers positionally from the MIVT, using
            // the shared formulas.
            self.ctxs[ci].tally.xi_ops += 1;
            let reg = instr.dst().expect("xi writes its register");
            let v = if reg == self.scan.idx_reg {
                xi_step(self.ctxs[ci].state.reg(reg), self.scan.step)
            } else {
                xi_mivt(self.scan.live_ins[reg.index()], self.mivt_inc[reg.index()], iter)
            };
            let state = &mut self.ctxs[ci].state;
            state.set_reg(reg, v);
            state.pc = state.pc.wrapping_add(INSTR_BYTES);
            Effect {
                class: m.class,
                wrote: Some((reg, v)),
                mem_addr: None,
                taken: false,
                next_pc: state.pc,
            }
        } else {
            // Everything else runs the shared semantics, with memory routed
            // through the lane port (LSQ / snoop network / shared port /
            // cache). A port refusal aborts the instruction side-effect
            // free and becomes this context's block reason.
            let (before, rest) = self.ctxs.split_at_mut(ci);
            let (ctx, after) = rest.split_first_mut().expect("context index in range");
            let Ctx { state, lsq, tally, .. } = ctx;
            let mut lane = LaneMem {
                speculative,
                orders_mem: self.orders_mem,
                cross_lane: self.cfg.cross_lane_forwarding,
                iter,
                cycle: self.cycle,
                lsq_loads: self.cfg.lsq_loads,
                lsq_stores: self.cfg.lsq_stores,
                lsq,
                tally,
                port: &mut self.port,
                dcache: &mut *self.dcache,
                mem: &mut *self.mem,
                others: (before, after),
                load_ready: 0,
                stored_to: None,
            };
            let effect = match apply(instr, state, &mut lane) {
                Ok(effect) => effect,
                Err(ApplyError::Blocked(b)) => return Err(b),
                Err(ApplyError::Fault(fault)) => {
                    // Surface the fault at the end of this pass; the
                    // context made no progress (zero side effects).
                    self.pending_fault = Some(fault);
                    return Err(Block::Idle);
                }
            };
            load_ready = lane.load_ready;
            stored_to = lane.stored_to;
            effect
        };

        // A store that reached memory squashes mis-speculated younger
        // iterations. Deferred from the port to here because the squash
        // walks every context; it can never hit this context (only strictly
        // younger iterations squash), so running it after `apply` updated
        // our state is equivalent.
        if let Some(addr) = stored_to {
            self.broadcast_store(addr, iter);
        }

        // Timing: when the written value becomes bypassable and how long
        // the lane front end is occupied.
        let mut busy = self.cycle + 1;
        let ready = match effect.class {
            EffectClass::Llfu(op) => self.cycle + op.default_latency() as u64,
            EffectClass::Load(_) => load_ready,
            EffectClass::Amo => {
                if !speculative {
                    // A direct atomic occupies the lane to completion.
                    busy = self.cycle + 2;
                }
                self.cycle + 2
            }
            EffectClass::Branch | EffectClass::Xloop => {
                if effect.taken {
                    busy = self.cycle + 2; // one-bubble redirect
                }
                self.cycle + 1
            }
            _ => self.cycle + 1,
        };

        // Writeback bookkeeping, dynamic-bound reporting, CIR forwarding.
        if let Some((rd, value)) = effect.wrote {
            if !rd.is_zero() {
                self.ctxs[ci].reg_ready[rd.index()] = ready;
                if ready > self.ctxs[ci].max_ready {
                    self.ctxs[ci].max_ready = ready;
                }
            }
            if rd.index() as u8 == self.bound_watch {
                // Bounds grow monotonically; the LMU keeps the maximum.
                if (value as i32) > (self.bound as i32) {
                    self.bound = value;
                }
            }
            if self.orders_reg && self.is_cir(rd) {
                let bit = 1u32 << rd.index();
                self.ctxs[ci].cir_local |= bit;
                // The "last CIR write" bit: forward when the largest-pc
                // writer executes.
                if self.cir_last_write[rd.index()] == bidx {
                    self.publish_cir(iter, rd, value);
                    self.ctxs[ci].cir_pub |= bit;
                    self.ctxs[ci].tally.cir_transfers += 1;
                }
            }
        }

        self.ctxs[ci].busy_until = busy;
        self.ctxs[ci].tally.exec += 1;
        self.ctxs[ci].tally.instrs += 1;
        Ok(())
    }
}

/// The port for instructions without a memory operand: [`apply`] never
/// calls it (`issue_instr` routes only `!is_mem` instructions here), so
/// every method is unreachable and its monomorphized [`apply`] copy
/// carries no memory machinery.
struct NoMem;

impl MemPort for NoMem {
    type Block = std::convert::Infallible;

    fn load(&mut self, _: MemOp, _: u32) -> Result<u32, Self::Block> {
        unreachable!("non-memory instruction consulted the port")
    }

    fn store(&mut self, _: MemOp, _: u32, _: u32) -> Result<(), Self::Block> {
        unreachable!("non-memory instruction consulted the port")
    }

    fn amo(&mut self, _: AmoOp, _: u32, _: u32) -> Result<u32, Self::Block> {
        unreachable!("non-memory instruction consulted the port")
    }
}

/// The lane-side [`MemPort`]: routes the shared semantics' (at most one)
/// memory operation through the LSQ, the cross-lane snoop network, the
/// shared memory port, and the cache — refusing with the lane's [`Block`]
/// reason when a structural resource is exhausted, which makes
/// [`apply`] abort the instruction with zero side effects.
struct LaneMem<'e> {
    /// The iteration is speculative w.r.t. memory (ordered-memory patterns
    /// only): loads are recorded and stores buffered in the LSQ.
    speculative: bool,
    orders_mem: bool,
    cross_lane: bool,
    iter: u64,
    cycle: u64,
    lsq_loads: u32,
    lsq_stores: u32,
    lsq: &'e mut Lsq,
    tally: &'e mut IterTally,
    port: &'e mut SharedPort,
    dcache: &'e mut Cache,
    mem: &'e mut Memory,
    /// All other contexts (those before / after this one), for cross-lane
    /// store forwarding.
    others: (&'e [Ctx], &'e [Ctx]),
    /// Out: cycle at which a loaded value becomes bypassable.
    load_ready: u64,
    /// Out: a store reached memory at this address — the engine replays
    /// the squash broadcast once `apply` returns.
    stored_to: Option<u32>,
}

impl LaneMem<'_> {
    /// Snoops older active iterations' LSQs (newest older iteration first)
    /// for a forwardable store.
    fn snoop_older(&self, addr: u32, op: MemOp) -> Option<u32> {
        if !self.cross_lane {
            return None;
        }
        let mut best: Option<(u64, u32)> = None;
        for ctx in self.others.0.iter().chain(self.others.1) {
            if let Some(it) = ctx.iter {
                if it < self.iter {
                    if let Some(v) = ctx.lsq.forward(addr, op) {
                        if best.is_none_or(|(bit, _)| it > bit) {
                            best = Some((it, v));
                        }
                    }
                }
            }
        }
        best.map(|(_, v)| v)
    }
}

impl MemPort for LaneMem<'_> {
    type Block = Block;

    fn load(&mut self, op: MemOp, addr: u32) -> Result<u32, Block> {
        if let Some(v) = self.lsq.forward(addr, op) {
            // Same-lane store→load forwarding (a non-speculative lane may
            // still hit its own not-yet-drained stores; or/uc lanes have
            // no LSQ at all and never hit).
            self.tally.lsq_events += 1;
            self.load_ready = self.cycle + 2;
            return Ok(v);
        }
        if self.speculative {
            if let Some(v) = self.snoop_older(addr, op) {
                // Cross-lane snoop hit: 2-cycle network hop; the load is
                // still recorded so a later broadcast from an intermediate
                // iteration squashes us.
                if !self.lsq.load_has_room(self.lsq_loads) {
                    return Err(Block::Lsq);
                }
                self.tally.lsq_events += 1;
                self.lsq.record_load(addr);
                self.load_ready = self.cycle + 3;
                return Ok(v);
            }
            if !self.lsq.load_has_room(self.lsq_loads) {
                return Err(Block::Lsq);
            }
            if !self.port.try_issue(self.cycle) {
                return Err(Block::MemPort);
            }
            let lat = self.dcache.access_at(addr, false, self.cycle) as u64;
            self.tally.mem_accesses += 1;
            self.tally.lsq_events += 1;
            self.lsq.record_load(addr);
            self.load_ready = self.cycle + 1 + lat;
            Ok(load(self.mem, op, addr))
        } else {
            if !self.port.try_issue(self.cycle) {
                return Err(Block::MemPort);
            }
            let lat = self.dcache.access_at(addr, false, self.cycle) as u64;
            self.tally.mem_accesses += 1;
            self.load_ready = self.cycle + 1 + lat;
            Ok(load(self.mem, op, addr))
        }
    }

    fn store(&mut self, op: MemOp, addr: u32, value: u32) -> Result<(), Block> {
        if self.speculative {
            if !self.lsq.store_has_room(self.lsq_stores) {
                return Err(Block::Lsq);
            }
            self.lsq.push_store(addr, op, value);
            self.tally.lsq_events += 1;
        } else {
            if !self.port.try_issue(self.cycle) {
                return Err(Block::MemPort);
            }
            store(self.mem, op, addr, value);
            self.dcache.access_at(addr, true, self.cycle);
            self.tally.mem_accesses += 1;
            if self.orders_mem {
                self.stored_to = Some(addr);
            }
        }
        Ok(())
    }

    fn amo(&mut self, op: AmoOp, addr: u32, operand: u32) -> Result<u32, Block> {
        if self.speculative {
            // Read (LSQ-forwarded or memory), combine, buffer the store;
            // atomicity follows from the serial memory order the om
            // mechanism enforces.
            let old = match self.lsq.forward(addr, MemOp::Lw) {
                Some(v) => {
                    self.tally.lsq_events += 1;
                    v
                }
                None => {
                    if !self.lsq.load_has_room(self.lsq_loads)
                        || !self.lsq.store_has_room(self.lsq_stores)
                    {
                        return Err(Block::Lsq);
                    }
                    if !self.port.try_issue(self.cycle) {
                        return Err(Block::MemPort);
                    }
                    self.dcache.access_at(addr, false, self.cycle);
                    self.tally.mem_accesses += 1;
                    self.lsq.record_load(addr);
                    self.mem.read_u32(addr)
                }
            };
            self.lsq.push_store(addr, MemOp::Sw, op.combine(old, operand));
            self.tally.lsq_events += 1;
            Ok(old)
        } else {
            if !self.port.try_issue(self.cycle) {
                return Err(Block::MemPort);
            }
            let old = self.mem.amo(op, addr, operand);
            self.dcache.access_at(addr, true, self.cycle);
            self.tally.mem_accesses += 1;
            if self.orders_mem {
                self.stored_to = Some(addr);
            }
            Ok(old)
        }
    }
}

/// Number of cycles `x` in `[from, to)` with `x % k == p` (`p < k`).
fn cycles_with_residue(from: u64, to: u64, p: u64, k: u64) -> u64 {
    let upto = |n: u64| if n > p { (n - p).div_ceil(k) } else { 0 };
    upto(to) - upto(from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_asm::assemble;
    use xloops_mem::CacheConfig;

    #[test]
    fn residue_counts_match_enumeration() {
        for k in 1..4u64 {
            for from in 0..12 {
                for to in from..16 {
                    for p in 0..k {
                        let expect = (from..to).filter(|x| x % k == p).count() as u64;
                        assert_eq!(
                            cycles_with_residue(from, to, p, k),
                            expect,
                            "[{from}, {to}) mod {k} == {p}"
                        );
                    }
                }
            }
        }
    }

    /// A deliberately wedged engine must return an error, not abort: the
    /// iteration −1 CIR seed is removed after construction, so no
    /// iteration can ever obtain its cross-iteration input.
    #[test]
    fn wedged_engine_returns_no_forward_progress() {
        let p = assemble(
            "
            li r2, 0
            li r3, 8
            li r9, 1
        body:
            addu r9, r9, r2
            addiu r2, r2, 1
            xloop.or body, r2, r3
            exit",
        )
        .unwrap();
        let xloop_pc = p.instrs().iter().position(|i| i.is_xloop()).unwrap() as u32 * 4;
        let mut live_ins = [0u32; 32];
        live_ins[3] = 8;
        live_ins[9] = 1;
        let cfg = LpsuConfig::default4();
        let s = crate::scan(&p, xloop_pc, live_ins, &cfg).expect("scans as or");
        let mut mem = Memory::new();
        let mut dcache = Cache::new(CacheConfig::l1_default());
        let mut eng = Engine::new(&cfg, &s, &mut mem, &mut dcache, None, None);
        eng.chan.clear();
        let err = eng.run(Stepper::EventDriven).unwrap_err();
        assert!(matches!(err, LpsuError::NoForwardProgress { .. }), "got {err}");
    }
}
