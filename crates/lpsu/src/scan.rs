//! The scan phase: extracting everything the LMU needs from a loop body.

use std::fmt;

use xloops_asm::Program;
use xloops_isa::{Instr, LoopPattern, Reg, XiKind, INSTR_BYTES};

use crate::config::LpsuConfig;

/// Why a loop cannot be specialized (the system falls back to traditional
/// execution, which the XLOOPS abstraction explicitly permits).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScanError {
    /// The instruction at the given pc is not an `xloop`.
    NotAnXloop(u32),
    /// The body has more instructions than a lane instruction buffer.
    BodyTooLarge { body: u32, ibuf: u32 },
    /// The body contains an instruction the lanes cannot execute
    /// (indirect jumps, `exit`, `sync`).
    UnsupportedInstr(Instr),
    /// A branch or jump escapes the loop body.
    ControlEscapesBody,
    /// The induction-variable update could not be identified (need exactly
    /// one `addiu idx, idx, step` with positive step).
    NoInductionUpdate,
    /// A mutual induction variable is updated more than once per iteration.
    IrregularMiv(Reg),
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::NotAnXloop(pc) => write!(f, "no xloop at pc {pc:#x}"),
            ScanError::BodyTooLarge { body, ibuf } => {
                write!(f, "loop body of {body} instructions exceeds the {ibuf}-entry buffer")
            }
            ScanError::UnsupportedInstr(i) => write!(f, "lanes cannot execute `{i}`"),
            ScanError::ControlEscapesBody => write!(f, "control flow escapes the loop body"),
            ScanError::NoInductionUpdate => write!(f, "no unique induction-variable update"),
            ScanError::IrregularMiv(r) => write!(f, "mutual induction variable {r} is irregular"),
        }
    }
}

impl std::error::Error for ScanError {}

/// One mutual-induction-variable table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MivEntry {
    /// The MIV register.
    pub reg: Reg,
    /// Loop-invariant increment per iteration (resolved at scan time for
    /// `addu.xi`).
    pub inc: i32,
    /// Body index of the `xi` instruction.
    pub at: usize,
}

/// One cross-iteration register with its last static writer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CirEntry {
    /// The CIR.
    pub reg: Reg,
    /// Body index of the *largest-pc* instruction writing the CIR; the
    /// lane forwards the value to the next iteration when it executes this
    /// instruction (the "last CIR write" bit).
    pub last_write: usize,
}

/// Everything the LMU extracts during the scan phase.
#[derive(Clone, Debug)]
pub struct ScanResult {
    /// The loop body, `[L, xloop)` in program order.
    pub body: Vec<Instr>,
    /// pc of the first body instruction.
    pub body_pc: u32,
    /// pc of the `xloop` instruction itself.
    pub xloop_pc: u32,
    /// The loop's dependence pattern.
    pub pattern: LoopPattern,
    /// Induction-variable register (from the `xloop` operands).
    pub idx_reg: Reg,
    /// Bound register (from the `xloop` operands).
    pub bound_reg: Reg,
    /// Induction step extracted from the body's `addiu idx, idx, step`.
    pub step: i32,
    /// Live-in register file captured at scan time.
    pub live_ins: [u32; 32],
    /// Cross-iteration registers (empty unless the pattern orders
    /// registers).
    pub cirs: Vec<CirEntry>,
    /// Mutual-induction-variable table.
    pub mivt: Vec<MivEntry>,
    /// Cycles the scan phase occupies: one per body instruction (write to
    /// the instruction buffers + rename) plus fixed startup overhead.
    pub scan_cycles: u64,
}

impl ScanResult {
    /// Induction-variable value of iteration ordinal `k` (ordinal 0 is the
    /// first iteration the LPSU executes).
    pub fn iter_value(&self, k: u64) -> u32 {
        self.live_ins[self.idx_reg.index()].wrapping_add((self.step as i64 * k as i64) as u32)
    }

    /// Number of remaining iterations given the scanned live-in index and
    /// a bound value (fixed-bound loops only).
    pub fn remaining_iters(&self, bound: u32) -> u64 {
        let start = self.live_ins[self.idx_reg.index()] as i32 as i64;
        let bound = bound as i32 as i64;
        if start >= bound {
            0
        } else {
            ((bound - start + self.step as i64 - 1) / self.step as i64) as u64
        }
    }
}

/// Performs the scan phase for the `xloop` at `xloop_pc`.
///
/// `live_ins` is the GPP architectural register file at the moment the
/// `xloop` was reached (one body iteration has already executed
/// traditionally, so the induction variable holds the first iteration the
/// LPSU should run).
///
/// # Errors
///
/// Returns a [`ScanError`] when the loop cannot be specialized; the system
/// then executes it traditionally.
pub fn scan(
    program: &Program,
    xloop_pc: u32,
    live_ins: [u32; 32],
    config: &LpsuConfig,
) -> Result<ScanResult, ScanError> {
    let Some(Instr::Xloop { pattern, idx, bound, body_offset }) = program.fetch(xloop_pc) else {
        return Err(ScanError::NotAnXloop(xloop_pc));
    };
    if body_offset as u32 > config.ibuf_entries {
        return Err(ScanError::BodyTooLarge {
            body: body_offset as u32,
            ibuf: config.ibuf_entries,
        });
    }
    let body_pc = xloop_pc - body_offset as u32 * INSTR_BYTES;
    let body_len = body_offset as usize;
    let mut body = Vec::with_capacity(body_len);
    for i in 0..body_len {
        let instr =
            program.fetch(body_pc + i as u32 * INSTR_BYTES).expect("body lies inside the program");
        match instr {
            Instr::JumpReg { .. } | Instr::Exit | Instr::Sync | Instr::Jump { .. } => {
                return Err(ScanError::UnsupportedInstr(instr))
            }
            // Branch targets must stay inside [0, body_len]; target ==
            // body_len is the loop latch (ends the iteration). A nested
            // xloop executes as a backward branch inside the body.
            Instr::Branch { offset, .. } => {
                let target = i as i64 + offset as i64;
                if !(0..=body_len as i64).contains(&target) {
                    return Err(ScanError::ControlEscapesBody);
                }
                body.push(instr);
            }
            Instr::Xloop { body_offset: nested_offset, .. } => {
                let target = i as i64 - nested_offset as i64;
                if !(0..=body_len as i64).contains(&target) {
                    return Err(ScanError::ControlEscapesBody);
                }
                body.push(instr);
            }
            _ => body.push(instr),
        }
    }

    // Find the unique induction update `addiu idx, idx, step` (an `xi` on
    // the induction register also qualifies).
    let mut step: Option<i32> = None;
    for instr in &body {
        let s = match *instr {
            Instr::AluImm { op: xloops_isa::AluOp::Addu, rd, rs, imm }
                if rd == idx && rs == idx =>
            {
                Some(imm as i32)
            }
            Instr::Xi { reg, kind: XiKind::Imm(imm) } if reg == idx => Some(imm as i32),
            Instr::Xi { reg, kind: XiKind::Reg(rt) } if reg == idx => {
                Some(live_ins[rt.index()] as i32)
            }
            _ => None,
        };
        if let Some(s) = s {
            if step.is_some() || s <= 0 {
                return Err(ScanError::NoInductionUpdate);
            }
            step = Some(s);
        }
    }
    let step = step.ok_or(ScanError::NoInductionUpdate)?;

    // MIVT: every xi instruction (except on the induction register, which
    // the LMU already handles via the index queues).
    let mut mivt: Vec<MivEntry> = Vec::new();
    for (i, instr) in body.iter().enumerate() {
        if let Instr::Xi { reg, kind } = *instr {
            if reg == idx {
                continue;
            }
            if mivt.iter().any(|m| m.reg == reg) {
                return Err(ScanError::IrregularMiv(reg));
            }
            let inc = match kind {
                XiKind::Imm(imm) => imm as i32,
                XiKind::Reg(rt) => live_ins[rt.index()] as i32,
            };
            mivt.push(MivEntry { reg, inc, at: i });
        }
    }

    // CIR identification (or/orm): registers read before written, then
    // written. The induction register, MIV registers, and the bound
    // register are excluded — the ISA exempts the induction update, the
    // MIVT handles MIVs, and the LMU owns the dynamic bound.
    let mut cirs: Vec<CirEntry> = Vec::new();
    if pattern.data.orders_registers() {
        let mut read_first = [false; 32];
        let mut written = [false; 32];
        for instr in &body {
            for src in instr.srcs().into_iter().flatten() {
                if !written[src.index()] {
                    read_first[src.index()] = true;
                }
            }
            if let Some(rd) = instr.dst() {
                written[rd.index()] = true;
            }
        }
        for r in Reg::all() {
            if r.is_zero() || r == idx || r == bound {
                continue;
            }
            if mivt.iter().any(|m| m.reg == r) {
                continue;
            }
            if read_first[r.index()] && written[r.index()] {
                let last_write = body
                    .iter()
                    .rposition(|i| i.dst() == Some(r))
                    .expect("written implies a writer");
                cirs.push(CirEntry { reg: r, last_write });
            }
        }
    }

    Ok(ScanResult {
        scan_cycles: body.len() as u64 + 8,
        body,
        body_pc,
        xloop_pc,
        pattern,
        idx_reg: idx,
        bound_reg: bound,
        step,
        live_ins,
        cirs,
        mivt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_asm::assemble;
    use xloops_isa::DataPattern;

    fn scan_src(src: &str, live_ins: [u32; 32]) -> Result<ScanResult, ScanError> {
        let p = assemble(src).unwrap();
        let xloop_pc =
            p.instrs().iter().position(|i| i.is_xloop()).expect("program contains an xloop") as u32
                * 4;
        scan(&p, xloop_pc, live_ins, &LpsuConfig::default4())
    }

    fn regs(pairs: &[(u8, u32)]) -> [u32; 32] {
        let mut f = [0; 32];
        for &(r, v) in pairs {
            f[r as usize] = v;
        }
        f
    }

    #[test]
    fn extracts_body_step_and_pattern() {
        let s = scan_src(
            "
            li r2, 0
            li r3, 10
        body:
            sll r5, r2, 2
            lw r6, 0(r5)
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit",
            regs(&[(2, 1), (3, 10)]),
        )
        .unwrap();
        assert_eq!(s.body.len(), 3);
        assert_eq!(s.pattern.data, DataPattern::Uc);
        assert_eq!(s.step, 1);
        assert_eq!(s.iter_value(0), 1, "first LPSU iteration is the live-in idx");
        assert_eq!(s.iter_value(3), 4);
        assert_eq!(s.remaining_iters(10), 9);
        assert_eq!(s.scan_cycles, 3 + 8);
    }

    #[test]
    fn identifies_cir_and_last_writer() {
        // r9 is read (addu r9, r9, r6) — read-before-write — and written.
        let s = scan_src(
            "
            li r2, 0
            li r3, 10
        body:
            lw r6, 0(r2)
            addu r9, r9, r6
            addiu r9, r9, 1
            addiu r2, r2, 4
            xloop.or body, r2, r3
            exit",
            regs(&[(3, 40)]),
        )
        .unwrap();
        assert_eq!(s.cirs.len(), 1);
        assert_eq!(s.cirs[0].reg, Reg::new(9));
        assert_eq!(s.cirs[0].last_write, 2, "the addiu at body index 2 is the last writer");
        assert_eq!(s.step, 4);
    }

    #[test]
    fn uc_pattern_has_no_cirs() {
        let s = scan_src(
            "
            li r2, 0
            li r3, 10
        body:
            addu r9, r9, r2
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit",
            regs(&[(3, 10)]),
        )
        .unwrap();
        assert!(s.cirs.is_empty(), "uc never tracks CIRs");
    }

    #[test]
    fn builds_mivt_with_register_increment() {
        let s = scan_src(
            "
            li r2, 0
            li r3, 8
            li r7, 12
        body:
            addiu.xi r5, r5, 4
            addu.xi r6, r6, r7
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit",
            regs(&[(7, 12), (3, 8)]),
        )
        .unwrap();
        assert_eq!(s.mivt.len(), 2);
        assert_eq!(s.mivt[0], MivEntry { reg: Reg::new(5), inc: 4, at: 0 });
        assert_eq!(s.mivt[1], MivEntry { reg: Reg::new(6), inc: 12, at: 1 });
    }

    #[test]
    fn rejects_unsupported_bodies() {
        let e = scan_src(
            "li r3, 4\nbody: jr ra\n addiu r2, r2, 1\n xloop.uc body, r2, r3\nexit",
            regs(&[]),
        );
        assert!(matches!(e, Err(ScanError::UnsupportedInstr(_))));

        let e = scan_src(
            "li r3, 4\nout: nop\nbody: beq r0, r0, out\n addiu r2, r2, 1\n xloop.uc body, r2, r3\nexit",
            regs(&[]),
        );
        assert_eq!(e.unwrap_err(), ScanError::ControlEscapesBody);

        let e = scan_src("li r3, 4\nbody: nop\n xloop.uc body, r2, r3\nexit", regs(&[]));
        assert_eq!(e.unwrap_err(), ScanError::NoInductionUpdate);
    }

    #[test]
    fn body_too_large_falls_back() {
        let mut src = String::from("li r3, 4\nbody:\n");
        for _ in 0..200 {
            src.push_str("nop\n");
        }
        src.push_str("addiu r2, r2, 1\nxloop.uc body, r2, r3\nexit");
        let e = scan_src(&src, regs(&[]));
        assert!(matches!(e, Err(ScanError::BodyTooLarge { .. })));
    }

    #[test]
    fn branch_to_latch_is_allowed() {
        let s = scan_src(
            "
            li r3, 4
        body:
            addiu r2, r2, 1
            beq r0, r0, latch
            nop
        latch:
            xloop.uc body, r2, r3
            exit",
            regs(&[]),
        );
        assert!(s.is_ok(), "{s:?}");
    }
}
