//! Deterministic, seeded fault injection for the LPSU engine.
//!
//! A [`FaultPlan`] is a declarative list of faults to inject into LPSU
//! executions — memory-port refusal windows, dropped CIB publishes, and
//! spurious engine faults — each pinned to a cycle stamp and (optionally) a
//! specific loop handoff. The supervisor materialises one [`FaultInjector`]
//! per handoff from the plan; the engine consults the injector at the three
//! hook points (port arbitration, CIB publish, top of the scheduling loop).
//!
//! Plans are deterministic: [`FaultPlan::seeded`] derives every stamp from a
//! splitmix64 stream over the seed, so a failing run is reproducible from
//! its seed alone. Injected refusal windows carry a wakeup stamp (the end of
//! the window) which the event-driven stepper folds into `next_wakeup`, so
//! an injected stall is never misdiagnosed as a wedge.

/// One kind of injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Refuse every shared-memory-port issue attempt for `cycles` cycles
    /// starting at `at_cycle` (engine-local cycle stamps). Models a
    /// transient interconnect stall: execution completes, only later.
    MemRefusal {
        /// First engine cycle of the refusal window.
        at_cycle: u64,
        /// Window length in cycles.
        cycles: u64,
    },
    /// Drop the first CIB publish at or after `at_cycle`: the consumer
    /// iteration never sees the value and the engine wedges
    /// (`NoForwardProgress`), exercising wedge detection and recovery.
    DropCib {
        /// Earliest engine cycle at which a publish is dropped.
        at_cycle: u64,
    },
    /// Raise a spurious engine fault at the first scheduling pass at or
    /// after `at_cycle` (`LpsuError::Injected`). Models a detected-but-
    /// unattributable hardware error.
    Spurious {
        /// Earliest engine cycle at which the fault fires.
        at_cycle: u64,
    },
}

/// A fault pinned (optionally) to a specific loop handoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which LPSU handoff (0-based, counted per `specialize` attempt) the
    /// fault applies to; `None` applies it to *every* handoff (a persistent
    /// fault that cannot be retried away — forces degradation).
    pub handoff: Option<u64>,
    /// What to inject.
    pub kind: FaultKind,
}

/// A deterministic, reproducible list of faults to inject into a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, in no particular order.
    pub faults: Vec<FaultSpec>,
}

/// splitmix64: tiny, high-quality deterministic stream for plan generation
/// (no external RNG dependency).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Derives `n` faults deterministically from `seed`. Kinds and stamps
    /// are drawn from a splitmix64 stream; handoffs cycle over the first
    /// few loop entries so multi-loop kernels see faults in different
    /// loops. The same seed always yields the same plan.
    pub fn seeded(seed: u64, n: usize) -> FaultPlan {
        let mut s = seed;
        let mut faults = Vec::with_capacity(n);
        for i in 0..n {
            let r = splitmix64(&mut s);
            // Cycle stamps land early in the loop (cycles 1..=64) so short
            // kernels are still hit; windows are 1..=16 cycles.
            let at_cycle = 1 + (splitmix64(&mut s) % 64);
            let kind = match r % 3 {
                0 => FaultKind::MemRefusal { at_cycle, cycles: 1 + (splitmix64(&mut s) % 16) },
                1 => FaultKind::DropCib { at_cycle },
                _ => FaultKind::Spurious { at_cycle },
            };
            faults.push(FaultSpec { handoff: Some(i as u64 % 3), kind });
        }
        FaultPlan { faults }
    }

    /// A plan that raises a spurious fault at `at_cycle` of **every**
    /// handoff — the canonical "LPSU is broken" plan used by the
    /// degradation tests (retry cannot succeed; the supervisor must fall
    /// back to the GPP).
    pub fn persistent_spurious(at_cycle: u64) -> FaultPlan {
        FaultPlan {
            faults: vec![FaultSpec { handoff: None, kind: FaultKind::Spurious { at_cycle } }],
        }
    }

    /// A plan that injects one fault of the given kind into handoff 0 only
    /// (a transient fault the supervisor can retry away).
    pub fn once(kind: FaultKind) -> FaultPlan {
        FaultPlan { faults: vec![FaultSpec { handoff: Some(0), kind }] }
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Materialises the injector for the given handoff ordinal, or `None`
    /// when no fault applies to it.
    pub fn injector_for(&self, handoff: u64) -> Option<FaultInjector> {
        let mut inj = FaultInjector::default();
        let mut any = false;
        for spec in &self.faults {
            if spec.handoff.is_some_and(|h| h != handoff) {
                continue;
            }
            any = true;
            match spec.kind {
                FaultKind::MemRefusal { at_cycle, cycles } => {
                    inj.refusals.push((at_cycle, at_cycle.saturating_add(cycles)));
                }
                FaultKind::DropCib { at_cycle } => {
                    let slot = inj.drop_cib.get_or_insert(at_cycle);
                    *slot = (*slot).min(at_cycle);
                }
                FaultKind::Spurious { at_cycle } => {
                    let slot = inj.spurious.get_or_insert(at_cycle);
                    *slot = (*slot).min(at_cycle);
                }
            }
        }
        any.then_some(inj)
    }
}

/// The per-handoff fault state the engine consults. Built by
/// [`FaultPlan::injector_for`]; mutable because one-shot faults (dropped
/// publish) disarm after delivery.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultInjector {
    /// Half-open refusal windows `[start, end)` on the shared memory port.
    refusals: Vec<(u64, u64)>,
    /// Earliest cycle at which to drop one CIB publish (`None` once
    /// delivered).
    drop_cib: Option<u64>,
    /// Earliest cycle at which to raise a spurious fault (`None` once
    /// delivered).
    spurious: Option<u64>,
    /// Count of faults actually delivered to the engine.
    delivered: u64,
}

impl FaultInjector {
    /// True if the shared memory port must refuse issue this cycle.
    #[inline]
    pub fn refuse_mem(&mut self, cycle: u64) -> bool {
        let hit = self.refusals.iter().any(|&(s, e)| cycle >= s && cycle < e);
        if hit {
            self.delivered += 1;
        }
        hit
    }

    /// True if this CIB publish must be dropped (one-shot: disarms after
    /// delivering once).
    #[inline]
    pub fn drop_publish(&mut self, cycle: u64) -> bool {
        if self.drop_cib.is_some_and(|at| cycle >= at) {
            self.drop_cib = None;
            self.delivered += 1;
            true
        } else {
            false
        }
    }

    /// True if a spurious fault is due this cycle (one-shot).
    #[inline]
    pub fn spurious_due(&mut self, cycle: u64) -> bool {
        if self.spurious.is_some_and(|at| cycle >= at) {
            self.spurious = None;
            self.delivered += 1;
            true
        } else {
            false
        }
    }

    /// The earliest future cycle at which injector state changes — the end
    /// of an active refusal window, or a pending spurious stamp. Folded
    /// into the event-driven stepper's `next_wakeup` so an injected stall
    /// is re-evaluated rather than declared a wedge.
    pub fn next_wakeup(&self, cycle: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |c: u64| {
            if c > cycle {
                next = Some(next.map_or(c, |n| n.min(c)));
            }
        };
        for &(s, e) in &self.refusals {
            if cycle < s {
                consider(s);
            } else if cycle < e {
                consider(e);
            }
        }
        if let Some(at) = self.spurious {
            consider(at.max(cycle + 1));
        }
        next
    }

    /// Number of faults actually delivered into the engine.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 6);
        let b = FaultPlan::seeded(42, 6);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 6);
        assert_ne!(a, c, "different seeds should differ");
        assert_eq!(a.faults.len(), 6);
    }

    #[test]
    fn injector_scoped_to_handoff() {
        let plan = FaultPlan::once(FaultKind::Spurious { at_cycle: 5 });
        assert!(plan.injector_for(0).is_some());
        assert!(plan.injector_for(1).is_none());
        let persistent = FaultPlan::persistent_spurious(5);
        assert!(persistent.injector_for(0).is_some());
        assert!(persistent.injector_for(7).is_some());
    }

    #[test]
    fn refusal_window_and_wakeup() {
        let plan = FaultPlan::once(FaultKind::MemRefusal { at_cycle: 10, cycles: 3 });
        let mut inj = plan.injector_for(0).unwrap();
        assert!(!inj.refuse_mem(9));
        assert!(inj.refuse_mem(10));
        assert!(inj.refuse_mem(12));
        assert!(!inj.refuse_mem(13));
        // Before the window: wake at its start; inside: wake at its end.
        assert_eq!(inj.next_wakeup(5), Some(10));
        assert_eq!(inj.next_wakeup(11), Some(13));
        assert_eq!(inj.next_wakeup(20), None);
        assert_eq!(inj.delivered(), 2);
    }

    #[test]
    fn one_shot_faults_disarm() {
        let plan = FaultPlan::once(FaultKind::DropCib { at_cycle: 4 });
        let mut inj = plan.injector_for(0).unwrap();
        assert!(!inj.drop_publish(3));
        assert!(inj.drop_publish(6));
        assert!(!inj.drop_publish(7), "drop is one-shot");

        let plan = FaultPlan::persistent_spurious(4);
        let mut inj = plan.injector_for(0).unwrap();
        assert_eq!(inj.next_wakeup(2), Some(4));
        assert!(!inj.spurious_due(3));
        assert!(inj.spurious_due(4));
        assert!(!inj.spurious_due(5), "spurious is one-shot per handoff");
    }
}
