//! # xloops-asm
//!
//! A two-pass text assembler and disassembler for the TRISC/XLOOPS ISA
//! defined in [`xloops_isa`].
//!
//! The source syntax is MIPS-flavoured:
//!
//! ```text
//! # comment
//!     li    r4, 0x2000        # pseudo: load 32-bit immediate
//!     li    r2, 0
//!     li    r3, 64
//! loop:
//!     sll   r7, r2, 2
//!     addu  r7, r4, r7
//!     lw    r8, 0(r7)
//!     addiu r2, r2, 1
//!     xloop.uc loop, r2, r3   # loop body is [loop, here)
//!     exit
//! ```
//!
//! Branch/jump/xloop targets are labels; the assembler resolves them to the
//! pc-relative or absolute encodings of [`xloops_isa::Instr`].
//!
//! The crate also provides [`lower_gp`], which rewrites an XLOOPS binary for
//! the plain general-purpose ISA (`xloop` becomes `blt`, `xi` becomes an
//! ordinary add). This is how the *GP-ISA baseline* binaries of the paper's
//! Table II are produced, and it is also a software statement of exactly the
//! transformation that a traditional microarchitecture's decoder performs.
//!
//! ```
//! use xloops_asm::assemble;
//! let p = assemble("start: addiu r1, r1, 1\n beq r0, r0, start\n exit")?;
//! assert_eq!(p.len(), 3);
//! # Ok::<(), xloops_asm::AsmError>(())
//! ```

mod disasm;
mod error;
mod lower;
mod parse;
mod program;

pub use disasm::disassemble;
pub use error::{AsmError, AsmErrorKind};
pub use lower::lower_gp;
pub use parse::assemble;
pub use program::Program;
