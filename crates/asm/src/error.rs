use std::fmt;

/// Error produced while assembling a source file.
///
/// Carries the 1-based source line for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: u32,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> AsmError {
        AsmError { line, message: message.into() }
    }

    /// The 1-based source line the error refers to (0 for file-level errors).
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}
