use std::fmt;

/// The class of an assembly error — a typed taxonomy over the same
/// diagnostics [`AsmError::message`] spells out, so tools can branch on
/// *what* went wrong without parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// A label was defined twice.
    DuplicateLabel,
    /// A referenced label has no definition.
    UndefinedLabel,
    /// The mnemonic (or xloop pattern suffix) is not in the ISA.
    UnknownMnemonic,
    /// An operand could not be parsed (register, immediate, memory
    /// operand, or a malformed operand list).
    MalformedOperand,
    /// The right mnemonic with the wrong number of operands.
    OperandCount,
    /// A value that parsed fine but does not fit its encoding: immediate,
    /// branch/jump displacement, or xloop body size.
    OutOfRange,
    /// A structural rule was violated (e.g. `addiu.xi` needs `rd == rs`,
    /// an xloop body must be backward).
    Constraint,
}

/// Error produced while assembling a source file.
///
/// Carries the 1-based source line for diagnostics and a typed
/// [`AsmErrorKind`] for programmatic handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: u32,
    kind: AsmErrorKind,
    message: String,
}

impl AsmError {
    pub(crate) fn new(line: u32, kind: AsmErrorKind, message: impl Into<String>) -> AsmError {
        AsmError { line, kind, message: message.into() }
    }

    /// The 1-based source line the error refers to (0 for file-level errors).
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The class of the error.
    pub fn kind(&self) -> AsmErrorKind {
        self.kind
    }

    /// Human-readable description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "assembly error: {}", self.message)
        } else {
            write!(f, "assembly error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for AsmError {}
