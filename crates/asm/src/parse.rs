use std::collections::HashMap;

use xloops_isa::{AluOp, AmoOp, BranchCond, Instr, LlfuOp, LoopPattern, MemOp, Reg, XiKind};

use crate::error::{AsmError, AsmErrorKind};
use crate::program::Program;

/// Assembles TRISC/XLOOPS source text into a [`Program`].
///
/// Syntax: one statement per line; `#` starts a comment; `label:` defines a
/// label (optionally followed by a statement on the same line). See the
/// crate-level docs for the full mnemonic list, including the
/// pseudo-instructions `li`, `la`, `move`, `neg`, `not`, `b`, `beqz`,
/// `bnez`, `bgt`, `ble`, `bgtu`, `bleu`.
///
/// # Errors
///
/// Returns an [`AsmError`] carrying the offending source line for unknown
/// mnemonics, malformed operands, undefined or duplicate labels, and
/// out-of-range immediates/offsets.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut stmts: Vec<Stmt<'_>> = Vec::new();
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut index = 0u32; // instruction index of next statement

    // Pass 1: split lines into labels and statements, recording sizes.
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno as u32 + 1;
        let mut line = raw;
        if let Some(hash) = line.find('#') {
            line = &line[..hash];
        }
        let mut rest = line.trim();
        while let Some(colon) = rest.find(':') {
            let (name, after) = rest.split_at(colon);
            let name = name.trim();
            if !is_label_name(name) {
                break; // not a label; let the statement parser complain
            }
            if labels.insert(name.to_string(), index).is_some() {
                return Err(AsmError::new(
                    lineno,
                    AsmErrorKind::DuplicateLabel,
                    format!("duplicate label `{name}`"),
                ));
            }
            rest = after[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let stmt = Stmt { line: lineno, text: rest, index };
        index += stmt_size(&stmt)?;
        stmts.push(stmt);
    }

    // Pass 2: emit instructions with labels resolved.
    let mut instrs: Vec<Instr> = Vec::with_capacity(index as usize);
    let mut lines: Vec<u32> = Vec::with_capacity(index as usize);
    for stmt in &stmts {
        let before = instrs.len();
        emit(stmt, &labels, &mut instrs)?;
        debug_assert_eq!(instrs.len() - before, stmt_size(stmt)? as usize);
        lines.extend(std::iter::repeat_n(stmt.line, instrs.len() - before));
    }
    Ok(Program::from_parts(instrs, labels, lines))
}

struct Stmt<'a> {
    line: u32,
    text: &'a str,
    /// Instruction index of the first instruction this statement emits.
    index: u32,
}

fn is_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Number of instructions a statement expands to.
fn stmt_size(stmt: &Stmt<'_>) -> Result<u32, AsmError> {
    let (mnemonic, ops) = split_stmt(stmt)?;
    Ok(match mnemonic {
        "li" | "la" => {
            let imm = parse_imm32(stmt.line, ops.get(1).copied().unwrap_or(""))?;
            li_size(imm)
        }
        _ => 1,
    })
}

fn li_size(imm: u32) -> u32 {
    let simm = imm as i32;
    if (-32768..=32767).contains(&simm) || imm & 0xFFFF == 0 {
        1
    } else {
        2
    }
}

fn split_stmt<'a>(stmt: &Stmt<'a>) -> Result<(&'a str, Vec<&'a str>), AsmError> {
    let text = stmt.text;
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    if ops.iter().any(|o| o.is_empty()) {
        return Err(AsmError::new(
            stmt.line,
            AsmErrorKind::MalformedOperand,
            format!("malformed operand list in `{text}`"),
        ));
    }
    Ok((mnemonic, ops))
}

fn parse_reg(line: u32, s: &str) -> Result<Reg, AsmError> {
    // Accept AMO-style parenthesized address registers.
    let s = s.strip_prefix('(').and_then(|t| t.strip_suffix(')')).unwrap_or(s);
    s.parse().map_err(|_| {
        AsmError::new(line, AsmErrorKind::MalformedOperand, format!("invalid register `{s}`"))
    })
}

fn parse_imm32(line: u32, s: &str) -> Result<u32, AsmError> {
    let err =
        || AsmError::new(line, AsmErrorKind::MalformedOperand, format!("invalid immediate `{s}`"));
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let mag: i64 = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).map_err(|_| err())?
    } else {
        body.replace('_', "").parse().map_err(|_| err())?
    };
    let val = if neg { -mag } else { mag };
    if !(-(1i64 << 31)..(1i64 << 32)).contains(&val) {
        return Err(err());
    }
    Ok(val as u32)
}

fn parse_imm16(line: u32, s: &str) -> Result<i16, AsmError> {
    let v = parse_imm32(line, s)? as i32;
    // Accept either signed or unsigned 16-bit spellings (e.g. `ori r1, r1, 0xFFFF`).
    if (-32768..=65535).contains(&v) {
        Ok(v as u16 as i16)
    } else {
        Err(AsmError::new(
            line,
            AsmErrorKind::OutOfRange,
            format!("immediate `{s}` does not fit in 16 bits"),
        ))
    }
}

fn expect_ops(stmt: &Stmt<'_>, ops: &[&str], n: usize) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(AsmError::new(
            stmt.line,
            AsmErrorKind::OperandCount,
            format!("`{}` expects {n} operand(s), found {}", stmt.text, ops.len()),
        ))
    }
}

fn lookup_label(
    stmt: &Stmt<'_>,
    labels: &HashMap<String, u32>,
    name: &str,
) -> Result<u32, AsmError> {
    labels.get(name).copied().ok_or_else(|| {
        AsmError::new(stmt.line, AsmErrorKind::UndefinedLabel, format!("undefined label `{name}`"))
    })
}

fn branch_offset(stmt: &Stmt<'_>, at: u32, target: u32) -> Result<i16, AsmError> {
    let delta = target as i64 - at as i64;
    i16::try_from(delta).map_err(|_| {
        AsmError::new(
            stmt.line,
            AsmErrorKind::OutOfRange,
            format!("branch target out of range ({delta})"),
        )
    })
}

/// Parses `offset(base)` memory operands.
fn parse_mem_operand(line: u32, s: &str) -> Result<(i16, Reg), AsmError> {
    let err = || {
        AsmError::new(line, AsmErrorKind::MalformedOperand, format!("invalid memory operand `{s}`"))
    };
    let open = s.find('(').ok_or_else(err)?;
    if !s.ends_with(')') {
        return Err(err());
    }
    let off_str = s[..open].trim();
    let offset = if off_str.is_empty() { 0 } else { parse_imm16(line, off_str)? };
    let base = parse_reg(line, s[open + 1..s.len() - 1].trim())?;
    Ok((offset, base))
}

fn alu_reg_op(m: &str) -> Option<AluOp> {
    AluOp::ALL.into_iter().find(|op| op.mnemonic() == m)
}

fn alu_imm_op(m: &str) -> Option<AluOp> {
    AluOp::ALL.into_iter().find(|op| op.imm_mnemonic() == Some(m))
}

fn llfu_op(m: &str) -> Option<LlfuOp> {
    LlfuOp::ALL.into_iter().find(|op| op.mnemonic() == m)
}

fn amo_op(m: &str) -> Option<AmoOp> {
    AmoOp::ALL.into_iter().find(|op| op.mnemonic() == m)
}

fn mem_op(m: &str) -> Option<MemOp> {
    MemOp::ALL.into_iter().find(|op| op.mnemonic() == m)
}

fn branch_cond(m: &str) -> Option<BranchCond> {
    BranchCond::ALL.into_iter().find(|c| c.mnemonic() == m)
}

fn emit(
    stmt: &Stmt<'_>,
    labels: &HashMap<String, u32>,
    out: &mut Vec<Instr>,
) -> Result<(), AsmError> {
    let (mnemonic, ops) = split_stmt(stmt)?;
    let line = stmt.line;
    let reg = |s: &&str| parse_reg(line, s);

    // xloop.<pattern>
    if let Some(suffix) = mnemonic.strip_prefix("xloop.") {
        let pattern: LoopPattern = suffix.parse().map_err(|_| {
            AsmError::new(
                line,
                AsmErrorKind::UnknownMnemonic,
                format!("unknown xloop pattern `{suffix}`"),
            )
        })?;
        expect_ops(stmt, &ops, 3)?;
        let target = lookup_label(stmt, labels, ops[0])?;
        if target >= stmt.index {
            return Err(AsmError::new(
                line,
                AsmErrorKind::Constraint,
                format!("xloop body label `{}` must precede the xloop instruction", ops[0]),
            ));
        }
        let body_offset = stmt.index - target;
        if body_offset >= 1 << 12 {
            return Err(AsmError::new(
                line,
                AsmErrorKind::OutOfRange,
                "xloop body exceeds 4095 instructions",
            ));
        }
        out.push(Instr::Xloop {
            pattern,
            idx: reg(&ops[1])?,
            bound: reg(&ops[2])?,
            body_offset: body_offset as u16,
        });
        return Ok(());
    }

    match mnemonic {
        // ---- pseudo-instructions ----
        "li" | "la" => {
            expect_ops(stmt, &ops, 2)?;
            let rd = reg(&ops[0])?;
            let imm = parse_imm32(line, ops[1])?;
            if li_size(imm) == 1 {
                if imm & 0xFFFF == 0 && imm != 0 {
                    out.push(Instr::Lui { rd, imm: (imm >> 16) as u16 });
                } else {
                    out.push(Instr::AluImm { op: AluOp::Addu, rd, rs: Reg::ZERO, imm: imm as i16 });
                }
            } else {
                out.push(Instr::Lui { rd, imm: (imm >> 16) as u16 });
                out.push(Instr::AluImm { op: AluOp::Or, rd, rs: rd, imm: imm as u16 as i16 });
            }
        }
        "move" => {
            expect_ops(stmt, &ops, 2)?;
            out.push(Instr::Alu {
                op: AluOp::Addu,
                rd: reg(&ops[0])?,
                rs: reg(&ops[1])?,
                rt: Reg::ZERO,
            });
        }
        "neg" => {
            expect_ops(stmt, &ops, 2)?;
            out.push(Instr::Alu {
                op: AluOp::Subu,
                rd: reg(&ops[0])?,
                rs: Reg::ZERO,
                rt: reg(&ops[1])?,
            });
        }
        "not" => {
            expect_ops(stmt, &ops, 2)?;
            out.push(Instr::Alu {
                op: AluOp::Nor,
                rd: reg(&ops[0])?,
                rs: reg(&ops[1])?,
                rt: Reg::ZERO,
            });
        }
        "b" => {
            expect_ops(stmt, &ops, 1)?;
            let target = lookup_label(stmt, labels, ops[0])?;
            let offset = branch_offset(stmt, stmt.index, target)?;
            out.push(Instr::Branch { cond: BranchCond::Eq, rs: Reg::ZERO, rt: Reg::ZERO, offset });
        }
        "beqz" | "bnez" => {
            expect_ops(stmt, &ops, 2)?;
            let cond = if mnemonic == "beqz" { BranchCond::Eq } else { BranchCond::Ne };
            let target = lookup_label(stmt, labels, ops[1])?;
            let offset = branch_offset(stmt, stmt.index, target)?;
            out.push(Instr::Branch { cond, rs: reg(&ops[0])?, rt: Reg::ZERO, offset });
        }
        // Reversed-operand branch pseudos.
        "bgt" | "ble" | "bgtu" | "bleu" => {
            expect_ops(stmt, &ops, 3)?;
            let cond = match mnemonic {
                "bgt" => BranchCond::Lt,
                "ble" => BranchCond::Ge,
                "bgtu" => BranchCond::Ltu,
                _ => BranchCond::Geu,
            };
            let target = lookup_label(stmt, labels, ops[2])?;
            let offset = branch_offset(stmt, stmt.index, target)?;
            out.push(Instr::Branch { cond, rs: reg(&ops[1])?, rt: reg(&ops[0])?, offset });
        }
        "nop" => {
            expect_ops(stmt, &ops, 0)?;
            out.push(Instr::Nop);
        }
        // ---- cross-iteration instructions ----
        "addiu.xi" => {
            expect_ops(stmt, &ops, 3)?;
            let rd = reg(&ops[0])?;
            let rs = reg(&ops[1])?;
            if rd != rs {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::Constraint,
                    "addiu.xi requires rd == rs (MIV register)",
                ));
            }
            out.push(Instr::Xi { reg: rd, kind: XiKind::Imm(parse_imm16(line, ops[2])?) });
        }
        "addu.xi" => {
            expect_ops(stmt, &ops, 3)?;
            let rd = reg(&ops[0])?;
            let rs = reg(&ops[1])?;
            if rd != rs {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::Constraint,
                    "addu.xi requires rd == rs (MIV register)",
                ));
            }
            out.push(Instr::Xi { reg: rd, kind: XiKind::Reg(reg(&ops[2])?) });
        }
        // ---- jumps ----
        "j" | "jal" => {
            expect_ops(stmt, &ops, 1)?;
            let target = lookup_label(stmt, labels, ops[0])?;
            out.push(Instr::Jump { link: mnemonic == "jal", target_word: target });
        }
        "jr" => {
            expect_ops(stmt, &ops, 1)?;
            out.push(Instr::JumpReg { link: false, rd: Reg::ZERO, rs: reg(&ops[0])? });
        }
        "jalr" => {
            expect_ops(stmt, &ops, 2)?;
            out.push(Instr::JumpReg { link: true, rd: reg(&ops[0])?, rs: reg(&ops[1])? });
        }
        "sync" => {
            expect_ops(stmt, &ops, 0)?;
            out.push(Instr::Sync);
        }
        "exit" => {
            expect_ops(stmt, &ops, 0)?;
            out.push(Instr::Exit);
        }
        "lui" => {
            expect_ops(stmt, &ops, 2)?;
            let imm = parse_imm32(line, ops[1])?;
            if imm > 0xFFFF {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::OutOfRange,
                    "lui immediate exceeds 16 bits",
                ));
            }
            out.push(Instr::Lui { rd: reg(&ops[0])?, imm: imm as u16 });
        }
        _ => {
            if let Some(op) = alu_reg_op(mnemonic) {
                expect_ops(stmt, &ops, 3)?;
                out.push(Instr::Alu {
                    op,
                    rd: reg(&ops[0])?,
                    rs: reg(&ops[1])?,
                    rt: reg(&ops[2])?,
                });
            } else if let Some(op) = alu_imm_op(mnemonic) {
                expect_ops(stmt, &ops, 3)?;
                out.push(Instr::AluImm {
                    op,
                    rd: reg(&ops[0])?,
                    rs: reg(&ops[1])?,
                    imm: parse_imm16(line, ops[2])?,
                });
            } else if let Some(op) = llfu_op(mnemonic) {
                expect_ops(stmt, &ops, 3)?;
                out.push(Instr::Llfu {
                    op,
                    rd: reg(&ops[0])?,
                    rs: reg(&ops[1])?,
                    rt: reg(&ops[2])?,
                });
            } else if let Some(op) = amo_op(mnemonic) {
                expect_ops(stmt, &ops, 3)?;
                out.push(Instr::Amo {
                    op,
                    rd: reg(&ops[0])?,
                    addr: reg(&ops[1])?,
                    src: reg(&ops[2])?,
                });
            } else if let Some(op) = mem_op(mnemonic) {
                expect_ops(stmt, &ops, 2)?;
                let (offset, base) = parse_mem_operand(line, ops[1])?;
                out.push(Instr::Mem { op, data: reg(&ops[0])?, base, offset });
            } else if let Some(cond) = branch_cond(mnemonic) {
                expect_ops(stmt, &ops, 3)?;
                let target = lookup_label(stmt, labels, ops[2])?;
                let offset = branch_offset(stmt, stmt.index, target)?;
                out.push(Instr::Branch { cond, rs: reg(&ops[0])?, rt: reg(&ops[1])?, offset });
            } else {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::UnknownMnemonic,
                    format!("unknown mnemonic `{mnemonic}`"),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_isa::DataPattern;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "
            li r1, 10
            li r2, 0x12345678
        top:
            addiu r1, r1, -1
            bnez r1, top
            exit
            ",
        )
        .unwrap();
        // li#1 = 1 instr, li#2 = 2 instrs.
        assert_eq!(p.len(), 6);
        assert_eq!(p.label("top"), Some(12));
        assert_eq!(
            p.fetch(16),
            Some(Instr::Branch {
                cond: BranchCond::Ne,
                rs: Reg::new(1),
                rt: Reg::ZERO,
                offset: -1
            })
        );
    }

    #[test]
    fn li_expansion_forms() {
        let p = assemble("li r1, 5\nli r2, -5\nli r3, 0x10000\nli r4, 0x12345\nexit").unwrap();
        assert_eq!(p.len(), 1 + 1 + 1 + 2 + 1);
        assert_eq!(
            p.fetch(0),
            Some(Instr::AluImm { op: AluOp::Addu, rd: Reg::new(1), rs: Reg::ZERO, imm: 5 })
        );
        assert_eq!(p.fetch(8), Some(Instr::Lui { rd: Reg::new(3), imm: 1 }));
        assert_eq!(p.fetch(12), Some(Instr::Lui { rd: Reg::new(4), imm: 1 }));
        assert_eq!(
            p.fetch(16),
            Some(Instr::AluImm { op: AluOp::Or, rd: Reg::new(4), rs: Reg::new(4), imm: 0x2345 })
        );
    }

    #[test]
    fn xloop_body_offset() {
        let p = assemble(
            "
            li r2, 0
            li r3, 8
        body:
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit
            ",
        )
        .unwrap();
        match p.fetch(12).unwrap() {
            Instr::Xloop { pattern, idx, bound, body_offset } => {
                assert_eq!(pattern.data, DataPattern::Uc);
                assert_eq!(idx, Reg::new(2));
                assert_eq!(bound, Reg::new(3));
                assert_eq!(body_offset, 1);
            }
            other => panic!("expected xloop, got {other}"),
        }
    }

    #[test]
    fn xloop_label_must_be_backward() {
        let e = assemble("xloop.uc after, r1, r2\nafter: exit").unwrap_err();
        assert!(e.message().contains("must precede"), "{e}");
    }

    #[test]
    fn mem_operands() {
        let p = assemble("lw r1, 8(r2)\nsw r1, -4(r3)\nlb r4, (r5)\nexit").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Instr::Mem { op: MemOp::Lw, data: Reg::new(1), base: Reg::new(2), offset: 8 })
        );
        assert_eq!(
            p.fetch(4),
            Some(Instr::Mem { op: MemOp::Sw, data: Reg::new(1), base: Reg::new(3), offset: -4 })
        );
        assert_eq!(
            p.fetch(8),
            Some(Instr::Mem { op: MemOp::Lb, data: Reg::new(4), base: Reg::new(5), offset: 0 })
        );
    }

    #[test]
    fn amo_paren_syntax() {
        let p = assemble("amo.add r1, (r2), r3\namo.xchg r4, r5, r6\nexit").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Instr::Amo {
                op: AmoOp::Add,
                rd: Reg::new(1),
                addr: Reg::new(2),
                src: Reg::new(3)
            })
        );
        assert_eq!(
            p.fetch(4),
            Some(Instr::Amo {
                op: AmoOp::Xchg,
                rd: Reg::new(4),
                addr: Reg::new(5),
                src: Reg::new(6)
            })
        );
    }

    #[test]
    fn reversed_branch_pseudos() {
        let p = assemble("top: bgt r1, r2, top\nble r1, r2, top\nexit").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Instr::Branch {
                cond: BranchCond::Lt,
                rs: Reg::new(2),
                rt: Reg::new(1),
                offset: 0
            })
        );
        assert_eq!(
            p.fetch(4),
            Some(Instr::Branch {
                cond: BranchCond::Ge,
                rs: Reg::new(2),
                rt: Reg::new(1),
                offset: -1
            })
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1, r2\n").unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.message().contains("bogus"));

        let e = assemble("addiu r1, r1, 99999").unwrap_err();
        assert!(e.message().contains("16 bits"));

        let e = assemble("beq r1, r2, nowhere").unwrap_err();
        assert!(e.message().contains("undefined label"));

        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.message().contains("duplicate label"));
    }

    #[test]
    fn xi_requires_matching_registers() {
        assert!(assemble("addiu.xi r1, r2, 4").is_err());
        assert!(assemble("addiu.xi r1, r1, 4\nexit").is_ok());
        assert!(assemble("addu.xi r1, r1, r2\nexit").is_ok());
    }

    #[test]
    fn label_on_same_line_and_multiple_labels() {
        let p = assemble("a: b: nop\nc: exit").unwrap();
        assert_eq!(p.label("a"), Some(0));
        assert_eq!(p.label("b"), Some(0));
        assert_eq!(p.label("c"), Some(4));
    }

    #[test]
    fn jumps() {
        let p = assemble("start: j start\njal start\njr ra\njalr r5, r6\nexit").unwrap();
        assert_eq!(p.fetch(0), Some(Instr::Jump { link: false, target_word: 0 }));
        assert_eq!(p.fetch(4), Some(Instr::Jump { link: true, target_word: 0 }));
        assert_eq!(p.fetch(8), Some(Instr::JumpReg { link: false, rd: Reg::ZERO, rs: Reg::RA }));
        assert_eq!(
            p.fetch(12),
            Some(Instr::JumpReg { link: true, rd: Reg::new(5), rs: Reg::new(6) })
        );
    }

    #[test]
    fn ori_accepts_unsigned_16bit() {
        let p = assemble("ori r1, r1, 0xFFFF\nexit").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Instr::AluImm { op: AluOp::Or, rd: Reg::new(1), rs: Reg::new(1), imm: -1 })
        );
    }
}
