use xloops_isa::{AluOp, BranchCond, Instr, XiKind};

use crate::program::Program;

/// Lowers an XLOOPS binary to the plain general-purpose ISA.
///
/// This performs, in software, exactly the transformation a traditional
/// microarchitecture's decoder applies (Section II-C of the paper):
///
/// * `xloop.* L, rIdx, rBound` → `blt rIdx, rBound, L`
/// * `addiu.xi rX, rX, imm`    → `addiu rX, rX, imm`
/// * `addu.xi  rX, rX, rT`     → `addu  rX, rX, rT`
///
/// The result is the *GP-ISA baseline binary* used to normalize every
/// speedup in the paper's Table II. Because the lowering is one-for-one, the
/// X/G dynamic instruction ratio of this toolchain is 1.0 by construction
/// (the paper's measured ratios are within a few percent of 1.0; the
/// residual difference there comes from LLVM code-generation artifacts that
/// a hand-written assembler does not exhibit).
///
/// ```
/// use xloops_asm::{assemble, lower_gp};
/// let p = assemble("
///     li r2, 0
///     li r3, 4
/// l:  addiu.xi r2, r2, 1
///     xloop.uc l, r2, r3
///     exit")?;
/// let gp = lower_gp(&p);
/// assert!(gp.instrs().iter().all(|i| !i.is_xloop() && !i.is_xi()));
/// # Ok::<(), xloops_asm::AsmError>(())
/// ```
pub fn lower_gp(program: &Program) -> Program {
    let instrs = program
        .instrs()
        .iter()
        .map(|&instr| match instr {
            Instr::Xloop { idx, bound, body_offset, .. } => Instr::Branch {
                cond: BranchCond::Lt,
                rs: idx,
                rt: bound,
                offset: -(body_offset as i32) as i16,
            },
            Instr::Xi { reg, kind: XiKind::Imm(imm) } => {
                Instr::AluImm { op: AluOp::Addu, rd: reg, rs: reg, imm }
            }
            Instr::Xi { reg, kind: XiKind::Reg(rt) } => {
                Instr::Alu { op: AluOp::Addu, rd: reg, rs: reg, rt }
            }
            other => other,
        })
        .collect();
    Program::from_instrs(instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::assemble;

    #[test]
    fn lowers_xloop_to_branch() {
        let p = assemble(
            "
            li r2, 0
            li r3, 8
        body:
            addiu r2, r2, 1
            xloop.om body, r2, r3
            exit",
        )
        .unwrap();
        let gp = lower_gp(&p);
        assert_eq!(
            gp.fetch(12),
            Some(Instr::Branch {
                cond: BranchCond::Lt,
                rs: xloops_isa::Reg::new(2),
                rt: xloops_isa::Reg::new(3),
                offset: -1
            })
        );
        assert_eq!(gp.len(), p.len(), "lowering is one-for-one");
    }

    #[test]
    fn lowers_xi_to_adds() {
        let p = assemble(
            "
            li r2, 0
            li r3, 4
            li r5, 12
        body:
            addiu.xi r6, r6, 4
            addu.xi r7, r7, r5
            addiu r2, r2, 1
            xloop.uc body, r2, r3
            exit",
        )
        .unwrap();
        let gp = lower_gp(&p);
        assert!(gp.instrs().iter().all(|i| !i.is_xi() && !i.is_xloop()));
        use xloops_isa::Reg;
        assert_eq!(
            gp.fetch(12),
            Some(Instr::AluImm { op: AluOp::Addu, rd: Reg::new(6), rs: Reg::new(6), imm: 4 })
        );
        assert_eq!(
            gp.fetch(16),
            Some(Instr::Alu { op: AluOp::Addu, rd: Reg::new(7), rs: Reg::new(7), rt: Reg::new(5) })
        );
    }
}
