use std::collections::BTreeMap;

use xloops_isa::{Instr, INSTR_BYTES};

use crate::program::Program;

/// Renders a program as annotated assembly text.
///
/// Branch, jump, and xloop targets are given synthetic labels (`L0`, `L1`, …
/// in address order) so the output is self-describing; original label names
/// are used where the program still carries them.
///
/// ```
/// use xloops_asm::{assemble, disassemble};
/// let p = assemble("top: addiu r1, r1, 1\n bne r1, r2, top\n exit")?;
/// let text = disassemble(&p);
/// assert!(text.contains("top:"));
/// assert!(text.contains("bne r1, r2, top"));
/// # Ok::<(), xloops_asm::AsmError>(())
/// ```
pub fn disassemble(program: &Program) -> String {
    // Collect every control-flow target.
    let mut targets: BTreeMap<u32, String> = BTreeMap::new();
    for (idx, instr) in program.instrs().iter().enumerate() {
        let pc = idx as u32 * INSTR_BYTES;
        if let Some(target) = target_of(instr, pc) {
            targets.entry(target).or_default();
        }
    }
    // Prefer user labels; fall back to synthetic names.
    for (name, addr) in program.labels() {
        if let Some(slot) = targets.get_mut(&addr) {
            if slot.is_empty() {
                *slot = name.to_string();
            }
        }
    }
    let mut counter = 0;
    for slot in targets.values_mut() {
        if slot.is_empty() {
            *slot = format!("L{counter}");
            counter += 1;
        }
    }

    let mut out = String::new();
    for (idx, instr) in program.instrs().iter().enumerate() {
        let pc = idx as u32 * INSTR_BYTES;
        if let Some(label) = targets.get(&pc) {
            out.push_str(label);
            out.push_str(":\n");
        }
        out.push_str("    ");
        match target_of(instr, pc) {
            Some(target) => out.push_str(&render_with_label(instr, &targets[&target])),
            None => out.push_str(&instr.to_string()),
        }
        out.push('\n');
    }
    out
}

fn target_of(instr: &Instr, pc: u32) -> Option<u32> {
    match *instr {
        Instr::Branch { offset, .. } => {
            Some(pc.wrapping_add((offset as i32 * INSTR_BYTES as i32) as u32))
        }
        Instr::Jump { target_word, .. } => Some(target_word * INSTR_BYTES),
        Instr::Xloop { body_offset, .. } => Some(pc - body_offset as u32 * INSTR_BYTES),
        _ => None,
    }
}

fn render_with_label(instr: &Instr, label: &str) -> String {
    match *instr {
        Instr::Branch { cond, rs, rt, .. } => format!("{cond} {rs}, {rt}, {label}"),
        Instr::Jump { link, .. } => {
            format!("{} {label}", if link { "jal" } else { "j" })
        }
        Instr::Xloop { pattern, idx, bound, .. } => {
            format!("xloop.{pattern} {label}, {idx}, {bound}")
        }
        _ => unreachable!("only control instructions carry targets"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::assemble;

    #[test]
    fn disassembly_reassembles_to_same_program() {
        let src = "
            li r4, 0x2000
            li r2, 0
            li r3, 64
        loop:
            sll r7, r2, 2
            addu r7, r4, r7
            lw r8, 0(r7)
            addiu r8, r8, 1
            sw r8, 0(r7)
            addiu r2, r2, 1
            xloop.ua loop, r2, r3
            beqz r2, done
            j loop
        done:
            exit";
        let p = assemble(src).unwrap();
        let text = disassemble(&p);
        let q = assemble(&text).unwrap();
        assert_eq!(p.instrs(), q.instrs(), "disassembly:\n{text}");
    }

    #[test]
    fn synthetic_labels_when_names_missing() {
        let p = assemble("x: nop\n b x\n exit").unwrap();
        // Drop labels by round-tripping through raw instruction words.
        let stripped = Program::from_instrs(p.instrs().to_vec());
        let text = disassemble(&stripped);
        assert!(text.contains("L0:"), "{text}");
        let q = assemble(&text).unwrap();
        assert_eq!(q.instrs(), p.instrs());
    }
}
