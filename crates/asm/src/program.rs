use std::collections::HashMap;
use std::fmt;

use xloops_isa::{Instr, INSTR_BYTES};

/// An assembled TRISC/XLOOPS binary.
///
/// Instructions are laid out contiguously from byte address 0; instruction
/// `i` lives at pc `4 × i`. The decoded form is kept alongside the encoded
/// words so simulators never re-decode on the hot path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
    labels: HashMap<String, u32>,
    /// 1-based source line of each instruction (0 if synthesized).
    lines: Vec<u32>,
}

impl Program {
    /// Builds a program directly from decoded instructions (no labels).
    pub fn from_instrs(instrs: Vec<Instr>) -> Program {
        let lines = vec![0; instrs.len()];
        Program { instrs, labels: HashMap::new(), lines }
    }

    pub(crate) fn from_parts(
        instrs: Vec<Instr>,
        labels: HashMap<String, u32>,
        lines: Vec<u32>,
    ) -> Program {
        debug_assert_eq!(instrs.len(), lines.len());
        Program { instrs, labels, lines }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The decoded instructions in layout order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Fetches the instruction at byte address `pc`, or `None` past the end.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not 4-byte aligned.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<Instr> {
        assert!(pc.is_multiple_of(INSTR_BYTES), "misaligned pc {pc:#x}");
        self.instrs.get((pc / INSTR_BYTES) as usize).copied()
    }

    /// The byte address of a label, if defined.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).map(|&idx| idx * INSTR_BYTES)
    }

    /// All labels as `(name, byte address)` pairs in address order.
    pub fn labels(&self) -> Vec<(&str, u32)> {
        let mut v: Vec<_> =
            self.labels.iter().map(|(n, &i)| (n.as_str(), i * INSTR_BYTES)).collect();
        v.sort_by_key(|&(_, addr)| addr);
        v
    }

    /// 1-based source line of the instruction at byte address `pc`
    /// (0 if synthesized by a pseudo-instruction expansion or lowering).
    pub fn source_line(&self, pc: u32) -> u32 {
        self.lines.get((pc / INSTR_BYTES) as usize).copied().unwrap_or(0)
    }

    /// Encodes the program to binary words.
    pub fn to_words(&self) -> Vec<u32> {
        self.instrs.iter().map(|i| i.encode()).collect()
    }

    /// Decodes a program from binary words.
    ///
    /// Returns the index of the first invalid word on failure.
    pub fn from_words(words: &[u32]) -> Result<Program, usize> {
        let instrs: Vec<Instr> = words
            .iter()
            .enumerate()
            .map(|(i, &w)| Instr::decode(w).ok_or(i))
            .collect::<Result<_, _>>()?;
        Ok(Program::from_instrs(instrs))
    }

    /// Total static code size in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.instrs.len() as u32 * INSTR_BYTES
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::disassemble(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_isa::{AluOp, Reg};

    fn prog() -> Program {
        Program::from_instrs(vec![
            Instr::AluImm { op: AluOp::Addu, rd: Reg::new(1), rs: Reg::ZERO, imm: 5 },
            Instr::Exit,
        ])
    }

    #[test]
    fn fetch_and_len() {
        let p = prog();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.fetch(0), Some(p.instrs()[0]));
        assert_eq!(p.fetch(4), Some(Instr::Exit));
        assert_eq!(p.fetch(8), None);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn fetch_misaligned_panics() {
        prog().fetch(2);
    }

    #[test]
    fn words_round_trip() {
        let p = prog();
        let words = p.to_words();
        let q = Program::from_words(&words).unwrap();
        assert_eq!(p.instrs(), q.instrs());
    }

    #[test]
    fn from_words_reports_bad_index() {
        let mut words = prog().to_words();
        words.insert(1, 0xFFFF_FFFF);
        assert_eq!(Program::from_words(&words), Err(1));
    }
}
