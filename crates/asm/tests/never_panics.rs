//! Robustness properties: no input — textual or binary, however
//! malformed — may panic the assembler, the disassembler, or the binary
//! decoder. Malformed inputs must come back as typed [`AsmError`]s (or a
//! decode rejection), never as an unwind.

use proptest::prelude::*;
use xloops_asm::{assemble, disassemble, AsmErrorKind, Program};

/// Arbitrary text built from raw bytes (the vendored proptest has no
/// regex string strategies): control characters, punctuation, multi-line
/// soup — everything a hostile `.s` file could contain.
fn arbitrary_text() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..256)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

/// Short runs of printable ASCII noise.
fn printable_noise() -> BoxedStrategy<String> {
    prop::collection::vec(0x20u8..0x7F, 0..8)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
        .boxed()
}

/// Text biased toward almost-valid assembly: real mnemonics, register
/// names, punctuation, labels — the inputs most likely to reach deep
/// parser states — mixed with arbitrary printable noise.
fn asm_ish_text() -> impl Strategy<Value = String> {
    let token = prop_oneof![
        Just("addu".to_string()),
        Just("addiu".to_string()),
        Just("lw".to_string()),
        Just("sw".to_string()),
        Just("li".to_string()),
        Just("lui".to_string()),
        Just("xloop.uc".to_string()),
        Just("xloop.or".to_string()),
        Just("xloop.zz".to_string()),
        Just("addiu.xi".to_string()),
        Just("bne".to_string()),
        Just("jal".to_string()),
        Just("exit".to_string()),
        Just("r1".to_string()),
        Just("r31".to_string()),
        Just("r99".to_string()),
        Just("top:".to_string()),
        Just("top".to_string()),
        Just(",".to_string()),
        Just(", ,".to_string()),
        Just("0x".to_string()),
        Just("0xFFFF_FFFF".to_string()),
        Just("-32769".to_string()),
        Just("99999999999999999999".to_string()),
        Just("4(r2)".to_string()),
        Just("(r2".to_string()),
        Just("#".to_string()),
        Just(":".to_string()),
        printable_noise(),
    ];
    prop::collection::vec(token, 0..24).prop_map(|ts| {
        let mut s = String::new();
        for (i, t) in ts.iter().enumerate() {
            s.push_str(t);
            s.push(if i % 5 == 4 { '\n' } else { ' ' });
        }
        s
    })
}

proptest! {
    /// Arbitrary byte soup never panics the assembler.
    #[test]
    fn assembler_never_panics_on_arbitrary_text(src in arbitrary_text()) {
        let _ = assemble(&src);
    }

    /// Almost-valid assembly never panics either, and failures carry a
    /// line number inside the input and a non-empty diagnosis.
    #[test]
    fn assembler_never_panics_on_asm_like_text(src in asm_ish_text()) {
        if let Err(e) = assemble(&src) {
            prop_assert!((e.line() as usize) <= src.lines().count() + 1, "{e}");
            prop_assert!(!e.message().is_empty());
            prop_assert!(e.to_string().contains(e.message()));
        }
    }

    /// Arbitrary instruction words never panic the decoder, and every
    /// program it accepts disassembles and reassembles without panicking.
    #[test]
    fn decoder_and_disassembler_never_panic_on_arbitrary_words(
        words in prop::collection::vec(any::<u32>(), 0..64),
    ) {
        let Ok(p) = Program::from_words(&words) else { return Ok(()) };
        let text = disassemble(&p);
        // Reassembly of decoder-accepted programs may still fail (e.g. an
        // xloop whose body offset points before pc 0 has no label to name)
        // but it must fail with an error, not a panic.
        let _ = assemble(&text);
    }
}

#[test]
fn error_kinds_classify_the_taxonomy() {
    let kind = |src: &str| assemble(src).unwrap_err().kind();
    assert_eq!(kind("a:\na:\n exit"), AsmErrorKind::DuplicateLabel);
    assert_eq!(kind("b missing\n exit"), AsmErrorKind::UndefinedLabel);
    assert_eq!(kind("frobnicate r1, r2, r3"), AsmErrorKind::UnknownMnemonic);
    assert_eq!(kind("xloop.zz top, r2, r3\ntop: exit"), AsmErrorKind::UnknownMnemonic);
    assert_eq!(kind("addu r1, r2"), AsmErrorKind::OperandCount);
    assert_eq!(kind("addu r1, r99, r2"), AsmErrorKind::MalformedOperand);
    assert_eq!(kind("li r1, zebra"), AsmErrorKind::MalformedOperand);
    assert_eq!(kind("lw r1, r2"), AsmErrorKind::MalformedOperand);
    assert_eq!(kind("addu r1, , r2"), AsmErrorKind::MalformedOperand);
    assert_eq!(kind("addiu r1, r2, 70000"), AsmErrorKind::OutOfRange);
    assert_eq!(kind("lui r1, 0x10000"), AsmErrorKind::OutOfRange);
    assert_eq!(kind("addiu.xi r1, r2, 1"), AsmErrorKind::Constraint);
    assert_eq!(kind("top: xloop.uc top2, r2, r3\ntop2: exit"), AsmErrorKind::Constraint);
}

#[test]
fn error_lines_point_at_the_offender() {
    let e = assemble("nop\nnop\nbogus r1\nnop").unwrap_err();
    assert_eq!(e.line(), 3);
    assert_eq!(e.kind(), AsmErrorKind::UnknownMnemonic);
}
