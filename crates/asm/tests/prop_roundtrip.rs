//! Property tests: disassembling any structurally-valid program and
//! re-assembling it reproduces the identical instruction sequence, and the
//! binary word round-trip is the identity.

use proptest::prelude::*;
use xloops_asm::{assemble, disassemble, lower_gp, Program};
use xloops_isa::{AluOp, BranchCond, DataPattern, Instr, LoopPattern, MemOp, Reg};

/// A structurally-valid program: branch targets stay inside the text,
/// xloop bodies are non-empty and backward. Generated as abstract slots
/// that are fixed up once the length is known.
#[derive(Clone, Debug)]
enum Slot {
    Alu(u8, u8, u8),
    AluImm(u8, u8, i16),
    Load(u8, u8, i16),
    Store(u8, u8, i16),
    /// Branch to a program position chosen by `target_frac`.
    Branch(u8, u8, u8),
    Jump(bool, u8),
    Xloop(u8, u8, u8),
    Sync,
    Nop,
}

fn slot() -> impl Strategy<Value = Slot> {
    prop_oneof![
        (0u8..32, 0u8..32, 0u8..32).prop_map(|(a, b, c)| Slot::Alu(a, b, c)),
        (0u8..32, 0u8..32, any::<i16>()).prop_map(|(a, b, i)| Slot::AluImm(a, b, i)),
        (0u8..32, 0u8..32, -64i16..64).prop_map(|(a, b, o)| Slot::Load(a, b, o * 4)),
        (0u8..32, 0u8..32, -64i16..64).prop_map(|(a, b, o)| Slot::Store(a, b, o * 4)),
        (0u8..32, 0u8..32, any::<u8>()).prop_map(|(a, b, t)| Slot::Branch(a, b, t)),
        (any::<bool>(), any::<u8>()).prop_map(|(l, t)| Slot::Jump(l, t)),
        (0u8..32, 0u8..32, any::<u8>()).prop_map(|(i, b, o)| Slot::Xloop(i, b, o)),
        Just(Slot::Sync),
        Just(Slot::Nop),
    ]
}

fn materialize(slots: &[Slot]) -> Program {
    let r = Reg::new;
    let len = slots.len() as i64;
    let instrs: Vec<Instr> = slots
        .iter()
        .enumerate()
        .map(|(i, s)| match *s {
            Slot::Alu(a, b, c) => Instr::Alu { op: AluOp::Xor, rd: r(a), rs: r(b), rt: r(c) },
            Slot::AluImm(a, b, imm) => Instr::AluImm { op: AluOp::Addu, rd: r(a), rs: r(b), imm },
            Slot::Load(a, b, offset) => {
                Instr::Mem { op: MemOp::Lw, data: r(a), base: r(b), offset }
            }
            Slot::Store(a, b, offset) => {
                Instr::Mem { op: MemOp::Sw, data: r(a), base: r(b), offset }
            }
            Slot::Branch(a, b, t) => {
                let target = (t as i64) % len;
                Instr::Branch {
                    cond: BranchCond::Ne,
                    rs: r(a),
                    rt: r(b),
                    offset: (target - i as i64) as i16,
                }
            }
            Slot::Jump(link, t) => Instr::Jump { link, target_word: (t as u32) % len as u32 },
            Slot::Xloop(idx, bound, back) => {
                let body_offset = 1 + (back as u16 % i.max(1) as u16).min(i as u16 - 1);
                Instr::Xloop {
                    pattern: LoopPattern::fixed(DataPattern::Om),
                    idx: r(idx),
                    bound: r(bound),
                    body_offset,
                }
            }
            Slot::Sync => Instr::Sync,
            Slot::Nop => Instr::Nop,
        })
        .collect();
    Program::from_instrs(instrs)
}

proptest! {
    #[test]
    fn disassemble_reassemble_is_identity(slots in prop::collection::vec(slot(), 2..40)) {
        // The first slot cannot host an xloop (no backward body room).
        let mut slots = slots;
        if matches!(slots[0], Slot::Xloop(..)) {
            slots[0] = Slot::Nop;
        }
        let p = materialize(&slots);
        let text = disassemble(&p);
        let q = assemble(&text).map_err(|e| {
            TestCaseError::fail(format!("reassembly failed: {e}\n{text}"))
        })?;
        prop_assert_eq!(p.instrs(), q.instrs(), "\n{}", text);
    }

    #[test]
    fn binary_round_trip_is_identity(slots in prop::collection::vec(slot(), 2..40)) {
        let mut slots = slots;
        if matches!(slots[0], Slot::Xloop(..)) {
            slots[0] = Slot::Nop;
        }
        let p = materialize(&slots);
        let q = Program::from_words(&p.to_words()).expect("all words valid");
        prop_assert_eq!(p.instrs(), q.instrs());
    }

    #[test]
    fn gp_lowering_removes_all_extensions(slots in prop::collection::vec(slot(), 2..40)) {
        let mut slots = slots;
        if matches!(slots[0], Slot::Xloop(..)) {
            slots[0] = Slot::Nop;
        }
        let p = materialize(&slots);
        let gp = lower_gp(&p);
        prop_assert_eq!(p.len(), gp.len(), "lowering is one-for-one");
        prop_assert!(gp.instrs().iter().all(|i| !i.is_xloop() && !i.is_xi()));
    }
}

/// The same identity property over the real paper programs instead of
/// synthetic ones, checked exhaustively: every Table II kernel and
/// Table IV variant must survive assemble → disassemble → re-assemble
/// with its instruction words intact.
#[test]
fn every_paper_kernel_survives_disassemble_reassemble() {
    let kernels: Vec<_> =
        xloops_kernels::table2().iter().chain(xloops_kernels::table4().iter()).collect();
    assert!(kernels.len() >= 10, "kernel tables unexpectedly empty");
    for k in kernels {
        let words = k.program.to_words();
        let text = disassemble(&k.program);
        let again = assemble(&text)
            .unwrap_or_else(|e| panic!("{}: reassembly failed: {e}\n{text}", k.name));
        assert_eq!(words, again.to_words(), "{}:\n{}", k.name, text);
    }
}
