//! The scheduler layer: one orchestration code path for every entry
//! point.
//!
//! Before this module, execution sequencing was smeared across three
//! layers that each re-implemented it: `Runner::prefill` owned its own
//! scoped-thread pool, the store drivers owned probe/miss/save
//! sequencing, and the CLI owned shard plumbing. Now there is exactly
//! one of each:
//!
//! - [`run_jobs`] — the work-stealing worker pool. Every parallel fill in
//!   the workspace (including [`crate::Runner::prefill`]) funnels through
//!   it. Each worker owns a deque seeded round-robin; it pops its own
//!   front and steals from the back of others when dry, so an unlucky
//!   worker stuck behind one slow simulation point cannot strand the
//!   rest of the list. Results land in per-item slots, so the output
//!   order is the input order regardless of which worker ran what — the
//!   serial/parallel byte-identity CI pins survives unchanged.
//! - [`Scheduler`] — the store-aware orchestrator. It derives the
//!   [`Job`] list from manifests, consults the [`ResultStore`] before
//!   dispatch (a hit is `Done` without a worker ever seeing it), routes
//!   the misses through the memoizing [`Runner`]'s two-pass protocol
//!   (which reuses the supervisor/quarantine machinery per point), and
//!   writes fresh results back through the store.
//!
//! The scheduler reports a deterministic, ordered [`ProgressEvent`]
//! stream. Determinism is by construction, not by luck: events are
//! emitted in job-admission order from the assembled outcomes, never
//! from worker threads racing to a log — two runs of the same work list
//! produce the same stream even though the pool interleaves differently.
//! Under [`RunOptions::profile`] the same per-job facts are grafted onto
//! each point's stat tree as `profile.sched.*` counters (the
//! non-deterministic-tolerant stat family, never golden artifacts).
//!
//! [`run_shard_stored`] and [`run_specs_stored`] — the drivers behind
//! `xloops sweep`, `--bin all`, and `bench-summary` — are thin adapters
//! over [`Scheduler::run`], as is the serve daemon
//! ([`crate::serve`]). Crash-safe resume falls out of the layering: a
//! restarted daemon re-derives a resubmitted manifest's jobs, finds the
//! finished ones in the store, and only dispatches the rest.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xloops_kernels::by_name;
use xloops_sim::{ExecMode, RunOptions, SystemConfig};
use xloops_stats::{JsonValue, StatSet};

use crate::job::{Job, JobState};
use crate::manifest::{
    request_point, shard_points, ExperimentSpec, PointResult, ShardDoc, SpecPoint,
};
use crate::runner::{PrefillInfo, RunFailure, RunKey, Runner};
use crate::store::{attach_store_counters, Loaded, ResultStore};
use crate::worker::{PoolConfig, RemoteRegistry, WireJob, WorkerPool};

/// Runs every item through `run` on a work-stealing pool of `workers`
/// threads, returning the results in item order. `run` receives the item
/// index and the item. With one worker (or one item) the pool degenerates
/// to a plain in-order loop on the calling thread.
pub fn run_jobs<T: Sync, R: Send>(
    items: &[T],
    workers: usize,
    run: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let workers = workers.clamp(1, items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| run(i, t)).collect();
    }
    // Deal indices round-robin, one deque per worker.
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|w| Mutex::new((w..items.len()).step_by(workers).collect())).collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (queues, slots, run) = (&queues, &slots, &run);
            scope.spawn(move || loop {
                // Own front first; steal from the back of the others when
                // dry. An item leaves a queue only into the worker that
                // runs it, so a full empty scan means every item is
                // claimed and this worker can retire.
                let claimed = queues[w].lock().unwrap().pop_front().or_else(|| {
                    (1..workers).find_map(|d| queues[(w + d) % workers].lock().unwrap().pop_back())
                });
                let Some(i) = claimed else { break };
                *slots[i].lock().unwrap() = Some(run(i, &items[i]));
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().unwrap().expect("pool ran every item")).collect()
}

/// One entry of the scheduler's deterministic progress stream. `job` is
/// the admission-order index across the whole sweep (all specs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgressEvent {
    /// The job was admitted to the sweep.
    Queued {
        /// Admission-order job index.
        job: usize,
    },
    /// The job was served from the durable store without dispatching.
    Hit {
        /// Admission-order job index.
        job: usize,
    },
    /// The job was dispatched to the worker pool.
    Started {
        /// Admission-order job index.
        job: usize,
    },
    /// The dispatched job reached a terminal state.
    Finished {
        /// Admission-order job index.
        job: usize,
        /// Whether the terminal state is `Done` (vs failed/quarantined).
        ok: bool,
    },
}

/// Live, lock-free sweep progress: the mutable counterpart of the
/// deterministic [`ProgressEvent`] stream, for *observers* (the serve
/// daemon's `status` responses) rather than for artifacts. The scheduler
/// ticks it as jobs are admitted, resolved from the store, dispatched,
/// and finished; under the worker pool the ticks are live per job, while
/// the in-process path is coarser (misses all start together) and is
/// trued up by [`SweepProgress::finalize`] when the sweep assembles.
/// Readers may see momentarily stale counts — never a torn document.
#[derive(Debug, Default)]
pub struct SweepProgress {
    total: AtomicU64,
    running: AtomicU64,
    done: AtomicU64,
    failed: AtomicU64,
    hits: AtomicU64,
}

impl SweepProgress {
    /// A zeroed tracker.
    pub fn new() -> SweepProgress {
        SweepProgress::default()
    }

    /// Admits `n` jobs to the sweep.
    pub fn admit(&self, n: u64) {
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    /// Resolves `n` jobs from the durable store (hits count as done).
    pub fn hit(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
        self.done.fetch_add(n, Ordering::Relaxed);
    }

    /// Marks `n` jobs dispatched.
    pub fn start(&self, n: u64) {
        self.running.fetch_add(n, Ordering::Relaxed);
    }

    /// Marks `n` dispatched jobs terminal.
    pub fn finish(&self, n: u64, ok: bool) {
        self.running.fetch_sub(n, Ordering::Relaxed);
        if ok {
            self.done.fetch_add(n, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Settles the exact terminal counts once the sweep has assembled
    /// (the in-process path only ticks coarsely while running).
    pub fn finalize(&self, done: u64, failed: u64) {
        self.done.store(done, Ordering::Relaxed);
        self.failed.store(failed, Ordering::Relaxed);
        self.running.store(0, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot: `(total, queued, running, done,
    /// failed, hits)`, with `queued` derived so the five always sum.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64, u64) {
        let total = self.total.load(Ordering::Relaxed);
        let running = self.running.load(Ordering::Relaxed);
        let done = self.done.load(Ordering::Relaxed);
        let failed = self.failed.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        let queued = total.saturating_sub(running + done + failed);
        (total, queued, running, done, failed, hits)
    }

    /// The snapshot as the JSON document `status` responses embed.
    pub fn to_json_value(&self) -> JsonValue {
        let (total, queued, running, done, failed, hits) = self.snapshot();
        JsonValue::object(vec![
            ("total", JsonValue::UInt(total)),
            ("queued", JsonValue::UInt(queued)),
            ("running", JsonValue::UInt(running)),
            ("done", JsonValue::UInt(done)),
            ("failed", JsonValue::UInt(failed)),
            ("hits", JsonValue::UInt(hits)),
        ])
    }
}

/// The terminal record of one job: its identity, the lifecycle state it
/// ended in, and the full [`PointResult`] (placeholder stats with the
/// diagnosis attached when the state is a failure — exactly what shard
/// documents and artifacts have always recorded for sick points).
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's identity.
    pub job: Job,
    /// The terminal [`JobState`].
    pub state: JobState,
    /// The point result (always present; the artifact renderer needs a
    /// row for failed points too).
    pub result: PointResult,
    /// Whether the result came from the durable store.
    pub hit: bool,
}

impl JobOutcome {
    /// The canonical error document for a failed outcome, preferring the
    /// full quarantine diagnosis (which names the kernel and config) over
    /// the bare error text, with the exit code of the typed class when
    /// one is known. `None` for successful outcomes.
    pub fn to_error_doc(&self) -> Option<xloops_stats::JsonValue> {
        match (&self.state, &self.result.error) {
            (JobState::Failed(e), Some(message)) => {
                Some(xloops_sim::error_doc(message, e.exit_code()))
            }
            (_, _) => self.state.to_error_doc(),
        }
    }
}

/// Everything a sweep produced: per-spec outcomes (spec order, then owned
/// point order), the deterministic event stream, the quarantine list, and
/// the pool summary.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per input spec, one [`JobOutcome`] per owned point.
    pub outcomes: Vec<Vec<JobOutcome>>,
    /// The ordered progress stream (see [`ProgressEvent`]).
    pub events: Vec<ProgressEvent>,
    /// Quarantined simulation points across all specs.
    pub failures: Vec<RunFailure>,
    /// Worker-pool summary (unique *simulated* points; hits never enter
    /// it).
    pub prefill: PrefillInfo,
}

/// One spec's store probe: the owned point indices and, per index, the
/// loaded entry (hit) or `None` (miss, to be simulated), plus whether the
/// miss was a damaged entry rather than an absent one.
struct Probe {
    fingerprint: String,
    indices: Vec<usize>,
    loaded: Vec<Option<(PointResult, u64)>>,
    corrupt: Vec<bool>,
}

/// The store-aware orchestrator. Construct one per sweep with the options
/// every job runs under and an optional durable store; [`Scheduler::run`]
/// executes any number of `(spec, owned point indices)` work items
/// against one shared memoizing runner, so identical points are
/// deduplicated *across* specs exactly like `--bin all`'s shared cache.
pub struct Scheduler<'a> {
    options: RunOptions,
    store: Option<&'a ResultStore>,
    pool: Option<PoolConfig>,
    progress: Option<Arc<SweepProgress>>,
    remotes: Option<Arc<RemoteRegistry>>,
}

impl<'a> Scheduler<'a> {
    /// A scheduler over `options`, consulting `store` before dispatch
    /// (and writing fresh results through it) when present. The worker
    /// pool comes from the environment ([`PoolConfig::from_env`], i.e.
    /// `XLOOPS_WORKERS` and friends); [`Scheduler::with_pool`] overrides.
    pub fn new(options: RunOptions, store: Option<&'a ResultStore>) -> Scheduler<'a> {
        Scheduler { options, store, pool: PoolConfig::from_env(), progress: None, remotes: None }
    }

    /// Overrides the worker-pool policy (`None` forces in-process
    /// execution regardless of the environment).
    pub fn with_pool(mut self, pool: Option<PoolConfig>) -> Scheduler<'a> {
        self.pool = pool;
        self
    }

    /// Attaches the daemon's registered remote executors. With remotes
    /// present they join (or, with no local pool configured, *become*)
    /// the worker pool — a remotes-only pool forbids spawning children,
    /// so a daemon without `XLOOPS_WORKERS` still dispatches to its
    /// registered workers and degrades to in-process when none remain.
    pub fn with_remotes(mut self, remotes: Option<Arc<RemoteRegistry>>) -> Scheduler<'a> {
        self.remotes = remotes;
        self
    }

    /// Attaches a live progress tracker for observers to poll.
    pub fn with_progress(mut self, progress: Arc<SweepProgress>) -> Scheduler<'a> {
        self.progress = Some(progress);
        self
    }

    /// Runs every owned point of every work item: store hits resolve
    /// immediately, the rest deduplicate and execute — on the supervised
    /// multi-process [`WorkerPool`] when one is configured (and can
    /// spawn), else through the two-pass runner protocol fanned out over
    /// the in-process [`run_jobs`] — fresh non-errored results are
    /// written back to the store, and the outcomes come back in work
    /// order with the deterministic event stream alongside. Both
    /// execution routes fill the same item-ordered miss slots, so the
    /// assembled artifact bytes cannot depend on the route.
    pub fn run(&self, work: &[(&ExperimentSpec, Vec<usize>)]) -> SweepOutcome {
        let probes: Vec<Probe> =
            work.iter().map(|(spec, indices)| self.probe(spec, indices.clone())).collect();
        if let Some(progress) = &self.progress {
            for p in &probes {
                progress.admit(p.indices.len() as u64);
                progress.hit(p.loaded.iter().flatten().count() as u64);
            }
        }

        let (fresh, failures, prefill) = self.simulate(work, &probes);

        // Map a quarantine diagnosis back to its typed class, when the
        // failure carried one (see `RunFailure::sim`).
        let typed: HashMap<&str, &xloops_sim::SimError> = failures
            .iter()
            .filter_map(|f| f.sim.as_ref().map(|e| (f.message.as_str(), e)))
            .collect();

        let mut events = Vec::new();
        let mut job = 0;
        let outcomes: Vec<Vec<JobOutcome>> = probes
            .into_iter()
            .zip(fresh)
            .map(|(p, fresh)| self.assemble(p, fresh, &typed, &mut events, &mut job))
            .collect();
        if let Some(progress) = &self.progress {
            let done = outcomes.iter().flatten().filter(|o| o.state.is_done()).count() as u64;
            let failed = outcomes.iter().flatten().filter(|o| !o.state.is_done()).count() as u64;
            progress.finalize(done, failed);
        }
        SweepOutcome { outcomes, events, failures, prefill }
    }

    /// Simulates every missed point, per probe in index order: the
    /// worker-pool route when configured and spawnable (degrading to
    /// in-process with a warning otherwise), else the in-process
    /// two-pass protocol.
    fn simulate(
        &self,
        work: &[(&ExperimentSpec, Vec<usize>)],
        probes: &[Probe],
    ) -> (Vec<Vec<PointResult>>, Vec<RunFailure>, PrefillInfo) {
        let registered = self.remotes.as_ref().map_or(0, |r| r.available());
        let cfg = match (&self.pool, registered) {
            (Some(cfg), _) => Some(cfg.clone()),
            // No local pool configured, but remote executors are
            // registered: run a remotes-only pool sized to them.
            (None, n) if n > 0 => Some(PoolConfig::for_remotes(n)),
            (None, 0..) => None,
        };
        if let Some(cfg) = cfg {
            match WorkerPool::spawn_with(cfg, self.remotes.clone()) {
                Ok(pool) => return self.simulate_pooled(&pool, work, probes),
                Err(e) => {
                    eprintln!("xloops: worker pool unavailable ({e}); running in-process");
                }
            }
        }
        // Two-pass protocol over the union of misses: collect the
        // deduplicated job list, fill the cache once, render live.
        let misses: u64 =
            probes.iter().map(|p| p.loaded.iter().filter(|s| s.is_none()).count() as u64).sum();
        if let Some(progress) = &self.progress {
            // Coarse in-process accounting: every miss is in flight for
            // the duration of the prefill; `finalize` trues it up.
            progress.start(misses);
        }
        let runner = Runner::collecting_with(self.options.clone());
        let simulate = |r: &Runner| -> Vec<Vec<PointResult>> {
            work.iter().zip(probes).map(|((spec, _), p)| request_misses(r, spec, p)).collect()
        };
        let _ = simulate(&runner);
        let prefill = runner.prefill();
        let fresh = simulate(&runner);
        (fresh, runner.failures(), prefill)
    }

    /// The pooled route: deduplicate the misses by store key (the same
    /// `(fingerprint, index, options)` identity the durable store uses),
    /// ship each unique job to the supervised pool once, and fan the
    /// outcomes back out to every probe slot that aliased them. The
    /// slots are filled in exactly the order [`request_misses`] would
    /// produce, so [`Scheduler::assemble`] — and therefore the artifact
    /// bytes — cannot tell the routes apart.
    fn simulate_pooled(
        &self,
        pool: &WorkerPool,
        work: &[(&ExperimentSpec, Vec<usize>)],
        probes: &[Probe],
    ) -> (Vec<Vec<PointResult>>, Vec<RunFailure>, PrefillInfo) {
        let mut unique: HashMap<String, usize> = HashMap::new();
        let mut jobs: Vec<WireJob<'_>> = Vec::new();
        // Per probe, the unique-job slot of each miss, in index order.
        let mut slots: Vec<Vec<usize>> = Vec::with_capacity(probes.len());
        for ((spec, _), probe) in work.iter().zip(probes) {
            let mut mine = Vec::new();
            for (&i, slot) in probe.indices.iter().zip(&probe.loaded) {
                if slot.is_some() {
                    continue;
                }
                let key = ResultStore::point_key(&probe.fingerprint, i, &self.options);
                let at = *unique.entry(key).or_insert_with(|| {
                    jobs.push(WireJob {
                        spec,
                        fingerprint: probe.fingerprint.clone(),
                        index: i,
                        options: &self.options,
                        fanout: 0,
                    });
                    jobs.len() - 1
                });
                jobs[at].fanout += 1;
                mine.push(at);
            }
            slots.push(mine);
        }

        let outcomes = pool.run(&jobs, self.progress.as_deref());

        let failures = jobs
            .iter()
            .zip(&outcomes)
            .filter_map(|(job, outcome)| {
                outcome.result.error.as_ref().map(|message| RunFailure {
                    key: run_key_for(&job.spec.points[job.index], &self.options),
                    message: message.clone(),
                    sim: outcome.sim.clone(),
                })
            })
            .collect();
        let fresh = slots
            .into_iter()
            .map(|mine| mine.into_iter().map(|at| outcomes[at].result.clone()).collect())
            .collect();
        let prefill =
            PrefillInfo { unique_points: jobs.len(), workers: pool.workers(), serial: false };
        (fresh, failures, prefill)
    }

    fn probe(&self, spec: &ExperimentSpec, indices: Vec<usize>) -> Probe {
        let fingerprint = spec.fingerprint();
        let mut loaded = Vec::with_capacity(indices.len());
        let mut corrupt = Vec::with_capacity(indices.len());
        for &i in &indices {
            match self.store {
                Some(store) => {
                    match store.load_classified(&ResultStore::point_key(
                        &fingerprint,
                        i,
                        &self.options,
                    )) {
                        Loaded::Hit(result, bytes) => {
                            loaded.push(Some((result, bytes)));
                            corrupt.push(false);
                        }
                        Loaded::Absent => {
                            loaded.push(None);
                            corrupt.push(false);
                        }
                        Loaded::Corrupt => {
                            loaded.push(None);
                            corrupt.push(true);
                        }
                    }
                }
                None => {
                    loaded.push(None);
                    corrupt.push(false);
                }
            }
        }
        Probe { fingerprint, indices, loaded, corrupt }
    }

    /// Zips hits and freshly simulated misses back into point order,
    /// saving each fresh non-errored result, deriving the typed terminal
    /// state, appending the job's events, and (under `options.profile`)
    /// grafting the per-point `profile.store` / `profile.sched` counters.
    fn assemble(
        &self,
        probe: Probe,
        fresh: Vec<PointResult>,
        typed: &HashMap<&str, &xloops_sim::SimError>,
        events: &mut Vec<ProgressEvent>,
        job: &mut usize,
    ) -> Vec<JobOutcome> {
        let mut fresh = fresh.into_iter();
        probe
            .indices
            .into_iter()
            .zip(probe.loaded)
            .zip(probe.corrupt)
            .map(|((i, slot), corrupt)| {
                let this = *job;
                *job += 1;
                events.push(ProgressEvent::Queued { job: this });
                let (hit, bytes, mut result) = match slot {
                    Some((result, bytes)) => {
                        events.push(ProgressEvent::Hit { job: this });
                        (true, bytes, result)
                    }
                    None => {
                        events.push(ProgressEvent::Started { job: this });
                        let result = fresh.next().expect("one fresh result per miss");
                        events.push(ProgressEvent::Finished {
                            job: this,
                            ok: result.error.is_none(),
                        });
                        let mut written = 0;
                        if result.error.is_none() {
                            if let Some(store) = self.store {
                                let key =
                                    ResultStore::point_key(&probe.fingerprint, i, &self.options);
                                match store.save(&key, &result) {
                                    Ok(n) => written = n,
                                    Err(e) => store.warn(format_args!(
                                        "cannot write entry {key}: {e}; result kept in memory"
                                    )),
                                }
                            }
                        }
                        (false, written, result)
                    }
                };
                let state = match &result.error {
                    None => JobState::Done(Box::new(result.stats.clone())),
                    Some(message) => match typed.get(message.as_str()) {
                        Some(e) => JobState::Failed((*e).clone()),
                        None => JobState::Quarantined(message.clone()),
                    },
                };
                if self.options.profile {
                    if self.store.is_some() {
                        attach_store_counters(&mut result.stats, hit, bytes, corrupt);
                    }
                    attach_sched_counters(&mut result.stats, this, hit);
                }
                let job = Job {
                    fingerprint: probe.fingerprint.clone(),
                    index: i,
                    options: self.options.clone(),
                };
                JobOutcome { job, state, result, hit }
            })
            .collect()
    }
}

/// The [`RunKey`] a failed pooled point would have carried through the
/// in-process runner: same baseline normalization (LPSU stripped, mode
/// forced traditional, lowered) and same sampling fallback as
/// [`request_point`], so quarantine reports name identical identities on
/// both routes. A kernel name the spec invented keys as itself-unknown
/// rather than panicking — the failure is the report, not a crash.
fn run_key_for(p: &SpecPoint, options: &RunOptions) -> RunKey {
    let kernel = by_name(&p.kernel).map(|k| k.name).unwrap_or("unknown-kernel");
    let config = p.config.resolve();
    if p.gp_lowered {
        let config = SystemConfig { lpsu: None, ..config };
        RunKey {
            kernel,
            config: config.key(),
            mode: ExecMode::Traditional,
            gp_lowered: true,
            sample: options.sample,
        }
    } else {
        RunKey {
            kernel,
            config: config.key(),
            mode: p.mode,
            gp_lowered: false,
            sample: p.sampling.or(options.sample),
        }
    }
}

/// Requests every *missed* point of `probe` through the runner — called
/// once collecting and once live, like [`crate::manifest::run_spec`].
fn request_misses(r: &Runner, spec: &ExperimentSpec, probe: &Probe) -> Vec<PointResult> {
    probe
        .indices
        .iter()
        .zip(&probe.loaded)
        .filter(|(_, slot)| slot.is_none())
        .map(|(&i, _)| {
            let p = &spec.points[i];
            PointResult::from_run(&request_point(r, p), p.config.is_ooo())
        })
        .collect()
}

/// Grafts a `sched` child onto the result's `profile` node: the job's
/// admission-order index and how it resolved. Like `profile.store`, this
/// rides in the non-deterministic-tolerant profile stat family and never
/// enters golden artifacts.
fn attach_sched_counters(stats: &mut StatSet, job: usize, hit: bool) {
    let mut sched = StatSet::new("sched");
    sched.set("job", job as u64);
    sched.set("hits", hit as u64);
    sched.set("simulated", !hit as u64);
    match stats.child_mut("profile") {
        Some(profile) => {
            profile.push_child(sched);
        }
        None => {
            let mut profile = StatSet::new("profile");
            profile.push_child(sched);
            stats.push_child(profile);
        }
    }
}

/// [`crate::manifest::run_shard`] with an optional durable store: hits
/// are served from disk, only misses enter the two-pass simulate
/// protocol, and fresh results are written back. `None` is exactly the
/// storeless behavior.
pub fn run_shard_stored(
    spec: &ExperimentSpec,
    index: usize,
    of: usize,
    options: RunOptions,
    store: Option<&ResultStore>,
) -> ShardDoc {
    assert!(of > 0 && index < of, "impossible shard {index}/{of}");
    let owned = shard_points(spec, index, of);
    let mut swept = Scheduler::new(options.clone(), store).run(&[(spec, owned.clone())]);
    let results =
        owned.into_iter().zip(swept.outcomes.remove(0)).map(|(i, o)| (i, o.result)).collect();
    ShardDoc { fingerprint: spec.fingerprint(), index, of, options, spec: spec.clone(), results }
}

/// Results of a store-backed multi-spec sweep.
#[derive(Clone, Debug)]
pub struct StoredSweepResult {
    /// Per-spec, per-point results (spec and point order), ready for
    /// [`crate::manifest::render_spec`].
    pub results: Vec<Vec<PointResult>>,
    /// Quarantined simulation points across all specs.
    pub failures: Vec<RunFailure>,
    /// Prefill summary (unique *simulated* points; hits never enter it).
    pub prefill: PrefillInfo,
}

/// Runs every spec against one shared runner with store consultation:
/// points present in the store are read, the rest are deduplicated
/// *across specs* (like `--bin all`'s shared collecting runner) and
/// simulated once, then written back.
pub fn run_specs_stored(
    specs: &[ExperimentSpec],
    options: &RunOptions,
    store: &ResultStore,
) -> StoredSweepResult {
    let work: Vec<(&ExperimentSpec, Vec<usize>)> =
        specs.iter().map(|s| (s, (0..s.points.len()).collect())).collect();
    let swept = Scheduler::new(options.clone(), Some(store)).run(&work);
    StoredSweepResult {
        results: swept
            .outcomes
            .into_iter()
            .map(|outcomes| outcomes.into_iter().map(|o| o.result).collect())
            .collect(),
        failures: swept.failures,
        prefill: swept.prefill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_returns_results_in_item_order() {
        let items: Vec<usize> = (0..97).collect();
        for workers in [1, 2, 4, 9] {
            let out = run_jobs(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>(), "{workers} workers");
        }
    }

    #[test]
    fn pool_runs_every_item_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        let _ = run_jobs(&items, 8, |_, &x| counts[x].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_steals_past_a_slow_head_item() {
        // Worker 0's own queue starts with the slow item; the other
        // workers must drain everything else meanwhile. This pins the
        // stealing behavior indirectly: with 4 workers and one item that
        // sleeps, total wall time must stay well under items × sleep.
        let items: Vec<u64> = (0..32).map(|i| if i == 0 { 40 } else { 1 }).collect();
        let t = std::time::Instant::now();
        let out = run_jobs(&items, 4, |_, &ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(out, items);
        assert!(t.elapsed() < std::time::Duration::from_millis(32 * 40 / 2), "{:?}", t.elapsed());
    }

    #[test]
    fn scheduler_events_are_deterministic_and_ordered() {
        let spec = crate::experiments::spec_by_name("table2")
            .map(|mut s| {
                s.points.truncate(3);
                s.sections.clear();
                s
            })
            .expect("table2 spec exists");
        let options = RunOptions::default();
        let run = || {
            Scheduler::new(options.clone(), None).run(&[(&spec, (0..spec.points.len()).collect())])
        };
        let a = run();
        let b = run();
        assert_eq!(a.events, b.events, "event stream must be deterministic");
        // Storeless: every job is Queued → Started → Finished, in order.
        let mut expect = Vec::new();
        for j in 0..spec.points.len() {
            expect.push(ProgressEvent::Queued { job: j });
            expect.push(ProgressEvent::Started { job: j });
            expect.push(ProgressEvent::Finished { job: j, ok: true });
        }
        assert_eq!(a.events, expect);
        assert!(a.failures.is_empty());
        assert!(a.outcomes[0].iter().all(|o| o.state.is_done() && !o.hit));
    }
}
