//! Regenerates the paper's table4 artifact from its declarative
//! experiment spec. Run with --release.
fn main() {
    xloops_bench::emit_spec(&xloops_bench::experiments::table4_spec());
}
