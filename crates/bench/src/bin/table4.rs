//! Regenerates the paper's table4 artifact. Run with --release.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::table4_report);
    xloops_bench::emit("table4", &report);
}
