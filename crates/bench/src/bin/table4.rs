//! Regenerates the paper's table4 artifact. Run with --release.
fn main() {
    xloops_bench::emit("table4", &xloops_bench::experiments::table4_report());
}
