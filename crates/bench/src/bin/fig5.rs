//! Regenerates the paper's fig5 artifact. Run with --release.
fn main() {
    xloops_bench::emit("fig5", &xloops_bench::experiments::fig5_report());
}
