//! Regenerates the paper's fig5 artifact from its declarative
//! experiment spec. Run with --release.
fn main() {
    xloops_bench::emit_spec(&xloops_bench::experiments::fig5_spec());
}
