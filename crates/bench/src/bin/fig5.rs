//! Regenerates the paper's fig5 artifact. Run with --release.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::fig5_report);
    xloops_bench::emit("fig5", &report);
}
