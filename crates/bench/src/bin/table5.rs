//! Regenerates the paper's table5 artifact. Run with --release.
fn main() {
    xloops_bench::emit("table5", &xloops_bench::experiments::table5_report());
}
