//! Regenerates the paper's table5 artifact. Run with --release.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::table5_report);
    xloops_bench::emit("table5", &report);
}
