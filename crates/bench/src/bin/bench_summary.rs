//! `bench-summary`: the machine-readable performance trajectory.
//!
//! Times every table-2 kernel on four representative design points (io
//! and ooo/4, traditional and specialized), plus one full artifact
//! regeneration (collect/simulate/render, nothing written to `results/`),
//! and writes `BENCH_<date>.json` at the workspace root with per-point
//! wall-clock, simulated cycles, and simulated-cycles-per-second. Future
//! PRs compare these files numerically instead of prose in EXPERIMENTS.md.
//!
//! The file name's date comes from the system clock; set
//! `XLOOPS_BENCH_DATE=YYYY-MM-DD` to override (e.g. in CI, or to update an
//! existing file deterministically).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use xloops_bench::experiments::report_fns;
use xloops_bench::{run_kernel, Runner};
use xloops_kernels::table2;
use xloops_sim::{ExecMode, SystemConfig};

struct Point {
    kernel: &'static str,
    config: String,
    mode: &'static str,
    wall_s: f64,
    sim_cycles: u64,
}

fn main() {
    let design_points = [
        (SystemConfig::io(), ExecMode::Traditional),
        (SystemConfig::io_x(), ExecMode::Specialized),
        (SystemConfig::ooo4(), ExecMode::Traditional),
        (SystemConfig::ooo4_x(), ExecMode::Specialized),
    ];

    let mut points = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for kernel in table2() {
        for (config, mode) in design_points {
            let t = Instant::now();
            // Panic firewall: a sick point lands in the `errors` section of
            // the JSON instead of killing the whole summary.
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_kernel(kernel, config, mode)
            }));
            match caught {
                Ok(r) => points.push(Point {
                    kernel: kernel.name,
                    config: config.name(),
                    mode: mode_tag(mode),
                    wall_s: t.elapsed().as_secs_f64(),
                    sim_cycles: r.cycles,
                }),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    errors.push(format!(
                        "{} on {} ({}): {msg}",
                        kernel.name,
                        config.name(),
                        mode_tag(mode)
                    ));
                }
            }
        }
    }

    // One full artifact regeneration, rendered to strings only: the
    // `all` binary stays the sole writer of `results/`.
    let regen_total = Instant::now();
    let reports = report_fns();
    let runner = Runner::collecting();
    for (_, f) in &reports {
        let _ = f(&runner);
    }
    let t = Instant::now();
    let info = runner.prefill();
    let simulate_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for (_, f) in &reports {
        let _ = f(&runner);
    }
    let render_s = t.elapsed().as_secs_f64();
    let regen_s = regen_total.elapsed().as_secs_f64();
    for f in runner.failures() {
        errors.push(format!("regen {} ({:?}): {}", f.key.kernel, f.key.mode, f.message));
    }

    let date = bench_date();
    let json =
        render_json(&date, &points, &errors, info.unique_points, simulate_s, render_s, regen_s);
    let path = workspace_root().join(format!("BENCH_{date}.json"));
    std::fs::write(&path, &json).expect("write BENCH json");
    if !errors.is_empty() {
        eprintln!(
            "bench-summary: {} point(s) quarantined (see \"errors\" in the JSON)",
            errors.len()
        );
    }

    let total_wall: f64 = points.iter().map(|p| p.wall_s).sum();
    let total_cycles: u64 = points.iter().map(|p| p.sim_cycles).sum();
    println!(
        "bench-summary: {} points, {total_cycles} simulated cycles in {total_wall:.3} s \
         ({:.1} M sim-cycles/s); full regen {regen_s:.3} s -> {}",
        points.len(),
        total_cycles as f64 / total_wall / 1e6,
        path.display()
    );
}

fn mode_tag(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Traditional => "traditional",
        ExecMode::Specialized => "specialized",
        ExecMode::Adaptive => "adaptive",
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn render_json(
    date: &str,
    points: &[Point],
    errors: &[String],
    unique_points: usize,
    simulate_s: f64,
    render_s: f64,
    regen_s: f64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"date\": \"{date}\",");
    let _ = writeln!(s, "  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"kernel\": \"{}\", \"config\": \"{}\", \"mode\": \"{}\", \
             \"wall_s\": {:.6}, \"sim_cycles\": {}, \"sim_cycles_per_sec\": {:.0}}}{}",
            p.kernel,
            p.config,
            p.mode,
            p.wall_s,
            p.sim_cycles,
            p.sim_cycles as f64 / p.wall_s.max(1e-9),
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(
        s,
        "  \"errors\": [{}],",
        errors.iter().map(|e| format!("\"{}\"", json_escape(e))).collect::<Vec<_>>().join(", ")
    );
    let total_wall: f64 = points.iter().map(|p| p.wall_s).sum();
    let total_cycles: u64 = points.iter().map(|p| p.sim_cycles).sum();
    let _ = writeln!(
        s,
        "  \"totals\": {{\"wall_s\": {:.6}, \"sim_cycles\": {}, \"sim_cycles_per_sec\": {:.0}}},",
        total_wall,
        total_cycles,
        total_cycles as f64 / total_wall.max(1e-9)
    );
    let _ = writeln!(
        s,
        "  \"full_regen\": {{\"unique_points\": {unique_points}, \"simulate_s\": {simulate_s:.6}, \
         \"render_s\": {render_s:.6}, \"total_s\": {regen_s:.6}}}"
    );
    let _ = writeln!(s, "}}");
    s
}

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn bench_date() -> String {
    if let Ok(d) = std::env::var("XLOOPS_BENCH_DATE") {
        return d;
    }
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).expect("clock after 1970").as_secs();
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to (year, month, day), Gregorian calendar
/// (Howard Hinnant's `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}
