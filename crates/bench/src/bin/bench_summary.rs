//! `bench-summary`: the machine-readable performance trajectory.
//!
//! Times every table-2 kernel on four representative design points (io
//! and ooo/4, traditional and specialized), the threaded-code functional
//! engine (`mode: "functional"`, host MIPS) over the same kernels plus
//! the scaled variants, and interval-sampled simulation on io+x
//! (`sampled`: extrapolated vs full cycle counts, relative error, error
//! bar); plus one full artifact regeneration (collect/simulate/render,
//! nothing written to `results/`). Writes `BENCH_<date>.json` at the
//! workspace root with per-point wall-clock, simulated cycles, and
//! simulated-cycles-per-second. With `XLOOPS_BENCH_PROFILE=1` each
//! simulation point also carries the per-phase host wall-time breakdown
//! (`profile.gpp_ns` / `scan_ns` / `engine_ns` / `handoffs`). With
//! `XLOOPS_STORE=DIR` the regeneration phase goes through the durable
//! result store and the JSON gains a `store` section (hits, misses,
//! bytes read/written; `null` without a store). The
//! document is built on the shared deterministic JSON writer of
//! `xloops-stats` — the same encoder the CLI's `--stats json` output and
//! the manifest shard files use. Future PRs compare these files
//! numerically instead of prose in EXPERIMENTS.md.
//!
//! The file name's date comes from the system clock; set
//! `XLOOPS_BENCH_DATE=YYYY-MM-DD` to override (e.g. in CI, or to update an
//! existing file deterministically).

use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use xloops_bench::experiments::all_specs;
use xloops_bench::manifest::{mode_tag, render_spec, render_with_runner};
use xloops_bench::store::run_specs_stored;
use xloops_bench::{run_kernel, run_kernel_with, ResultStore, Runner, StoreStats};
use xloops_func::{ArchState, FastForward};
use xloops_kernels::{scaled, table2, Kernel};
use xloops_mem::Memory;
use xloops_sim::{error_doc, ExecMode, ProfileStats, RunOptions, SampleSpec, SystemConfig};
use xloops_stats::JsonValue;

struct Point {
    kernel: &'static str,
    config: String,
    mode: &'static str,
    wall_s: f64,
    sim_cycles: u64,
    profile: Option<ProfileStats>,
}

/// One functional-engine throughput measurement (no timing model).
struct FuncPoint {
    kernel: &'static str,
    instrs: u64,
    wall_s: f64,
}

/// One sampled-simulation point, paired with its full-run reference.
struct SampledPoint {
    kernel: &'static str,
    config: String,
    wall_s: f64,
    est_cycles: u64,
    full_cycles: u64,
    rel_stderr: f64,
}

/// The sampling schedule every sampled point uses: validated to stay
/// within 2% of the full run on every table-2 kernel × Figure 9 config
/// (see `tests/sampling_accuracy.rs`).
const SAMPLE_SPEC: &str = "10000:2000:10000";

fn main() {
    let design_points = [
        (SystemConfig::io(), ExecMode::Traditional),
        (SystemConfig::io_x(), ExecMode::Specialized),
        (SystemConfig::ooo4(), ExecMode::Traditional),
        (SystemConfig::ooo4_x(), ExecMode::Specialized),
    ];

    let mut points = Vec::new();
    // Every quarantined point lands here as the canonical `error_doc`
    // (`{"message", "exit_code"}`) — the same rendering the daemon uses
    // for failed jobs, so downstream tooling parses one shape.
    let mut errors: Vec<JsonValue> = Vec::new();
    for kernel in table2() {
        for (config, mode) in design_points {
            let t = Instant::now();
            // Panic firewall: a sick point lands in the `errors` section of
            // the JSON instead of killing the whole summary.
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_kernel(kernel, config, mode)
            }));
            match caught {
                Ok(r) => points.push(Point {
                    kernel: kernel.name,
                    config: config.name(),
                    mode: mode_tag(mode),
                    wall_s: t.elapsed().as_secs_f64(),
                    sim_cycles: r.cycles,
                    profile: r.stats.profile,
                }),
                Err(payload) => {
                    let message = format!(
                        "{} on {} ({}): {}",
                        kernel.name,
                        config.name(),
                        mode_tag(mode),
                        panic_message(payload)
                    );
                    errors.push(error_doc(&message, 1));
                }
            }
        }
    }

    // Functional-mode throughput: the pre-decoded threaded-code engine,
    // end to end (exit reached, result verified). The scaled variants run
    // here too — they exist to exercise sampling and fast-forward at
    // sizes the detailed model would crawl through.
    let mut functional = Vec::new();
    for kernel in table2().iter().chain(scaled()) {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_functional(kernel))) {
            Ok(p) => functional.push(p),
            Err(payload) => {
                let message = format!("{} (functional): {}", kernel.name, panic_message(payload));
                errors.push(error_doc(&message, 1));
            }
        }
    }

    // Sampled simulation on io+x: extrapolated cycle count vs the full
    // run already measured above, plus the per-interval error bar.
    let spec: SampleSpec = SAMPLE_SPEC.parse().expect("valid sample spec");
    let sample_options = RunOptions { sample: Some(spec), ..RunOptions::default() };
    let mut sampled = Vec::new();
    for kernel in table2() {
        let config = SystemConfig::io_x();
        let full = points
            .iter()
            .find(|p| {
                p.kernel == kernel.name && p.config == config.name() && p.mode == "specialized"
            })
            .map(|p| p.sim_cycles);
        let Some(full_cycles) = full else { continue }; // quarantined above
        let t = Instant::now();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_kernel_with(kernel, config, ExecMode::Specialized, &sample_options)
        }));
        match caught {
            Ok(r) => sampled.push(SampledPoint {
                kernel: kernel.name,
                config: config.name(),
                wall_s: t.elapsed().as_secs_f64(),
                est_cycles: r.cycles,
                full_cycles,
                rel_stderr: r.stats.sampling.map_or(0.0, |s| s.rel_stderr),
            }),
            Err(payload) => {
                let message = format!(
                    "{} on {} (sampled {SAMPLE_SPEC}): {}",
                    kernel.name,
                    config.name(),
                    panic_message(payload)
                );
                errors.push(error_doc(&message, 1));
            }
        }
    }

    // One full artifact regeneration, rendered to strings only: the
    // `all` binary stays the sole writer of `results/`. Under
    // `XLOOPS_STORE=DIR` the regeneration reads/writes the durable store,
    // and the summary JSON's `store` section reports the traffic.
    let regen_total = Instant::now();
    let specs = all_specs();
    let store = ResultStore::from_env();
    let (unique_points, simulate_s, render_s, store_stats) = match &store {
        Some(store) => {
            let t = Instant::now();
            let swept = run_specs_stored(&specs, &RunOptions::from_env(), store);
            let simulate_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            for (spec, results) in specs.iter().zip(&swept.results) {
                let _ = render_spec(spec, results);
            }
            let render_s = t.elapsed().as_secs_f64();
            for f in swept.failures {
                let message = format!("regen {} ({:?}): {}", f.key.kernel, f.key.mode, f.message);
                errors.push(error_doc(&message, f.sim.as_ref().map_or(1, |e| e.exit_code())));
            }
            (swept.prefill.unique_points, simulate_s, render_s, Some(store.stats()))
        }
        None => {
            let runner = Runner::collecting();
            for spec in &specs {
                let _ = render_with_runner(&runner, spec);
            }
            let t = Instant::now();
            let info = runner.prefill();
            let simulate_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            for spec in &specs {
                let _ = render_with_runner(&runner, spec);
            }
            let render_s = t.elapsed().as_secs_f64();
            for f in runner.failures() {
                let message = format!("regen {} ({:?}): {}", f.key.kernel, f.key.mode, f.message);
                errors.push(error_doc(&message, f.sim.as_ref().map_or(1, |e| e.exit_code())));
            }
            (info.unique_points, simulate_s, render_s, None)
        }
    };
    let regen_s = regen_total.elapsed().as_secs_f64();

    let date = bench_date();
    let json = render_json(RenderInput {
        date: &date,
        points: &points,
        functional: &functional,
        sampled: &sampled,
        errors: &errors,
        unique_points,
        simulate_s,
        render_s,
        regen_s,
        store: store_stats,
    });
    let path = workspace_root().join(format!("BENCH_{date}.json"));
    std::fs::write(&path, &json).expect("write BENCH json");
    if !errors.is_empty() {
        eprintln!(
            "bench-summary: {} point(s) quarantined (see \"errors\" in the JSON)",
            errors.len()
        );
    }

    let total_wall: f64 = points.iter().map(|p| p.wall_s).sum();
    let total_cycles: u64 = points.iter().map(|p| p.sim_cycles).sum();
    let func_instrs: u64 = functional.iter().map(|p| p.instrs).sum();
    let func_wall: f64 = functional.iter().map(|p| p.wall_s).sum();
    println!(
        "bench-summary: {} points, {total_cycles} simulated cycles in {total_wall:.3} s \
         ({:.1} M sim-cycles/s); functional {func_instrs} instrs in {func_wall:.3} s \
         ({:.1} MIPS); {} sampled points; full regen {regen_s:.3} s -> {}",
        points.len(),
        total_cycles as f64 / total_wall / 1e6,
        func_instrs as f64 / func_wall.max(1e-9) / 1e6,
        sampled.len(),
        path.display()
    );
}

/// Times the fast-forward engine end to end on one kernel (repeated runs,
/// mean wall time) and verifies the architectural result.
fn run_functional(kernel: &Kernel) -> FuncPoint {
    let ff = FastForward::new(&kernel.program);
    // Enough repetitions to dominate timer noise on the small kernels;
    // memory setup and result verification stay outside the timed region
    // (the point measures engine throughput, not test-fixture cost).
    let reps = 5u32;
    let mut retired = 0;
    let mut wall = 0.0;
    for _ in 0..reps {
        let mut mem = Memory::new();
        kernel.init_memory(&mut mem);
        let mut state = ArchState::new();
        let t = Instant::now();
        let run = ff
            .run(&mut state, &mut mem, u64::MAX)
            .unwrap_or_else(|e| panic!("{} functional: {e}", kernel.name));
        wall += t.elapsed().as_secs_f64();
        assert!(run.exited, "{} functional run must reach exit", kernel.name);
        retired = run.retired;
        kernel.verify(&mem).unwrap_or_else(|e| panic!("{} functional verify: {e}", kernel.name));
    }
    FuncPoint { kernel: kernel.name, instrs: retired, wall_s: wall / reps as f64 }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Wall-clock seconds rounded to microseconds, so the JSON stays compact
/// and diffs between runs are readable.
fn r6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

struct RenderInput<'a> {
    date: &'a str,
    points: &'a [Point],
    functional: &'a [FuncPoint],
    sampled: &'a [SampledPoint],
    errors: &'a [JsonValue],
    unique_points: usize,
    simulate_s: f64,
    render_s: f64,
    regen_s: f64,
    /// Durable-store traffic of the regen phase (`None` = no store).
    store: Option<StoreStats>,
}

fn render_json(input: RenderInput<'_>) -> String {
    let RenderInput {
        date,
        points,
        functional,
        sampled,
        errors,
        unique_points,
        simulate_s,
        render_s,
        regen_s,
        store,
    } = input;
    let total_wall: f64 = points.iter().map(|p| p.wall_s).sum();
    let total_cycles: u64 = points.iter().map(|p| p.sim_cycles).sum();
    // Per-kernel baseline for the functional speedup: the kernel's
    // fastest *specialized* (cycle-accurate LPSU) point — the rate the
    // fast-forward engine exists to beat. Traditional-mode points run a
    // much cheaper timing model and would understate the gain the
    // sampling pipeline actually sees.
    let best_specialized = |kernel: &str| -> Option<f64> {
        points
            .iter()
            .filter(|p| p.kernel == kernel && p.mode == "specialized")
            .map(|p| p.sim_cycles as f64 / p.wall_s.max(1e-9))
            .fold(None, |acc: Option<f64>, r| Some(acc.map_or(r, |a| a.max(r))))
    };
    let doc = JsonValue::object(vec![
        ("date", JsonValue::Str(date.to_string())),
        (
            "points",
            JsonValue::Array(
                points
                    .iter()
                    .map(|p| {
                        let mut fields = vec![
                            ("kernel", JsonValue::Str(p.kernel.to_string())),
                            ("config", JsonValue::Str(p.config.clone())),
                            ("mode", JsonValue::Str(p.mode.to_string())),
                            ("wall_s", JsonValue::Float(r6(p.wall_s))),
                            ("sim_cycles", JsonValue::UInt(p.sim_cycles)),
                            (
                                "sim_cycles_per_sec",
                                JsonValue::UInt(
                                    (p.sim_cycles as f64 / p.wall_s.max(1e-9)).round() as u64
                                ),
                            ),
                        ];
                        if let Some(prof) = &p.profile {
                            fields.push((
                                "profile",
                                JsonValue::object(vec![
                                    ("gpp_ns", JsonValue::UInt(prof.gpp_ns)),
                                    ("scan_ns", JsonValue::UInt(prof.scan_ns)),
                                    ("engine_ns", JsonValue::UInt(prof.engine_ns)),
                                    ("handoffs", JsonValue::UInt(prof.handoffs)),
                                ]),
                            ));
                        }
                        JsonValue::object(fields)
                    })
                    .collect(),
            ),
        ),
        (
            "functional",
            JsonValue::Array(
                functional
                    .iter()
                    .map(|p| {
                        let ips = p.instrs as f64 / p.wall_s.max(1e-9);
                        JsonValue::object(vec![
                            ("kernel", JsonValue::Str(p.kernel.to_string())),
                            ("mode", JsonValue::Str("functional".to_string())),
                            ("instrs", JsonValue::UInt(p.instrs)),
                            ("wall_s", JsonValue::Float(r6(p.wall_s))),
                            ("mips", JsonValue::Float(r6(ips / 1e6))),
                            // Host instrs/s over this kernel's fastest
                            // specialized-point host cycles/s; null for the
                            // scaled variants, which have no detailed point.
                            (
                                "speedup_vs_specialized",
                                best_specialized(p.kernel)
                                    .map_or(JsonValue::Null, |b| JsonValue::Float(r6(ips / b))),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "sampled",
            JsonValue::Array(
                sampled
                    .iter()
                    .map(|p| {
                        let rel_err = (p.est_cycles as f64 - p.full_cycles as f64).abs()
                            / p.full_cycles.max(1) as f64;
                        JsonValue::object(vec![
                            ("kernel", JsonValue::Str(p.kernel.to_string())),
                            ("config", JsonValue::Str(p.config.clone())),
                            ("spec", JsonValue::Str(SAMPLE_SPEC.to_string())),
                            ("wall_s", JsonValue::Float(r6(p.wall_s))),
                            ("est_cycles", JsonValue::UInt(p.est_cycles)),
                            ("full_cycles", JsonValue::UInt(p.full_cycles)),
                            ("rel_err", JsonValue::Float(r6(rel_err))),
                            ("rel_stderr", JsonValue::Float(r6(p.rel_stderr))),
                            (
                                "est_cycles_per_sec",
                                JsonValue::UInt(
                                    (p.est_cycles as f64 / p.wall_s.max(1e-9)).round() as u64
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("errors", JsonValue::Array(errors.to_vec())),
        (
            "totals",
            JsonValue::object(vec![
                ("wall_s", JsonValue::Float(r6(total_wall))),
                ("sim_cycles", JsonValue::UInt(total_cycles)),
                (
                    "sim_cycles_per_sec",
                    JsonValue::UInt((total_cycles as f64 / total_wall.max(1e-9)).round() as u64),
                ),
            ]),
        ),
        (
            "full_regen",
            JsonValue::object(vec![
                ("unique_points", JsonValue::UInt(unique_points as u64)),
                ("simulate_s", JsonValue::Float(r6(simulate_s))),
                ("render_s", JsonValue::Float(r6(render_s))),
                ("total_s", JsonValue::Float(r6(regen_s))),
            ]),
        ),
        ("store", store.map_or(JsonValue::Null, |s| s.to_json_value())),
    ]);
    let mut s = doc.render_pretty();
    s.push('\n');
    s
}

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn bench_date() -> String {
    if let Some(d) = RunOptions::from_env().bench_date {
        return d;
    }
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).expect("clock after 1970").as_secs();
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to (year, month, day), Gregorian calendar
/// (Howard Hinnant's `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}
