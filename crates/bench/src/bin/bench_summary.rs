//! `bench-summary`: the machine-readable performance trajectory.
//!
//! Times every table-2 kernel on four representative design points (io
//! and ooo/4, traditional and specialized), plus one full artifact
//! regeneration (collect/simulate/render, nothing written to `results/`),
//! and writes `BENCH_<date>.json` at the workspace root with per-point
//! wall-clock, simulated cycles, and simulated-cycles-per-second. The
//! document is built on the shared deterministic JSON writer of
//! `xloops-stats` — the same encoder the CLI's `--stats json` output and
//! the manifest shard files use. Future PRs compare these files
//! numerically instead of prose in EXPERIMENTS.md.
//!
//! The file name's date comes from the system clock; set
//! `XLOOPS_BENCH_DATE=YYYY-MM-DD` to override (e.g. in CI, or to update an
//! existing file deterministically).

use std::path::PathBuf;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use xloops_bench::experiments::all_specs;
use xloops_bench::manifest::{mode_tag, render_with_runner};
use xloops_bench::{run_kernel, Runner};
use xloops_kernels::table2;
use xloops_sim::{ExecMode, RunOptions, SystemConfig};
use xloops_stats::JsonValue;

struct Point {
    kernel: &'static str,
    config: String,
    mode: &'static str,
    wall_s: f64,
    sim_cycles: u64,
}

fn main() {
    let design_points = [
        (SystemConfig::io(), ExecMode::Traditional),
        (SystemConfig::io_x(), ExecMode::Specialized),
        (SystemConfig::ooo4(), ExecMode::Traditional),
        (SystemConfig::ooo4_x(), ExecMode::Specialized),
    ];

    let mut points = Vec::new();
    let mut errors: Vec<String> = Vec::new();
    for kernel in table2() {
        for (config, mode) in design_points {
            let t = Instant::now();
            // Panic firewall: a sick point lands in the `errors` section of
            // the JSON instead of killing the whole summary.
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_kernel(kernel, config, mode)
            }));
            match caught {
                Ok(r) => points.push(Point {
                    kernel: kernel.name,
                    config: config.name(),
                    mode: mode_tag(mode),
                    wall_s: t.elapsed().as_secs_f64(),
                    sim_cycles: r.cycles,
                }),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    errors.push(format!(
                        "{} on {} ({}): {msg}",
                        kernel.name,
                        config.name(),
                        mode_tag(mode)
                    ));
                }
            }
        }
    }

    // One full artifact regeneration, rendered to strings only: the
    // `all` binary stays the sole writer of `results/`.
    let regen_total = Instant::now();
    let specs = all_specs();
    let runner = Runner::collecting();
    for spec in &specs {
        let _ = render_with_runner(&runner, spec);
    }
    let t = Instant::now();
    let info = runner.prefill();
    let simulate_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for spec in &specs {
        let _ = render_with_runner(&runner, spec);
    }
    let render_s = t.elapsed().as_secs_f64();
    let regen_s = regen_total.elapsed().as_secs_f64();
    for f in runner.failures() {
        errors.push(format!("regen {} ({:?}): {}", f.key.kernel, f.key.mode, f.message));
    }

    let date = bench_date();
    let json =
        render_json(&date, &points, &errors, info.unique_points, simulate_s, render_s, regen_s);
    let path = workspace_root().join(format!("BENCH_{date}.json"));
    std::fs::write(&path, &json).expect("write BENCH json");
    if !errors.is_empty() {
        eprintln!(
            "bench-summary: {} point(s) quarantined (see \"errors\" in the JSON)",
            errors.len()
        );
    }

    let total_wall: f64 = points.iter().map(|p| p.wall_s).sum();
    let total_cycles: u64 = points.iter().map(|p| p.sim_cycles).sum();
    println!(
        "bench-summary: {} points, {total_cycles} simulated cycles in {total_wall:.3} s \
         ({:.1} M sim-cycles/s); full regen {regen_s:.3} s -> {}",
        points.len(),
        total_cycles as f64 / total_wall / 1e6,
        path.display()
    );
}

/// Wall-clock seconds rounded to microseconds, so the JSON stays compact
/// and diffs between runs are readable.
fn r6(x: f64) -> f64 {
    (x * 1e6).round() / 1e6
}

fn render_json(
    date: &str,
    points: &[Point],
    errors: &[String],
    unique_points: usize,
    simulate_s: f64,
    render_s: f64,
    regen_s: f64,
) -> String {
    let total_wall: f64 = points.iter().map(|p| p.wall_s).sum();
    let total_cycles: u64 = points.iter().map(|p| p.sim_cycles).sum();
    let doc = JsonValue::object(vec![
        ("date", JsonValue::Str(date.to_string())),
        (
            "points",
            JsonValue::Array(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::object(vec![
                            ("kernel", JsonValue::Str(p.kernel.to_string())),
                            ("config", JsonValue::Str(p.config.clone())),
                            ("mode", JsonValue::Str(p.mode.to_string())),
                            ("wall_s", JsonValue::Float(r6(p.wall_s))),
                            ("sim_cycles", JsonValue::UInt(p.sim_cycles)),
                            (
                                "sim_cycles_per_sec",
                                JsonValue::UInt(
                                    (p.sim_cycles as f64 / p.wall_s.max(1e-9)).round() as u64
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("errors", JsonValue::Array(errors.iter().map(|e| JsonValue::Str(e.clone())).collect())),
        (
            "totals",
            JsonValue::object(vec![
                ("wall_s", JsonValue::Float(r6(total_wall))),
                ("sim_cycles", JsonValue::UInt(total_cycles)),
                (
                    "sim_cycles_per_sec",
                    JsonValue::UInt((total_cycles as f64 / total_wall.max(1e-9)).round() as u64),
                ),
            ]),
        ),
        (
            "full_regen",
            JsonValue::object(vec![
                ("unique_points", JsonValue::UInt(unique_points as u64)),
                ("simulate_s", JsonValue::Float(r6(simulate_s))),
                ("render_s", JsonValue::Float(r6(render_s))),
                ("total_s", JsonValue::Float(r6(regen_s))),
            ]),
        ),
    ]);
    let mut s = doc.render_pretty();
    s.push('\n');
    s
}

fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

fn bench_date() -> String {
    if let Some(d) = RunOptions::from_env().bench_date {
        return d;
    }
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).expect("clock after 1970").as_secs();
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to (year, month, day), Gregorian calendar
/// (Howard Hinnant's `civil_from_days` algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}
