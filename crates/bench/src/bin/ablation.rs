//! Ablation study of DESIGN.md's called-out LPSU design choices.
fn main() {
    xloops_bench::emit("ablation", &xloops_bench::experiments::ablation_report());
}
