//! Regenerates the paper's ablation artifact from its declarative
//! experiment spec. Run with --release.
fn main() {
    xloops_bench::emit_spec(&xloops_bench::experiments::ablation_spec());
}
