//! Ablation study of DESIGN.md's called-out LPSU design choices.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::ablation_report);
    xloops_bench::emit("ablation", &report);
}
