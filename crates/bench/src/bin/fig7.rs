//! Regenerates the paper's fig7 artifact. Run with --release.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::fig7_report);
    xloops_bench::emit("fig7", &report);
}
