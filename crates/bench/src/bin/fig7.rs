//! Regenerates the paper's fig7 artifact. Run with --release.
fn main() {
    xloops_bench::emit("fig7", &xloops_bench::experiments::fig7_report());
}
