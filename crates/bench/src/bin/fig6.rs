//! Regenerates the paper's fig6 artifact from its declarative
//! experiment spec. Run with --release.
fn main() {
    xloops_bench::emit_spec(&xloops_bench::experiments::fig6_spec());
}
