//! Regenerates the paper's fig6 artifact. Run with --release.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::fig6_report);
    xloops_bench::emit("fig6", &report);
}
