//! Regenerates the paper's fig6 artifact. Run with --release.
fn main() {
    xloops_bench::emit("fig6", &xloops_bench::experiments::fig6_report());
}
