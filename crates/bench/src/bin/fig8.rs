//! Regenerates the paper's fig8 artifact. Run with --release.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::fig8_report);
    xloops_bench::emit("fig8", &report);
}
