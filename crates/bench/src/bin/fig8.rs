//! Regenerates the paper's fig8 artifact. Run with --release.
fn main() {
    xloops_bench::emit("fig8", &xloops_bench::experiments::fig8_report());
}
