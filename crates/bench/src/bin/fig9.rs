//! Regenerates the paper's fig9 artifact. Run with --release.
fn main() {
    xloops_bench::emit("fig9", &xloops_bench::experiments::fig9_report());
}
