//! Regenerates the paper's fig9 artifact. Run with --release.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::fig9_report);
    xloops_bench::emit("fig9", &report);
}
