//! Regenerates the paper's fig9 artifact from its declarative
//! experiment spec. Run with --release.
fn main() {
    xloops_bench::emit_spec(&xloops_bench::experiments::fig9_spec());
}
