//! Regenerates the paper's table2 artifact. Run with --release.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::table2_report);
    xloops_bench::emit("table2", &report);
}
