//! Regenerates the paper's table2 artifact from its declarative
//! experiment spec. Run with --release.
fn main() {
    xloops_bench::emit_spec(&xloops_bench::experiments::table2_spec());
}
