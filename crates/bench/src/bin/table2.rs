//! Regenerates the paper's table2 artifact. Run with --release.
fn main() {
    xloops_bench::emit("table2", &xloops_bench::experiments::table2_report());
}
