//! Regenerates the paper's fig10 artifact. Run with --release.
fn main() {
    let report = xloops_bench::render_artifact(xloops_bench::experiments::fig10_report);
    xloops_bench::emit("fig10", &report);
}
