//! Regenerates the paper's fig10 artifact. Run with --release.
fn main() {
    xloops_bench::emit("fig10", &xloops_bench::experiments::fig10_report());
}
