//! Regenerates every table and figure of the paper's evaluation.
//! Run with --release; artifacts land in `results/`.
//!
//! Iterates the declarative experiment specs ([`all_specs`]) through one
//! memoized run cache: pass 1 collects the union of every spec's unique
//! simulation points, which then execute exactly once each — fanned out
//! over all hardware threads, or serially with `XLOOPS_BENCH_SERIAL=1`
//! (byte-identical artifacts either way) — before pass 2 renders from the
//! warm cache. Wall-clock timing per phase and per artifact, plus cache
//! statistics, are printed at the end.

use std::time::Instant;

use xloops_bench::experiments::all_specs;
use xloops_bench::manifest::render_with_runner;
use xloops_bench::{emit, Runner};

fn main() {
    let total = Instant::now();
    let specs = all_specs();

    let t = Instant::now();
    let runner = Runner::collecting();
    for spec in &specs {
        let _ = render_with_runner(&runner, spec);
    }
    let collect_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let info = runner.prefill();
    let simulate_s = t.elapsed().as_secs_f64();

    let mut timings = Vec::new();
    for spec in &specs {
        let t = Instant::now();
        let report = render_with_runner(&runner, spec);
        emit(&spec.name, &report);
        timings.push((spec.name.clone(), t.elapsed().as_secs_f64()));
    }

    let stats = runner.cache_stats();
    assert_eq!(
        stats.sims as usize, info.unique_points,
        "every unique (kernel, config, mode) point must simulate exactly once"
    );
    assert_eq!(stats.lookups, stats.hits, "the render pass must be fully cache-served");

    println!("[time] collect jobs   {collect_s:8.3} s");
    println!(
        "[time] simulate       {simulate_s:8.3} s  ({} unique points, {} worker thread(s){})",
        info.unique_points,
        info.workers,
        if info.serial { ", serial" } else { "" },
    );
    for (name, s) in &timings {
        println!("[time] render {name:<8}{s:8.3} s");
    }
    println!("[time] total          {:8.3} s", total.elapsed().as_secs_f64());
    println!(
        "[cache] {} lookups, {} hits, {} simulations — each unique point simulated exactly once",
        stats.lookups, stats.hits, stats.sims
    );

    // Quarantined points: every artifact above still rendered (with
    // placeholder numbers at the sick points), but the run as a whole must
    // fail loudly so CI catches it.
    let failures = runner.failures();
    if !failures.is_empty() {
        eprintln!("[errors] {} simulation point(s) quarantined:", failures.len());
        for f in &failures {
            eprintln!(
                "[errors]   {} on {:?} ({:?}{}): {}",
                f.key.kernel,
                f.key.config,
                f.key.mode,
                if f.key.gp_lowered { ", gp-lowered" } else { "" },
                f.message
            );
        }
        std::process::exit(1);
    }
}
