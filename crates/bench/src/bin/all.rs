//! Regenerates every table and figure of the paper's evaluation.
//! Run with --release; artifacts land in `results/`.
fn main() {
    for (name, report) in xloops_bench::experiments::all_reports() {
        xloops_bench::emit(name, &report);
    }
}
