//! Regenerates every table and figure of the paper's evaluation.
//! Run with --release; artifacts land in `results/`.
//!
//! Iterates the declarative experiment specs ([`all_specs`]) through one
//! memoized run cache: pass 1 collects the union of every spec's unique
//! simulation points, which then execute exactly once each — fanned out
//! over all hardware threads, or serially with `XLOOPS_BENCH_SERIAL=1`
//! (byte-identical artifacts either way) — before pass 2 renders from the
//! warm cache. Wall-clock timing per phase and per artifact, plus cache
//! statistics, are printed at the end.
//!
//! With `--store DIR` (or `XLOOPS_STORE=DIR`) the sweep goes through the
//! durable result store: previously finished points are read from disk,
//! only the rest simulate, and fresh results are written back — the
//! artifacts are byte-identical either way. Without a store this binary
//! behaves exactly as it always has.

use std::time::Instant;

use xloops_bench::experiments::all_specs;
use xloops_bench::manifest::{render_spec, render_with_runner, ExperimentSpec};
use xloops_bench::store::run_specs_stored;
use xloops_bench::{emit, ResultStore, Runner};

fn main() {
    let total = Instant::now();
    let specs = all_specs();

    let mut args = std::env::args().skip(1);
    let store = match args.next().as_deref() {
        Some("--store") => {
            let dir = args.next().unwrap_or_else(|| {
                eprintln!("--store expects a directory");
                std::process::exit(2);
            });
            match ResultStore::open(&dir) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("--store {dir}: {e}");
                    std::process::exit(2);
                }
            }
        }
        Some(other) => {
            eprintln!("unknown option `{other}` (usage: all [--store DIR])");
            std::process::exit(2);
        }
        None => ResultStore::from_env(),
    };
    if let Some(store) = store {
        run_stored(&specs, &store, total);
        return;
    }

    let t = Instant::now();
    let runner = Runner::collecting();
    for spec in &specs {
        let _ = render_with_runner(&runner, spec);
    }
    let collect_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let info = runner.prefill();
    let simulate_s = t.elapsed().as_secs_f64();

    let mut timings = Vec::new();
    for spec in &specs {
        let t = Instant::now();
        let report = render_with_runner(&runner, spec);
        emit(&spec.name, &report);
        timings.push((spec.name.clone(), t.elapsed().as_secs_f64()));
    }

    let stats = runner.cache_stats();
    assert_eq!(
        stats.sims as usize, info.unique_points,
        "every unique (kernel, config, mode) point must simulate exactly once"
    );
    assert_eq!(stats.lookups, stats.hits, "the render pass must be fully cache-served");

    println!("[time] collect jobs   {collect_s:8.3} s");
    println!(
        "[time] simulate       {simulate_s:8.3} s  ({} unique points, {} worker thread(s){})",
        info.unique_points,
        info.workers,
        if info.serial { ", serial" } else { "" },
    );
    for (name, s) in &timings {
        println!("[time] render {name:<8}{s:8.3} s");
    }
    println!("[time] total          {:8.3} s", total.elapsed().as_secs_f64());
    println!(
        "[cache] {} lookups, {} hits, {} simulations — each unique point simulated exactly once",
        stats.lookups, stats.hits, stats.sims
    );

    // Quarantined points: every artifact above still rendered (with
    // placeholder numbers at the sick points), but the run as a whole must
    // fail loudly so CI catches it.
    let failures = runner.failures();
    if !failures.is_empty() {
        report_failures(&failures);
        std::process::exit(1);
    }
}

/// The store-backed regeneration path: one shared store-consulting sweep
/// over every spec, then the same per-artifact emit loop.
fn run_stored(specs: &[ExperimentSpec], store: &ResultStore, total: Instant) {
    let options = xloops_sim::RunOptions::from_env();
    let t = Instant::now();
    let swept = run_specs_stored(specs, &options, store);
    let simulate_s = t.elapsed().as_secs_f64();

    for (spec, results) in specs.iter().zip(&swept.results) {
        let t = Instant::now();
        emit(&spec.name, &render_spec(spec, results));
        println!("[time] render {:<8}{:8.3} s", spec.name, t.elapsed().as_secs_f64());
    }

    let s = store.stats();
    println!(
        "[time] load+simulate  {simulate_s:8.3} s  ({} simulated point(s), {} worker thread(s))",
        swept.prefill.unique_points, swept.prefill.workers,
    );
    println!(
        "[store] {} hits, {} misses, {} bytes read, {} bytes written ({})",
        s.hits,
        s.misses,
        s.bytes_read,
        s.bytes_written,
        store.dir().display(),
    );
    println!("[time] total          {:8.3} s", total.elapsed().as_secs_f64());

    if !swept.failures.is_empty() {
        report_failures(&swept.failures);
        std::process::exit(1);
    }
}

fn report_failures(failures: &[xloops_bench::RunFailure]) {
    eprintln!("[errors] {} simulation point(s) quarantined:", failures.len());
    for f in failures {
        eprintln!(
            "[errors]   {} on {:?} ({:?}{}): {}",
            f.key.kernel,
            f.key.config,
            f.key.mode,
            if f.key.gp_lowered { ", gp-lowered" } else { "" },
            f.message
        );
    }
}
