//! Declarative experiment manifests: every figure/table as pure data.
//!
//! An [`ExperimentSpec`] fully describes one paper artifact without any
//! code: a deduplicated list of simulation points (kernel, system
//! configuration, execution mode, GP-lowering flag) plus a rendering
//! description (captions, section structure, and [`Cell`] formulas that
//! reference points by index). One generic driver pair —
//! [`run_spec`] / [`render_spec`] — replaces the ten imperative report
//! functions; the `src/bin/*` wrappers now just construct a spec and hand
//! it over, and the rendered text is byte-identical to the historical
//! `results/*.txt` files.
//!
//! Because a spec is data, it travels: [`ExperimentSpec::to_json`] /
//! [`ExperimentSpec::from_json`] round-trip through the deterministic
//! JSON layer of `xloops-stats`, and [`run_shard`] executes the
//! deterministic slice `index % of == shard` of a spec's points on one
//! machine, emitting a [`ShardDoc`] (spec + fingerprint + the
//! [`RunOptions`] that produced it + per-point stat trees). [`merge`]
//! recombines shard documents — after validating that they belong to the
//! same manifest — into exactly the table an unsharded run would have
//! printed.
//!
//! Determinism argument: the simulator is deterministic per point, the
//! point list is part of the spec (fixed order), the shard partition is a
//! pure function of (index, of), and every renderer consumes only the
//! per-point [`StatSet`] trees — so `sweep`-then-`merge` over any shard
//! count is byte-identical to a local run. See `DESIGN.md` §4.7.

use std::collections::HashMap;
use std::fmt;

use xloops_energy::EnergyTable;
use xloops_kernels::by_name;
use xloops_lpsu::LpsuConfig;
use xloops_sim::{ExecMode, RunOptions, SampleSpec, SystemConfig};
use xloops_stats::{binary, BinaryError, JsonError, JsonValue, StatSet, StatValue};

use crate::{f2, RunResult, Runner, TextTable};

// ---------------------------------------------------------------------------
// Data model
// ---------------------------------------------------------------------------

/// The GPP half of a point's system configuration, by preset name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GppPreset {
    /// In-order scalar (`io`).
    Io,
    /// Two-way out-of-order (`ooo/2`).
    Ooo2,
    /// Four-way out-of-order (`ooo/4`).
    Ooo4,
}

impl GppPreset {
    fn tag(self) -> &'static str {
        match self {
            GppPreset::Io => "io",
            GppPreset::Ooo2 => "ooo2",
            GppPreset::Ooo4 => "ooo4",
        }
    }

    fn from_tag(tag: &str) -> Option<GppPreset> {
        match tag {
            "io" => Some(GppPreset::Io),
            "ooo2" => Some(GppPreset::Ooo2),
            "ooo4" => Some(GppPreset::Ooo4),
            _ => None,
        }
    }
}

/// Which energy table a point simulates under.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EnergyPreset {
    /// The GPP-matched McPAT-45 table (the default every preset uses).
    #[default]
    Mcpat45,
    /// The 40nm-class VLSI table of the Figure 10 study.
    Vlsi40,
}

impl EnergyPreset {
    fn tag(self) -> &'static str {
        match self {
            EnergyPreset::Mcpat45 => "mcpat45",
            EnergyPreset::Vlsi40 => "vlsi40",
        }
    }

    fn from_tag(tag: &str) -> Option<EnergyPreset> {
        match tag {
            "mcpat45" => Some(EnergyPreset::Mcpat45),
            "vlsi40" => Some(EnergyPreset::Vlsi40),
            _ => None,
        }
    }
}

/// A point's full system configuration as declarative data; resolves to a
/// concrete [`SystemConfig`] via [`ConfigSpec::resolve`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConfigSpec {
    /// GPP preset.
    pub gpp: GppPreset,
    /// LPSU parameters, or `None` for a GPP-only system.
    pub lpsu: Option<LpsuConfig>,
    /// Energy table.
    pub energy: EnergyPreset,
}

impl ConfigSpec {
    /// The concrete configuration this spec denotes.
    pub fn resolve(&self) -> SystemConfig {
        let mut cfg = match self.gpp {
            GppPreset::Io => SystemConfig::io(),
            GppPreset::Ooo2 => SystemConfig::ooo2(),
            GppPreset::Ooo4 => SystemConfig::ooo4(),
        };
        if let Some(lpsu) = self.lpsu {
            cfg = cfg.with_lpsu(lpsu);
        }
        if self.energy == EnergyPreset::Vlsi40 {
            cfg = cfg.with_energy(EnergyTable::vlsi40());
        }
        cfg
    }

    /// Whether the GPP is out-of-order (selects energy-event accounting).
    pub fn is_ooo(&self) -> bool {
        self.gpp != GppPreset::Io
    }
}

/// One simulation point of a spec: everything the runner needs to produce
/// a [`RunResult`], and nothing it has to look up elsewhere.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SpecPoint {
    /// Kernel name (resolvable via [`xloops_kernels::by_name`]).
    pub kernel: String,
    /// System configuration.
    pub config: ConfigSpec,
    /// Execution mode.
    pub mode: ExecMode,
    /// Whether the program is first lowered to the GP ISA (baselines).
    pub gp_lowered: bool,
    /// Interval-sampled simulation for this point (`None` = every cycle in
    /// detail). Encoded in JSON only when set, so manifests written before
    /// sampling existed keep their fingerprints byte-for-byte.
    pub sampling: Option<SampleSpec>,
}

/// A cell formula: how one table cell is computed from point results.
/// Indices refer to [`ExperimentSpec::points`].
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// A literal string (kernel names, suite tags, analytical-model rows).
    Text(String),
    /// `base.cycles / run.cycles`, two decimals.
    Speedup {
        /// Baseline point index.
        base: usize,
        /// Measured point index.
        run: usize,
    },
    /// `base.energy / run.energy`, two decimals.
    EnergyEff {
        /// Baseline point index.
        base: usize,
        /// Measured point index.
        run: usize,
    },
    /// `num.counter(path) / den.counter(path)`, two decimals.
    Ratio {
        /// Numerator point index.
        num: usize,
        /// Denominator point index.
        den: usize,
        /// Dotted counter path into the point's stat tree.
        path: String,
    },
    /// The point's `instret` in the paper's `N.NM` / `NK` notation.
    Insns {
        /// Point index.
        point: usize,
    },
    /// A raw counter, printed in decimal.
    Counter {
        /// Point index.
        point: usize,
        /// Dotted counter path.
        path: String,
    },
    /// `100 * counter(path) / counter(total)`, one decimal.
    Pct {
        /// Point index.
        point: usize,
        /// Dotted counter path of the numerator.
        path: String,
        /// Dotted counter path of the denominator.
        total: String,
    },
    /// `nonzero` if the counter is positive, else `zero`.
    Choice {
        /// Point index.
        point: usize,
        /// Dotted counter path.
        path: String,
        /// Text when the counter is positive.
        nonzero: String,
        /// Text when the counter is zero.
        zero: String,
    },
}

/// One ASCII bar: `label` padded to 14, the speedup to two decimals, and
/// a `#` bar of `round(10 * speedup)` capped at 60 (the Figure 5 format).
#[derive(Clone, Debug, PartialEq)]
pub struct BarRow {
    /// Row label (kernel name).
    pub label: String,
    /// Baseline point index.
    pub base: usize,
    /// Measured point index.
    pub run: usize,
}

/// The renderable payload of a [`Section`].
#[derive(Clone, Debug, PartialEq)]
pub enum SectionBody {
    /// An aligned [`TextTable`] of cell formulas.
    Table {
        /// Column headers.
        header: Vec<String>,
        /// Rows of cell formulas (each as wide as the header).
        rows: Vec<Vec<Cell>>,
    },
    /// Figure 5-style bar lines.
    Bars {
        /// One bar per row.
        rows: Vec<BarRow>,
    },
}

/// One section of an artifact: literal text before and after a body.
#[derive(Clone, Debug, PartialEq)]
pub struct Section {
    /// Literal text emitted before the body (e.g. `"--- vs ooo/2 ---\n"`).
    pub prefix: String,
    /// The renderable payload.
    pub body: SectionBody,
    /// Literal text emitted after the body.
    pub suffix: String,
}

/// A complete declarative artifact description. See the module docs.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    /// Artifact name; the rendered text is written to `results/<name>.txt`.
    pub name: String,
    /// Literal text emitted before the first section (ends in `"\n\n"`).
    pub caption: String,
    /// Deduplicated simulation points, in request order.
    pub points: Vec<SpecPoint>,
    /// The rendering description.
    pub sections: Vec<Section>,
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Incremental [`ExperimentSpec`] construction with point deduplication:
/// requesting the same point twice returns the same index, exactly
/// mirroring the runner's memoization.
#[derive(Debug, Default)]
pub struct SpecBuilder {
    name: String,
    caption: String,
    points: Vec<SpecPoint>,
    index: HashMap<SpecPoint, usize>,
    sections: Vec<Section>,
}

impl SpecBuilder {
    /// Starts a spec with its artifact name and caption.
    pub fn new(name: &str, caption: &str) -> SpecBuilder {
        SpecBuilder { name: name.to_string(), caption: caption.to_string(), ..Default::default() }
    }

    /// Registers (or finds) a kernel run point and returns its index.
    pub fn point(
        &mut self,
        kernel: &str,
        gpp: GppPreset,
        lpsu: Option<LpsuConfig>,
        energy: EnergyPreset,
        mode: ExecMode,
    ) -> usize {
        self.intern(SpecPoint {
            kernel: kernel.to_string(),
            config: ConfigSpec { gpp, lpsu, energy },
            mode,
            gp_lowered: false,
            sampling: None,
        })
    }

    /// Registers (or finds) an interval-sampled kernel run point.
    pub fn sampled_point(
        &mut self,
        kernel: &str,
        gpp: GppPreset,
        lpsu: Option<LpsuConfig>,
        energy: EnergyPreset,
        mode: ExecMode,
        sampling: SampleSpec,
    ) -> usize {
        self.intern(SpecPoint {
            kernel: kernel.to_string(),
            config: ConfigSpec { gpp, lpsu, energy },
            mode,
            gp_lowered: false,
            sampling: Some(sampling),
        })
    }

    /// Registers (or finds) a GP-ISA baseline point: no LPSU, lowered
    /// program, traditional mode — the same normalization
    /// [`Runner::baseline`] applies before keying the cache.
    pub fn baseline(&mut self, kernel: &str, gpp: GppPreset, energy: EnergyPreset) -> usize {
        self.intern(SpecPoint {
            kernel: kernel.to_string(),
            config: ConfigSpec { gpp, lpsu: None, energy },
            mode: ExecMode::Traditional,
            gp_lowered: true,
            sampling: None,
        })
    }

    fn intern(&mut self, point: SpecPoint) -> usize {
        if let Some(&i) = self.index.get(&point) {
            return i;
        }
        let i = self.points.len();
        self.index.insert(point.clone(), i);
        self.points.push(point);
        i
    }

    /// Appends a section.
    pub fn section(&mut self, prefix: &str, body: SectionBody, suffix: &str) {
        self.sections.push(Section {
            prefix: prefix.to_string(),
            body,
            suffix: suffix.to_string(),
        });
    }

    /// Finishes the spec.
    pub fn build(self) -> ExperimentSpec {
        ExperimentSpec {
            name: self.name,
            caption: self.caption,
            points: self.points,
            sections: self.sections,
        }
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of manifest parsing, validation, or shard merging.
#[derive(Clone, Debug, PartialEq)]
pub enum ManifestError {
    /// The document is not well-formed JSON.
    Json(JsonError),
    /// The document is not a well-formed binary document.
    Binary(BinaryError),
    /// The JSON is well-formed but does not match the manifest schema.
    Schema(String),
    /// A point names a kernel the kernel library does not provide.
    UnknownKernel(String),
    /// A cell references a point index past the end of the point list.
    PointIndex {
        /// The out-of-range index.
        index: usize,
        /// Number of points in the spec.
        points: usize,
    },
    /// A shard header is impossible (`index >= of` or `of == 0`).
    ShardIndex {
        /// The shard's index.
        index: usize,
        /// The shard count.
        of: usize,
    },
    /// Shards come from different manifests (fingerprint mismatch).
    FingerprintMismatch {
        /// Fingerprint of the first shard.
        expected: String,
        /// The disagreeing fingerprint.
        found: String,
    },
    /// Shards disagree about the total shard count.
    ShardCountMismatch {
        /// `of` of the first shard.
        expected: usize,
        /// The disagreeing `of`.
        found: usize,
    },
    /// The same shard index was supplied twice.
    DuplicateShard(usize),
    /// Shard indices missing from a merge (not all of `0..of` present).
    MissingShards(Vec<usize>),
    /// A point was covered by no shard (malformed shard document).
    MissingPoint(usize),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Json(e) => write!(f, "malformed JSON: {e}"),
            ManifestError::Binary(e) => write!(f, "malformed binary document: {e}"),
            ManifestError::Schema(what) => write!(f, "manifest schema violation: {what}"),
            ManifestError::UnknownKernel(name) => write!(f, "unknown kernel: {name}"),
            ManifestError::PointIndex { index, points } => {
                write!(f, "cell references point {index} but the spec has {points} points")
            }
            ManifestError::ShardIndex { index, of } => {
                write!(f, "impossible shard {index}/{of}")
            }
            ManifestError::FingerprintMismatch { expected, found } => {
                write!(f, "shards come from different manifests: {expected} vs {found}")
            }
            ManifestError::ShardCountMismatch { expected, found } => {
                write!(f, "shards disagree on shard count: {expected} vs {found}")
            }
            ManifestError::DuplicateShard(i) => write!(f, "duplicate shard index {i}"),
            ManifestError::MissingShards(missing) => {
                let list: Vec<String> = missing.iter().map(|i| i.to_string()).collect();
                write!(f, "missing shard(s): {}", list.join(", "))
            }
            ManifestError::MissingPoint(i) => write!(f, "no shard covers point {i}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<JsonError> for ManifestError {
    fn from(e: JsonError) -> ManifestError {
        ManifestError::Json(e)
    }
}

impl From<BinaryError> for ManifestError {
    fn from(e: BinaryError) -> ManifestError {
        ManifestError::Binary(e)
    }
}

fn schema(what: impl Into<String>) -> ManifestError {
    ManifestError::Schema(what.into())
}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, ManifestError> {
    v.get(key).ok_or_else(|| schema(format!("missing field `{key}`")))
}

fn str_field(v: &JsonValue, key: &str) -> Result<String, ManifestError> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| schema(format!("`{key}` must be a string")))?
        .to_string())
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, ManifestError> {
    field(v, key)?.as_u64().ok_or_else(|| schema(format!("`{key}` must be an unsigned integer")))
}

fn usize_field(v: &JsonValue, key: &str) -> Result<usize, ManifestError> {
    Ok(u64_field(v, key)? as usize)
}

fn bool_field(v: &JsonValue, key: &str) -> Result<bool, ManifestError> {
    field(v, key)?.as_bool().ok_or_else(|| schema(format!("`{key}` must be a boolean")))
}

fn array_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], ManifestError> {
    field(v, key)?.as_array().ok_or_else(|| schema(format!("`{key}` must be an array")))
}

/// The canonical JSON tag of an execution mode (`traditional` /
/// `specialized` / `adaptive`), shared by manifests and `bench-summary`.
pub fn mode_tag(mode: ExecMode) -> &'static str {
    match mode {
        ExecMode::Traditional => "traditional",
        ExecMode::Specialized => "specialized",
        ExecMode::Adaptive => "adaptive",
    }
}

fn mode_from_tag(tag: &str) -> Option<ExecMode> {
    match tag {
        "traditional" => Some(ExecMode::Traditional),
        "specialized" => Some(ExecMode::Specialized),
        "adaptive" => Some(ExecMode::Adaptive),
        _ => None,
    }
}

fn lpsu_to_json(l: &LpsuConfig) -> JsonValue {
    JsonValue::object(vec![
        ("lanes", JsonValue::UInt(l.lanes as u64)),
        ("ibuf_entries", JsonValue::UInt(l.ibuf_entries as u64)),
        ("lsq_loads", JsonValue::UInt(l.lsq_loads as u64)),
        ("lsq_stores", JsonValue::UInt(l.lsq_stores as u64)),
        ("mem_ports", JsonValue::UInt(l.mem_ports as u64)),
        ("llfus", JsonValue::UInt(l.llfus as u64)),
        ("contexts", JsonValue::UInt(l.contexts as u64)),
        ("cib_latency", JsonValue::UInt(l.cib_latency as u64)),
        ("cross_lane_forwarding", JsonValue::Bool(l.cross_lane_forwarding)),
    ])
}

fn lpsu_from_json(v: &JsonValue) -> Result<LpsuConfig, ManifestError> {
    Ok(LpsuConfig {
        lanes: u64_field(v, "lanes")? as u32,
        ibuf_entries: u64_field(v, "ibuf_entries")? as u32,
        lsq_loads: u64_field(v, "lsq_loads")? as u32,
        lsq_stores: u64_field(v, "lsq_stores")? as u32,
        mem_ports: u64_field(v, "mem_ports")? as u32,
        llfus: u64_field(v, "llfus")? as u32,
        contexts: u64_field(v, "contexts")? as u32,
        cib_latency: u64_field(v, "cib_latency")? as u32,
        cross_lane_forwarding: bool_field(v, "cross_lane_forwarding")?,
    })
}

impl SpecPoint {
    fn to_json_value(&self) -> JsonValue {
        let mut fields = vec![
            ("kernel", JsonValue::Str(self.kernel.clone())),
            ("gpp", JsonValue::Str(self.config.gpp.tag().to_string())),
            ("lpsu", self.config.lpsu.as_ref().map_or(JsonValue::Null, lpsu_to_json)),
            ("energy", JsonValue::Str(self.config.energy.tag().to_string())),
            ("mode", JsonValue::Str(mode_tag(self.mode).to_string())),
            ("gp_lowered", JsonValue::Bool(self.gp_lowered)),
        ];
        // Emitted only when set: pre-sampling manifests must keep their
        // canonical encoding (and thus fingerprint) byte-for-byte.
        if let Some(s) = self.sampling {
            fields.push(("sampling", JsonValue::Str(s.to_string())));
        }
        JsonValue::object(fields)
    }

    fn from_json_value(v: &JsonValue) -> Result<SpecPoint, ManifestError> {
        let gpp_tag = str_field(v, "gpp")?;
        let gpp = GppPreset::from_tag(&gpp_tag)
            .ok_or_else(|| schema(format!("unknown gpp preset `{gpp_tag}`")))?;
        let energy_tag = str_field(v, "energy")?;
        let energy = EnergyPreset::from_tag(&energy_tag)
            .ok_or_else(|| schema(format!("unknown energy preset `{energy_tag}`")))?;
        let mode_tag = str_field(v, "mode")?;
        let mode = mode_from_tag(&mode_tag)
            .ok_or_else(|| schema(format!("unknown exec mode `{mode_tag}`")))?;
        let lpsu = match field(v, "lpsu")? {
            JsonValue::Null => None,
            l => Some(lpsu_from_json(l)?),
        };
        // Absent in pre-sampling manifests: those points ran in full detail.
        let sampling = match v.get("sampling") {
            None | Some(JsonValue::Null) => None,
            Some(s) => Some(
                s.as_str()
                    .ok_or_else(|| schema("`sampling` must be a string"))?
                    .parse::<SampleSpec>()
                    .map_err(|e| schema(format!("bad `sampling`: {e}")))?,
            ),
        };
        Ok(SpecPoint {
            kernel: str_field(v, "kernel")?,
            config: ConfigSpec { gpp, lpsu, energy },
            mode,
            gp_lowered: bool_field(v, "gp_lowered")?,
            sampling,
        })
    }
}

impl Cell {
    fn to_json_value(&self) -> JsonValue {
        match self {
            Cell::Text(t) => JsonValue::object(vec![("text", JsonValue::Str(t.clone()))]),
            Cell::Speedup { base, run } => JsonValue::object(vec![(
                "speedup",
                JsonValue::object(vec![
                    ("base", JsonValue::UInt(*base as u64)),
                    ("run", JsonValue::UInt(*run as u64)),
                ]),
            )]),
            Cell::EnergyEff { base, run } => JsonValue::object(vec![(
                "energy_eff",
                JsonValue::object(vec![
                    ("base", JsonValue::UInt(*base as u64)),
                    ("run", JsonValue::UInt(*run as u64)),
                ]),
            )]),
            Cell::Ratio { num, den, path } => JsonValue::object(vec![(
                "ratio",
                JsonValue::object(vec![
                    ("num", JsonValue::UInt(*num as u64)),
                    ("den", JsonValue::UInt(*den as u64)),
                    ("path", JsonValue::Str(path.clone())),
                ]),
            )]),
            Cell::Insns { point } => JsonValue::object(vec![(
                "insns",
                JsonValue::object(vec![("point", JsonValue::UInt(*point as u64))]),
            )]),
            Cell::Counter { point, path } => JsonValue::object(vec![(
                "counter",
                JsonValue::object(vec![
                    ("point", JsonValue::UInt(*point as u64)),
                    ("path", JsonValue::Str(path.clone())),
                ]),
            )]),
            Cell::Pct { point, path, total } => JsonValue::object(vec![(
                "pct",
                JsonValue::object(vec![
                    ("point", JsonValue::UInt(*point as u64)),
                    ("path", JsonValue::Str(path.clone())),
                    ("total", JsonValue::Str(total.clone())),
                ]),
            )]),
            Cell::Choice { point, path, nonzero, zero } => JsonValue::object(vec![(
                "choice",
                JsonValue::object(vec![
                    ("point", JsonValue::UInt(*point as u64)),
                    ("path", JsonValue::Str(path.clone())),
                    ("nonzero", JsonValue::Str(nonzero.clone())),
                    ("zero", JsonValue::Str(zero.clone())),
                ]),
            )]),
        }
    }

    fn from_json_value(v: &JsonValue) -> Result<Cell, ManifestError> {
        let fields = v.as_object().ok_or_else(|| schema("cell must be an object"))?;
        let [(tag, inner)] = fields else {
            return Err(schema("cell must have exactly one tag key"));
        };
        match tag.as_str() {
            "text" => Ok(Cell::Text(
                inner.as_str().ok_or_else(|| schema("`text` must be a string"))?.to_string(),
            )),
            "speedup" => Ok(Cell::Speedup {
                base: usize_field(inner, "base")?,
                run: usize_field(inner, "run")?,
            }),
            "energy_eff" => Ok(Cell::EnergyEff {
                base: usize_field(inner, "base")?,
                run: usize_field(inner, "run")?,
            }),
            "ratio" => Ok(Cell::Ratio {
                num: usize_field(inner, "num")?,
                den: usize_field(inner, "den")?,
                path: str_field(inner, "path")?,
            }),
            "insns" => Ok(Cell::Insns { point: usize_field(inner, "point")? }),
            "counter" => Ok(Cell::Counter {
                point: usize_field(inner, "point")?,
                path: str_field(inner, "path")?,
            }),
            "pct" => Ok(Cell::Pct {
                point: usize_field(inner, "point")?,
                path: str_field(inner, "path")?,
                total: str_field(inner, "total")?,
            }),
            "choice" => Ok(Cell::Choice {
                point: usize_field(inner, "point")?,
                path: str_field(inner, "path")?,
                nonzero: str_field(inner, "nonzero")?,
                zero: str_field(inner, "zero")?,
            }),
            other => Err(schema(format!("unknown cell kind `{other}`"))),
        }
    }

    fn point_indices(&self) -> Vec<usize> {
        match self {
            Cell::Text(_) => vec![],
            Cell::Speedup { base, run } | Cell::EnergyEff { base, run } => vec![*base, *run],
            Cell::Ratio { num, den, .. } => vec![*num, *den],
            Cell::Insns { point }
            | Cell::Counter { point, .. }
            | Cell::Pct { point, .. }
            | Cell::Choice { point, .. } => vec![*point],
        }
    }
}

impl Section {
    fn to_json_value(&self) -> JsonValue {
        let body = match &self.body {
            SectionBody::Table { header, rows } => JsonValue::object(vec![(
                "table",
                JsonValue::object(vec![
                    (
                        "header",
                        JsonValue::Array(
                            header.iter().map(|h| JsonValue::Str(h.clone())).collect(),
                        ),
                    ),
                    (
                        "rows",
                        JsonValue::Array(
                            rows.iter()
                                .map(|row| {
                                    JsonValue::Array(row.iter().map(Cell::to_json_value).collect())
                                })
                                .collect(),
                        ),
                    ),
                ]),
            )]),
            SectionBody::Bars { rows } => JsonValue::object(vec![(
                "bars",
                JsonValue::object(vec![(
                    "rows",
                    JsonValue::Array(
                        rows.iter()
                            .map(|r| {
                                JsonValue::object(vec![
                                    ("label", JsonValue::Str(r.label.clone())),
                                    ("base", JsonValue::UInt(r.base as u64)),
                                    ("run", JsonValue::UInt(r.run as u64)),
                                ])
                            })
                            .collect(),
                    ),
                )]),
            )]),
        };
        JsonValue::object(vec![
            ("prefix", JsonValue::Str(self.prefix.clone())),
            ("body", body),
            ("suffix", JsonValue::Str(self.suffix.clone())),
        ])
    }

    fn from_json_value(v: &JsonValue) -> Result<Section, ManifestError> {
        let body_v = field(v, "body")?;
        let fields = body_v.as_object().ok_or_else(|| schema("`body` must be an object"))?;
        let [(tag, inner)] = fields else {
            return Err(schema("`body` must have exactly one tag key"));
        };
        let body = match tag.as_str() {
            "table" => {
                let header = array_field(inner, "header")?
                    .iter()
                    .map(|h| {
                        h.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| schema("header entries must be strings"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let rows = array_field(inner, "rows")?
                    .iter()
                    .map(|row| {
                        row.as_array()
                            .ok_or_else(|| schema("table rows must be arrays"))?
                            .iter()
                            .map(Cell::from_json_value)
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                for row in &rows {
                    if row.len() != header.len() {
                        return Err(schema("table row width must match header"));
                    }
                }
                SectionBody::Table { header, rows }
            }
            "bars" => {
                let rows = array_field(inner, "rows")?
                    .iter()
                    .map(|r| {
                        Ok(BarRow {
                            label: str_field(r, "label")?,
                            base: usize_field(r, "base")?,
                            run: usize_field(r, "run")?,
                        })
                    })
                    .collect::<Result<Vec<_>, ManifestError>>()?;
                SectionBody::Bars { rows }
            }
            other => return Err(schema(format!("unknown section body kind `{other}`"))),
        };
        Ok(Section { prefix: str_field(v, "prefix")?, body, suffix: str_field(v, "suffix")? })
    }
}

impl ExperimentSpec {
    /// The spec as a deterministic JSON document.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::Str(self.name.clone())),
            ("caption", JsonValue::Str(self.caption.clone())),
            (
                "points",
                JsonValue::Array(self.points.iter().map(SpecPoint::to_json_value).collect()),
            ),
            (
                "sections",
                JsonValue::Array(self.sections.iter().map(Section::to_json_value).collect()),
            ),
        ])
    }

    /// Compact JSON text of [`ExperimentSpec::to_json_value`].
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Human-editable JSON text (pretty-printed, same canonical order).
    pub fn to_json_pretty(&self) -> String {
        let mut s = self.to_json_value().render_pretty();
        s.push('\n');
        s
    }

    /// Parses and validates a spec document.
    pub fn from_json(text: &str) -> Result<ExperimentSpec, ManifestError> {
        ExperimentSpec::from_json_value(&JsonValue::parse(text)?)
    }

    /// Builds and validates a spec from a parsed JSON value.
    pub fn from_json_value(v: &JsonValue) -> Result<ExperimentSpec, ManifestError> {
        let points = array_field(v, "points")?
            .iter()
            .map(SpecPoint::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let sections = array_field(v, "sections")?
            .iter()
            .map(Section::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let spec = ExperimentSpec {
            name: str_field(v, "name")?,
            caption: str_field(v, "caption")?,
            points,
            sections,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Checks internal consistency: every kernel resolves and every cell
    /// references an in-range point.
    pub fn validate(&self) -> Result<(), ManifestError> {
        for p in &self.points {
            if by_name(&p.kernel).is_none() {
                return Err(ManifestError::UnknownKernel(p.kernel.clone()));
            }
        }
        let check = |i: usize| {
            if i >= self.points.len() {
                Err(ManifestError::PointIndex { index: i, points: self.points.len() })
            } else {
                Ok(())
            }
        };
        for s in &self.sections {
            match &s.body {
                SectionBody::Table { rows, .. } => {
                    for cell in rows.iter().flatten() {
                        for i in cell.point_indices() {
                            check(i)?;
                        }
                    }
                }
                SectionBody::Bars { rows } => {
                    for r in rows {
                        check(r.base)?;
                        check(r.run)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// FNV-1a 64 fingerprint of the canonical JSON encoding, used to pair
    /// shard documents with their manifest.
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json_value().render().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

// ---------------------------------------------------------------------------
// Execution and rendering
// ---------------------------------------------------------------------------

/// The outcome of one spec point: the full stat tree of the run (cycles
/// and energy live inside it), plus the quarantine diagnosis if the
/// harness had to placeholder the point.
#[derive(Clone, Debug, PartialEq)]
pub struct PointResult {
    /// The unified stat tree ([`xloops_sim::SystemStats::stat_set`]).
    pub stats: StatSet,
    /// `Some(diagnosis)` when the point was quarantined.
    pub error: Option<String>,
}

impl PointResult {
    pub(crate) fn from_run(run: &RunResult, is_ooo: bool) -> PointResult {
        PointResult { stats: run.stats.stat_set(is_ooo), error: run.error.clone() }
    }

    /// The result as `{"error": ..., "stats": ...}` — the body of a shard
    /// document's per-point entry and of a durable store entry.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("error", self.error.as_ref().map_or(JsonValue::Null, |e| JsonValue::Str(e.clone()))),
            ("stats", self.stats.to_json_value()),
        ])
    }

    /// Parses a [`PointResult::to_json_value`] document (extra fields,
    /// such as a shard entry's `point`, are ignored).
    pub fn from_json_value(v: &JsonValue) -> Result<PointResult, ManifestError> {
        let error = match field(v, "error")? {
            JsonValue::Null => None,
            e => Some(
                e.as_str().ok_or_else(|| schema("`error` must be null or a string"))?.to_string(),
            ),
        };
        let stats = StatSet::from_json_value(field(v, "stats")?).map_err(ManifestError::Json)?;
        Ok(PointResult { stats, error })
    }

    fn counter(&self, path: &str) -> u64 {
        self.stats.lookup(path).and_then(StatValue::as_counter).unwrap_or(0)
    }

    fn cycles(&self) -> u64 {
        self.counter("cycles")
    }

    fn energy_nj(&self) -> f64 {
        match self.stats.lookup("energy_nj") {
            Some(StatValue::Metric(v)) => v,
            _ => 0.0,
        }
    }
}

/// Results of running a spec: one [`PointResult`] per spec point, in
/// point order.
#[derive(Clone, Debug, PartialEq)]
pub struct SpecResult {
    /// Per-point results, parallel to [`ExperimentSpec::points`].
    pub results: Vec<PointResult>,
}

pub(crate) fn request_point(r: &Runner, p: &SpecPoint) -> RunResult {
    let kernel =
        by_name(&p.kernel).unwrap_or_else(|| panic!("spec references unknown kernel {}", p.kernel));
    let config = p.config.resolve();
    if p.gp_lowered {
        r.baseline(kernel, config)
    } else {
        r.run_sampled(kernel, config, p.mode, p.sampling)
    }
}

/// Requests every point of `spec` through the memoizing runner. Under the
/// two-pass protocol this is called once collecting (placeholder results)
/// and once live (cache-served); either way the point set requested is a
/// pure function of the spec.
pub fn run_spec(r: &Runner, spec: &ExperimentSpec) -> SpecResult {
    SpecResult {
        results: spec
            .points
            .iter()
            .map(|p| PointResult::from_run(&request_point(r, p), p.config.is_ooo()))
            .collect(),
    }
}

/// Dynamic instruction counts in the paper's notation (`3.1M` / `416K`).
fn format_insns(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else {
        format!("{}K", n / 1000)
    }
}

fn eval_cell(cell: &Cell, results: &[PointResult]) -> String {
    match cell {
        Cell::Text(t) => t.clone(),
        Cell::Speedup { base, run } => {
            f2(results[*base].cycles() as f64 / results[*run].cycles().max(1) as f64)
        }
        Cell::EnergyEff { base, run } => {
            f2(results[*base].energy_nj() / results[*run].energy_nj().max(1e-9))
        }
        Cell::Ratio { num, den, path } => {
            f2(results[*num].counter(path) as f64 / results[*den].counter(path).max(1) as f64)
        }
        Cell::Insns { point } => format_insns(results[*point].counter("instret")),
        Cell::Counter { point, path } => results[*point].counter(path).to_string(),
        Cell::Pct { point, path, total } => {
            let denom = results[*point].counter(total).max(1) as f64;
            format!("{:.1}", 100.0 * results[*point].counter(path) as f64 / denom)
        }
        Cell::Choice { point, path, nonzero, zero } => {
            if results[*point].counter(path) > 0 {
                nonzero.clone()
            } else {
                zero.clone()
            }
        }
    }
}

/// Renders a spec against its point results; with results from
/// [`run_spec`] on a live runner, the output is byte-identical to the
/// historical imperative reports.
pub fn render_spec(spec: &ExperimentSpec, results: &[PointResult]) -> String {
    let mut out = spec.caption.clone();
    for section in &spec.sections {
        out.push_str(&section.prefix);
        match &section.body {
            SectionBody::Table { header, rows } => {
                let cols: Vec<&str> = header.iter().map(String::as_str).collect();
                let mut t = TextTable::new(&cols);
                for row in rows {
                    t.row(row.iter().map(|c| eval_cell(c, results)).collect());
                }
                out.push_str(&t.render());
            }
            SectionBody::Bars { rows } => {
                for r in rows {
                    let sp =
                        results[r.base].cycles() as f64 / results[r.run].cycles().max(1) as f64;
                    let bar = "#".repeat((sp * 10.0).round().min(60.0) as usize);
                    out.push_str(&format!("{:14} {:5.2} {bar}\n", r.label, sp));
                }
            }
        }
        out.push_str(&section.suffix);
    }
    out
}

/// [`run_spec`] + [`render_spec`] in one call: the generic driver every
/// artifact binary uses inside the two-pass protocol.
pub fn render_with_runner(r: &Runner, spec: &ExperimentSpec) -> String {
    let result = run_spec(r, spec);
    render_spec(spec, &result.results)
}

// ---------------------------------------------------------------------------
// Sharding
// ---------------------------------------------------------------------------

/// The points of `spec` owned by shard `index` of `of`: point `i` belongs
/// to shard `i % of`. A pure function of the pair, so any machine
/// computes the same partition.
pub fn shard_points(spec: &ExperimentSpec, index: usize, of: usize) -> Vec<usize> {
    (0..spec.points.len()).filter(|i| i % of == index).collect()
}

/// One shard's worth of results, self-describing: the full spec rides
/// along (plus its fingerprint for cheap pairing) together with the
/// [`RunOptions`] that produced the numbers.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardDoc {
    /// [`ExperimentSpec::fingerprint`] of `spec`.
    pub fingerprint: String,
    /// This shard's index in `0..of`.
    pub index: usize,
    /// Total shard count.
    pub of: usize,
    /// The options the shard ran under.
    pub options: RunOptions,
    /// The manifest.
    pub spec: ExperimentSpec,
    /// `(point index, result)` for every owned point.
    pub results: Vec<(usize, PointResult)>,
}

impl ShardDoc {
    /// The shard as a deterministic JSON document.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("fingerprint", JsonValue::Str(self.fingerprint.clone())),
            (
                "shard",
                JsonValue::object(vec![
                    ("index", JsonValue::UInt(self.index as u64)),
                    ("of", JsonValue::UInt(self.of as u64)),
                ]),
            ),
            ("options", self.options.to_json_value()),
            ("spec", self.spec.to_json_value()),
            (
                "results",
                JsonValue::Array(
                    self.results
                        .iter()
                        .map(|(i, pr)| {
                            JsonValue::object(vec![
                                ("point", JsonValue::UInt(*i as u64)),
                                (
                                    "error",
                                    pr.error
                                        .as_ref()
                                        .map_or(JsonValue::Null, |e| JsonValue::Str(e.clone())),
                                ),
                                ("stats", pr.stats.to_json_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty JSON text of [`ShardDoc::to_json_value`] with a trailing
    /// newline (the `--out` file format).
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_value().render_pretty();
        s.push('\n');
        s
    }

    /// The shard as one binary document — the `.dxs` file format. Same
    /// data model as [`ShardDoc::to_json`], roughly a third the bytes.
    pub fn to_binary(&self) -> Vec<u8> {
        binary::encode(&self.to_json_value())
    }

    /// Decodes a [`ShardDoc::to_binary`] document.
    pub fn from_binary(bytes: &[u8]) -> Result<ShardDoc, ManifestError> {
        Self::from_json_value(&binary::decode(bytes)?)
    }

    /// Decodes a shard file of either format, sniffing the binary magic
    /// (`0xD8` cannot begin UTF-8 text, so the formats never alias).
    pub fn from_bytes(bytes: &[u8]) -> Result<ShardDoc, ManifestError> {
        if binary::is_binary(bytes) {
            Self::from_binary(bytes)
        } else {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| schema("shard file is neither a binary document nor UTF-8 JSON"))?;
            Self::from_json(text)
        }
    }

    /// Parses and validates one shard document from JSON text.
    pub fn from_json(text: &str) -> Result<ShardDoc, ManifestError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// [`ShardDoc::from_json`] on an already-parsed document.
    pub fn from_json_value(v: &JsonValue) -> Result<ShardDoc, ManifestError> {
        let shard = field(v, "shard")?;
        let index = usize_field(shard, "index")?;
        let of = usize_field(shard, "of")?;
        if of == 0 || index >= of {
            return Err(ManifestError::ShardIndex { index, of });
        }
        let options = RunOptions::from_json_value(field(v, "options")?)
            .ok_or_else(|| schema("`options` does not match the run-options schema"))?;
        let spec = ExperimentSpec::from_json_value(field(v, "spec")?)?;
        let results = array_field(v, "results")?
            .iter()
            .map(|entry| {
                let point = usize_field(entry, "point")?;
                if point >= spec.points.len() {
                    return Err(ManifestError::PointIndex {
                        index: point,
                        points: spec.points.len(),
                    });
                }
                Ok((point, PointResult::from_json_value(entry)?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardDoc {
            fingerprint: str_field(v, "fingerprint")?,
            index,
            of,
            options,
            spec,
            results,
        })
    }
}

/// Executes shard `index` of `of` of a spec under explicit options — the
/// storeless adapter over the scheduler ([`crate::sched`]), which runs
/// the same two-pass collect/prefill protocol the full-artifact binaries
/// use (so the shard's unique points still fan out over worker threads).
pub fn run_shard(spec: &ExperimentSpec, index: usize, of: usize, options: RunOptions) -> ShardDoc {
    crate::sched::run_shard_stored(spec, index, of, options, None)
}

/// The streaming heart of [`merge`]: shard documents are folded in one at
/// a time — each is consumed (and can be dropped before the next file is
/// even read), so merging N shards never holds more than one document in
/// memory on top of the accumulating per-point result slots.
///
/// Validation is incremental with the same precedence as the batch API:
/// fingerprint/spec agreement, then shard count, then duplicates at fold
/// time; coverage (missing shards, then missing points) at finish time.
#[derive(Debug, Default)]
pub struct MergeFold {
    /// `(fingerprint, of, spec)` of the first folded shard.
    first: Option<(String, usize, ExperimentSpec)>,
    seen: Vec<bool>,
    slots: Vec<Option<PointResult>>,
}

impl MergeFold {
    /// An empty fold; [`MergeFold::finish`] without any
    /// [`MergeFold::fold`] reports "no shard documents to merge".
    pub fn new() -> MergeFold {
        MergeFold::default()
    }

    /// Folds one shard document in, consuming it.
    pub fn fold(&mut self, doc: ShardDoc) -> Result<(), ManifestError> {
        match &self.first {
            None => {
                self.seen = vec![false; doc.of];
                self.slots = vec![None; doc.spec.points.len()];
                self.first = Some((doc.fingerprint.clone(), doc.of, doc.spec.clone()));
            }
            Some((fingerprint, of, spec)) => {
                if doc.fingerprint != *fingerprint || doc.spec != *spec {
                    return Err(ManifestError::FingerprintMismatch {
                        expected: fingerprint.clone(),
                        found: doc.fingerprint,
                    });
                }
                if doc.of != *of {
                    return Err(ManifestError::ShardCountMismatch { expected: *of, found: doc.of });
                }
            }
        }
        if doc.index >= self.seen.len() {
            return Err(ManifestError::ShardIndex { index: doc.index, of: self.seen.len() });
        }
        if self.seen[doc.index] {
            return Err(ManifestError::DuplicateShard(doc.index));
        }
        self.seen[doc.index] = true;
        for (i, pr) in doc.results {
            self.slots[i] = Some(pr);
        }
        Ok(())
    }

    /// Validates coverage and returns the shared spec plus the per-point
    /// results (spec order), ready for [`render_spec`].
    pub fn finish(self) -> Result<(ExperimentSpec, Vec<PointResult>), ManifestError> {
        let (_, of, spec) = self.first.ok_or_else(|| schema("no shard documents to merge"))?;
        let missing: Vec<usize> = (0..of).filter(|&i| !self.seen[i]).collect();
        if !missing.is_empty() {
            return Err(ManifestError::MissingShards(missing));
        }
        let mut results = Vec::with_capacity(self.slots.len());
        for (i, slot) in self.slots.into_iter().enumerate() {
            results.push(slot.ok_or(ManifestError::MissingPoint(i))?);
        }
        Ok((spec, results))
    }
}

/// Recombines shard documents into the full result vector, validating
/// that the shards belong to one manifest and cover it completely.
/// Returns the shared spec and the per-point results (spec order), ready
/// for [`render_spec`]. Batch convenience over [`MergeFold`]; callers
/// reading shards from disk should fold file-by-file instead.
pub fn merge(shards: &[ShardDoc]) -> Result<(ExperimentSpec, Vec<PointResult>), ManifestError> {
    let mut fold = MergeFold::new();
    for doc in shards {
        fold.fold(doc.clone())?;
    }
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ExperimentSpec {
        let mut b = SpecBuilder::new("tiny", "Tiny: a test artifact\n\n");
        let base = b.baseline("huffman-ua", GppPreset::Io, EnergyPreset::Mcpat45);
        let spec_pt = b.point(
            "huffman-ua",
            GppPreset::Io,
            Some(LpsuConfig::default4()),
            EnergyPreset::Mcpat45,
            ExecMode::Specialized,
        );
        b.section(
            "",
            SectionBody::Table {
                header: vec!["name".into(), "S".into()],
                rows: vec![vec![
                    Cell::Text("huffman-ua".into()),
                    Cell::Speedup { base, run: spec_pt },
                ]],
            },
            "",
        );
        b.build()
    }

    #[test]
    fn builder_dedups_points() {
        let mut b = SpecBuilder::new("d", "c\n\n");
        let a = b.point(
            "huffman-ua",
            GppPreset::Ooo2,
            Some(LpsuConfig::default4()),
            EnergyPreset::Mcpat45,
            ExecMode::Specialized,
        );
        let again = b.point(
            "huffman-ua",
            GppPreset::Ooo2,
            Some(LpsuConfig::default4()),
            EnergyPreset::Mcpat45,
            ExecMode::Specialized,
        );
        let other = b.baseline("huffman-ua", GppPreset::Ooo2, EnergyPreset::Mcpat45);
        assert_eq!(a, again);
        assert_ne!(a, other);
        assert_eq!(b.build().points.len(), 2);
    }

    #[test]
    fn spec_json_round_trips() {
        let spec = tiny_spec();
        let text = spec.to_json();
        let back = ExperimentSpec::from_json(&text).expect("parses");
        assert_eq!(back, spec);
        assert_eq!(back.to_json(), text);
        // The pretty form parses to the same spec.
        assert_eq!(ExperimentSpec::from_json(&spec.to_json_pretty()).unwrap(), spec);
        // And the fingerprint is stable.
        assert_eq!(spec.fingerprint(), back.fingerprint());
    }

    #[test]
    fn sampled_points_round_trip_and_leave_old_fingerprints_alone() {
        // A spec without sampling encodes exactly as before the field
        // existed: no `sampling` key anywhere, so fingerprints are stable.
        let plain = tiny_spec();
        assert!(!plain.to_json().contains("sampling"));

        // A sampled point round-trips through JSON with its spec intact.
        let mut b = SpecBuilder::new("sampled", "Sampled: a test artifact\n\n");
        let full = b.point(
            "huffman-ua",
            GppPreset::Io,
            Some(LpsuConfig::default4()),
            EnergyPreset::Mcpat45,
            ExecMode::Specialized,
        );
        let spec = SampleSpec::new(10_000, 2_000, 50_000).unwrap();
        let sampled = b.sampled_point(
            "huffman-ua",
            GppPreset::Io,
            Some(LpsuConfig::default4()),
            EnergyPreset::Mcpat45,
            ExecMode::Specialized,
            spec,
        );
        // Sampling is part of a point's identity: no dedup with the full run.
        assert_ne!(full, sampled);
        let built = b.build();
        let back = ExperimentSpec::from_json(&built.to_json()).expect("parses");
        assert_eq!(back, built);
        assert_eq!(back.points[sampled].sampling, Some(spec));

        // An explicit `"sampling": null` also reads as a full-detail point.
        let mut doc = built.to_json_value();
        let rendered = doc.render();
        assert!(rendered.contains("\"sampling\":\"10000:2000:50000\""), "{rendered}");
        drop(doc);
        doc = JsonValue::parse(&rendered.replace("\"10000:2000:50000\"", "null")).unwrap();
        let relaxed = ExperimentSpec::from_json_value(&doc).expect("null sampling parses");
        assert_eq!(relaxed.points[sampled].sampling, None);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = tiny_spec();
        spec.points[0].kernel = "no-such-kernel".into();
        assert_eq!(
            ExperimentSpec::from_json(&spec.to_json()),
            Err(ManifestError::UnknownKernel("no-such-kernel".into()))
        );
        let mut spec = tiny_spec();
        if let SectionBody::Table { rows, .. } = &mut spec.sections[0].body {
            rows[0][1] = Cell::Speedup { base: 0, run: 99 };
        }
        assert_eq!(
            ExperimentSpec::from_json(&spec.to_json()),
            Err(ManifestError::PointIndex { index: 99, points: 2 })
        );
    }

    #[test]
    fn config_specs_resolve_to_the_named_presets() {
        let cs = ConfigSpec {
            gpp: GppPreset::Ooo2,
            lpsu: Some(LpsuConfig::default4()),
            energy: EnergyPreset::Mcpat45,
        };
        assert_eq!(cs.resolve().key(), SystemConfig::ooo2_x().key());
        let io = ConfigSpec { gpp: GppPreset::Io, lpsu: None, energy: EnergyPreset::Mcpat45 };
        assert_eq!(io.resolve().key(), SystemConfig::io().key());
        assert!(!io.is_ooo() && cs.is_ooo());
        let vlsi = ConfigSpec { gpp: GppPreset::Io, lpsu: None, energy: EnergyPreset::Vlsi40 };
        assert_eq!(
            vlsi.resolve().key(),
            SystemConfig::io().with_energy(EnergyTable::vlsi40()).key()
        );
    }

    #[test]
    fn shard_partition_is_exact_and_disjoint() {
        let spec = tiny_spec();
        for of in 1..=4 {
            let mut covered = vec![0u32; spec.points.len()];
            for k in 0..of {
                for i in shard_points(&spec, k, of) {
                    covered[i] += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "of={of}: {covered:?}");
        }
    }

    #[test]
    fn sharded_run_merges_to_the_unsharded_render() {
        let spec = tiny_spec();
        let unsharded = {
            let runner = Runner::collecting_with(RunOptions::default());
            let _ = run_spec(&runner, &spec);
            runner.prefill();
            render_with_runner(&runner, &spec)
        };
        let s0 = run_shard(&spec, 0, 2, RunOptions::default());
        let s1 = run_shard(&spec, 1, 2, RunOptions::default());
        // Round-trip the shard docs through their file encoding.
        let s0 = ShardDoc::from_json(&s0.to_json()).expect("shard 0 parses");
        let s1 = ShardDoc::from_json(&s1.to_json()).expect("shard 1 parses");
        let (merged_spec, results) = merge(&[s1, s0]).expect("merge succeeds in any order");
        assert_eq!(render_spec(&merged_spec, &results), unsharded);
    }

    #[test]
    fn merge_rejects_mismatched_and_incomplete_shards() {
        let spec = tiny_spec();
        let s0 = run_shard(&spec, 0, 2, RunOptions::default());
        let s1 = run_shard(&spec, 1, 2, RunOptions::default());

        assert_eq!(merge(&[]), Err(schema("no shard documents to merge")));
        assert_eq!(
            merge(std::slice::from_ref(&s0)),
            Err(ManifestError::MissingShards(vec![1])),
            "half a manifest is not a result"
        );
        assert_eq!(merge(&[s0.clone(), s0.clone()]), Err(ManifestError::DuplicateShard(0)));

        // A shard of a *different* manifest must be rejected.
        let mut other = spec.clone();
        other.caption = "Tiny: a different caption\n\n".into();
        let foreign = run_shard(&other, 1, 2, RunOptions::default());
        assert!(matches!(
            merge(&[s0.clone(), foreign]),
            Err(ManifestError::FingerprintMismatch { .. })
        ));

        // Disagreeing shard counts are a distinct, typed failure.
        let lone = run_shard(&spec, 0, 1, RunOptions::default());
        assert_eq!(
            merge(&[s0, lone]),
            Err(ManifestError::ShardCountMismatch { expected: 2, found: 1 })
        );

        let _ = s1;
    }
}
