//! One function per paper artifact. Each takes the memoizing
//! [`Runner`] and returns the rendered text table; the `src/bin/*` entry
//! points drive the two-pass collect/execute/render protocol (see
//! [`crate::runner`]) and write `results/<name>.txt`.

use xloops_energy::{
    gpp_area_mm2, lpsu_area_mm2, lpsu_cycle_time_ns, scalar_cycle_time_ns, EnergyTable,
};
use xloops_kernels::{by_name, table2, table4};
use xloops_lpsu::LpsuConfig;
use xloops_sim::{ExecMode, SystemConfig};
use xloops_stats::StatValue;

use crate::{energy_efficiency, f2, speedup, Runner, TextTable};

fn gpp_triples() -> [(SystemConfig, SystemConfig); 3] {
    [
        (SystemConfig::io(), SystemConfig::io_x()),
        (SystemConfig::ooo2(), SystemConfig::ooo2_x()),
        (SystemConfig::ooo4(), SystemConfig::ooo4_x()),
    ]
}

/// Table II: dynamic instruction counts, X/G ratio, and T/S/A speedups on
/// all three GPP classes.
pub fn table2_report(r: &Runner) -> String {
    let mut t = TextTable::new(&[
        "name", "suite", "type", "GPI", "X/G", "io:T", "io:S", "io:A", "ooo2:T", "ooo2:S",
        "ooo2:A", "ooo4:T", "ooo4:S", "ooo4:A",
    ]);
    let triples = gpp_triples();
    for k in table2() {
        let gp_io = r.baseline(k, SystemConfig::io());
        let x_io_t = r.run(k, SystemConfig::io(), ExecMode::Traditional);
        let xg = x_io_t.stats.instret as f64 / gp_io.stats.instret.max(1) as f64;
        let mut cells = vec![
            k.name.to_string(),
            k.suite.tag().to_string(),
            k.patterns.to_string(),
            format_insns(gp_io.stats.instret),
            f2(xg),
        ];
        for (base_cfg, x_cfg) in &triples {
            let base = r.baseline(k, *base_cfg);
            let t_run = r.run(k, *base_cfg, ExecMode::Traditional);
            let s_run = r.run(k, *x_cfg, ExecMode::Specialized);
            let a_run = r.run(k, *x_cfg, ExecMode::Adaptive);
            cells.push(f2(speedup(&base, &t_run)));
            cells.push(f2(speedup(&base, &s_run)));
            cells.push(f2(speedup(&base, &a_run)));
        }
        t.row(cells);
    }
    format!(
        "Table II: XLOOPS application kernels and cycle-level results\n\
         (speedups normalized to the GP-ISA binary on the matching baseline GPP)\n\n{}",
        t.render()
    )
}

fn format_insns(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.1}M", n as f64 / 1e6)
    } else {
        format!("{}K", n / 1000)
    }
}

/// Figure 5: specialized-execution speedup against the out-of-order
/// baselines (bar-chart data with ASCII bars).
pub fn fig5_report(r: &Runner) -> String {
    let mut out = String::from(
        "Figure 5: specialized execution vs out-of-order baselines\n\
         (each bar: kernel speedup of S on ooo/N+x over GP-ISA on ooo/N)\n\n",
    );
    let triples = gpp_triples();
    for (base_cfg, x_cfg) in [&triples[1], &triples[2]] {
        out.push_str(&format!("--- vs {} ---\n", base_cfg.name()));
        for k in table2() {
            let base = r.baseline(k, *base_cfg);
            let s_run = r.run(k, *x_cfg, ExecMode::Specialized);
            let sp = speedup(&base, &s_run);
            let bar = "#".repeat((sp * 10.0).round().min(60.0) as usize);
            out.push_str(&format!("{:14} {:5.2} {bar}\n", k.name, sp));
        }
        out.push('\n');
    }
    out
}

/// Figure 6: breakdown of lane-cycles during specialized execution.
pub fn fig6_report(r: &Runner) -> String {
    let mut t = TextTable::new(&[
        "name", "exec%", "raw%", "mem%", "llfu%", "cir%", "lsq%", "squash%", "idle%", "squashes",
    ]);
    for k in table2() {
        let run = r.run(k, SystemConfig::ooo2_x(), ExecMode::Specialized);
        // Consume the unified schema rather than the raw struct: the same
        // dotted paths the CLI's `--stats json` output exposes.
        let l = run.stats.lpsu.stat_set();
        let counter = |path: &str| l.lookup(path).and_then(StatValue::as_counter).unwrap_or(0);
        let total = counter("lane_cycles").max(1) as f64;
        let pct = |path: &str| format!("{:.1}", 100.0 * counter(path) as f64 / total);
        t.row(vec![
            k.name.to_string(),
            pct("exec"),
            pct("stalls.raw"),
            pct("stalls.mem_port"),
            pct("stalls.llfu"),
            pct("stalls.cir"),
            pct("stalls.lsq"),
            pct("squash"),
            pct("idle"),
            counter("squashed_iters").to_string(),
        ]);
    }
    format!(
        "Figure 6: cycle breakdown of specialized execution on ooo/2+x\n\
         (fraction of LPSU lane-cycles per category)\n\n{}",
        t.render()
    )
}

/// Figure 7: specialized vs adaptive execution on ooo/4+x.
pub fn fig7_report(r: &Runner) -> String {
    let mut t = TextTable::new(&["name", "S", "A", "chose"]);
    for k in table2() {
        let base = r.baseline(k, SystemConfig::ooo4());
        let s_run = r.run(k, SystemConfig::ooo4_x(), ExecMode::Specialized);
        let a_run = r.run(k, SystemConfig::ooo4_x(), ExecMode::Adaptive);
        let chose = if a_run.stats.adaptive_to_gpp > 0 { "gpp" } else { "lpsu" };
        t.row(vec![
            k.name.to_string(),
            f2(speedup(&base, &s_run)),
            f2(speedup(&base, &a_run)),
            chose.to_string(),
        ]);
    }
    format!(
        "Figure 7: specialized vs adaptive execution on ooo/4+x\n\
         (speedup over GP-ISA on ooo/4; adaptive profiles 256 iters / 2000 cycles)\n\n{}",
        t.render()
    )
}

/// Figure 8: dynamic energy efficiency vs performance for specialized and
/// adaptive execution on all three GPP+LPSU systems.
pub fn fig8_report(r: &Runner) -> String {
    let mut out = String::from(
        "Figure 8: energy efficiency vs performance\n\
         (normalized to the GP-ISA binary on the matching baseline GPP;\n\
          eff > 1 uses less energy, perf > 1 is faster; power = eff/perf < 1 means less power)\n\n",
    );
    for (base_cfg, x_cfg) in gpp_triples() {
        let mut t = TextTable::new(&["name", "S perf", "S eff", "A perf", "A eff"]);
        for k in table2() {
            let base = r.baseline(k, base_cfg);
            let s_run = r.run(k, x_cfg, ExecMode::Specialized);
            let a_run = r.run(k, x_cfg, ExecMode::Adaptive);
            t.row(vec![
                k.name.to_string(),
                f2(speedup(&base, &s_run)),
                f2(energy_efficiency(&base, &s_run)),
                f2(speedup(&base, &a_run)),
                f2(energy_efficiency(&base, &a_run)),
            ]);
        }
        out.push_str(&format!("--- {} ---\n{}\n", x_cfg.name(), t.render()));
    }
    out
}

/// Figure 9: microarchitectural design-space exploration on ooo/4.
pub fn fig9_report(r: &Runner) -> String {
    let select = ["sgemm-uc", "viterbi-uc", "kmeans-or", "covar-or", "btree-ua"];
    let variants: [(&str, LpsuConfig); 5] = [
        ("x4", LpsuConfig::default4()),
        ("x4+t", LpsuConfig::default4().with_multithreading()),
        ("x8", LpsuConfig::default4().with_lanes(8)),
        ("x8+r", LpsuConfig::default4().with_lanes(8).with_double_resources()),
        ("x8+r+m", LpsuConfig::default4().with_lanes(8).with_double_resources().with_big_lsq()),
    ];
    let mut header = vec!["name"];
    header.extend(variants.iter().map(|(n, _)| *n));
    let mut t = TextTable::new(&header);
    for name in select {
        let k = by_name(name).expect("selected kernel exists");
        let base = r.baseline(k, SystemConfig::ooo4());
        let mut cells = vec![name.to_string()];
        for (_, lpsu) in variants {
            let cfg = SystemConfig::ooo4_x().with_lpsu(lpsu);
            let run = r.run(k, cfg, ExecMode::Specialized);
            cells.push(f2(speedup(&base, &run)));
        }
        t.row(cells);
    }
    format!(
        "Figure 9: LPSU design-space exploration on ooo/4\n\
         (specialized-execution speedup over GP-ISA on ooo/4;\n\
          +t = 2-way lane multithreading, x8 = 8 lanes, +r = 2x LLFU/mem ports, +m = 16+16 LSQ)\n\n{}",
        t.render()
    )
}

/// Table IV: hand-optimized `or` schedules and loop-transformed variants.
pub fn table4_report(r: &Runner) -> String {
    let mut t = TextTable::new(&["name", "type", "io+x", "ooo2+x", "ooo4+x"]);
    let triples = gpp_triples();
    for k in table4() {
        let mut cells = vec![k.name.to_string(), k.patterns.to_string()];
        for (base_cfg, x_cfg) in &triples {
            let base = r.baseline(k, *base_cfg);
            let run = r.run(k, *x_cfg, ExecMode::Specialized);
            cells.push(f2(speedup(&base, &run)));
        }
        t.row(cells);
    }
    format!(
        "Table IV: case study results\n\
         (specialized-execution speedup over the variant's GP-ISA binary\n\
          on the matching baseline GPP)\n\n{}",
        t.render()
    )
}

/// Table V: the analytical VLSI area / cycle-time model (no simulations).
pub fn table5_report(_r: &Runner) -> String {
    let mut t = TextTable::new(&["config", "CT (ns)", "area (mm2)", "overhead"]);
    t.row(vec!["scalar".into(), f2(scalar_cycle_time_ns()), f2(gpp_area_mm2()), "--".into()]);
    let sweep: [(u32, u32); 7] =
        [(96, 4), (128, 4), (160, 4), (192, 4), (128, 2), (128, 6), (128, 8)];
    for (ibuf, lanes) in sweep {
        let area = gpp_area_mm2() + lpsu_area_mm2(ibuf, lanes);
        let overhead = lpsu_area_mm2(ibuf, lanes) / gpp_area_mm2();
        t.row(vec![
            format!("lpsu+i{ibuf:03}+ln{lanes}"),
            f2(lpsu_cycle_time_ns(ibuf, lanes)),
            f2(area),
            format!("{:.0}%", overhead * 100.0),
        ]);
    }
    format!(
        "Table V: VLSI area and cycle-time results for the LPSU\n\
         (analytical model calibrated to the published post-P&R numbers;\n\
          see crates/energy/src/area.rs for the decomposition)\n\n{}",
        t.render()
    )
}

/// Figure 10: the VLSI-flavoured energy study on the `xloop.uc` kernels.
pub fn fig10_report(r: &Runner) -> String {
    let uc = ["rgb2cmyk-uc", "sgemm-uc", "ssearch-uc", "symm-uc", "viterbi-uc", "war-uc"];
    let vlsi = EnergyTable::vlsi40();
    let base_cfg = SystemConfig::io().with_energy(vlsi);
    let x_cfg = SystemConfig::io_x().with_energy(vlsi);
    let mut t = TextTable::new(&["name", "speedup", "energy eff"]);
    for name in uc {
        let k = by_name(name).expect("uc kernel exists");
        let base = r.baseline(k, base_cfg);
        let run = r.run(k, x_cfg, ExecMode::Specialized);
        t.row(vec![name.to_string(), f2(speedup(&base, &run)), f2(energy_efficiency(&base, &run))]);
    }
    format!(
        "Figure 10: VLSI energy efficiency vs performance (40nm-class table)\n\
         (xloop.uc kernels, specialized on io+x vs GP-ISA on the scalar GPP;\n\
          instruction-buffer access = I-cache access / 10, as measured by the\n\
          paper's ASIC flow)\n\n{}",
        t.render()
    )
}

/// Ablation study of design choices called out in `DESIGN.md`: the
/// cross-lane store-load forwarding extension (the paper's "more
/// aggressive implementations" note) on the speculation-bound kernels,
/// and the CIB transfer latency on the CIR-bound kernels.
pub fn ablation_report(r: &Runner) -> String {
    let mut out = String::from(
        "Ablation: LPSU design choices (specialized execution on ooo/2+x,\n\
         speedup over GP-ISA on ooo/2)\n\n",
    );

    // Cross-lane forwarding on memory-speculation kernels.
    let mut t = TextTable::new(&["name", "base", "+xlf", "squashes base", "squashes +xlf"]);
    for name in ["dynprog-om", "ksack-sm-om", "stencil-orm", "hsort-ua", "war-om"] {
        let k = by_name(name).expect("kernel exists");
        let base_run = r.baseline(k, SystemConfig::ooo2());
        let plain = r.run(k, SystemConfig::ooo2_x(), ExecMode::Specialized);
        let xlf_cfg =
            SystemConfig::ooo2_x().with_lpsu(LpsuConfig::default4().with_cross_lane_forwarding());
        let xlf = r.run(k, xlf_cfg, ExecMode::Specialized);
        t.row(vec![
            name.to_string(),
            f2(speedup(&base_run, &plain)),
            f2(speedup(&base_run, &xlf)),
            plain.stats.lpsu.squashed_iters.to_string(),
            xlf.stats.lpsu.squashed_iters.to_string(),
        ]);
    }
    out.push_str("--- cross-lane store-load forwarding ---\n");
    out.push_str(&t.render());

    // CIB latency sweep on CIR-bound kernels.
    let mut t = TextTable::new(&["name", "cib=1", "cib=2", "cib=4"]);
    for name in ["adpcm-or", "dither-or", "sha-or", "kmeans-or"] {
        let k = by_name(name).expect("kernel exists");
        let base_run = r.baseline(k, SystemConfig::ooo2());
        let mut cells = vec![name.to_string()];
        for lat in [1, 2, 4] {
            let cfg =
                SystemConfig::ooo2_x().with_lpsu(LpsuConfig::default4().with_cib_latency(lat));
            let run = r.run(k, cfg, ExecMode::Specialized);
            cells.push(f2(speedup(&base_run, &run)));
        }
        t.row(cells);
    }
    out.push_str("\n--- CIB transfer latency ---\n");
    out.push_str(&t.render());
    out
}

/// A report generator: renders one artifact from (cached) run results.
pub type ReportFn = fn(&Runner) -> String;

/// `(artifact name, report function)` for every experiment, in emission
/// order. The `all` binary iterates this twice: once collecting jobs, once
/// rendering (with per-artifact timing) from the warm cache.
pub fn report_fns() -> Vec<(&'static str, ReportFn)> {
    vec![
        ("table2", table2_report),
        ("fig5", fig5_report),
        ("fig6", fig6_report),
        ("fig7", fig7_report),
        ("fig8", fig8_report),
        ("fig9", fig9_report),
        ("table4", table4_report),
        ("table5", table5_report),
        ("fig10", fig10_report),
        ("ablation", ablation_report),
    ]
}

/// Convenience bundle: `(artifact name, rendered report)` for every
/// experiment, sharing one run cache.
pub fn all_reports(r: &Runner) -> Vec<(&'static str, String)> {
    report_fns().into_iter().map(|(name, f)| (name, f(r))).collect()
}
