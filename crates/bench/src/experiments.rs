//! One declarative [`ExperimentSpec`] per paper artifact.
//!
//! Each `*_spec()` constructor builds the artifact as pure data — points
//! plus rendering description (see [`crate::manifest`]) — and the
//! `*_report()` wrappers feed it to the generic
//! [`render_with_runner`] driver, so every figure and table
//! goes through one code path whether it runs locally, from a manifest
//! file, or sharded across machines. The rendered text is byte-identical
//! to the historical imperative reports.

use xloops_energy::{gpp_area_mm2, lpsu_area_mm2, lpsu_cycle_time_ns, scalar_cycle_time_ns};
use xloops_kernels::{table2, table4};
use xloops_lpsu::LpsuConfig;
use xloops_sim::ExecMode;

use crate::manifest::{
    render_with_runner, BarRow, Cell, EnergyPreset, ExperimentSpec, GppPreset, SectionBody,
    SpecBuilder,
};
use crate::{f2, Runner};

/// The three GPP classes every cross-baseline artifact sweeps.
const GPPS: [GppPreset; 3] = [GppPreset::Io, GppPreset::Ooo2, GppPreset::Ooo4];

fn gpp_name(gpp: GppPreset) -> &'static str {
    match gpp {
        GppPreset::Io => "io",
        GppPreset::Ooo2 => "ooo/2",
        GppPreset::Ooo4 => "ooo/4",
    }
}

fn x_name(gpp: GppPreset) -> &'static str {
    match gpp {
        GppPreset::Io => "io+x",
        GppPreset::Ooo2 => "ooo/2+x",
        GppPreset::Ooo4 => "ooo/4+x",
    }
}

fn primary() -> Option<LpsuConfig> {
    Some(LpsuConfig::default4())
}

/// Table II: dynamic instruction counts, X/G ratio, and T/S/A speedups on
/// all three GPP classes.
pub fn table2_spec() -> ExperimentSpec {
    let mut b = SpecBuilder::new(
        "table2",
        "Table II: XLOOPS application kernels and cycle-level results\n\
         (speedups normalized to the GP-ISA binary on the matching baseline GPP)\n\n",
    );
    let header: Vec<String> = [
        "name", "suite", "type", "GPI", "X/G", "io:T", "io:S", "io:A", "ooo2:T", "ooo2:S",
        "ooo2:A", "ooo4:T", "ooo4:S", "ooo4:A",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for k in table2() {
        let gp_io = b.baseline(k.name, GppPreset::Io, EnergyPreset::Mcpat45);
        let x_io_t =
            b.point(k.name, GppPreset::Io, None, EnergyPreset::Mcpat45, ExecMode::Traditional);
        let mut cells = vec![
            Cell::Text(k.name.to_string()),
            Cell::Text(k.suite.tag().to_string()),
            Cell::Text(k.patterns.to_string()),
            Cell::Insns { point: gp_io },
            Cell::Ratio { num: x_io_t, den: gp_io, path: "instret".into() },
        ];
        for gpp in GPPS {
            let base = b.baseline(k.name, gpp, EnergyPreset::Mcpat45);
            let t_run = b.point(k.name, gpp, None, EnergyPreset::Mcpat45, ExecMode::Traditional);
            let s_run =
                b.point(k.name, gpp, primary(), EnergyPreset::Mcpat45, ExecMode::Specialized);
            let a_run = b.point(k.name, gpp, primary(), EnergyPreset::Mcpat45, ExecMode::Adaptive);
            cells.push(Cell::Speedup { base, run: t_run });
            cells.push(Cell::Speedup { base, run: s_run });
            cells.push(Cell::Speedup { base, run: a_run });
        }
        rows.push(cells);
    }
    b.section("", SectionBody::Table { header, rows }, "");
    b.build()
}

/// Figure 5: specialized-execution speedup against the out-of-order
/// baselines (bar-chart data with ASCII bars).
pub fn fig5_spec() -> ExperimentSpec {
    let mut b = SpecBuilder::new(
        "fig5",
        "Figure 5: specialized execution vs out-of-order baselines\n\
         (each bar: kernel speedup of S on ooo/N+x over GP-ISA on ooo/N)\n\n",
    );
    for gpp in [GppPreset::Ooo2, GppPreset::Ooo4] {
        let mut rows = Vec::new();
        for k in table2() {
            let base = b.baseline(k.name, gpp, EnergyPreset::Mcpat45);
            let run = b.point(k.name, gpp, primary(), EnergyPreset::Mcpat45, ExecMode::Specialized);
            rows.push(BarRow { label: k.name.to_string(), base, run });
        }
        b.section(&format!("--- vs {} ---\n", gpp_name(gpp)), SectionBody::Bars { rows }, "\n");
    }
    b.build()
}

/// Figure 6: breakdown of lane-cycles during specialized execution. The
/// cell formulas consume the same dotted stat paths the CLI's
/// `--stats json` output exposes (under the `lpsu` subtree).
pub fn fig6_spec() -> ExperimentSpec {
    let mut b = SpecBuilder::new(
        "fig6",
        "Figure 6: cycle breakdown of specialized execution on ooo/2+x\n\
         (fraction of LPSU lane-cycles per category)\n\n",
    );
    let header: Vec<String> =
        ["name", "exec%", "raw%", "mem%", "llfu%", "cir%", "lsq%", "squash%", "idle%", "squashes"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    let fractions = [
        "lpsu.exec",
        "lpsu.stalls.raw",
        "lpsu.stalls.mem_port",
        "lpsu.stalls.llfu",
        "lpsu.stalls.cir",
        "lpsu.stalls.lsq",
        "lpsu.squash",
        "lpsu.idle",
    ];
    let mut rows = Vec::new();
    for k in table2() {
        let run = b.point(
            k.name,
            GppPreset::Ooo2,
            primary(),
            EnergyPreset::Mcpat45,
            ExecMode::Specialized,
        );
        let mut cells = vec![Cell::Text(k.name.to_string())];
        for path in fractions {
            cells.push(Cell::Pct {
                point: run,
                path: path.into(),
                total: "lpsu.lane_cycles".into(),
            });
        }
        cells.push(Cell::Counter { point: run, path: "lpsu.squashed_iters".into() });
        rows.push(cells);
    }
    b.section("", SectionBody::Table { header, rows }, "");
    b.build()
}

/// Figure 7: specialized vs adaptive execution on ooo/4+x.
pub fn fig7_spec() -> ExperimentSpec {
    let mut b = SpecBuilder::new(
        "fig7",
        "Figure 7: specialized vs adaptive execution on ooo/4+x\n\
         (speedup over GP-ISA on ooo/4; adaptive profiles 256 iters / 2000 cycles)\n\n",
    );
    let header: Vec<String> = ["name", "S", "A", "chose"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    for k in table2() {
        let base = b.baseline(k.name, GppPreset::Ooo4, EnergyPreset::Mcpat45);
        let s_run = b.point(
            k.name,
            GppPreset::Ooo4,
            primary(),
            EnergyPreset::Mcpat45,
            ExecMode::Specialized,
        );
        let a_run =
            b.point(k.name, GppPreset::Ooo4, primary(), EnergyPreset::Mcpat45, ExecMode::Adaptive);
        rows.push(vec![
            Cell::Text(k.name.to_string()),
            Cell::Speedup { base, run: s_run },
            Cell::Speedup { base, run: a_run },
            Cell::Choice {
                point: a_run,
                path: "adaptive_to_gpp".into(),
                nonzero: "gpp".into(),
                zero: "lpsu".into(),
            },
        ]);
    }
    b.section("", SectionBody::Table { header, rows }, "");
    b.build()
}

/// Figure 8: dynamic energy efficiency vs performance for specialized and
/// adaptive execution on all three GPP+LPSU systems.
pub fn fig8_spec() -> ExperimentSpec {
    let mut b = SpecBuilder::new(
        "fig8",
        "Figure 8: energy efficiency vs performance\n\
         (normalized to the GP-ISA binary on the matching baseline GPP;\n\
          eff > 1 uses less energy, perf > 1 is faster; power = eff/perf < 1 means less power)\n\n",
    );
    let header: Vec<String> =
        ["name", "S perf", "S eff", "A perf", "A eff"].iter().map(|s| s.to_string()).collect();
    for gpp in GPPS {
        let mut rows = Vec::new();
        for k in table2() {
            let base = b.baseline(k.name, gpp, EnergyPreset::Mcpat45);
            let s_run =
                b.point(k.name, gpp, primary(), EnergyPreset::Mcpat45, ExecMode::Specialized);
            let a_run = b.point(k.name, gpp, primary(), EnergyPreset::Mcpat45, ExecMode::Adaptive);
            rows.push(vec![
                Cell::Text(k.name.to_string()),
                Cell::Speedup { base, run: s_run },
                Cell::EnergyEff { base, run: s_run },
                Cell::Speedup { base, run: a_run },
                Cell::EnergyEff { base, run: a_run },
            ]);
        }
        b.section(
            &format!("--- {} ---\n", x_name(gpp)),
            SectionBody::Table { header: header.clone(), rows },
            "\n",
        );
    }
    b.build()
}

/// Figure 9: microarchitectural design-space exploration on ooo/4.
pub fn fig9_spec() -> ExperimentSpec {
    let select = ["sgemm-uc", "viterbi-uc", "kmeans-or", "covar-or", "btree-ua"];
    let variants: [(&str, LpsuConfig); 5] = [
        ("x4", LpsuConfig::default4()),
        ("x4+t", LpsuConfig::default4().with_multithreading()),
        ("x8", LpsuConfig::default4().with_lanes(8)),
        ("x8+r", LpsuConfig::default4().with_lanes(8).with_double_resources()),
        ("x8+r+m", LpsuConfig::default4().with_lanes(8).with_double_resources().with_big_lsq()),
    ];
    let mut b = SpecBuilder::new(
        "fig9",
        "Figure 9: LPSU design-space exploration on ooo/4\n\
         (specialized-execution speedup over GP-ISA on ooo/4;\n\
          +t = 2-way lane multithreading, x8 = 8 lanes, +r = 2x LLFU/mem ports, +m = 16+16 LSQ)\n\n",
    );
    let mut header = vec!["name".to_string()];
    header.extend(variants.iter().map(|(n, _)| n.to_string()));
    let mut rows = Vec::new();
    for name in select {
        let base = b.baseline(name, GppPreset::Ooo4, EnergyPreset::Mcpat45);
        let mut cells = vec![Cell::Text(name.to_string())];
        for (_, lpsu) in variants {
            let run = b.point(
                name,
                GppPreset::Ooo4,
                Some(lpsu),
                EnergyPreset::Mcpat45,
                ExecMode::Specialized,
            );
            cells.push(Cell::Speedup { base, run });
        }
        rows.push(cells);
    }
    b.section("", SectionBody::Table { header, rows }, "");
    b.build()
}

/// Table IV: hand-optimized `or` schedules and loop-transformed variants.
pub fn table4_spec() -> ExperimentSpec {
    let mut b = SpecBuilder::new(
        "table4",
        "Table IV: case study results\n\
         (specialized-execution speedup over the variant's GP-ISA binary\n\
          on the matching baseline GPP)\n\n",
    );
    let header: Vec<String> =
        ["name", "type", "io+x", "ooo2+x", "ooo4+x"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    for k in table4() {
        let mut cells = vec![Cell::Text(k.name.to_string()), Cell::Text(k.patterns.to_string())];
        for gpp in GPPS {
            let base = b.baseline(k.name, gpp, EnergyPreset::Mcpat45);
            let run = b.point(k.name, gpp, primary(), EnergyPreset::Mcpat45, ExecMode::Specialized);
            cells.push(Cell::Speedup { base, run });
        }
        rows.push(cells);
    }
    b.section("", SectionBody::Table { header, rows }, "");
    b.build()
}

/// Table V: the analytical VLSI area / cycle-time model. No simulation
/// points — every cell is computed from the (deterministic) analytical
/// model when the spec is built.
pub fn table5_spec() -> ExperimentSpec {
    let mut b = SpecBuilder::new(
        "table5",
        "Table V: VLSI area and cycle-time results for the LPSU\n\
         (analytical model calibrated to the published post-P&R numbers;\n\
          see crates/energy/src/area.rs for the decomposition)\n\n",
    );
    let header: Vec<String> =
        ["config", "CT (ns)", "area (mm2)", "overhead"].iter().map(|s| s.to_string()).collect();
    let mut rows = vec![vec![
        Cell::Text("scalar".into()),
        Cell::Text(f2(scalar_cycle_time_ns())),
        Cell::Text(f2(gpp_area_mm2())),
        Cell::Text("--".into()),
    ]];
    let sweep: [(u32, u32); 7] =
        [(96, 4), (128, 4), (160, 4), (192, 4), (128, 2), (128, 6), (128, 8)];
    for (ibuf, lanes) in sweep {
        let area = gpp_area_mm2() + lpsu_area_mm2(ibuf, lanes);
        let overhead = lpsu_area_mm2(ibuf, lanes) / gpp_area_mm2();
        rows.push(vec![
            Cell::Text(format!("lpsu+i{ibuf:03}+ln{lanes}")),
            Cell::Text(f2(lpsu_cycle_time_ns(ibuf, lanes))),
            Cell::Text(f2(area)),
            Cell::Text(format!("{:.0}%", overhead * 100.0)),
        ]);
    }
    b.section("", SectionBody::Table { header, rows }, "");
    b.build()
}

/// Figure 10: the VLSI-flavoured energy study on the `xloop.uc` kernels.
pub fn fig10_spec() -> ExperimentSpec {
    let uc = ["rgb2cmyk-uc", "sgemm-uc", "ssearch-uc", "symm-uc", "viterbi-uc", "war-uc"];
    let mut b = SpecBuilder::new(
        "fig10",
        "Figure 10: VLSI energy efficiency vs performance (40nm-class table)\n\
         (xloop.uc kernels, specialized on io+x vs GP-ISA on the scalar GPP;\n\
          instruction-buffer access = I-cache access / 10, as measured by the\n\
          paper's ASIC flow)\n\n",
    );
    let header: Vec<String> =
        ["name", "speedup", "energy eff"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    for name in uc {
        let base = b.baseline(name, GppPreset::Io, EnergyPreset::Vlsi40);
        let run =
            b.point(name, GppPreset::Io, primary(), EnergyPreset::Vlsi40, ExecMode::Specialized);
        rows.push(vec![
            Cell::Text(name.to_string()),
            Cell::Speedup { base, run },
            Cell::EnergyEff { base, run },
        ]);
    }
    b.section("", SectionBody::Table { header, rows }, "");
    b.build()
}

/// Ablation study of design choices called out in `DESIGN.md`: the
/// cross-lane store-load forwarding extension (the paper's "more
/// aggressive implementations" note) on the speculation-bound kernels,
/// and the CIB transfer latency on the CIR-bound kernels.
pub fn ablation_spec() -> ExperimentSpec {
    let mut b = SpecBuilder::new(
        "ablation",
        "Ablation: LPSU design choices (specialized execution on ooo/2+x,\n\
         speedup over GP-ISA on ooo/2)\n\n",
    );

    // Cross-lane forwarding on memory-speculation kernels.
    let header: Vec<String> = ["name", "base", "+xlf", "squashes base", "squashes +xlf"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    for name in ["dynprog-om", "ksack-sm-om", "stencil-orm", "hsort-ua", "war-om"] {
        let base = b.baseline(name, GppPreset::Ooo2, EnergyPreset::Mcpat45);
        let plain =
            b.point(name, GppPreset::Ooo2, primary(), EnergyPreset::Mcpat45, ExecMode::Specialized);
        let xlf = b.point(
            name,
            GppPreset::Ooo2,
            Some(LpsuConfig::default4().with_cross_lane_forwarding()),
            EnergyPreset::Mcpat45,
            ExecMode::Specialized,
        );
        rows.push(vec![
            Cell::Text(name.to_string()),
            Cell::Speedup { base, run: plain },
            Cell::Speedup { base, run: xlf },
            Cell::Counter { point: plain, path: "lpsu.squashed_iters".into() },
            Cell::Counter { point: xlf, path: "lpsu.squashed_iters".into() },
        ]);
    }
    b.section(
        "--- cross-lane store-load forwarding ---\n",
        SectionBody::Table { header, rows },
        "",
    );

    // CIB latency sweep on CIR-bound kernels.
    let header: Vec<String> =
        ["name", "cib=1", "cib=2", "cib=4"].iter().map(|s| s.to_string()).collect();
    let mut rows = Vec::new();
    for name in ["adpcm-or", "dither-or", "sha-or", "kmeans-or"] {
        let base = b.baseline(name, GppPreset::Ooo2, EnergyPreset::Mcpat45);
        let mut cells = vec![Cell::Text(name.to_string())];
        for lat in [1, 2, 4] {
            let run = b.point(
                name,
                GppPreset::Ooo2,
                Some(LpsuConfig::default4().with_cib_latency(lat)),
                EnergyPreset::Mcpat45,
                ExecMode::Specialized,
            );
            cells.push(Cell::Speedup { base, run });
        }
        rows.push(cells);
    }
    b.section("\n--- CIB transfer latency ---\n", SectionBody::Table { header, rows }, "");
    b.build()
}

/// Every artifact spec, in emission order.
pub fn all_specs() -> Vec<ExperimentSpec> {
    vec![
        table2_spec(),
        fig5_spec(),
        fig6_spec(),
        fig7_spec(),
        fig8_spec(),
        fig9_spec(),
        table4_spec(),
        table5_spec(),
        fig10_spec(),
        ablation_spec(),
    ]
}

/// The spec named `name`, if it is one of the known artifacts.
pub fn spec_by_name(name: &str) -> Option<ExperimentSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

// Thin imperative wrappers: each report is now `render_with_runner` over
// the artifact's spec, preserving the historical entry points.

/// Renders Table II (see [`table2_spec`]).
pub fn table2_report(r: &Runner) -> String {
    render_with_runner(r, &table2_spec())
}

/// Renders Figure 5 (see [`fig5_spec`]).
pub fn fig5_report(r: &Runner) -> String {
    render_with_runner(r, &fig5_spec())
}

/// Renders Figure 6 (see [`fig6_spec`]).
pub fn fig6_report(r: &Runner) -> String {
    render_with_runner(r, &fig6_spec())
}

/// Renders Figure 7 (see [`fig7_spec`]).
pub fn fig7_report(r: &Runner) -> String {
    render_with_runner(r, &fig7_spec())
}

/// Renders Figure 8 (see [`fig8_spec`]).
pub fn fig8_report(r: &Runner) -> String {
    render_with_runner(r, &fig8_spec())
}

/// Renders Figure 9 (see [`fig9_spec`]).
pub fn fig9_report(r: &Runner) -> String {
    render_with_runner(r, &fig9_spec())
}

/// Renders Table IV (see [`table4_spec`]).
pub fn table4_report(r: &Runner) -> String {
    render_with_runner(r, &table4_spec())
}

/// Renders Table V (see [`table5_spec`]).
pub fn table5_report(r: &Runner) -> String {
    render_with_runner(r, &table5_spec())
}

/// Renders Figure 10 (see [`fig10_spec`]).
pub fn fig10_report(r: &Runner) -> String {
    render_with_runner(r, &fig10_spec())
}

/// Renders the ablation study (see [`ablation_spec`]).
pub fn ablation_report(r: &Runner) -> String {
    render_with_runner(r, &ablation_spec())
}

/// A report generator: renders one artifact from (cached) run results.
pub type ReportFn = fn(&Runner) -> String;

/// `(artifact name, report function)` for every experiment, in emission
/// order. The `all` binary iterates this twice: once collecting jobs, once
/// rendering (with per-artifact timing) from the warm cache.
pub fn report_fns() -> Vec<(&'static str, ReportFn)> {
    vec![
        ("table2", table2_report),
        ("fig5", fig5_report),
        ("fig6", fig6_report),
        ("fig7", fig7_report),
        ("fig8", fig8_report),
        ("fig9", fig9_report),
        ("table4", table4_report),
        ("table5", table5_report),
        ("fig10", fig10_report),
        ("ablation", ablation_report),
    ]
}

/// Convenience bundle: `(artifact name, rendered report)` for every
/// experiment, sharing one run cache.
pub fn all_reports(r: &Runner) -> Vec<(&'static str, String)> {
    report_fns().into_iter().map(|(name, f)| (name, f(r))).collect()
}
