//! The job layer: one schedulable unit of simulation work and its typed
//! lifecycle.
//!
//! A [`Job`] names one point of an experiment manifest the way the
//! durable store does — `(spec fingerprint, point index, RunOptions)` —
//! so the scheduler, the result store, and the serve daemon all agree on
//! identity by construction: [`Job::store_key`] *is*
//! [`ResultStore::point_key`] over the same triple. Jobs are derived from
//! manifests by the same `i % of == index` ownership rule sharded sweeps
//! use ([`crate::manifest::shard_points`]), so a daemon, a sharded CLI
//! sweep, and `--bin all` enumerate identical job lists for identical
//! inputs.
//!
//! A job moves through a typed lifecycle:
//!
//! ```text
//! Queued → Running → Done(StatSet)
//!                  | Failed(SimError)      typed simulation error
//!                  | Quarantined(message)  panic / verification failure
//! ```
//!
//! `Failed` carries the real [`SimError`] (wedge, fault, exceeded budget)
//! so downstream reporting keeps the class — and its distinct exit code —
//! instead of collapsing everything to a string. `Quarantined` is the
//! fallback for failures with no typed error behind them: a panicking
//! simulation point or a failed result verification, caught by the
//! runner's panic firewall. Either way the diagnosis rides along and the
//! rest of the sweep keeps running.

use xloops_sim::{error_doc, RunOptions, SimError};
use xloops_stats::{JsonValue, StatSet};

use crate::manifest::{shard_points, ExperimentSpec};
use crate::store::ResultStore;

/// One schedulable simulation point: the manifest fingerprint, the point
/// index within that manifest, and the options the run executes under.
/// The triple is exactly the durable store's key material, so "is this
/// job already done?" is one [`ResultStore::load`] away on any machine.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// [`ExperimentSpec::fingerprint`] of the owning manifest.
    pub fingerprint: String,
    /// Index into the manifest's point list.
    pub index: usize,
    /// The options the point runs under (part of the identity: a sampled
    /// run and a full run of the same point are different jobs).
    pub options: RunOptions,
}

impl Job {
    /// The jobs of shard `index` of `of` of a spec, in point order —
    /// the scheduler's unit of admission. `0/1` is the whole manifest.
    pub fn for_shard(
        spec: &ExperimentSpec,
        index: usize,
        of: usize,
        options: &RunOptions,
    ) -> Vec<Job> {
        let fingerprint = spec.fingerprint();
        shard_points(spec, index, of)
            .into_iter()
            .map(|i| Job { fingerprint: fingerprint.clone(), index: i, options: options.clone() })
            .collect()
    }

    /// The job's durable-store key ([`ResultStore::point_key`] over the
    /// same triple).
    pub fn store_key(&self) -> String {
        ResultStore::point_key(&self.fingerprint, self.index, &self.options)
    }
}

/// Where a job is in its lifecycle. See the module docs for the state
/// machine; the two terminal failure states differ in what is known about
/// the failure, not in how the sweep treats it (both are non-fatal).
#[derive(Clone, Debug, PartialEq)]
pub enum JobState {
    /// Admitted, not yet dispatched.
    Queued,
    /// Dispatched to a worker.
    Running,
    /// Finished; the full stat tree of the run.
    Done(Box<StatSet>),
    /// The simulation raised a typed [`SimError`] (wedge, fault, budget).
    Failed(SimError),
    /// The point panicked or failed verification; the diagnosis message.
    Quarantined(String),
}

impl JobState {
    /// The state's wire label (`queued` / `running` / `done` / `failed` /
    /// `quarantined`) — what the serve protocol and progress reporting
    /// print.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Quarantined(_) => "quarantined",
        }
    }

    /// Whether the job reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }

    /// Whether the job finished successfully.
    pub fn is_done(&self) -> bool {
        matches!(self, JobState::Done(_))
    }

    /// The canonical error document for a failed state (`None` for the
    /// others): a `Failed` job renders its [`SimError`] — message and
    /// class exit code — through the same [`error_doc`] shape the CLI and
    /// `bench-summary` use; a `Quarantined` job reports its diagnosis
    /// under the generic exit code `1`.
    pub fn to_error_doc(&self) -> Option<JsonValue> {
        match self {
            JobState::Failed(e) => Some(e.to_json_value()),
            JobState::Quarantined(message) => Some(error_doc(message, 1)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::spec_by_name;

    #[test]
    fn jobs_follow_the_shard_ownership_rule() {
        let spec = spec_by_name("fig9").expect("fig9 spec exists");
        let options = RunOptions::default();
        let all = Job::for_shard(&spec, 0, 1, &options);
        assert_eq!(all.len(), spec.points.len());
        let even = Job::for_shard(&spec, 0, 2, &options);
        let odd = Job::for_shard(&spec, 1, 2, &options);
        assert_eq!(even.len() + odd.len(), all.len());
        assert!(even.iter().all(|j| j.index % 2 == 0));
        assert!(odd.iter().all(|j| j.index % 2 == 1));
        // Job identity is the store's identity.
        let fp = spec.fingerprint();
        for j in &all {
            assert_eq!(j.fingerprint, fp);
            assert_eq!(j.store_key(), ResultStore::point_key(&fp, j.index, &options));
        }
    }

    #[test]
    fn lifecycle_labels_and_error_docs() {
        let done = JobState::Done(Box::new(StatSet::new("system")));
        assert_eq!(done.label(), "done");
        assert!(done.is_terminal() && done.is_done());
        assert!(done.to_error_doc().is_none());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());

        let failed = JobState::Failed(SimError::CycleBudget { budget: 10, cycles: 11 });
        assert_eq!(failed.label(), "failed");
        let doc = failed.to_error_doc().expect("failed states carry an error doc");
        assert_eq!(doc.get("exit_code").map(JsonValue::as_f64), Some(Some(5.0)));
        assert!(doc.get("message").and_then(JsonValue::as_str).unwrap().contains("budget"));

        let quarantined = JobState::Quarantined("it panicked".into());
        let doc = quarantined.to_error_doc().expect("quarantined states carry an error doc");
        assert_eq!(doc.get("exit_code").map(JsonValue::as_f64), Some(Some(1.0)));
        assert!(!quarantined.is_done() && quarantined.is_terminal());
    }
}
