//! Durable content-addressed result store.
//!
//! A [`crate::Runner`]'s memo cache dies with its process, so repeat
//! sweeps re-simulate every point. This module persists finished point
//! results on disk, keyed by *what produced them* rather than where they
//! ran: the store key is FNV-1a-64 over
//!
//! ```text
//! "<spec fingerprint>/<point index>/<result-affecting RunOptions JSON>"
//! ```
//!
//! so any machine sweeping the same manifest under the same options
//! computes the same keys — and a warm sweep becomes a directory of cache
//! reads. Sharding does not enter the key: a store warmed by a sharded
//! sweep serves an unsharded one and vice versa. Neither do the
//! [`RunOptions`] knobs that cannot change a result — `serial`/`threads`
//! (CI pins serial == parallel byte identity) and the `bench_date` stamp
//! — so a dated `bench-summary` run hits a store warmed by `--bin all`.
//!
//! Each entry is one file, `<key>.dxr`, holding the point's
//! [`PointResult`] (`{"error": ..., "stats": ...}`) in the
//! [`xloops_stats::binary`] wire format. Crash safety is the classic
//! temp-file-plus-rename argument: an entry is written to a `.tmp-*`
//! sibling, fsynced, then atomically renamed into place, so a reader can
//! only ever observe a complete entry or no entry. Defense in depth on
//! the read side: the binary format's trailing checksum means a torn,
//! truncated, or bit-rotted file decodes to a typed error, which the
//! store treats as a miss (warn, re-simulate, rewrite) — corruption can
//! cost time, never correctness, and never a panic.
//!
//! Two policy decisions worth their weight:
//!
//! - `XLOOPS_STORE` is deliberately *not* part of [`RunOptions`]: the
//!   options value is serialized into shard documents and into the store
//!   key itself, and where the cache lives must not change what a result
//!   *is* (or poison every key with the path that produced it).
//! - Errored (quarantined) points are never written: a panic diagnosis
//!   may be transient (cycle budget, fault injection), and a durable
//!   cache must not make a bad day permanent.

use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use xloops_sim::RunOptions;
use xloops_stats::{binary, JsonValue, StatSet};

use crate::manifest::{PointResult, ShardDoc};

pub use crate::sched::{run_shard_stored, run_specs_stored, StoredSweepResult};

/// Store-entry filename extension (binary-encoded [`PointResult`]).
const ENTRY_EXT: &str = "dxr";

/// A directory of durable point results. Cheap to open (one
/// `create_dir_all`); all traffic counters are monotonic and
/// thread-safe, mirroring [`crate::runner::Runner::cache_stats`] one
/// layer down.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    quiet: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// Snapshot of a store's traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Probes that found no (usable) entry.
    pub misses: u64,
    /// The subset of misses caused by a *damaged* entry (torn write,
    /// bit rot, schema drift) rather than an absent one.
    pub corrupt: u64,
    /// Total bytes of entries read.
    pub bytes_read: u64,
    /// Total bytes of entries written.
    pub bytes_written: u64,
}

impl StoreStats {
    /// The snapshot as a JSON object (the `store` section of
    /// `BENCH_<date>.json`).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object(vec![
            ("hits", JsonValue::UInt(self.hits)),
            ("misses", JsonValue::UInt(self.misses)),
            ("corrupt", JsonValue::UInt(self.corrupt)),
            ("bytes_read", JsonValue::UInt(self.bytes_read)),
            ("bytes_written", JsonValue::UInt(self.bytes_written)),
        ])
    }
}

/// How a [`ResultStore::load_classified`] probe resolved. The scheduler
/// needs the three-way split — an absent entry is normal cold-cache
/// behavior, a corrupt one is worth a warning and a
/// `profile.store.corrupt` count — while plain [`ResultStore::load`]
/// callers still see both as a miss.
#[derive(Debug)]
pub(crate) enum Loaded {
    /// A usable entry: the decoded result and its size in bytes.
    Hit(PointResult, u64),
    /// No entry on disk.
    Absent,
    /// An entry exists but cannot be used (I/O error, failed checksum,
    /// schema mismatch); the point must re-simulate and the entry will be
    /// rewritten whole.
    Corrupt,
}

/// Report of a [`ResultStore::prune`] pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Entries whose key is live under some given manifest.
    pub kept: u64,
    /// Entries (and temp-file stragglers) deleted.
    pub pruned: u64,
    /// Total size of the deleted files.
    pub bytes_freed: u64,
}

impl ResultStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ResultStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let quiet = std::env::var("XLOOPS_STORE_QUIET").is_ok_and(|v| v == "1");
        Ok(ResultStore {
            dir,
            quiet: AtomicBool::new(quiet),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// Silences (or re-enables) the store's stderr warnings. Initialized
    /// from `XLOOPS_STORE_QUIET=1`; the serve daemon also sets it, because
    /// a daemon's corruption diagnostics belong in its own log stream, not
    /// interleaved with whatever client happens to be connected. Damage is
    /// still *counted* (`StoreStats::corrupt`, `profile.store.corrupt`)
    /// either way — quiet mutes the messenger, never the measurement.
    pub fn set_quiet(&self, quiet: bool) {
        self.quiet.store(quiet, Ordering::Relaxed);
    }

    /// One store warning on stderr, unless the store is quiet.
    pub(crate) fn warn(&self, message: std::fmt::Arguments<'_>) {
        if !self.quiet.load(Ordering::Relaxed) {
            eprintln!("[store] warning: {message}");
        }
    }

    /// The store named by `XLOOPS_STORE`, if set. An unopenable directory
    /// is a warning and `None` (the sweep still runs, just cold), keeping
    /// the knob's failure mode consistent with the corruption policy.
    pub fn from_env() -> Option<ResultStore> {
        let dir = std::env::var("XLOOPS_STORE").ok().filter(|d| !d.is_empty())?;
        match ResultStore::open(&dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("[store] warning: cannot open {dir}: {e}; running without a store");
                None
            }
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content-addressed key of one point: FNV-1a-64 (the manifest
    /// fingerprint hash) over `"<fingerprint>/<index>/<options JSON>"`,
    /// formatted as 16 hex digits. The options JSON keeps only the
    /// result-affecting knobs of the canonical
    /// [`RunOptions::to_json_value`] rendering — supervision changes
    /// degradation behaviour, `profile` adds stat nodes, `sample`
    /// changes the timing estimate — while pure scheduling/metadata
    /// knobs (`serial`, `threads`, `bench_date`) are dropped so they
    /// cannot fragment the cache.
    pub fn point_key(fingerprint: &str, index: usize, options: &RunOptions) -> String {
        let opts = match options.to_json_value() {
            JsonValue::Object(fields) => JsonValue::Object(
                fields
                    .into_iter()
                    .filter(|(k, _)| matches!(k.as_str(), "supervisor" | "profile" | "sample"))
                    .collect(),
            ),
            v => v,
        };
        let text = format!("{fingerprint}/{index}/{}", opts.render());
        format!("{:016x}", binary::fnv1a64(text.as_bytes()))
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.{ENTRY_EXT}"))
    }

    /// Loads the entry under `key`, returning the result and the entry's
    /// size in bytes. Any failure — absent file, I/O error, failed
    /// checksum, schema mismatch — is a miss; only the non-absent kinds
    /// warn on stderr (through the quiet-respecting path) and count as
    /// corruption.
    pub fn load(&self, key: &str) -> Option<(PointResult, u64)> {
        match self.load_classified(key) {
            Loaded::Hit(result, bytes) => Some((result, bytes)),
            Loaded::Absent | Loaded::Corrupt => None,
        }
    }

    /// [`ResultStore::load`] with the miss cause preserved — the
    /// scheduler's probe wants to know a damaged entry from a cold one.
    pub(crate) fn load_classified(&self, key: &str) -> Loaded {
        let path = self.entry_path(key);
        let corrupt = |w: String| {
            self.warn(format_args!("{}: {w}; treating as a miss", path.display()));
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.corrupt.fetch_add(1, Ordering::Relaxed);
            Loaded::Corrupt
        };
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return Loaded::Absent;
            }
            Err(e) => return corrupt(e.to_string()),
        };
        let value = match binary::decode(&bytes) {
            Ok(v) => v,
            Err(e) => return corrupt(e.to_string()),
        };
        let result = match PointResult::from_json_value(&value) {
            Ok(r) => r,
            Err(e) => return corrupt(e.to_string()),
        };
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Loaded::Hit(result, bytes.len() as u64)
    }

    /// Writes `result` under `key` via temp file + fsync + atomic rename,
    /// returning the entry size. A reader never sees a partial entry: the
    /// rename is atomic within the store directory, and a crash before it
    /// leaves only a `.tmp-*` straggler the next write ignores.
    pub fn save(&self, key: &str, result: &PointResult) -> std::io::Result<u64> {
        let bytes = binary::encode(&result.to_json_value());
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!(".tmp-{key}-{}", std::process::id()));
        let write = (|| {
            fs::write(&tmp, &bytes)?;
            fs::File::open(&tmp)?.sync_all()?;
            fs::rename(&tmp, &path)
        })();
        if write.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        write?;
        self.bytes_written.fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(bytes.len() as u64)
    }

    /// Copies a shard document's results into the store — how
    /// `merge --store` turns a pile of shard files into a warm cache.
    /// Usable entries already present are left alone (a corrupt one is a
    /// load miss and gets rewritten); errored points are never stored.
    pub fn backfill(&self, doc: &ShardDoc) {
        for (i, pr) in &doc.results {
            if pr.error.is_some() {
                continue;
            }
            let key = ResultStore::point_key(&doc.fingerprint, *i, &doc.options);
            if self.load(&key).is_some() {
                continue;
            }
            if let Err(e) = self.save(&key, pr) {
                self.warn(format_args!("cannot backfill entry {key}: {e}"));
            }
        }
    }

    /// Deletes every entry whose key is not in `live`, plus any `.tmp-*`
    /// stragglers a crashed writer left behind. Files that are neither
    /// entries nor stragglers are not the store's to touch and are left
    /// alone. The caller assembles `live` from manifests via
    /// [`ResultStore::point_key`] — see `xloops store prune`.
    pub fn prune(&self, live: &HashSet<String>) -> std::io::Result<PruneReport> {
        let mut report = PruneReport::default();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let dead = match name.strip_suffix(&format!(".{ENTRY_EXT}")) {
                Some(key) => !live.contains(key),
                None => name.starts_with(".tmp-"),
            };
            if !dead {
                if !name.starts_with(".tmp-") && name.ends_with(&format!(".{ENTRY_EXT}")) {
                    report.kept += 1;
                }
                continue;
            }
            let bytes = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(&path)?;
            report.pruned += 1;
            report.bytes_freed += bytes;
        }
        Ok(report)
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// Grafts a `store` child onto the result's `profile` node (creating the
/// node if the tree has none) so per-point cache traffic rides in the
/// non-deterministic profile stat family, never in golden artifacts.
/// Called by the scheduler's assembly pass ([`crate::sched`]).
pub(crate) fn attach_store_counters(stats: &mut StatSet, hit: bool, bytes: u64, corrupt: bool) {
    let mut store = StatSet::new("store");
    store.set("hits", hit as u64);
    store.set("misses", !hit as u64);
    store.set("corrupt", corrupt as u64);
    store.set("bytes_read", if hit { bytes } else { 0 });
    store.set("bytes_written", if hit { 0 } else { bytes });
    match stats.child_mut("profile") {
        Some(profile) => {
            profile.push_child(store);
        }
        None => {
            let mut profile = StatSet::new("profile");
            profile.push_child(store);
            stats.push_child(profile);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{merge, render_spec, run_shard, ExperimentSpec};

    fn store_dir(tag: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!("xloops-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fig9ish_spec() -> ExperimentSpec {
        // Small but real: two points sharing a kernel, one baseline.
        crate::experiments::all_specs()
            .into_iter()
            .find(|s| s.name == "table2")
            .map(|mut s| {
                s.points.truncate(3);
                s.sections.clear();
                s
            })
            .expect("table2 spec exists")
    }

    #[test]
    fn cold_sweep_populates_and_warm_sweep_reads() {
        let dir = store_dir("warm");
        let store = ResultStore::open(&dir).unwrap();
        let spec = fig9ish_spec();
        let options = RunOptions::default();

        let cold = run_shard_stored(&spec, 0, 1, options.clone(), Some(&store));
        let s = store.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses as usize, spec.points.len());
        assert!(s.bytes_written > 0);

        let warm_store = ResultStore::open(&dir).unwrap();
        let warm = run_shard_stored(&spec, 0, 1, options.clone(), Some(&warm_store));
        let w = warm_store.stats();
        assert_eq!(w.hits as usize, spec.points.len());
        assert_eq!(w.misses, 0);
        assert_eq!(w.bytes_written, 0);
        assert_eq!(cold, warm, "warm shard doc must equal the cold one");
        // And both equal the storeless run.
        assert_eq!(warm, run_shard(&spec, 0, 1, options));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn options_change_misses_the_cache() {
        let dir = store_dir("options");
        let store = ResultStore::open(&dir).unwrap();
        let spec = fig9ish_spec();
        let plain = RunOptions::default();
        let _ = run_shard_stored(&spec, 0, 1, plain.clone(), Some(&store));

        let sampled = RunOptions {
            sample: Some(xloops_sim::SampleSpec::new(500, 100, 500).unwrap()),
            ..RunOptions::default()
        };
        let fp = spec.fingerprint();
        for i in 0..spec.points.len() {
            assert_ne!(
                ResultStore::point_key(&fp, i, &plain),
                ResultStore::point_key(&fp, i, &sampled),
            );
            assert!(store.load(&ResultStore::point_key(&fp, i, &sampled)).is_none());
        }

        // Scheduling/metadata knobs are proven result-neutral (CI pins
        // serial == parallel byte identity) and must not fragment the
        // cache: same keys, and the warm entries still serve.
        let relabeled = RunOptions {
            serial: true,
            threads: Some(7),
            bench_date: Some("2026-08-08".into()),
            ..RunOptions::default()
        };
        for i in 0..spec.points.len() {
            let key = ResultStore::point_key(&fp, i, &relabeled);
            assert_eq!(ResultStore::point_key(&fp, i, &plain), key);
            assert!(store.load(&key).is_some());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses_and_get_rewritten() {
        let dir = store_dir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        let spec = fig9ish_spec();
        let options = RunOptions::default();
        let cold = run_shard_stored(&spec, 0, 1, options.clone(), Some(&store));

        // Truncate one entry, garble another, leave the rest alone.
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == ENTRY_EXT))
            .collect();
        entries.sort();
        assert_eq!(entries.len(), spec.points.len());
        let full = fs::read(&entries[0]).unwrap();
        fs::write(&entries[0], &full[..full.len() / 2]).unwrap();
        fs::write(&entries[1], b"\xd8XLS garbage").unwrap();

        let warm_store = ResultStore::open(&dir).unwrap();
        let warm = run_shard_stored(&spec, 0, 1, options, Some(&warm_store));
        let w = warm_store.stats();
        assert_eq!(w.misses, 2, "both damaged entries must re-simulate");
        assert_eq!(w.hits as usize, spec.points.len() - 2);
        assert_eq!(warm, cold, "recovery must reproduce the cold results");
        // The damaged entries were rewritten whole.
        let again = ResultStore::open(&dir).unwrap();
        let rewarm = run_shard_stored(&spec, 0, 1, cold.options.clone(), Some(&again));
        assert_eq!(again.stats().hits as usize, spec.points.len());
        assert_eq!(rewarm, cold);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_mode_grafts_store_counters() {
        let dir = store_dir("profile");
        let store = ResultStore::open(&dir).unwrap();
        let spec = fig9ish_spec();
        let options = RunOptions { profile: true, ..RunOptions::default() };
        let cold = run_shard_stored(&spec, 0, 1, options.clone(), Some(&store));
        for (_, pr) in &cold.results {
            let miss = pr.stats.lookup("profile.store.misses").unwrap().as_counter();
            assert_eq!(miss, Some(1));
        }
        let warm_store = ResultStore::open(&dir).unwrap();
        let warm = run_shard_stored(&spec, 0, 1, options, Some(&warm_store));
        for (_, pr) in &warm.results {
            assert_eq!(pr.stats.lookup("profile.store.hits").unwrap().as_counter(), Some(1));
            assert!(pr.stats.lookup("profile.store.bytes_read").unwrap().as_counter().unwrap() > 0);
        }
        // Store entries themselves never carry the grafted counters: the
        // warm read's trees differ from the cold ones only in the graft.
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stored_multi_spec_sweep_matches_plain_render_and_dedups() {
        let dir = store_dir("specs");
        let store = ResultStore::open(&dir).unwrap();
        let spec = fig9ish_spec();
        let options = RunOptions::default();
        let specs = vec![spec.clone(), spec.clone()];
        let swept = run_specs_stored(&specs, &options, &store);
        assert!(swept.failures.is_empty());
        // Identical specs: the shared runner simulates each unique point
        // once even though the store records misses for both spec copies.
        assert!(swept.prefill.unique_points <= spec.points.len());
        let direct = run_shard(&spec, 0, 1, options.clone());
        let (merged_spec, merged) = merge(&[direct]).unwrap();
        for rendered in &swept.results {
            assert_eq!(
                render_spec(&spec, rendered),
                render_spec(&merged_spec, &merged),
                "store-backed render must match the plain one"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    /// Golden keys: `point_key` is the on-disk address of every stored
    /// result, so changing it silently orphans every existing store. This
    /// pins the exact hash for a representative options spread; if it
    /// fails, either restore compatibility or document the store
    /// generation bump in DESIGN.md and bump `FORMAT_VERSION`.
    #[test]
    fn point_key_is_pinned() {
        let fp = "0123456789abcdef";
        let sampled = RunOptions {
            sample: Some(xloops_sim::SampleSpec::new(10000, 2000, 10000).unwrap()),
            ..RunOptions::default()
        };
        let supervised = RunOptions {
            supervisor: Some(xloops_sim::SupervisorConfig::protected()),
            ..RunOptions::default()
        };
        let keys = [
            ResultStore::point_key(fp, 7, &RunOptions::default()),
            ResultStore::point_key(fp, 7, &sampled),
            ResultStore::point_key(fp, 7, &supervised),
            ResultStore::point_key(fp, 8, &RunOptions::default()),
        ];
        assert_eq!(
            keys,
            [
                "3bbd390446adcd6c".to_string(),
                "98f07319880c7d9b".to_string(),
                "c2c3c6d55398b2bf".to_string(),
                "2ab873f2b7d076d5".to_string(),
            ]
        );
    }

    #[test]
    fn prune_keeps_live_entries_and_sweeps_the_rest() {
        let dir = store_dir("prune");
        let store = ResultStore::open(&dir).unwrap();
        let spec = fig9ish_spec();
        let options = RunOptions::default();
        let _ = run_shard_stored(&spec, 0, 1, options.clone(), Some(&store));

        // A dead entry (stale key), an orphaned temp file, and a foreign
        // file that prune must not touch.
        fs::write(dir.join(format!("{:016x}.{ENTRY_EXT}", 0xdeadu64)), b"stale").unwrap();
        fs::write(dir.join(".tmp-feedface-99999"), b"orphan").unwrap();
        fs::write(dir.join("README.txt"), b"not a store entry").unwrap();

        let fp = spec.fingerprint();
        let live: HashSet<String> =
            (0..spec.points.len()).map(|i| ResultStore::point_key(&fp, i, &options)).collect();
        let report = store.prune(&live).unwrap();
        assert_eq!(report.kept as usize, spec.points.len());
        assert_eq!(report.pruned, 2, "stale entry + orphaned temp file");
        assert!(report.bytes_freed > 0);
        assert!(dir.join("README.txt").exists(), "foreign files survive prune");

        // Every live entry still serves.
        let warm = ResultStore::open(&dir).unwrap();
        let _ = run_shard_stored(&spec, 0, 1, options, Some(&warm));
        assert_eq!(warm.stats().hits as usize, spec.points.len());
        assert_eq!(warm.stats().misses, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_loads_are_counted_and_quiet_suppresses_nothing_else() {
        let dir = store_dir("quietcorrupt");
        let store = ResultStore::open(&dir).unwrap();
        store.set_quiet(true); // keep the damage warning out of test output
        let key = ResultStore::point_key("feedfacefeedface", 0, &RunOptions::default());
        fs::write(dir.join(format!("{key}.{ENTRY_EXT}")), b"\xd8XLS garbage").unwrap();
        assert!(store.load(&key).is_none());
        let s = store.stats();
        assert_eq!(s.corrupt, 1, "damaged entry must be counted, not just missed");
        assert_eq!(s.misses, 1);
        assert_eq!(s.to_json_value().get("corrupt").and_then(JsonValue::as_f64), Some(1.0));
        // An absent key is a plain miss, not corruption.
        assert!(store.load("0000000000000000").is_none());
        assert_eq!(store.stats().corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
