//! # xloops-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation. Each binary under `src/bin/` reproduces one
//! artifact and prints a paper-style text table (also written under
//! `results/` at the workspace root):
//!
//! | binary   | artifact |
//! |----------|----------|
//! | `table2` | Table II — T/S/A speedups on io, ooo/2, ooo/4 |
//! | `fig5`   | Figure 5 — specialized speedup vs the out-of-order baselines |
//! | `fig6`   | Figure 6 — LPSU cycle breakdown (exec/stall/squash) |
//! | `fig7`   | Figure 7 — specialized vs adaptive on ooo/4+x |
//! | `fig8`   | Figure 8 — energy efficiency vs performance |
//! | `fig9`   | Figure 9 — LPSU design-space exploration |
//! | `table4` | Table IV — hand-optimized / loop-transformed case studies |
//! | `table5` | Table V — VLSI area and cycle time model |
//! | `fig10`  | Figure 10 — VLSI energy efficiency vs performance |
//! | `all`    | everything above, plus `EXPERIMENTS.md` data |
//!
//! Simulated cycle counts are deterministic, so the artifacts need no
//! statistical repetition; the Criterion benches in `benches/` instead
//! track the *simulator's* own throughput (host-side performance of the
//! assembler, functional core, and LPSU engine).

pub mod experiments;
pub mod job;
pub mod manifest;
pub mod proto;
pub mod runner;
pub mod sched;
pub mod serve;
pub mod store;
pub mod transport;
pub mod worker;

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use xloops_asm::{lower_gp, Program};
use xloops_kernels::Kernel;
use xloops_sim::{ExecMode, RunOptions, SimError, Supervisor, System, SystemConfig, SystemStats};

pub use runner::{render_artifact, run_reports, RunFailure, Runner};
pub use store::{ResultStore, StoreStats};

/// Result of one kernel execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// End-to-end cycles.
    pub cycles: u64,
    /// Dynamic energy in nanojoules.
    pub energy_nj: f64,
    /// Full system statistics.
    pub stats: SystemStats,
    /// `Some(diagnosis)` when the harness quarantined this point instead
    /// of completing it (a panic or simulation error caught by the
    /// hardened executor); the numeric fields are then placeholders.
    pub error: Option<String>,
}

/// Runs `program` for `kernel` on a fresh system and verifies the result;
/// `what` labels panics (`"run"` / `"baseline"`). The knobs of `options`
/// consulted here are [`RunOptions::sample`], [`RunOptions::supervisor`],
/// and [`RunOptions::profile`]; the executor knobs belong to the
/// [`runner::Runner`]. Shared by the direct entry
/// points below and the memoizing runner.
pub(crate) fn run_program(
    kernel: &Kernel,
    program: &Program,
    config: SystemConfig,
    mode: ExecMode,
    options: &RunOptions,
    what: &str,
) -> RunResult {
    try_run_program(kernel, program, config, mode, options, what)
        .unwrap_or_else(|e| panic!("{} {what} on {}: {e}", kernel.name, config.name()))
}

/// The typed-error variant of [`run_program`]: simulation failures come
/// back as the [`SimError`] itself (so schedulers can keep the class and
/// its exit code), while result-verification failures still panic — a
/// wrong answer is a harness bug, not a reportable run outcome.
pub(crate) fn try_run_program(
    kernel: &Kernel,
    program: &Program,
    config: SystemConfig,
    mode: ExecMode,
    options: &RunOptions,
    what: &str,
) -> Result<RunResult, SimError> {
    let mut sys = System::new(config);
    sys.set_profiling(options.profile);
    kernel.init_memory(sys.mem_mut());
    let run = match (&options.sample, &options.supervisor) {
        // Sampled runs are unsupervised by construction (see
        // `System::run_sampled`); sampling takes precedence.
        (Some(spec), _) => sys.run_sampled(program, mode, *spec),
        (None, Some(cfg)) => Supervisor::new(&mut sys, cfg.clone()).run(program, mode),
        (None, None) => sys.run(program, mode),
    };
    let stats = run?;
    kernel
        .verify(sys.mem())
        .unwrap_or_else(|e| panic!("{} {what} on {} ({mode:?}): {e}", kernel.name, config.name()));
    Ok(RunResult { cycles: stats.cycles, energy_nj: stats.energy_nj, stats, error: None })
}

/// Runs a kernel's XLOOPS binary in the given mode, with options from the
/// environment ([`RunOptions::from_env`]).
pub fn run_kernel(kernel: &Kernel, config: SystemConfig, mode: ExecMode) -> RunResult {
    run_program(kernel, &kernel.program, config, mode, &RunOptions::from_env(), "run")
}

/// Runs a kernel's XLOOPS binary with *explicit* options: the
/// environment-independent variant of [`run_kernel`], for callers (like
/// `bench-summary`'s sampled points) that need one deviating knob without
/// perturbing the process environment.
pub fn run_kernel_with(
    kernel: &Kernel,
    config: SystemConfig,
    mode: ExecMode,
    options: &RunOptions,
) -> RunResult {
    run_program(kernel, &kernel.program, config, mode, options, "run")
}

/// Runs the *general-purpose ISA* baseline: the same kernel lowered with
/// `xloop` → branch and `xi` → add, executed traditionally. All speedups
/// in the paper are normalized to this binary on the matching GPP.
pub fn run_gp_baseline(kernel: &Kernel, config: SystemConfig) -> RunResult {
    let gp = lower_gp(&kernel.program);
    run_program(
        kernel,
        &gp,
        SystemConfig { lpsu: None, ..config },
        ExecMode::Traditional,
        &RunOptions::from_env(),
        "baseline",
    )
}

/// Drives one artifact binary end to end: two-pass render of `spec`
/// (collect, parallel prefill, cache-served render), then print + write
/// `results/<name>.txt`.
pub fn emit_spec(spec: &manifest::ExperimentSpec) {
    let report = render_artifact(|r| manifest::render_with_runner(r, spec));
    emit(&spec.name, &report);
}

/// `baseline / measured` — >1 means faster than the baseline.
pub fn speedup(baseline: &RunResult, run: &RunResult) -> f64 {
    baseline.cycles as f64 / run.cycles.max(1) as f64
}

/// `baseline / measured` on energy — >1 means more efficient.
pub fn energy_efficiency(baseline: &RunResult, run: &RunResult) -> f64 {
    baseline.energy_nj / run.energy_nj.max(1e-9)
}

/// Directory the artifacts are written to (workspace `results/`).
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Prints an artifact and writes it under `results/<name>.txt`. I/O
/// failures don't abort the run (the artifact was already printed) but are
/// reported on stderr with the path involved.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.txt"));
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// A minimal fixed-width text table builder for paper-style output.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{c:<w$}", w = widths[i]);
                } else {
                    let _ = write!(out, "  {c:>w$}", w = widths[i]);
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a ratio like the paper (two decimals).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xloops_kernels::by_name;

    #[test]
    fn harness_runs_a_kernel_and_baseline() {
        let k = by_name("huffman-ua").expect("kernel exists");
        let base = run_gp_baseline(k, SystemConfig::io());
        let spec = run_kernel(k, SystemConfig::io_x(), ExecMode::Specialized);
        assert!(base.cycles > 0 && spec.cycles > 0);
        assert!(speedup(&base, &spec) > 0.2, "sanity bound");
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["name", "x"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["longer".into(), "12.50".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn text_table_checks_width() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
